"""Micro-benchmarks for the two engines behind the type checker.

These correspond to the per-query cost components t_SAT and t_FA⊆ of the
paper's tables: individual SMT validity queries (with method-predicate axiom
instantiation) and individual symbolic-automata inclusion checks.
"""

import pytest

from repro import smt
from repro.smt.sorts import BYTES, ELEM, PATH
from repro.libraries.filelib import file_axioms, is_del, is_dir, parent_fn
from repro.libraries.setlib import make_set
from repro.sfa import symbolic as S
from repro.sfa.inclusion import InclusionChecker
from repro.suite.registry import all_benchmarks


def test_smt_validity_with_axioms(benchmark):
    solver = smt.Solver(axioms=file_axioms())
    stored = smt.declare("mb_stored", [PATH], BYTES)
    p = smt.var("mb_p", PATH)

    goal = smt.implies(
        smt.apply(is_dir, smt.apply(stored, smt.apply(parent_fn, p))),
        smt.not_(smt.apply(is_del, smt.apply(stored, smt.apply(parent_fn, p)))),
    )

    def run():
        assert solver.is_valid(goal)
        return solver.stats.queries

    benchmark(run)


def test_smt_unsat_core_query(benchmark):
    solver = smt.Solver(axioms=file_axioms())
    b = smt.var("mb_b", BYTES)
    conflict = smt.and_(smt.apply(is_dir, b), smt.apply(is_del, b))

    def run():
        assert not solver.is_satisfiable(conflict)

    benchmark(run)


def test_sfa_inclusion_insert_once(benchmark):
    library = make_set(ELEM)
    insert = library.operators["insert"]
    el = smt.var("mb_el", ELEM)
    x = smt.var("mb_x", ELEM)
    insert_el = S.event_pinned(insert, {"x": el})
    invariant = S.globally(S.implies(insert_el, S.next_(S.not_(S.eventually(insert_el)))))
    fresh = S.and_(invariant, S.not_(S.eventually(S.event_pinned(insert, {"x": x}))))
    effect = S.and_(S.event_pinned(insert, {"x": x}), S.last())
    lhs = S.concat(fresh, effect)

    def run():
        checker = InclusionChecker(smt.Solver(), library.operators)
        assert checker.check([], lhs, invariant)
        return checker.stats.average_transitions

    benchmark(run)


def test_sfa_noninclusion_with_counterexample(benchmark):
    library = make_set(ELEM)
    insert = library.operators["insert"]
    el = smt.var("mb_el2", ELEM)
    x = smt.var("mb_x2", ELEM)
    insert_el = S.event_pinned(insert, {"x": el})
    invariant = S.globally(S.implies(insert_el, S.next_(S.not_(S.eventually(insert_el)))))
    effect = S.and_(S.event_pinned(insert, {"x": x}), S.last())
    lhs = S.concat(invariant, effect)  # no freshness check: not included

    def run():
        checker = InclusionChecker(smt.Solver(), library.operators)
        result = checker.check_detailed([], lhs, invariant)
        assert not result.included and result.counterexample
        return result

    benchmark(run)


def _verify_all_queries(bench, strategy: str) -> tuple[int, bool]:
    """(#SMT queries, all-verified) for a whole Table 1 row under a strategy."""
    from repro.typecheck.checker import CheckerConfig

    checker = bench.make_checker(CheckerConfig(enumeration_strategy=strategy))
    stats = bench.verify_all(checker)
    return checker.solver.stats.queries, stats.all_verified


@pytest.mark.parametrize(
    "key", [bench.key for bench in all_benchmarks(include_slow=False)]
)
def test_guided_enumeration_issues_fewer_queries(benchmark, key):
    """Solver-guided enumeration beats the per-candidate walk on Table 1 rows.

    For every fast-corpus ADT, verifying the whole row with the guided
    strategy must succeed with strictly fewer SMT queries than the exhaustive
    walk — the headline claim of the enumeration subsystem.
    """
    bench = next(b for b in all_benchmarks(include_slow=False) if b.key == key)
    exhaustive_queries, exhaustive_ok = _verify_all_queries(bench, "exhaustive")
    assert exhaustive_ok

    def run():
        return _verify_all_queries(bench, "guided")

    guided_queries, guided_ok = benchmark(run)
    assert guided_ok
    assert guided_queries < exhaustive_queries, (
        f"{key}: guided used {guided_queries} queries, "
        f"exhaustive used {exhaustive_queries}"
    )
    benchmark.extra_info["#SAT guided"] = guided_queries
    benchmark.extra_info["#SAT exhaustive"] = exhaustive_queries


@pytest.mark.parametrize(
    "key", [bench.key for bench in all_benchmarks(include_slow=False)]
)
def test_lazy_explores_fewer_states_than_compiled_builds(benchmark, key):
    """The lazy discharge beats DFA compilation on every Table 1 row.

    For every fast-corpus ADT, the product states explored by the lazy
    on-the-fly walk must be strictly fewer than the DFA states the compiled
    reference path materialises — the headline claim of the obligation
    engine's discharge stage.
    """
    from repro.typecheck.checker import CheckerConfig

    bench = next(b for b in all_benchmarks(include_slow=False) if b.key == key)
    compiled_checker = bench.make_checker(CheckerConfig(discharge="compiled"))
    compiled_stats = bench.verify_all(compiled_checker)
    assert compiled_stats.all_verified
    built = sum(r.stats.states_built for r in compiled_stats.method_results)

    def run():
        checker = bench.make_checker(CheckerConfig(discharge="lazy"))
        return bench.verify_all(checker)

    lazy_stats = benchmark(run)
    assert lazy_stats.all_verified
    explored = sum(r.stats.prod_states for r in lazy_stats.method_results)
    assert 0 < explored < built, (
        f"{key}: lazy explored {explored} product states, "
        f"compiled built {built} DFA states"
    )
    benchmark.extra_info["#prod-states (lazy)"] = explored
    benchmark.extra_info["DFA states built (compiled)"] = built


@pytest.mark.parametrize(
    "key", [bench.key for bench in all_benchmarks(include_slow=False)]
)
def test_alphabet_memo_builds_fewer_than_obligations(benchmark, key):
    """Cross-obligation alphabet reuse is real on every Table 1 row.

    One checker verifies the whole row (positive methods plus the known-bad
    variants, exactly as ``evaluate`` runs it); the shared memo must
    enumerate strictly fewer alphabets than the row emits inclusion
    obligations — i.e. obligations genuinely share minterm constructions
    instead of redoing them per inclusion.
    """
    from repro.typecheck.checker import CheckerConfig

    bench = next(b for b in all_benchmarks(include_slow=False) if b.key == key)

    def run():
        checker = bench.make_checker(CheckerConfig())
        stats = bench.verify_all(checker)
        assert stats.all_verified
        results = list(stats.method_results)
        for variant in bench.negative_variants:
            rejected = bench.verify_negative_variant(variant, checker)
            assert not rejected.verified
            results.append(rejected)
        return results

    results = benchmark(run)
    builds = sum(r.stats.alphabet_builds for r in results)
    memo_hits = sum(r.stats.alphabet_memo_hits for r in results)
    emitted = sum(r.stats.obligations for r in results)
    assert 0 < builds < emitted, (
        f"{key}: {builds} alphabet constructions for {emitted} emitted "
        "obligations — the cross-obligation memo is not sharing"
    )
    benchmark.extra_info["alphabet builds"] = builds
    benchmark.extra_info["alphabet memo hits"] = memo_hits
    benchmark.extra_info["emitted obligations"] = emitted


def test_cold_evaluate_beats_pr4_baseline(benchmark):
    """The profile-guided pass actually moved the headline number.

    ``BENCH_PR5.json`` records the PR 4 cold fast-corpus wall time, measured
    on the reference machine with the same best-of-N harness semantics this
    test uses; the memoised pipeline must beat it.  Wall-clock comparisons
    are only meaningful on comparable hardware, so the assertion runs only
    when this machine matches the one the payload records — elsewhere the
    test skips and the cross-machine gate is CI's tolerance-based
    ``bench-smoke`` diff (refresh the payload with ``repro bench`` after
    changing reference machines).
    """
    import json
    import platform
    import sys
    import time
    from pathlib import Path

    from repro.evaluation.runner import run_evaluation

    payload = json.loads(
        (Path(__file__).resolve().parents[1] / "BENCH_PR5.json").read_text()
    )
    here = {
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "machine": platform.machine(),
    }
    if payload.get("machine") != here:
        pytest.skip(
            "BENCH_PR5.json was recorded on different hardware; wall-time "
            "comparison is only meaningful against a same-machine baseline"
        )
    baseline = payload["baseline"]["cold_wall_seconds"]

    walls = []
    for _ in range(3):
        start = time.perf_counter()
        report = run_evaluation(include_slow=False)
        walls.append(time.perf_counter() - start)
        assert report.all_verified and report.all_negatives_rejected

    def run():
        return min(walls)

    best = benchmark(run)
    assert best < baseline, (
        f"cold fast-corpus evaluate took {best:.3f}s, PR 4 baseline was "
        f"{baseline:.3f}s — the cross-obligation reuse regressed"
    )
    benchmark.extra_info["cold wall (best of 3)"] = round(best, 4)
    benchmark.extra_info["PR4 baseline"] = baseline


def test_batch_cold_evaluate_beats_pr5_baseline(benchmark):
    """The set-at-a-time batched discharge actually moved the headline number.

    ``BENCH_PR7.json`` is a ``discharge="batch"`` payload whose ``baseline``
    block carries the PR 5 cold fast-corpus wall time (default lazy mode,
    same machine, same best-of-N semantics).  Batch mode must beat it.  As
    with the PR 5 gate above, the assertion is machine-guarded: elsewhere it
    skips and the cross-machine gate is CI's tolerance-based ``bench-smoke``
    diff against the committed payload.
    """
    import json
    import platform
    import sys
    import time
    from pathlib import Path

    from repro.evaluation.runner import run_evaluation
    from repro.typecheck.checker import CheckerConfig

    payload = json.loads(
        (Path(__file__).resolve().parents[1] / "BENCH_PR7.json").read_text()
    )
    here = {
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "machine": platform.machine(),
    }
    if payload.get("machine") != here:
        pytest.skip(
            "BENCH_PR7.json was recorded on different hardware; wall-time "
            "comparison is only meaningful against a same-machine baseline"
        )
    baseline = payload["baseline"]["cold_wall_seconds"]

    config = CheckerConfig(discharge="batch")
    walls = []
    for _ in range(3):
        start = time.perf_counter()
        report = run_evaluation(include_slow=False, config=config)
        walls.append(time.perf_counter() - start)
        assert report.all_verified and report.all_negatives_rejected

    def run():
        return min(walls)

    best = benchmark(run)
    assert best < baseline, (
        f"batched cold fast-corpus evaluate took {best:.3f}s, the PR 5 lazy "
        f"baseline was {baseline:.3f}s — the grouped discharge regressed"
    )
    benchmark.extra_info["batch cold wall (best of 3)"] = round(best, 4)
    benchmark.extra_info["PR5 lazy baseline"] = baseline
