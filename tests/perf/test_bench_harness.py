"""The tracked benchmark harness: payload shape, regression gate, CLI."""

import copy
import json

import pytest

from repro.perf.bench import compare_payloads, load_payload, run_bench, summarize
from repro.typecheck.checker import CheckerConfig


@pytest.fixture(scope="module")
def payload():
    return run_bench(runs=1, config=CheckerConfig())


def test_payload_shape(payload):
    assert payload["schema"] == 1
    assert payload["corpus"] == "fast"
    for phase in ("cold", "warm"):
        section = payload[phase]
        assert section["all_verified"] and section["all_negatives_rejected"]
        assert section["wall_seconds"] > 0
        assert section["counters"]["obligations"] > 0
        assert set(section["tables_deterministic"]) == {"table1", "table3", "table4"}
        assert section["per_adt_wall_seconds"]


def test_cold_discharges_and_warm_replays(payload):
    assert payload["cold"]["counters"]["store_hits"] == 0
    warm = payload["warm"]["counters"]
    assert warm["store_hits"] > 0
    # a store hit replays the cold discharge's recorded counters — alphabet
    # builds included — so warm counters mirror cold ones exactly (nothing is
    # *re-enumerated*; the replay is what keeps warm tables byte-identical)
    assert warm["alphabet_builds"] == payload["cold"]["counters"]["alphabet_builds"]


def test_warm_tables_match_cold_tables(payload):
    assert payload["warm"]["tables_deterministic"] == payload["cold"]["tables_deterministic"]


def test_cross_obligation_reuse_is_visible(payload):
    counters = payload["cold"]["counters"]
    assert 0 < counters["alphabet_builds"] < counters["obligations"], (
        "the memo must build strictly fewer alphabets than obligations emitted"
    )


def test_compare_within_tolerance_passes(payload):
    current = copy.deepcopy(payload)
    current["cold"]["wall_seconds"] = payload["cold"]["wall_seconds"] * 1.1
    ok, messages = compare_payloads(current, payload, tolerance=0.2)
    assert ok
    assert any("cold wall" in m and "ok" in m for m in messages)
    assert any("counters: identical" in m for m in messages)


def test_compare_flags_regression(payload):
    current = copy.deepcopy(payload)
    current["cold"]["wall_seconds"] = payload["cold"]["wall_seconds"] * 1.5
    ok, messages = compare_payloads(current, payload, tolerance=0.2)
    assert not ok
    assert any("REGRESSION" in m for m in messages)


def test_compare_reports_counter_drift_as_advisory(payload):
    current = copy.deepcopy(payload)
    current["cold"]["counters"]["smt_queries"] += 7
    ok, messages = compare_payloads(current, payload, tolerance=0.2)
    assert ok, "counter drift is advisory, not a gate"
    assert any("counters moved" in m for m in messages)


def test_load_payload_round_trip(payload, tmp_path):
    path = tmp_path / "bench.json"
    path.write_text(json.dumps(payload))
    assert load_payload(path)["cold"] == payload["cold"]
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"nope": 1}))
    with pytest.raises(ValueError):
        load_payload(bad)


def test_summarize_mentions_the_headline_numbers(payload):
    text = summarize(payload)
    assert "cold:" in text and "warm:" in text and "alphabet builds=" in text


def test_run_bench_validates_runs():
    with pytest.raises(ValueError):
        run_bench(runs=0)


def test_dispatch_ab_work_stealing_beats_static_shards():
    from repro.perf.bench import run_dispatch_ab

    result = run_dispatch_ab()
    assert result["stealing_beats_static"], (
        "LPT-at-dequeue must beat the static hash partition under skew"
    )
    assert result["speedup"] > 1.0
    # the salt search pinned a representative partition: the straggler's
    # shard carries at least its fair share of cheap items
    assert result["straggler_shard_cheap_items"] >= result["cheap"] // result["workers"]
    assert result["stealing_seconds"] > 0 and result["static_seconds"] > 0


def test_dispatch_ab_validates_workers():
    from repro.perf.bench import run_dispatch_ab

    with pytest.raises(ValueError, match="2 workers"):
        run_dispatch_ab(workers=1)


def test_compare_gates_the_dispatch_speedup(payload):
    dispatch = {
        "static_seconds": 0.5,
        "stealing_seconds": 0.3,
        "speedup": 1.667,
        "stealing_beats_static": True,
    }
    current = copy.deepcopy(payload)
    current["dispatch_ab"] = dict(dispatch)
    baseline = copy.deepcopy(payload)
    baseline["dispatch_ab"] = dict(dispatch)
    ok, messages = compare_payloads(current, baseline, tolerance=0.2)
    assert ok
    assert any("dispatch A/B" in m and "ok" in m for m in messages)

    # stealing slower than static: the work-stealing claim itself fails
    current["dispatch_ab"].update(stealing_seconds=0.6, speedup=0.833)
    ok, messages = compare_payloads(current, baseline, tolerance=0.2)
    assert not ok
    assert any("dispatch A/B" in m and "REGRESSION" in m for m in messages)

    # stealing makespan regressed past the tolerance vs the baseline
    current["dispatch_ab"].update(stealing_seconds=0.45, speedup=1.111)
    ok, messages = compare_payloads(current, baseline, tolerance=0.2)
    assert not ok
    assert any("stealing makespan" in m for m in messages)


def test_committed_bench_payload_is_well_formed():
    """The checked-in BENCH_PR5.json must parse and carry the PR4 baseline."""
    from pathlib import Path

    committed = load_payload(Path(__file__).resolve().parents[2] / "BENCH_PR5.json")
    assert committed["baseline"]["label"] == "PR4"
    assert committed["baseline"]["cold_wall_seconds"] > 0
    assert committed["cold"]["wall_seconds"] > 0


def test_committed_pr10_payload_carries_the_dispatch_evidence():
    """BENCH_PR10.json is the CI-gated record that stealing beats shards."""
    from pathlib import Path

    committed = load_payload(Path(__file__).resolve().parents[2] / "BENCH_PR10.json")
    assert committed["baseline"]["label"] == "PR7"
    dispatch = committed["dispatch_ab"]
    assert dispatch["stealing_beats_static"] and dispatch["speedup"] > 1.0
    assert dispatch["stealing_seconds"] > 0 and dispatch["static_seconds"] > 0
    assert committed["ab"]["tables_identical"]
