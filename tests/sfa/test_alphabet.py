"""Tests for literal collection, minterm construction and the alphabet transformation."""

from repro import smt
from repro.smt import sorts
from repro.sfa import symbolic as S
from repro.sfa.alphabet import AlphabetStats, build_alphabets, collect_literals


def test_collect_literals_splits_context_and_event(set_ops):
    insert = set_ops["insert"]
    el = smt.var("cl_el", sorts.ELEM)
    small = smt.declare("cl_small", [sorts.ELEM], smt.BOOL, method_predicate=True)
    formula = S.and_(
        S.event(insert, smt.eq(insert.arg_vars[0], el)),
        S.guard(smt.apply(small, el)),
    )
    sets = collect_literals([formula], set_ops)
    assert smt.apply(small, el) in sets.context_literals
    assert smt.eq(insert.arg_vars[0], el) in sets.event_literals["insert"]
    assert sets.event_literals["mem"] == ()
    assert sets.total() == 2


def test_context_only_atom_inside_event_is_context_literal(kv_ops):
    put = kv_ops["put"]
    p = smt.var("cl_p", sorts.PATH)
    is_root = smt.declare("cl_isRoot", [sorts.PATH], smt.BOOL, method_predicate=True)
    formula = S.event(put, smt.and_(smt.apply(is_root, p), smt.eq(put.arg_vars[0], p)))
    sets = collect_literals([formula], kv_ops)
    assert smt.apply(is_root, p) in sets.context_literals
    assert smt.eq(put.arg_vars[0], p) in sets.event_literals["put"]


def test_build_alphabets_unconstrained_ops_get_single_character(set_ops, solver):
    el = smt.var("ab_el", sorts.ELEM)
    formula = S.eventually(S.event_pinned(set_ops["insert"], [el]))
    alphabets = build_alphabets(solver, [], [formula], set_ops)
    assert len(alphabets) == 1  # no context literals => one context case
    alphabet = alphabets[0]
    # insert splits on (x == el) true/false; mem has no literals -> 1 character
    insert_chars = [c for c in alphabet.characters if c.signature.name == "insert"]
    mem_chars = [c for c in alphabet.characters if c.signature.name == "mem"]
    assert len(insert_chars) == 2
    assert len(mem_chars) == 1


def test_build_alphabets_prunes_unsat_minterms(kv_ops):
    is_dir = smt.declare("ab_isDir", [sorts.BYTES], smt.BOOL, method_predicate=True)
    is_file = smt.declare("ab_isFile", [sorts.BYTES], smt.BOOL, method_predicate=True)
    b = smt.var("ab_axb", sorts.BYTES)
    solver = smt.Solver(
        axioms=[smt.axiom("dir-xor-file", [b], smt.implies(smt.apply(is_dir, b), smt.not_(smt.apply(is_file, b))))]
    )
    put = kv_ops["put"]
    val = put.arg_vars[1]
    formula = S.or_(
        S.eventually(S.event(put, smt.apply(is_dir, val))),
        S.eventually(S.event(put, smt.apply(is_file, val))),
    )
    stats = AlphabetStats()
    alphabets = build_alphabets(solver, [], [formula], kv_ops, stats=stats)
    put_chars = [c for c in alphabets[0].characters if c.signature.name == "put"]
    # 4 candidate minterms over {isDir(val), isFile(val)}, the dir&file one is pruned
    assert len(put_chars) == 3
    assert stats.minterm_candidates >= 4
    assert stats.satisfiable_minterms < stats.minterm_candidates

    unfiltered = build_alphabets(solver, [], [formula], kv_ops, filter_unsat=False)
    put_chars_unfiltered = [c for c in unfiltered[0].characters if c.signature.name == "put"]
    assert len(put_chars_unfiltered) == 4


def test_build_alphabets_context_cases_split_on_guard_literals(set_ops, solver):
    el = smt.var("ab2_el", sorts.ELEM)
    special = smt.declare("ab2_special", [sorts.ELEM], smt.BOOL, method_predicate=True)
    formula = S.or_(
        S.guard(smt.apply(special, el)),
        S.eventually(S.event_pinned(set_ops["insert"], [el])),
    )
    alphabets = build_alphabets(solver, [], [formula], set_ops)
    assert len(alphabets) == 2  # special(el) true / false
    cases = {alphabet.context_case[0][1] for alphabet in alphabets}
    assert cases == {True, False}


def test_build_alphabets_hypotheses_prune_context_cases(set_ops, solver):
    el = smt.var("ab3_el", sorts.ELEM)
    special = smt.declare("ab3_special", [sorts.ELEM], smt.BOOL, method_predicate=True)
    formula = S.guard(smt.apply(special, el))
    alphabets = build_alphabets(
        solver, [smt.apply(special, el)], [formula], set_ops
    )
    # under the hypothesis special(el), the negative context case is unsatisfiable
    assert len(alphabets) == 1
    assert alphabets[0].context_case[0][1] is True


def test_character_formula_and_truth(set_ops, solver):
    el = smt.var("ab4_el", sorts.ELEM)
    formula = S.eventually(S.event_pinned(set_ops["insert"], [el]))
    alphabet = build_alphabets(solver, [], [formula], set_ops)[0]
    insert_chars = [c for c in alphabet.characters if c.signature.name == "insert"]
    eq_atom = smt.eq(set_ops["insert"].arg_vars[0], el)
    truths = {c.truth()[eq_atom] for c in insert_chars}
    assert truths == {True, False}
    for c in insert_chars:
        assert c.formula() in (eq_atom, smt.not_(eq_atom))


def test_literal_budget_enforced(set_ops, solver):
    import pytest
    from repro.sfa.alphabet import AlphabetError

    insert = set_ops["insert"]
    el_vars = [smt.var(f"budget_el{i}", sorts.ELEM) for i in range(16)]
    formula = S.or_(*[S.event_pinned(insert, [v]) for v in el_vars])
    with pytest.raises(AlphabetError):
        build_alphabets(solver, [], [formula], set_ops, max_literals=8)
