"""Tests for the Fourier–Motzkin linear arithmetic module."""

import itertools

from fractions import Fraction

from hypothesis import given, settings, strategies as st

from repro import smt
from repro.smt import arith

x = smt.var("ar_x", smt.INT)
y = smt.var("ar_y", smt.INT)
z = smt.var("ar_z", smt.INT)


def test_linearize_simple():
    coeffs, const = arith.linearize(smt.add(x, smt.int_const(3)))
    assert coeffs == {x: Fraction(1)}
    assert const == 3


def test_linearize_sub_and_mul():
    coeffs, const = arith.linearize(smt.sub(smt.mul(2, x), smt.add(y, smt.int_const(1))))
    assert coeffs == {x: Fraction(2), y: Fraction(-1)}
    assert const == -1


def test_linearize_cancellation():
    coeffs, const = arith.linearize(smt.sub(x, x))
    assert coeffs == {}
    assert const == 0


def test_consistent_chain():
    lits = [(smt.lt(x, y), True), (smt.lt(y, z), True), (smt.lt(x, z), True)]
    assert arith.check_arith(lits)


def test_inconsistent_cycle():
    lits = [(smt.lt(x, y), True), (smt.lt(y, z), True), (smt.lt(z, x), True)]
    assert not arith.check_arith(lits)


def test_inconsistent_strict_self():
    assert not arith.check_arith([(smt.lt(x, x), True)])


def test_equalities_and_bounds():
    lits = [
        (smt.eq(x, smt.int_const(3)), True),
        (smt.le(x, smt.int_const(2)), True),
    ]
    assert not arith.check_arith(lits)
    lits_ok = [
        (smt.eq(x, smt.int_const(3)), True),
        (smt.le(x, smt.int_const(5)), True),
    ]
    assert arith.check_arith(lits_ok)


def test_negated_atoms():
    # not (x <= y) and not (y < x) is inconsistent
    lits = [(smt.le(x, y), False), (smt.lt(y, x), False)]
    assert not arith.check_arith(lits)


def test_disequality_split():
    # x != (x + y) - y is inconsistent once linearised; x != y alone is fine
    same_value = smt.sub(smt.add(x, y), y)
    assert not arith.check_arith([(smt.eq(x, same_value), False)])
    assert arith.check_arith([(smt.eq(x, y), False)])


def test_integer_tightening_on_strict_bounds():
    # x < y and y < x + 1 has a rational solution but no integer one;
    # tightening strict bounds makes FM refute it.
    lits = [(smt.lt(x, y), True), (smt.lt(y, smt.add(x, smt.int_const(1))), True)]
    assert not arith.check_arith(lits)


def test_extra_equalities_from_euf():
    lits = [(smt.lt(x, y), True)]
    assert not arith.check_arith(lits, extra_equalities=[(x, y)])


def test_nonlinear_terms_do_not_crash():
    length = smt.declare("ar_len", [smt.sorts.ELEM], smt.INT)
    e = smt.var("ar_e", smt.sorts.ELEM)
    lits = [(smt.lt(smt.apply(length, e), smt.int_const(0)), True)]
    # treated as an opaque variable; satisfiable
    assert arith.check_arith(lits)


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.sampled_from(["le", "lt"]),
            st.sampled_from([0, 1, 2]),
            st.sampled_from([0, 1, 2]),
            st.integers(min_value=-3, max_value=3),
        ),
        min_size=1,
        max_size=5,
    )
)
def test_difference_constraints_match_brute_force(specs):
    """x_i - x_j <= c (or <) systems: compare FM against small-domain search."""
    variables = [x, y, z]
    lits = []
    for op, i, j, c in specs:
        lhs = smt.sub(variables[i], variables[j])
        rhs = smt.int_const(c)
        atom = smt.le(lhs, rhs) if op == "le" else smt.lt(lhs, rhs)
        lits.append((atom, True))
    fm_result = arith.check_arith(lits)

    domain = range(-4, 5)
    brute = False
    for vals in itertools.product(domain, repeat=3):
        ok = True
        for op, i, j, c in specs:
            diff = vals[i] - vals[j]
            if op == "le" and not diff <= c:
                ok = False
                break
            if op == "lt" and not diff < c:
                ok = False
                break
        if ok:
            brute = True
            break
    # FM over difference constraints with integer tightening is exact as long
    # as a solution exists within the searched window; refutations must agree.
    if not fm_result:
        assert not brute
    if brute:
        assert fm_result
