"""LazySet (Example 4.4): higher-order HATs — thunks that preserve the invariant.

The LazySet ADT delays insertions behind thunks of type

    unit → [I_LSet(el)] unit [I_LSet(el)]

so both the thunk it receives and the thunk it returns must preserve the
"never insert the same element twice" invariant.  The example verifies the
whole module (including the function-typed parameters and results), shows the
rejection of a lazy insert that skips the membership check, and then forces a
chain of thunks dynamically.

Run with:  python examples/lazyset_thunks.py
"""

from repro.sfa.events import Trace
from repro.suite.lazyset_set import LAZY_INSERT_BAD, lazyset_set


def main() -> None:
    bench = lazyset_set()
    print(f"benchmark: {bench.key}")
    print(f"invariant: {bench.invariant_description}")
    print(f"  I_LSet = {bench.invariant}\n")

    checker = bench.make_checker()
    for method in bench.specs:
        result = bench.verify_method(method, checker)
        status = "VERIFIED" if result.verified else f"REJECTED ({result.error})"
        print(f"{method:>12}: {status}")

    rejected = bench.verify_negative_variant("lazy_insert_bad", checker)
    print(f"\nlazy_insert_bad (no membership check): verified = {rejected.verified} (expected False)")

    # dynamic part: build a chain of lazy inserts and force it
    interpreter = bench.interpreter()
    module = bench.module(interpreter)
    trace = Trace()
    thunk = interpreter.call(module["new_thunk"], [()], trace)
    thunk_value, trace = thunk.value, thunk.trace
    for element in ["a", "b", "a"]:
        outcome = interpreter.call(module["lazy_insert"], [element, thunk_value], trace)
        thunk_value, trace = outcome.value, outcome.trace
    print(f"\ntrace before forcing: {trace}")
    forced = interpreter.call(module["force"], [thunk_value], trace)
    print(f"trace after forcing:  {forced.trace}")
    inserts = [e.args[0] for e in forced.trace if e.op == "insert"]
    print(f"inserted elements (each at most once): {inserts}")


if __name__ == "__main__":
    main()
