"""Differential tests: guided vs exhaustive minterm enumeration.

The solver-guided (AllSAT/blocking-clause) enumeration strategy must be
observationally identical to the original per-candidate exhaustive walk:

* :func:`build_alphabets` yields the same context cases and the same minterms
  per operator, in the same order;
* :class:`InclusionChecker` returns identical :class:`InclusionResult`s
  (including counterexample traces);
* whole-benchmark verification agrees on every suite row.

The corpus is the suite's benchmarks plus several hundred randomly generated
literal sets and random symbolic automata (seeded ``random`` — reproducible,
no extra dependencies).
"""

import random

import pytest

from repro import smt
from repro.smt import sorts
from repro.sfa import symbolic as S
from repro.sfa.alphabet import build_alphabets
from repro.sfa.inclusion import InclusionChecker
from repro.sfa.signatures import OperatorRegistry
from repro.suite.registry import all_benchmarks

# ---------------------------------------------------------------------------
# Random-case generators (plain `random`, deterministic seeds)
# ---------------------------------------------------------------------------

_PREDICATES = [
    smt.declare(f"diff_p{i}", [sorts.ELEM], smt.BOOL, method_predicate=True)
    for i in range(3)
]
_CTX_VARS = [smt.var(f"diff_c{i}", sorts.ELEM) for i in range(3)]
_INT_VARS = [smt.var(f"diff_n{i}", smt.INT) for i in range(3)]


def _random_registry(rng: random.Random) -> OperatorRegistry:
    registry = OperatorRegistry()
    registry.declare("op_a", [("x", sorts.ELEM)], sorts.UNIT)
    if rng.random() < 0.5:
        registry.declare("op_b", [("y", sorts.ELEM), ("m", smt.INT)], smt.BOOL)
    return registry


def _random_context_literal(rng: random.Random) -> smt.Term:
    kind = rng.randrange(3)
    if kind == 0:
        return smt.apply(rng.choice(_PREDICATES), rng.choice(_CTX_VARS))
    if kind == 1:
        return smt.lt(rng.choice(_INT_VARS), rng.choice(_INT_VARS))
    return smt.eq(rng.choice(_CTX_VARS), rng.choice(_CTX_VARS))


def _random_event_literal(rng: random.Random, signature) -> smt.Term:
    formals = [f for f in signature.formals if f.sort in (smt.INT, sorts.ELEM)]
    if not formals:
        return smt.TRUE
    formal = rng.choice(formals)
    if formal.sort == smt.INT:
        if rng.random() < 0.5:
            return smt.lt(formal, rng.choice(_INT_VARS))
        return smt.le(rng.choice(_INT_VARS), formal)
    if rng.random() < 0.5:
        return smt.apply(rng.choice(_PREDICATES), formal)
    return smt.eq(formal, rng.choice(_CTX_VARS))


def _random_literal_case(rng: random.Random):
    """A random registry plus formulas inducing random literal sets."""
    registry = _random_registry(rng)
    parts = []
    for signature in registry:
        for _ in range(rng.randrange(3)):
            literal = _random_event_literal(rng, signature)
            if literal.is_true or literal.is_false:
                continue
            parts.append(S.eventually(S.event(signature, literal)))
    for _ in range(rng.randrange(3)):
        literal = _random_context_literal(rng)
        if literal.is_true or literal.is_false:
            continue
        parts.append(S.guard(literal))
    formula = S.or_(*parts) if parts else S.TOP
    hypotheses = []
    if rng.random() < 0.3:
        hypothesis = _random_context_literal(rng)
        if not (hypothesis.is_true or hypothesis.is_false):
            hypotheses.append(hypothesis)
    return registry, hypotheses, formula


def _random_sfa(rng: random.Random, registry, depth: int = 3) -> S.Sfa:
    if depth == 0 or rng.random() < 0.3:
        choice = rng.randrange(4)
        if choice == 0:
            return S.TOP
        if choice == 1:
            signature = rng.choice(list(registry))
            literal = _random_event_literal(rng, signature)
            return S.event(signature, literal)
        if choice == 2:
            return S.guard(_random_context_literal(rng))
        return S.event(rng.choice(list(registry)), smt.TRUE)
    combinator = rng.randrange(5)
    if combinator == 0:
        return S.and_(_random_sfa(rng, registry, depth - 1), _random_sfa(rng, registry, depth - 1))
    if combinator == 1:
        return S.or_(_random_sfa(rng, registry, depth - 1), _random_sfa(rng, registry, depth - 1))
    if combinator == 2:
        return S.not_(_random_sfa(rng, registry, depth - 1))
    if combinator == 3:
        return S.next_(_random_sfa(rng, registry, depth - 1))
    return S.concat(_random_sfa(rng, registry, depth - 1), _random_sfa(rng, registry, depth - 1))


# ---------------------------------------------------------------------------
# Alphabet-level differential: ≥ 200 random literal-set cases
# ---------------------------------------------------------------------------


def _build(strategy: str, registry, hypotheses, formulas):
    solver = smt.Solver()
    return build_alphabets(solver, hypotheses, formulas, registry, strategy=strategy)


@pytest.mark.parametrize("seed", range(250))
def test_random_literal_sets_agree(seed):
    rng = random.Random(1_000_003 * (seed + 1))
    registry, hypotheses, formula = _random_literal_case(rng)
    guided = _build("guided", registry, hypotheses, [formula])
    exhaustive = _build("exhaustive", registry, hypotheses, [formula])
    assert guided == exhaustive


@pytest.mark.parametrize("seed", range(60))
def test_random_inclusions_agree(seed):
    rng = random.Random(7_777_777 + seed)
    registry = _random_registry(rng)
    lhs = _random_sfa(rng, registry)
    rhs = _random_sfa(rng, registry)
    hypotheses = []
    if rng.random() < 0.3:
        hypothesis = _random_context_literal(rng)
        if not (hypothesis.is_true or hypothesis.is_false):
            hypotheses.append(hypothesis)

    results = {}
    for strategy in ("guided", "exhaustive"):
        checker = InclusionChecker(smt.Solver(), registry, strategy=strategy)
        results[strategy] = checker.check_detailed(hypotheses, lhs, rhs)
    assert results["guided"].included == results["exhaustive"].included
    assert results["guided"].counterexample == results["exhaustive"].counterexample


# ---------------------------------------------------------------------------
# Suite-benchmark differential
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "key", [bench.key for bench in all_benchmarks(include_slow=False)]
)
def test_suite_alphabets_agree(key):
    bench = next(b for b in all_benchmarks(include_slow=False) if b.key == key)

    def build(strategy):
        solver = smt.Solver(axioms=list(bench.library.axioms))
        return build_alphabets(
            solver,
            [smt.TRUE],
            [bench.invariant],
            bench.library.operators,
            max_literals=max(24, bench.max_literals),
            strategy=strategy,
        )

    guided = build("guided")
    exhaustive = build("exhaustive")
    assert guided == exhaustive
    # same context cases, same minterms per operator
    for alphabet_g, alphabet_e in zip(guided, exhaustive):
        assert alphabet_g.context_case == alphabet_e.context_case
        assert alphabet_g.characters == alphabet_e.characters


@pytest.mark.parametrize(
    "key", [bench.key for bench in all_benchmarks(include_slow=False)]
)
def test_suite_verification_agrees(key):
    from repro.typecheck.checker import CheckerConfig

    bench = next(b for b in all_benchmarks(include_slow=False) if b.key == key)
    outcomes = {}
    for strategy in ("guided", "exhaustive"):
        checker = bench.make_checker(CheckerConfig(enumeration_strategy=strategy))
        stats = bench.verify_all(checker)
        outcomes[strategy] = [
            (result.method, result.verified, result.error)
            for result in stats.method_results
        ]
    assert outcomes["guided"] == outcomes["exhaustive"]
