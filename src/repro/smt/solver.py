"""The top-level SMT solver facade.

Implements the classic *lazy SMT* architecture: the input formula (plus
ground instances of the method-predicate axioms) is Tseitin-encoded and
handed to the DPLL SAT core; every propositional model is checked against
the EUF + linear-arithmetic theory combination; theory conflicts are turned
into blocking clauses until either a theory-consistent model is found (SAT)
or the propositional abstraction becomes unsatisfiable (UNSAT).

The :class:`Solver` also exposes the two derived queries the type checker
needs — validity and implication — and records statistics (#SAT queries and
cumulative time) which feed the evaluation tables.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from . import terms
from .axioms import Axiom, instantiate
from .cnf import CnfBuilder
from .sat import SatSolver
from .terms import Term
from .theory import check_theory


@dataclass
class SolverStats:
    """Counters mirroring the #SAT / t_SAT columns of the paper's tables."""

    queries: int = 0
    sat_results: int = 0
    unsat_results: int = 0
    theory_conflicts: int = 0
    time_seconds: float = 0.0

    def merge(self, other: "SolverStats") -> None:
        self.queries += other.queries
        self.sat_results += other.sat_results
        self.unsat_results += other.unsat_results
        self.theory_conflicts += other.theory_conflicts
        self.time_seconds += other.time_seconds

    def snapshot(self) -> "SolverStats":
        return SolverStats(
            queries=self.queries,
            sat_results=self.sat_results,
            unsat_results=self.unsat_results,
            theory_conflicts=self.theory_conflicts,
            time_seconds=self.time_seconds,
        )


class SolverError(RuntimeError):
    """Raised when the lazy loop exceeds its iteration budget."""


class Solver:
    """A reusable solver configured with a fixed set of background axioms."""

    def __init__(
        self,
        axioms: Sequence[Axiom] = (),
        *,
        instantiation_rounds: int = 2,
        max_lazy_iterations: int = 20000,
    ) -> None:
        self.axioms = tuple(axioms)
        self.instantiation_rounds = instantiation_rounds
        self.max_lazy_iterations = max_lazy_iterations
        self.stats = SolverStats()

    # -- primitive queries ----------------------------------------------------------
    def is_satisfiable(self, formula: Term, *, extra: Iterable[Term] = ()) -> bool:
        """Is ``formula`` (conjoined with ``extra``) satisfiable modulo the axioms?"""
        start = time.perf_counter()
        self.stats.queries += 1
        goal = terms.and_(formula, *extra)
        result = self._check(goal)
        self.stats.time_seconds += time.perf_counter() - start
        if result:
            self.stats.sat_results += 1
        else:
            self.stats.unsat_results += 1
        return result

    def is_valid(self, formula: Term, *, hypotheses: Iterable[Term] = ()) -> bool:
        """Is ``hypotheses ==> formula`` valid modulo the axioms?"""
        negated = terms.and_(*hypotheses, terms.not_(formula))
        return not self.is_satisfiable(negated)

    def implies(self, hypotheses: Iterable[Term], conclusion: Term) -> bool:
        return self.is_valid(conclusion, hypotheses=hypotheses)

    # -- the lazy SMT loop ------------------------------------------------------------
    def _check(self, goal: Term) -> bool:
        if goal.is_false:
            return False
        instances = instantiate(
            self.axioms, [goal], rounds=self.instantiation_rounds
        )
        builder = CnfBuilder()
        builder.assert_formula(goal)
        for instance in instances:
            builder.assert_formula(instance)

        sat = SatSolver()
        sat.add_clauses(builder.clauses)
        sat.ensure_vars(builder.num_vars)
        known_clause_count = len(builder.clauses)

        for _ in range(self.max_lazy_iterations):
            model = sat.solve()
            if model is None:
                return False
            literals = [
                (atom, model[var])
                for var, atom in builder.atom_of_var.items()
                if var in model
            ]
            theory = check_theory(literals)
            if theory.consistent:
                return True
            self.stats.theory_conflicts += 1
            builder.block_assignment(theory.conflict)
            for clause in builder.clauses[known_clause_count:]:
                sat.add_clause(clause)
            known_clause_count = len(builder.clauses)
        raise SolverError("lazy SMT loop exceeded its iteration budget")


_DEFAULT_SOLVER: Optional[Solver] = None


def default_solver() -> Solver:
    """A process-wide solver with no background axioms (useful in tests)."""
    global _DEFAULT_SOLVER
    if _DEFAULT_SOLVER is None:
        _DEFAULT_SOLVER = Solver()
    return _DEFAULT_SOLVER


def is_satisfiable(formula: Term) -> bool:
    return default_solver().is_satisfiable(formula)


def is_valid(formula: Term) -> bool:
    return default_solver().is_valid(formula)
