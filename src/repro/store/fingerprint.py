"""Stable content fingerprints for the persistent obligation store.

The in-memory identities used by the engine's dedupe (``term_id`` /
``sfa_id``) are interning-order dependent: the same formula built in another
process — or merely later in the same process — receives different ids, and
the smart constructors order the children of commutative connectives *by*
those ids.  Anything persisted to disk therefore needs a digest computed from
structure alone, with commutative connectives hashed order-insensitively so
that ``and(a, b)`` and ``and(b, a)`` coincide no matter which interning order
produced them (the ``eq`` constructor likewise orients its operands by id, so
equalities are hashed symmetrically too).

Digests are memoised by object id, which is sound because hash-consed terms
and formulas are immortal (the interning caches hold strong references).
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Optional, Sequence, Union

from ..sfa import symbolic
from ..sfa.alphabet import resolve_max_literals
from ..sfa.signatures import EventSignature, OperatorRegistry
from ..sfa.symbolic import Sfa
from ..smt import terms
from ..smt.axioms import Axiom
from ..smt.terms import Term

#: Bump when the digest definition (not the store layout) changes: every old
#: fingerprint becomes unreachable, which is exactly what a semantics change
#: to the hashing must do.
FINGERPRINT_VERSION = "fp1"

#: Term kinds whose operands are semantically unordered: their child digests
#: are sorted before hashing (the smart constructors order them by interning
#: id, which is not stable across processes).
_COMMUTATIVE_TERM_KINDS = frozenset({terms.AND, terms.OR, terms.EQ, terms.IFF, terms.ADD})

_COMMUTATIVE_SFA_KINDS = frozenset({symbolic.K_AND, symbolic.K_OR})

_SEP = "\x1f"


def _digest(*parts: str) -> str:
    payload = _SEP.join(parts).encode("utf-8", "backslashreplace")
    return hashlib.sha256(payload).hexdigest()[:32]


# ---------------------------------------------------------------------------
# Terms
# ---------------------------------------------------------------------------

_TERM_MEMO: dict[int, str] = {}


def term_digest(term: Term) -> str:
    """A structural content address for a hash-consed term."""
    cached = _TERM_MEMO.get(term.term_id)
    if cached is not None:
        return cached
    kind = term.kind
    if kind in (terms.VAR, terms.DATA_CONST):
        name, sort_name = term.payload
        result = _digest(kind, name, sort_name)
    elif kind in (terms.INT_CONST, terms.BOOL_CONST):
        result = _digest(kind, repr(term.payload))
    else:
        children = [term_digest(c) for c in term.children]
        if kind in _COMMUTATIVE_TERM_KINDS:
            children.sort()
        if kind == terms.APP:
            decl = term.payload
            head = _digest(
                "decl",
                decl.name,
                *(s.name for s in decl.arg_sorts),
                decl.result_sort.name,
            )
        elif kind == terms.FORALL:
            head = _digest("binders", *sorted(term_digest(v) for v in term.payload))
        elif kind == terms.MUL:
            head = repr(term.payload)
        else:
            head = ""
        result = _digest(kind, term.sort.name, head, *children)
    _TERM_MEMO[term.term_id] = result
    return result


# ---------------------------------------------------------------------------
# Symbolic automata
# ---------------------------------------------------------------------------

_SFA_MEMO: dict[int, str] = {}


def signature_digest(signature: EventSignature) -> str:
    return _digest(
        "sig",
        signature.name,
        *signature.arg_names,
        *(s.name for s in signature.arg_sorts),
        signature.result_sort.name,
    )


def sfa_digest(formula: Sfa) -> str:
    """A structural content address for a hash-consed SFA formula."""
    cached = _SFA_MEMO.get(formula.sfa_id)
    if cached is not None:
        return cached
    kind = formula.kind
    if kind in (symbolic.K_TOP, symbolic.K_BOT):
        result = _digest(kind)
    elif kind == symbolic.K_EVENT:
        signature, phi = formula.payload
        result = _digest(kind, signature_digest(signature), term_digest(phi))
    elif kind == symbolic.K_GUARD:
        result = _digest(kind, term_digest(formula.payload))
    else:
        children = [sfa_digest(c) for c in formula.children]
        if kind in _COMMUTATIVE_SFA_KINDS:
            children.sort()
        result = _digest(kind, *children)
    _SFA_MEMO[formula.sfa_id] = result
    return result


# ---------------------------------------------------------------------------
# Obligations
# ---------------------------------------------------------------------------


def obligation_digest(obligation) -> str:
    """The persistent counterpart of ``Obligation.fingerprint()``.

    Mirrors its semantics exactly — hypotheses as an unordered set plus the
    two automata; kind and provenance deliberately excluded, because
    isomorphic queries share one verdict no matter where they were emitted.
    Memoised on the (frozen) obligation itself: with a store attached, the
    cost-model scheduler and the store lookup both need the digest in one
    batch.
    """
    cached = getattr(obligation, "_digest", None)
    if cached is not None:
        return cached
    result = _digest(
        FINGERPRINT_VERSION,
        "obligation",
        *sorted(term_digest(h) for h in obligation.hypotheses),
        sfa_digest(obligation.lhs),
        sfa_digest(obligation.rhs),
    )
    try:
        object.__setattr__(obligation, "_digest", result)
    except AttributeError:  # pragma: no cover - slotted/odd obligation stand-ins
        pass
    return result


def shard_of(digest: str, shards: int) -> int:
    """Deterministic shard assignment by fingerprint hash."""
    return int(digest[:12], 16) % shards


# ---------------------------------------------------------------------------
# Specifications and libraries (the dependency-index keys)
# ---------------------------------------------------------------------------


def type_digest(ty) -> str:
    """Content address for the refinement-type layer (spec parameter types)."""
    from ..types import rtypes

    if isinstance(ty, rtypes.RefinementType):
        return _digest("ref", ty.sort.name, term_digest(ty.qualifier))
    if isinstance(ty, rtypes.HatType):
        return _digest(
            "hat",
            sfa_digest(ty.precondition),
            type_digest(ty.result),
            sfa_digest(ty.postcondition),
        )
    if isinstance(ty, rtypes.Intersection):
        return _digest("inter", *(type_digest(case) for case in ty.cases))
    if isinstance(ty, rtypes.FunType):
        return _digest("fun", ty.param_name, type_digest(ty.param_type), type_digest(ty.result))
    if isinstance(ty, rtypes.GhostArrow):
        return _digest("ghost-arrow", ty.name, ty.sort.name, type_digest(ty.body))
    raise TypeError(f"cannot fingerprint type {ty!r}")


#: Identity-keyed digest memos.  Spec and library objects are immutable in
#: practice and re-digested constantly — once per method check, once per
#: checker construction — so their digests are cached per *object*.  The memo
#: holds a strong reference to the keyed object, which is what makes ``id()``
#: a sound key (the id cannot be recycled while the entry lives); the caps
#: below just bound a pathological churn of throwaway objects.
_SPEC_DIGEST_MEMO: dict[int, tuple[object, str]] = {}
#: (id(operators), id(axioms)) -> (operators, axioms, constants key, digest)
_LIBRARY_DIGEST_MEMO: dict[tuple[int, int], tuple] = {}
_IDENTITY_MEMO_CAP = 4096


def spec_digest(spec) -> str:
    """Content address of one method's HAT signature (dependency-index key)."""
    cached = _SPEC_DIGEST_MEMO.get(id(spec))
    if cached is not None and cached[0] is spec:
        return cached[1]
    parts = [FINGERPRINT_VERSION, "spec", spec.name]
    for ghost_name, ghost_sort in spec.ghosts:
        parts.append(_digest("ghost", ghost_name, ghost_sort.name))
    for param_name, param_type in spec.params:
        parts.append(_digest("param", param_name, type_digest(param_type)))
    parts.append(sfa_digest(spec.precondition))
    parts.append(type_digest(spec.result))
    parts.append(sfa_digest(spec.postcondition))
    result = _digest(*parts)
    if len(_SPEC_DIGEST_MEMO) >= _IDENTITY_MEMO_CAP:
        _SPEC_DIGEST_MEMO.clear()
    _SPEC_DIGEST_MEMO[id(spec)] = (spec, result)
    return result


def axiom_digest(ax: Axiom) -> str:
    return _digest(
        "axiom",
        ax.name,
        *sorted(term_digest(v) for v in ax.variables),
        term_digest(ax.body),
    )


def library_digest(
    operators: OperatorRegistry,
    axioms: Sequence[Axiom] = (),
    constants: Optional[dict] = None,
) -> str:
    """Content address of a backing library's logical surface.

    Covers the operator signatures (the SFA alphabet), the FOL axioms of the
    pure helpers, and the named constants — everything an obligation's meaning
    can depend on beyond its own formulas.

    Memoised per ``(operators, axioms)`` object identity (constants are
    compared by their interned term ids): one checker run digests the same
    library once, no matter how many per-method engines and fingerprints sit
    on top of it.
    """
    constants_key = tuple(
        sorted((name, term.term_id) for name, term in (constants or {}).items())
    )
    memo_key = (id(operators), id(axioms))
    cached = _LIBRARY_DIGEST_MEMO.get(memo_key)
    if cached is not None:
        pinned_operators, pinned_axioms, pinned_constants, digest = cached
        if pinned_operators is operators and pinned_axioms is axioms and (
            pinned_constants == constants_key
        ):
            return digest
    parts = [FINGERPRINT_VERSION, "library"]
    parts.extend(sorted(signature_digest(sig) for sig in operators))
    parts.extend(sorted(axiom_digest(ax) for ax in axioms))
    for name in sorted(constants or {}):
        parts.append(_digest("const", name, term_digest(constants[name])))
    result = _digest(*parts)
    if len(_LIBRARY_DIGEST_MEMO) >= _IDENTITY_MEMO_CAP:
        _LIBRARY_DIGEST_MEMO.clear()
    _LIBRARY_DIGEST_MEMO[memo_key] = (operators, axioms, constants_key, result)
    return result


def environment_fingerprint(
    operators: OperatorRegistry,
    axioms: Sequence[Axiom] = (),
    *,
    minimize: bool = False,
    filter_unsat_minterms: bool = True,
    max_literals: Optional[int] = None,
    strategy: str = "guided",
    discharge: str = "lazy",
    backend: str = "dpll",
    library: Optional[str] = None,
) -> str:
    """The *semantic environment* a verdict (and its counters) depends on.

    A store entry is only reusable under the exact same discharge semantics:
    the library's logical surface plus every checker/solver knob that steers
    the alphabet transformation or the inclusion search.  The solver backend
    participates too: verdicts agree across backends, but the recorded
    per-obligation counters (#SAT, #Confl) are backend-internal, so a warm
    start under ``cdcl`` must never replay numbers a ``dpll`` discharge
    produced.  Worker count and shard assignment are deliberately absent —
    the determinism contract says they never change any obligation-derived
    counter.  Scheduling order and the cross-obligation memos are absent for
    the same reason, and the recorded *cost* records are advisory
    measurements, so they live outside the fingerprint too.

    ``library`` lets a caller that already holds the library's content digest
    (the checker computes it once per run for the dependency index) pass it
    in instead of re-walking the operator/axiom/constant surface per method
    engine.
    """
    return _digest(
        FINGERPRINT_VERSION,
        "env",
        library if library is not None else library_digest(operators, axioms),
        repr(bool(minimize)),
        repr(bool(filter_unsat_minterms)),
        repr(resolve_max_literals(max_literals, strategy, filter_unsat_minterms)),
        strategy,
        discharge,
        backend,
    )
