"""The bidirectional HAT type checker (Sec. 5.2, Fig. 15).

``Checker.check_method`` verifies one ADT method against its
:class:`~repro.typecheck.spec.MethodSpec`.  The algorithm walks the MNF body
while maintaining the *current context automaton* ``A`` — the SFA describing
every trace that can have happened up to this program point — exactly as the
algorithmic rules do:

* ``ChkEOpApp``: a library call looks up Δ, checks the arguments, verifies
  that the context is covered by the operator's precondition cases, and
  continues once per intersection case with ``(A ; □⟨⊤⟩) ∧ A_i'`` as the new
  context automaton;
* ``ChkApp``: calls to other ADT methods (and thunks) use their declared HATs
  the same way;
* ``ChkMatch``: each arm is checked under the corresponding path condition,
  and arms whose contexts are logically infeasible are discharged vacuously
  (the subsumption to an empty denotation);
* at every leaf (``ChkSub`` + ``TEPur``): the returned value is checked
  against the result refinement type with an SMT query and the accumulated
  context automaton is checked for inclusion in the postcondition automaton —
  for representation invariants this is the ``L(I ; new events) ⊆ L(I)``
  obligation of Sec. 2.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence, Union

from .. import smt
from ..obs import trace
from ..obs.logs import get_logger
from ..smt.sorts import BOOL, INT, Sort, UNIT
from ..engine import ObligationEngine, ObligationSet
from ..lang import ast
from ..sfa import symbolic
from ..sfa.alphabet import AlphabetError, AlphabetMemo
from ..sfa.derivatives import CompilationError, DerivativeCache
from ..smt.solver import SolverError
from ..sfa.inclusion import InclusionChecker
from ..sfa.signatures import OperatorRegistry
from ..sfa.symbolic import Sfa
from ..store.fingerprint import library_digest, spec_digest
from ..store.obligation_store import ObligationStore, StoreContext
from ..types.context import BuiltinContext, PureOpContext, TypingContext, TypingError
from ..types.rtypes import (
    FunType,
    GhostArrow,
    HatType,
    Intersection,
    RefinementType,
    Type,
    base,
    cases_of,
    function_signature,
    nu,
    singleton,
)
from ..types.subtyping import SubtypingEngine
from .abduction import abduce_ghosts
from .spec import MethodSpec
from .stats import MethodResult, MethodStats

logger = get_logger("checker")


class CheckFailure(Exception):
    """Raised internally when a proof obligation fails; reported in the result."""


def _default_discharge() -> str:
    return os.environ.get("REPRO_DISCHARGE") or "lazy"


def _default_workers() -> int:
    return int(os.environ.get("REPRO_WORKERS") or "1")


def _default_backend() -> str:
    return os.environ.get("REPRO_BACKEND") or "dpll"


def _default_schedule() -> str:
    return os.environ.get("REPRO_SCHEDULE") or "auto"


def _default_memo() -> bool:
    return os.environ.get("REPRO_MEMO", "1") != "0"


def _default_store_backend() -> str:
    return os.environ.get("REPRO_STORE_BACKEND") or "auto"


@dataclass
class CheckerConfig:
    """Tunable knobs (mostly used by the ablation benchmarks)."""

    minimize_automata: bool = False
    filter_unsat_minterms: bool = True
    prune_infeasible_branches: bool = True
    #: None = a strategy-appropriate default (24 guided / 14 exhaustive)
    max_literals: Optional[int] = None
    #: how the alphabet transformation enumerates satisfiable combinations:
    #: "guided" (solver-guided AllSAT) or "exhaustive" (per-candidate queries)
    enumeration_strategy: str = "guided"
    #: how leaf inclusions are decided: "lazy" (on-the-fly derivative product)
    #: or "compiled" (materialise both DFAs — the reference oracle).
    #: Overridable via the REPRO_DISCHARGE environment variable (CI matrix).
    discharge: str = field(default_factory=_default_discharge)
    #: which SAT core answers the lazy SMT loop's queries: "dpll" (the
    #: original reference), "cdcl" (clause learning + VSIDS + restarts) or
    #: "z3" (external, when installed).  Overridable via REPRO_BACKEND.
    #: Verdicts and every obligation-derived counter are backend-independent;
    #: only #SAT/#Confl-style solver internals may differ.
    backend: str = field(default_factory=_default_backend)
    #: process-pool width for obligation discharge (1 = in-process serial).
    #: Overridable via the REPRO_WORKERS environment variable (CI matrix).
    workers: int = field(default_factory=_default_workers)
    #: how cold obligations are ordered for discharge: "auto" (historical
    #: store cost when available — LPT under a pool, cheapest-first serially —
    #: falling back to the syntactic estimate), or the explicit "cost"/"lpt"/
    #: "syntactic" policies used by ablations and the determinism suite.
    #: Ordering is advisory: it can never change a verdict or a counter.
    #: Overridable via the REPRO_SCHEDULE environment variable.
    schedule: str = field(default_factory=_default_schedule)
    #: cross-obligation reuse of alphabet/minterm constructions and lazy
    #: derivative steps.  Alphabets are always built hermetically (a fresh
    #: solver per literal-set key) with their counter bill recorded and
    #: replayed on reuse, so toggling the memo changes wall-clock time only —
    #: every deterministic table is byte-identical either way.  Overridable
    #: via REPRO_MEMO=0 (the ablation/acceptance toggle).
    cross_obligation_memo: bool = field(default_factory=_default_memo)
    #: ``(index, count)`` — discharge only the obligations whose fingerprint
    #: hashes into this shard (set by the sharded suite runner; the resulting
    #: report is only meaningful for warming an obligation store)
    shard: Optional[tuple[int, int]] = None
    #: which persistence backend an obligation store opened for this run
    #: uses: "auto" (infer from the store path — ``.db``/``sqlite:`` means
    #: sqlite, a directory means jsonl), "jsonl" or "sqlite".  Purely a
    #: transport choice: verdicts, counters and every deterministic table
    #: are identical across backends (the store suite runs parametrised over
    #: both).  Overridable via the REPRO_STORE_BACKEND environment variable.
    store_backend: str = field(default_factory=_default_store_backend)
    #: dispatch-worker mode: discharge only obligations whose digest is in
    #: this set, vacuously skipping the rest (a queue lease's slice — the
    #: pull-based counterpart of ``shard``)
    only_digests: Optional[frozenset] = None
    #: dispatch-coordinator mode: report every store miss to this callable —
    #: ``sink(env_fp, digest, cost_hint, estimate)`` — instead of discharging
    #: it locally.  Never set on a config that crosses a fork (the sharded
    #: runner pickles configs; closures don't travel).
    collect_sink: Optional[object] = None


class Checker:
    """Verifies ADT methods implemented over a stateful library."""

    def __init__(
        self,
        *,
        operators: OperatorRegistry,
        delta: BuiltinContext,
        pure_ops: PureOpContext,
        axioms: Sequence[smt.Axiom] = (),
        constants: Mapping[str, smt.Term] | None = None,
        config: CheckerConfig | None = None,
        store: ObligationStore | None = None,
        store_scope: str = "",
    ) -> None:
        self.operators = operators
        self.delta = delta
        self.pure_ops = pure_ops
        self.constants = dict(constants or {})
        self.config = config or CheckerConfig()
        self.store = store
        self.store_scope = store_scope or "adhoc"
        #: dependency-index key for everything obligations of this checker
        #: were derived from besides the method specs themselves
        self._library_digest = (
            library_digest(operators, axioms, self.constants) if store is not None else ""
        )
        self.solver = smt.Solver(axioms=list(axioms), backend=self.config.backend)
        # The cross-obligation reuse layers, shared by the inline checker and
        # every (possibly forked) per-obligation checker: alphabet/minterm
        # constructions are built hermetically per literal-set key and their
        # counter bill replayed on reuse; derivative steps are pure, so their
        # memo is plain reuse.  ``cross_obligation_memo=False`` disables the
        # *reuse* only — constructions stay hermetic, counters stay put.
        self.alphabet_memo = AlphabetMemo(
            axioms=tuple(axioms),
            backend=self.config.backend,
            enabled=self.config.cross_obligation_memo,
        )
        self.derivative_cache = (
            DerivativeCache() if self.config.cross_obligation_memo else None
        )
        # Inline queries that steer the walk (HAT subtyping, ghost abduction)
        # still go through this shared checker; deferred leaf obligations are
        # discharged by the obligation engine below.
        self.inclusion = InclusionChecker(
            self.solver,
            operators,
            minimize=self.config.minimize_automata,
            filter_unsat_minterms=self.config.filter_unsat_minterms,
            max_literals=self.config.max_literals,
            strategy=self.config.enumeration_strategy,
            discharge=self.config.discharge,
            alphabet_memo=self.alphabet_memo,
            derivative_cache=self.derivative_cache,
        )
        self.engine = SubtypingEngine(self.solver, self.inclusion)
        self.obligation_engine = ObligationEngine(
            operators,
            axioms,
            minimize=self.config.minimize_automata,
            filter_unsat_minterms=self.config.filter_unsat_minterms,
            max_literals=self.config.max_literals,
            strategy=self.config.enumeration_strategy,
            discharge=self.config.discharge,
            backend=self.config.backend,
            workers=self.config.workers,
            # per-obligation solvers read the inline solver's caches (read-only)
            warm_solver=self.solver,
            store=store,
            shard=self.config.shard,
            schedule=self.config.schedule,
            alphabet_memo=self.alphabet_memo,
            derivative_cache=self.derivative_cache,
            only=self.config.only_digests,
            collect=self.config.collect_sink,
            # Deliberately NOT self._library_digest: the dependency record
            # includes the constant table, the environment fingerprint never
            # has (every other store path computes the constants-free digest,
            # and existing stores key on it).  The identity memo on
            # library_digest makes the recomputation free either way.
        )
        self._obligations: Optional[ObligationSet] = None

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------
    def run_diagnostics(self) -> dict:
        """Run-level reuse/batching diagnostics (not per-method counters).

        Cache hit/eviction rates and the batch grouper's per-group records —
        the numbers ``repro bench`` surfaces in its aggregate block.  All of
        it is reuse bookkeeping: none of these values feeds a deterministic
        table.
        """
        derivative = self.derivative_cache
        memo = self.alphabet_memo
        engine = self.obligation_engine
        return {
            "caches": {
                "derivative_cache_hits": derivative.hits if derivative else 0,
                "derivative_cache_misses": derivative.misses if derivative else 0,
                "derivative_cache_evictions": derivative.evictions if derivative else 0,
                "alphabet_memo_builds": memo.builds,
                # the memo object's own hit counter ("replays" — a hit
                # replays the recorded bill), distinct from the per-method
                # alphabet_memo_hits attribution summed into the tables
                "alphabet_memo_replays": memo.hits,
                "alphabet_memo_evictions": memo.evictions,
            },
            "batch_groups": [dict(record) for record in engine.batch_group_log],
            "engine": engine.stats.as_dict(),
        }

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def check_method(
        self,
        definition: ast.FunctionDef,
        spec: MethodSpec,
        module_specs: Mapping[str, MethodSpec] | None = None,
    ) -> MethodResult:
        """Verify ``definition`` against ``spec``.

        ``module_specs`` provides HAT signatures for the other methods of the
        same module (including ``definition`` itself when it is recursive).
        """
        with trace.span(
            "method", cat="method", scope=self.store_scope or "", method=spec.name
        ):
            result = self._check_method(definition, spec, module_specs)
        logger.debug(
            "%s.%s: %s",
            self.store_scope or "?",
            spec.name,
            "verified" if result.verified else f"failed ({result.error})",
        )
        return result

    def _check_method(
        self,
        definition: ast.FunctionDef,
        spec: MethodSpec,
        module_specs: Mapping[str, MethodSpec] | None = None,
    ) -> MethodResult:
        start = time.perf_counter()
        solver_before = self.solver.stats.snapshot()
        inclusion_before = self.inclusion.stats.snapshot()
        engine_before = self.obligation_engine.stats.snapshot()

        store_context: Optional[StoreContext] = None
        invalidated = 0
        if self.store is not None:
            # digest the spec as *declared* (before renaming its parameters to
            # this implementation's): known-bad variants rename parameters, and
            # an alpha-renaming must not read as a spec edit and ping-pong the
            # invalidation between a method and its negative variant
            digest = spec_digest(spec)
            invalidated = self.store.invalidate_stale(
                self.store_scope, spec.name, digest, self._library_digest
            )
            store_context = StoreContext(
                scope=self.store_scope,
                method=spec.name,
                spec_digest=digest,
                library_digest=self._library_digest,
            )
        spec = spec.rename_params([name for name, _ in definition.params])
        self._module_specs = dict(module_specs or {})
        self._module_specs.setdefault(spec.name, spec)
        self._module_specs.setdefault(definition.name, spec)

        gamma = TypingContext()
        for ghost_name, ghost_sort in spec.ghosts:
            gamma = gamma.bind(ghost_name, base(ghost_sort))
        for param_name, param_type in spec.params:
            gamma = gamma.bind(param_name, param_type)

        # -- emit: walk the body, collecting obligations instead of deciding them
        self._obligations = ObligationSet(method=spec.name)
        inline_error: Optional[str] = None
        emit_span = trace.span("emit", cat="emit", method=spec.name)
        try:
            with emit_span:
                self._check(
                    gamma, spec.precondition, definition.body, spec.result, spec.postcondition
                )
        except (CheckFailure, TypingError) as exc:
            inline_error = str(exc)
        except (AlphabetError, CompilationError, SolverError) as exc:
            # The inline design stopped at the first failing obligation; with
            # deferral the walk continues past it, so an inline query further
            # down may hit a resource limit on a context that would never
            # have been reached.  Report it as a failed check rather than
            # crashing — if an emitted obligation also failed, that (earlier)
            # failure wins below, matching the old first-failure semantics.
            inline_error = f"resource limit while checking: {exc}"

        # -- schedule + discharge: dedupe, order and decide the collected set;
        # per-worker solver/inclusion counters merge into the shared tables.
        emitted = len(self._obligations)
        outcomes = self.obligation_engine.discharge_all(
            self._obligations,
            solver_stats=self.solver.stats,
            inclusion_stats=self.inclusion.stats,
            store_context=store_context,
        )
        self._obligations = None

        # Inline failures abort the walk, so every emitted obligation precedes
        # them in walk order: the earliest failing obligation (if any) is the
        # same first failure the inline design would have reported.
        failure = min(
            (outcome for outcome in outcomes.values() if outcome.failed),
            key=lambda outcome: outcome.obligation.index,
            default=None,
        )
        error: Optional[str] = None
        counterexample: Optional[list[str]] = None
        if failure is not None:
            if failure.error is not None:
                error = (
                    f"resource limit while discharging "
                    f"{failure.obligation.provenance}: {failure.error}"
                )
            else:
                error = failure.obligation.failure_message
                if failure.counterexample:
                    counterexample = list(failure.counterexample)
                    witness_text = " ; ".join(failure.counterexample)
                    error = f"{error} [counterexample trace: {witness_text}]"
        elif inline_error is not None:
            error = inline_error
        verified = error is None

        solver_after = self.solver.stats
        inclusion_after = self.inclusion.stats
        engine_after = self.obligation_engine.stats
        stats = MethodStats(
            method=spec.name,
            branches=ast.count_branches(definition.body),
            operator_applications=ast.count_operator_applications(definition.body),
            obligations=emitted,
            smt_queries=solver_after.queries - solver_before.queries,
            smt_cache_hits=solver_after.cache_hits - solver_before.cache_hits,
            sat_conflicts=solver_after.sat_conflicts - solver_before.sat_conflicts,
            fa_inclusion_checks=inclusion_after.fa_inclusion_checks - inclusion_before.fa_inclusion_checks,
            dfa_cache_hits=inclusion_after.dfa_cache_hits - inclusion_before.dfa_cache_hits,
            alphabet_builds=inclusion_after.alphabet_builds - inclusion_before.alphabet_builds,
            alphabet_memo_hits=inclusion_after.alphabet_memo_hits
            - inclusion_before.alphabet_memo_hits,
            prod_states=inclusion_after.prod_states - inclusion_before.prod_states,
            states_built=inclusion_after.states_built - inclusion_before.states_built,
            store_hits=engine_after.store_hits - engine_before.store_hits,
            batch_groups=engine_after.batch_groups - engine_before.batch_groups,
            smt_time_seconds=solver_after.time_seconds - solver_before.time_seconds,
            fa_time_seconds=inclusion_after.fa_time_seconds - inclusion_before.fa_time_seconds,
            total_time_seconds=time.perf_counter() - start,
        )
        built = inclusion_after.automata_built - inclusion_before.automata_built
        if built:
            stats.average_fa_size = (
                inclusion_after.total_transitions - inclusion_before.total_transitions
            ) / built
        if self.store is not None:
            self.store.note_method(
                self.store_scope,
                spec.name,
                hits=engine_after.store_hits - engine_before.store_hits,
                misses=engine_after.store_misses - engine_before.store_misses,
                invalidated=invalidated,
            )
            self.store.flush()
        return MethodResult(
            method=spec.name,
            verified=verified,
            error=error,
            counterexample=counterexample,
            stats=stats,
        )

    # ------------------------------------------------------------------
    # Value handling
    # ------------------------------------------------------------------
    def value_term(
        self, gamma: TypingContext, value: ast.Value, expected_sort: Optional[Sort] = None
    ) -> smt.Term:
        """The logical encoding of a value (Fig. 4's value literals)."""
        if isinstance(value, ast.Var):
            return gamma.term_of(value.name)
        if isinstance(value, ast.Const):
            payload = value.value
            if isinstance(payload, bool):
                return smt.bool_const(payload)
            if isinstance(payload, int):
                return smt.int_const(payload)
            if payload == ():
                return smt.data_const("unit", UNIT)
            if isinstance(payload, str):
                if payload in self.constants:
                    return self.constants[payload]
                if expected_sort is None or not expected_sort.is_uninterpreted:
                    raise TypingError(
                        f"cannot determine the sort of string constant {payload!r}; "
                        "declare it in the benchmark's constant table"
                    )
                return smt.data_const(payload, expected_sort)
        raise TypingError(f"value {value!r} has no logical encoding (is it a function?)")

    def value_sort(self, gamma: TypingContext, value: ast.Value) -> Optional[Sort]:
        if isinstance(value, ast.Var):
            ty = gamma.lookup(value.name)
            return ty.sort if isinstance(ty, RefinementType) else None
        if isinstance(value, ast.Const):
            if isinstance(value.value, bool):
                return BOOL
            if isinstance(value.value, int):
                return INT
            if value.value == ():
                return UNIT
            if isinstance(value.value, str) and value.value in self.constants:
                return self.constants[value.value].sort
        return None

    # ------------------------------------------------------------------
    # Pure operator typing
    # ------------------------------------------------------------------
    _COMPARISONS = {"<": smt.lt, "<=": smt.le, ">": smt.gt, ">=": smt.ge}

    def pure_result_type(
        self, gamma: TypingContext, op: str, args: Sequence[ast.Value]
    ) -> RefinementType:
        if op in ("==", "<>"):
            lhs_sort = self.value_sort(gamma, args[0]) or self.value_sort(gamma, args[1])
            terms = [self.value_term(gamma, a, lhs_sort) for a in args]
            relation = smt.eq(terms[0], terms[1])
            if op == "<>":
                relation = smt.not_(relation)
            return RefinementType(BOOL, smt.iff(nu(BOOL), relation))
        if op in self._COMPARISONS:
            terms = [self.value_term(gamma, a, INT) for a in args]
            return RefinementType(BOOL, smt.iff(nu(BOOL), self._COMPARISONS[op](*terms)))
        if op in ("+", "-"):
            terms = [self.value_term(gamma, a, INT) for a in args]
            combined = smt.add(*terms) if op == "+" else smt.sub(*terms)
            return RefinementType(INT, smt.eq(nu(INT), combined))
        if op in ("&&", "||"):
            terms = [self.value_term(gamma, a, BOOL) for a in args]
            combined = smt.and_(*terms) if op == "&&" else smt.or_(*terms)
            return RefinementType(BOOL, smt.iff(nu(BOOL), combined))
        if op == "not":
            term = self.value_term(gamma, args[0], BOOL)
            return RefinementType(BOOL, smt.iff(nu(BOOL), smt.not_(term)))
        spec = self.pure_ops[op]
        terms = [
            self.value_term(gamma, a, sort) for a, sort in zip(args, spec.arg_sorts)
        ]
        return spec.result_type(terms)

    # ------------------------------------------------------------------
    # The bidirectional walk
    # ------------------------------------------------------------------
    def _check(
        self,
        gamma: TypingContext,
        context_automaton: Sfa,
        expr: ast.Expr,
        result_type: Union[RefinementType, FunType],
        postcondition: Sfa,
    ) -> None:
        if self.config.prune_infeasible_branches and gamma.is_infeasible(self.solver):
            return  # the denotation of Γ is empty: the path is dead (vacuous)

        if isinstance(expr, ast.Ret):
            self._check_return(gamma, context_automaton, expr.value, result_type, postcondition)
            return

        if isinstance(expr, ast.LetIn):
            if not isinstance(expr.bound, ast.Ret):
                raise TypingError(
                    "internal error: LetIn with a non-value binding survived desugaring"
                )
            self._check_let_value(gamma, context_automaton, expr, result_type, postcondition)
            return

        if isinstance(expr, ast.LetPure):
            bound_type = self.pure_result_type(gamma, expr.op, expr.args)
            new_gamma = gamma.bind(expr.name, bound_type)
            self._check(new_gamma, context_automaton, expr.body, result_type, postcondition)
            return

        if isinstance(expr, ast.LetOp):
            self._check_effectful_call(gamma, context_automaton, expr, result_type, postcondition)
            return

        if isinstance(expr, ast.LetApp):
            self._check_function_call(gamma, context_automaton, expr, result_type, postcondition)
            return

        if isinstance(expr, ast.Match):
            self._check_match(gamma, context_automaton, expr, result_type, postcondition)
            return

        raise TypingError(f"unsupported computation form {type(expr).__name__}")

    # -- leaves ------------------------------------------------------------------------
    def _check_return(
        self,
        gamma: TypingContext,
        context_automaton: Sfa,
        value: ast.Value,
        result_type: Union[RefinementType, FunType],
        postcondition: Sfa,
    ) -> None:
        if isinstance(result_type, FunType):
            self._check_returned_function(gamma, value, result_type)
        else:
            term = self.value_term(gamma, value, result_type.sort)
            if not self.engine.value_has_type(gamma, term, result_type):
                raise CheckFailure(
                    f"returned value {value!r} does not satisfy the result type {result_type!r}"
                )
        assert self._obligations is not None
        self._obligations.emit(
            "postcondition",
            gamma.hypotheses(),
            context_automaton,
            postcondition,
            provenance=f"{self._obligations.method}: return-site postcondition",
            failure_message=(
                "the accumulated effect context is not included in the postcondition "
                "automaton (the representation invariant may be violated)"
            ),
        )

    def _check_returned_function(
        self, gamma: TypingContext, value: ast.Value, expected: FunType
    ) -> None:
        """Check a returned thunk/closure against a function type."""
        if isinstance(value, ast.Var):
            actual = gamma.lookup(value.name)
            if not isinstance(actual, FunType):
                raise CheckFailure(f"{value.name} is not function-typed")
            if not self._funtype_subtype(gamma, actual, expected):
                raise CheckFailure(
                    f"function-typed value {value.name} does not match {expected!r}"
                )
            return
        if isinstance(value, ast.Lambda):
            if not isinstance(expected.result, (HatType, Intersection)):
                raise TypingError("returned closures must carry a HAT result type")
            param_type = expected.param_type
            if not isinstance(param_type, RefinementType):
                raise TypingError("higher-order closure parameters are not supported")
            inner_gamma = gamma.bind(value.param, param_type)
            for case in cases_of(expected.result):
                self._check(
                    inner_gamma, case.precondition, value.body, case.result, case.postcondition
                )
            return
        raise CheckFailure(f"cannot check value {value!r} against function type {expected!r}")

    def _funtype_subtype(self, gamma: TypingContext, sub: FunType, sup: FunType) -> bool:
        if not isinstance(sub.result, (HatType, Intersection)) or not isinstance(
            sup.result, (HatType, Intersection)
        ):
            return repr(sub) == repr(sup)
        sub_cases = cases_of(sub.result)
        sup_cases = cases_of(sup.result)
        return all(
            any(self.engine.hat_subtype(gamma, sc, pc) for sc in sub_cases) for pc in sup_cases
        )

    # -- let value ----------------------------------------------------------------------
    def _check_let_value(
        self,
        gamma: TypingContext,
        context_automaton: Sfa,
        expr: ast.LetIn,
        result_type: Union[RefinementType, FunType],
        postcondition: Sfa,
    ) -> None:
        assert isinstance(expr.bound, ast.Ret)
        value = expr.bound.value
        if isinstance(value, (ast.Lambda, ast.Fix)):
            raise TypingError(
                "locally bound closures need a type annotation; "
                "return them directly or lift them to a module-level definition"
            )
        if isinstance(value, ast.Var):
            bound_ty = gamma.lookup(value.name)
            if isinstance(bound_ty, (FunType, GhostArrow)):
                new_gamma = gamma.bind(expr.name, bound_ty)
                self._check(new_gamma, context_automaton, expr.body, result_type, postcondition)
                return
        sort = self.value_sort(gamma, value)
        term = self.value_term(gamma, value, sort)
        new_gamma = gamma.bind(expr.name, singleton(term.sort, term))
        self._check(new_gamma, context_automaton, expr.body, result_type, postcondition)

    # -- effectful operator application (ChkEOpApp) ----------------------------------------
    def _check_effectful_call(
        self,
        gamma: TypingContext,
        context_automaton: Sfa,
        expr: ast.LetOp,
        result_type: Union[RefinementType, FunType],
        postcondition: Sfa,
    ) -> None:
        op_type = self.delta[expr.op]
        ghosts, params, effect = function_signature(op_type)
        if len(params) != len(expr.args):
            raise TypingError(
                f"{expr.op} expects {len(params)} arguments, got {len(expr.args)}"
            )

        substitution: dict[smt.Term, smt.Term] = {}
        for (param_name, param_type), arg in zip(params, expr.args):
            arg_term = self.value_term(gamma, arg, param_type.sort)
            if not self.engine.value_has_type(gamma, arg_term, param_type):
                raise CheckFailure(
                    f"argument {arg!r} of {expr.op} does not satisfy {param_type!r}"
                )
            substitution[smt.var(param_name, param_type.sort)] = arg_term

        gamma, ghost_substitution = abduce_ghosts(
            self, gamma, context_automaton, ghosts, effect, substitution
        )
        substitution.update(ghost_substitution)

        cases = [case.substitute(substitution) for case in cases_of(effect)]
        self._check_cases(
            gamma, context_automaton, expr.name, expr.op, cases, expr.body, result_type, postcondition
        )

    def _check_cases(
        self,
        gamma: TypingContext,
        context_automaton: Sfa,
        binder: str,
        call_description: str,
        cases: Sequence[HatType],
        body: ast.Expr,
        result_type: Union[RefinementType, FunType],
        postcondition: Sfa,
        single_event: bool = True,
    ) -> None:
        """Common continuation for operator and function calls.

        ``single_event`` is true for effectful operator applications (which
        append exactly one event per STEffOp) and false for calls to other
        ADT methods or thunks, which may append arbitrarily many events.
        """
        precondition_union = symbolic.or_(*(case.precondition for case in cases))
        assert self._obligations is not None
        self._obligations.emit(
            "coverage",
            gamma.hypotheses(),
            context_automaton,
            precondition_union,
            provenance=(
                f"{self._obligations.method}: precondition coverage of {call_description}"
            ),
            failure_message=(
                f"the effect context does not satisfy the precondition of {call_description}"
            ),
        )
        # Each effectful operator appends exactly one event (STEffOp), so the
        # new context is "the old context followed by exactly one event",
        # intersected with the operator's postcondition automaton.  This is the
        # precise rendering of the paper's (A ; □⟨⊤⟩) ∧ A'_i frame: pinning the
        # appended suffix to a single event keeps the fact that the *entire*
        # previous history satisfied A, which the existential split of ';'
        # would otherwise lose.
        if single_event:
            suffix = symbolic.and_(symbolic.any_event(), symbolic.last())
        else:
            suffix = symbolic.any_trace()
        frame = symbolic.concat(context_automaton, suffix)
        for case in cases:
            new_gamma = gamma.bind(binder, case.result)
            new_context = symbolic.and_(frame, case.postcondition)
            self._check(new_gamma, new_context, body, result_type, postcondition)

    # -- function / method / thunk application (ChkApp) --------------------------------------
    def _check_function_call(
        self,
        gamma: TypingContext,
        context_automaton: Sfa,
        expr: ast.LetApp,
        result_type: Union[RefinementType, FunType],
        postcondition: Sfa,
    ) -> None:
        if not isinstance(expr.func, ast.Var):
            raise TypingError("only named functions and thunk variables can be applied")
        name = expr.func.name

        if name in gamma and isinstance(gamma.lookup(name), FunType):
            self._check_thunk_call(gamma, context_automaton, expr, result_type, postcondition)
            return

        spec = self._module_specs.get(name)
        if spec is None:
            raise TypingError(f"no HAT signature for function {name!r}")

        substitution: dict[smt.Term, smt.Term] = {}
        thunk_bindings: dict[str, FunType] = {}
        if len(spec.params) != len(expr.args):
            raise TypingError(
                f"{name} expects {len(spec.params)} arguments, got {len(expr.args)}"
            )
        for (param_name, param_type), arg in zip(spec.params, expr.args):
            if isinstance(param_type, FunType):
                if not isinstance(arg, ast.Var):
                    raise TypingError("function-typed arguments must be variables")
                actual = gamma.lookup(arg.name)
                if not isinstance(actual, FunType) or not self._funtype_subtype(
                    gamma, actual, param_type
                ):
                    raise CheckFailure(
                        f"argument {arg.name} does not satisfy the thunk type {param_type!r}"
                    )
                continue
            arg_term = self.value_term(gamma, arg, param_type.sort)
            if not self.engine.value_has_type(gamma, arg_term, param_type):
                raise CheckFailure(
                    f"argument {arg!r} of {name} does not satisfy {param_type!r}"
                )
            substitution[smt.var(param_name, param_type.sort)] = arg_term

        # Ghost variables of the callee: instantiate with the caller's variable
        # of the same name when it exists (the typical recursive-helper case),
        # otherwise leave them universally quantified by binding them fresh.
        for ghost_name, ghost_sort in spec.ghosts:
            ghost_var = smt.var(ghost_name, ghost_sort)
            if ghost_name in gamma:
                substitution[ghost_var] = gamma.term_of(ghost_name)
            else:
                gamma = gamma.bind(ghost_name, base(ghost_sort))
                substitution[ghost_var] = ghost_var

        mapped = dict(substitution)
        callee_result = (
            spec.result.substitute(mapped)
            if isinstance(spec.result, RefinementType)
            else spec.result
        )
        case = HatType(
            precondition=symbolic.substitute(spec.precondition, mapped),
            result=callee_result if isinstance(callee_result, RefinementType) else base(UNIT),
            postcondition=symbolic.substitute(spec.postcondition, mapped),
        )
        if isinstance(callee_result, FunType):
            # function-returning methods (e.g. LazySet's thunk constructors)
            assert self._obligations is not None
            self._obligations.emit(
                "precondition",
                gamma.hypotheses(),
                context_automaton,
                case.precondition,
                provenance=f"{self._obligations.method}: precondition of call to {name}",
                failure_message=(
                    f"the effect context does not satisfy the precondition of {name}"
                ),
            )
            frame = symbolic.concat(context_automaton, symbolic.any_trace())
            new_context = symbolic.and_(frame, case.postcondition)
            new_gamma = gamma.bind(expr.name, callee_result)
            self._check(new_gamma, new_context, expr.body, result_type, postcondition)
            return

        self._check_cases(
            gamma,
            context_automaton,
            expr.name,
            name,
            [case],
            expr.body,
            result_type,
            postcondition,
            single_event=False,
        )

    def _check_thunk_call(
        self,
        gamma: TypingContext,
        context_automaton: Sfa,
        expr: ast.LetApp,
        result_type: Union[RefinementType, FunType],
        postcondition: Sfa,
    ) -> None:
        thunk_type = gamma.lookup(expr.func.name)
        assert isinstance(thunk_type, FunType)
        if not isinstance(thunk_type.result, (HatType, Intersection)):
            raise TypingError("thunk types must have a HAT result")
        if len(expr.args) != 1:
            raise TypingError("thunks take exactly one (unit) argument")
        cases = list(cases_of(thunk_type.result))
        self._check_cases(
            gamma,
            context_automaton,
            expr.name,
            expr.func.name,
            cases,
            expr.body,
            result_type,
            postcondition,
            single_event=False,
        )

    # -- pattern matching (ChkMatch) -------------------------------------------------------
    def _check_match(
        self,
        gamma: TypingContext,
        context_automaton: Sfa,
        expr: ast.Match,
        result_type: Union[RefinementType, FunType],
        postcondition: Sfa,
    ) -> None:
        scrutinee_sort = self.value_sort(gamma, expr.scrutinee)
        scrutinee = self.value_term(gamma, expr.scrutinee, scrutinee_sort)
        for branch in expr.branches:
            if branch.constructor == "true":
                condition = smt.eq(scrutinee, smt.TRUE)
            elif branch.constructor == "false":
                condition = smt.eq(scrutinee, smt.FALSE)
            elif branch.constructor == "unit":
                condition = smt.TRUE
            else:
                raise TypingError(
                    f"pattern matching on constructor {branch.constructor!r} is not "
                    "supported; benchmark ADTs interact with libraries through their "
                    "effectful operators instead of concrete constructors"
                )
            if branch.binders:
                raise TypingError("boolean/unit patterns cannot bind variables")
            branch_gamma = gamma.assume(condition)
            self._check(branch_gamma, context_automaton, branch.body, result_type, postcondition)
