"""The tracked benchmark harness: payload shape, regression gate, CLI."""

import copy
import json

import pytest

from repro.perf.bench import compare_payloads, load_payload, run_bench, summarize
from repro.typecheck.checker import CheckerConfig


@pytest.fixture(scope="module")
def payload():
    return run_bench(runs=1, config=CheckerConfig())


def test_payload_shape(payload):
    assert payload["schema"] == 1
    assert payload["corpus"] == "fast"
    for phase in ("cold", "warm"):
        section = payload[phase]
        assert section["all_verified"] and section["all_negatives_rejected"]
        assert section["wall_seconds"] > 0
        assert section["counters"]["obligations"] > 0
        assert set(section["tables_deterministic"]) == {"table1", "table3", "table4"}
        assert section["per_adt_wall_seconds"]


def test_cold_discharges_and_warm_replays(payload):
    assert payload["cold"]["counters"]["store_hits"] == 0
    warm = payload["warm"]["counters"]
    assert warm["store_hits"] > 0
    # a store hit replays the cold discharge's recorded counters — alphabet
    # builds included — so warm counters mirror cold ones exactly (nothing is
    # *re-enumerated*; the replay is what keeps warm tables byte-identical)
    assert warm["alphabet_builds"] == payload["cold"]["counters"]["alphabet_builds"]


def test_warm_tables_match_cold_tables(payload):
    assert payload["warm"]["tables_deterministic"] == payload["cold"]["tables_deterministic"]


def test_cross_obligation_reuse_is_visible(payload):
    counters = payload["cold"]["counters"]
    assert 0 < counters["alphabet_builds"] < counters["obligations"], (
        "the memo must build strictly fewer alphabets than obligations emitted"
    )


def test_compare_within_tolerance_passes(payload):
    current = copy.deepcopy(payload)
    current["cold"]["wall_seconds"] = payload["cold"]["wall_seconds"] * 1.1
    ok, messages = compare_payloads(current, payload, tolerance=0.2)
    assert ok
    assert any("cold wall" in m and "ok" in m for m in messages)
    assert any("counters: identical" in m for m in messages)


def test_compare_flags_regression(payload):
    current = copy.deepcopy(payload)
    current["cold"]["wall_seconds"] = payload["cold"]["wall_seconds"] * 1.5
    ok, messages = compare_payloads(current, payload, tolerance=0.2)
    assert not ok
    assert any("REGRESSION" in m for m in messages)


def test_compare_reports_counter_drift_as_advisory(payload):
    current = copy.deepcopy(payload)
    current["cold"]["counters"]["smt_queries"] += 7
    ok, messages = compare_payloads(current, payload, tolerance=0.2)
    assert ok, "counter drift is advisory, not a gate"
    assert any("counters moved" in m for m in messages)


def test_load_payload_round_trip(payload, tmp_path):
    path = tmp_path / "bench.json"
    path.write_text(json.dumps(payload))
    assert load_payload(path)["cold"] == payload["cold"]
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"nope": 1}))
    with pytest.raises(ValueError):
        load_payload(bad)


def test_summarize_mentions_the_headline_numbers(payload):
    text = summarize(payload)
    assert "cold:" in text and "warm:" in text and "alphabet builds=" in text


def test_run_bench_validates_runs():
    with pytest.raises(ValueError):
        run_bench(runs=0)


def test_committed_bench_payload_is_well_formed():
    """The checked-in BENCH_PR5.json must parse and carry the PR4 baseline."""
    from pathlib import Path

    committed = load_payload(Path(__file__).resolve().parents[2] / "BENCH_PR5.json")
    assert committed["baseline"]["label"] == "PR4"
    assert committed["baseline"]["cold_wall_seconds"] > 0
    assert committed["cold"]["wall_seconds"] > 0
