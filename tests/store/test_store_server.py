"""The store service over real sockets: every protocol op, both backends.

An in-process :class:`StoreHTTPServer` wraps each local backend in turn
(the ``store_backend`` fixture parametrises the environment) and a real
:class:`RemoteStoreBackend` talks to it over the loopback, so these tests
cover exactly the bytes that cross the wire in production — plus the
hand-rolled HTTP corners (404/400, GET, non-JSON bodies) and server-side
idempotency replay.
"""

import http.client
import json
import threading

import pytest

from repro.store.backends import SCHEMA_VERSION, StoreEntry, open_backend
from repro.store.obligation_store import ObligationStore
from repro.store.remote import RemoteStoreBackend, RemoteStoreError
from repro.store.server import StoreHTTPServer, StoreService


@pytest.fixture
def server(store_path):
    service = StoreService(store_path)
    httpd = StoreHTTPServer(("127.0.0.1", 0), service)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    yield httpd
    httpd.shutdown()
    thread.join()
    httpd.server_close()
    service.close()


@pytest.fixture
def client(server):
    return RemoteStoreBackend(server.url)


def _entry(fp, env="env1", **overrides):
    fields = dict(
        env=env,
        fp=fp,
        included=True,
        solver_stats={"queries": 2},
        inclusion_stats={"fa_inclusion_checks": 1},
        scope="Set/KVStore",
        method="insert",
        spec="s1",
        library="l1",
        kind="postcondition",
        provenance="insert: postcondition",
        cost={"wall": 0.5},
    )
    fields.update(overrides)
    return StoreEntry(**fields)


def _raw(server, method, path, body=None):
    conn = http.client.HTTPConnection(*server.server_address[:2], timeout=5)
    try:
        conn.request(
            method,
            path,
            body=body,
            headers={"Content-Type": "application/json"} if body else {},
        )
        response = conn.getresponse()
        return response.status, json.loads(response.read().decode("utf-8"))
    finally:
        conn.close()


# -- the operations ----------------------------------------------------------------


def test_handshake_reports_the_wrapped_store(server, client, store_backend):
    info = client.handshake()
    assert info["schema"] == SCHEMA_VERSION
    assert info["backend"] == store_backend
    assert info["entries"] == 0 and info["runs"] == 0 and info["skipped"] == 0
    # and GET works for humans with curl
    status, payload = _raw(server, "GET", "/handshake")
    assert status == 200 and payload["backend"] == store_backend


def test_append_then_lookup_roundtrips_entries(client):
    original = _entry("f1")
    client.append_entries([original, _entry("f2", included=False)])
    found = client.lookup("env1", ["f1", "missing", "f2"])
    assert {e.fp for e in found} == {"f1", "f2"}
    echoed = next(e for e in found if e.fp == "f1")
    assert echoed.to_json() == original.to_json(), "the wire is lossless"
    assert client.entries_total == 2
    assert client.lookup("other-env", ["f1"]) == [], (
        "environment fingerprints partition the remote store too"
    )


def test_appends_are_durable_not_just_cached(server, client, store_path):
    client.append_entries([_entry("f1")])
    behind = open_backend(store_path)
    try:
        state = behind.load(wipe_mismatch=False)
    finally:
        behind.close()
    assert ("env1", "f1") in state.entries, "the backend is written before the ack"


def test_cost_hints_cover_the_whole_store(client):
    client.append_entries([_entry("f1", cost={"wall": 0.5}), _entry("f2", cost={})])
    assert client.cost_hints() == {"f1": 0.5}


def test_commit_run_and_gc_share_the_local_semantics(client):
    client.append_entries([_entry("f1"), _entry("f2")])
    assert client.commit_run(["env1:f1"]) == 1
    assert client.commit_run(["env1:f1", "env1:f2"]) == 2
    assert client.commit_run([]) == 0, "an empty session records no run"
    # keep the last run only: f1 and f2 are both referenced there
    assert client.gc(1) == 0
    # a run referencing only f1, then keep-last 1 → f2 is swept
    assert client.commit_run(["env1:f1"]) == 3
    assert client.gc(1) == 1
    assert {e.fp for e in client.lookup("env1", ["f1", "f2"])} == {"f1"}


def test_invalidate_drops_exactly_the_stale_scope(client):
    client.append_entries(
        [
            _entry("f1", spec="old"),
            _entry("f2", method="other-method", spec="irrelevant"),
            _entry("f3", scope="Stack/KVStore", spec="old"),
        ]
    )
    dropped = client.invalidate("Set/KVStore", "insert", "new-spec", "l1")
    assert dropped == 1
    assert {e.fp for e in client.lookup("env1", ["f1", "f2", "f3"])} == {"f2", "f3"}


def test_compact_keeps_the_entries(client):
    client.append_entries([_entry("f1")])
    client.compact()
    assert [e.fp for e in client.lookup("env1", ["f1"])] == ["f1"]


def test_the_server_self_heals_from_out_of_band_writes(server, client, store_path):
    """A rewrite op re-adopts whatever the backend re-read under its lock."""
    behind = open_backend(store_path)
    try:
        behind.append_entries([_entry("sneaked")])
    finally:
        behind.close()
    assert client.lookup("env1", ["sneaked"]) == [], "the cache is stale on purpose"
    client.compact()  # any read-modify-rewrite resynchronises
    assert [e.fp for e in client.lookup("env1", ["sneaked"])] == ["sneaked"]


# -- idempotency replay ------------------------------------------------------------


def test_a_replayed_write_is_applied_once(server, client):
    """Same key, same op → the recorded response, not a second application."""
    key = "test-key-1"
    first = server.service.execute(
        "commit_run", {"touched": ["env1:f1"], "key": key}
    )
    replay = server.service.execute(
        "commit_run", {"touched": ["env1:f1"], "key": key}
    )
    assert replay == first
    fresh = server.service.execute("commit_run", {"touched": ["env1:f1"], "key": "k2"})
    assert fresh["run"] == first["run"] + 1, "exactly one run slipped in between"


def test_idempotency_keys_are_bounded_per_client(server, monkeypatch):
    monkeypatch.setattr("repro.store.server._MAX_IDEMPOTENCY_KEYS_PER_CLIENT", 4)
    for index in range(8):
        server.service.execute(
            "append", {"entries": [], "key": f"k{index}", "client": "c1"}
        )
    bucket = server.service._seen["c1"]
    assert len(bucket) == 4
    assert "k7" in bucket and "k0" not in bucket


def test_client_buckets_are_bounded_lru(server, monkeypatch):
    monkeypatch.setattr("repro.store.server._MAX_IDEMPOTENCY_CLIENTS", 3)
    for index in range(5):
        server.service.execute(
            "append", {"entries": [], "key": "k", "client": f"c{index}"}
        )
    assert set(server.service._seen) == {"c2", "c3", "c4"}
    # touching a bucket refreshes it: c2 survives the next new client, c3 goes
    server.service.execute("append", {"entries": [], "key": "k", "client": "c2"})
    server.service.execute("append", {"entries": [], "key": "k", "client": "c9"})
    assert "c2" in server.service._seen and "c3" not in server.service._seen


# -- protocol corners --------------------------------------------------------------


def test_unknown_operations_get_404(server):
    status, payload = _raw(server, "POST", "/definitely-not-an-op", b"{}")
    assert status == 404 and "unknown" in payload["error"]
    status, _ = _raw(server, "GET", "/lookup")
    assert status == 404, "only the handshake is GET-able"


def test_malformed_requests_get_400(server):
    status, payload = _raw(server, "POST", "/lookup", b"this is not json")
    assert status == 400 and "JSON" in payload["error"]
    status, _ = _raw(server, "POST", "/lookup", b"[1, 2]")
    assert status == 400
    # a well-formed body failing validation is still the client's fault
    status, payload = _raw(server, "POST", "/lookup", json.dumps({"env": 5, "fps": []}).encode())
    assert status == 400
    status, payload = _raw(server, "POST", "/gc", json.dumps({"keep_last": 0}).encode())
    assert status == 400 and "keep_last" in payload["error"]
    status, _ = _raw(server, "POST", "/append", json.dumps({"entries": [{"bogus": 1}]}).encode())
    assert status == 400, "an undecodable entry must not 500 (and must not be retried)"


def test_client_surfaces_validation_errors_without_retry(client):
    with pytest.raises(RemoteStoreError, match="keep_last"):
        client.gc(0)


# -- service construction ----------------------------------------------------------


def test_the_service_refuses_to_wrap_a_remote_url():
    with pytest.raises(ValueError, match="remote"):
        StoreService("http://127.0.0.1:1")


def test_the_facade_end_to_end_over_both_backends(server, store_backend):
    """ObligationStore against the URL behaves like the local facade."""
    cold = ObligationStore(server.url)
    assert cold.backend_name == "remote"
    assert cold.lookup("env1", "f1") is None
    cold.record(_entry("f1"))
    cold.flush()
    assert cold.commit_run() == 1

    warm = ObligationStore(server.url, backend=store_backend)  # expectation holds
    warm.prefetch("env1", ["f1"])
    hit = warm.lookup("env1", "f1")
    assert hit is not None and hit.cost == {"wall": 0.5}
    assert warm.cost_hint("f1") == 0.5, "the cost index travels at open"
    assert len(warm) == 1 and warm.summary()["entries"] == 1


def test_the_facade_rejects_a_wrong_backend_expectation(server, store_backend):
    other = "sqlite" if store_backend == "jsonl" else "jsonl"
    with pytest.raises(RemoteStoreError, match="requested explicitly"):
        ObligationStore(server.url, backend=other)
