"""The stateful Set library (Example 4.3 / 4.4): ``insert`` and ``mem``."""

from __future__ import annotations

from .. import smt
from ..smt.sorts import BOOL, UNIT, Sort
from ..sfa import symbolic
from ..sfa.signatures import OperatorRegistry
from ..sfa.symbolic import Sfa
from ..types.context import BuiltinContext, PureOpContext
from ..types.rtypes import FunType, HatType, Intersection, RefinementType, base, nu
from .base import Library


def member_predicate(operators: OperatorRegistry, element: smt.Term) -> Sfa:
    """P_member(x) ≐ ♦⟨insert ∼x⟩."""
    return symbolic.eventually(symbolic.event_pinned(operators["insert"], {"x": element}))


def _single_event(precondition: Sfa, event: Sfa) -> Sfa:
    return symbolic.concat(precondition, symbolic.and_(event, symbolic.last()))


def make_set(elem_sort: Sort, *, name: str = "Set") -> Library:
    operators = OperatorRegistry()
    insert = operators.declare("insert", [("x", elem_sort)], UNIT)
    mem = operators.declare("mem", [("x", elem_sort)], BOOL)

    x_param = smt.var("x", elem_sort)
    delta = BuiltinContext()

    insert_event = symbolic.event_pinned(insert, {"x": x_param})
    delta.add(
        "insert",
        FunType(
            "x",
            base(elem_sort),
            HatType(
                precondition=symbolic.any_trace(),
                result=base(UNIT),
                postcondition=_single_event(symbolic.any_trace(), insert_event),
            ),
        ),
    )

    p_member = member_predicate(operators, x_param)
    mem_true = symbolic.event_pinned(mem, {"x": x_param}, result=smt.TRUE)
    mem_false = symbolic.event_pinned(mem, {"x": x_param}, result=smt.FALSE)
    delta.add(
        "mem",
        FunType(
            "x",
            base(elem_sort),
            Intersection(
                (
                    HatType(
                        precondition=p_member,
                        result=RefinementType(BOOL, smt.eq(nu(BOOL), smt.TRUE)),
                        postcondition=_single_event(p_member, mem_true),
                    ),
                    HatType(
                        precondition=symbolic.not_(p_member),
                        result=RefinementType(BOOL, smt.eq(nu(BOOL), smt.FALSE)),
                        postcondition=_single_event(symbolic.not_(p_member), mem_false),
                    ),
                )
            ),
        ),
    )

    def insert_rule(trace, args):
        return ()

    def mem_rule(trace, args):
        element = args[0]
        return trace.any_event("insert", lambda e: e.args[0] == element)

    return Library(
        name=name,
        operators=operators,
        delta=delta,
        pure_ops=PureOpContext(),
        model_rules={"insert": insert_rule, "mem": mem_rule},
    )
