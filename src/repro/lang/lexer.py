"""Lexer for the Mini-ML surface syntax.

The benchmark ADTs of the paper are OCaml modules; this reproduction rewrites
them in a small ML-like language whose token set is defined here: keywords,
identifiers (including module-qualified names such as ``Path.parent`` and
primed names such as ``bytes'``), integer and string literals, and the usual
punctuation / infix operators.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

KEYWORDS = {
    "let",
    "rec",
    "in",
    "if",
    "then",
    "else",
    "match",
    "with",
    "fun",
    "true",
    "false",
    "not",
    "and",
    "or",
    "begin",
    "end",
}

SYMBOLS = [
    "->",
    "==",
    "<>",
    "<=",
    ">=",
    "&&",
    "||",
    "(",
    ")",
    "|",
    "=",
    "<",
    ">",
    "+",
    "-",
    "*",
    ";",
    ":",
    ",",
]


class LexError(SyntaxError):
    """Raised on malformed input, with a line/column position."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{message} at line {line}, column {column}")
        self.line = line
        self.column = column


@dataclass(frozen=True)
class Token:
    kind: str  # "keyword" | "ident" | "int" | "string" | "symbol" | "eof"
    text: str
    line: int
    column: int

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.kind}({self.text!r})"


def _is_ident_start(ch: str) -> bool:
    return ch.isalpha() or ch == "_"


def _is_ident_char(ch: str) -> bool:
    return ch.isalnum() or ch in "_'."


def tokenize(source: str) -> list[Token]:
    """Tokenise ``source``; comments are ``(* ... *)`` (nested) and ``-- line``."""
    tokens: list[Token] = []
    index = 0
    line = 1
    column = 1
    length = len(source)

    def advance(count: int = 1) -> None:
        nonlocal index, line, column
        for _ in range(count):
            if index < length and source[index] == "\n":
                line += 1
                column = 1
            else:
                column += 1
            index += 1

    while index < length:
        ch = source[index]
        if ch in " \t\r\n":
            advance()
            continue
        if source.startswith("(*", index):
            depth = 1
            start_line, start_col = line, column
            advance(2)
            while index < length and depth:
                if source.startswith("(*", index):
                    depth += 1
                    advance(2)
                elif source.startswith("*)", index):
                    depth -= 1
                    advance(2)
                else:
                    advance()
            if depth:
                raise LexError("unterminated comment", start_line, start_col)
            continue
        if source.startswith("--", index):
            while index < length and source[index] != "\n":
                advance()
            continue
        if ch == '"':
            start_line, start_col = line, column
            advance()
            chars: list[str] = []
            while index < length and source[index] != '"':
                chars.append(source[index])
                advance()
            if index >= length:
                raise LexError("unterminated string literal", start_line, start_col)
            advance()
            tokens.append(Token("string", "".join(chars), start_line, start_col))
            continue
        if ch.isdigit():
            start_line, start_col = line, column
            digits: list[str] = []
            while index < length and source[index].isdigit():
                digits.append(source[index])
                advance()
            tokens.append(Token("int", "".join(digits), start_line, start_col))
            continue
        if _is_ident_start(ch):
            start_line, start_col = line, column
            chars = []
            while index < length and _is_ident_char(source[index]):
                chars.append(source[index])
                advance()
            text = "".join(chars)
            kind = "keyword" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, start_line, start_col))
            continue
        matched = False
        for symbol in SYMBOLS:
            if source.startswith(symbol, index):
                tokens.append(Token("symbol", symbol, line, column))
                advance(len(symbol))
                matched = True
                break
        if not matched:
            raise LexError(f"unexpected character {ch!r}", line, column)

    tokens.append(Token("eof", "", line, column))
    return tokens


class TokenStream:
    """A cursor over the token list with the usual peek/expect helpers."""

    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._index = 0

    def peek(self, offset: int = 0) -> Token:
        return self._tokens[min(self._index + offset, len(self._tokens) - 1)]

    def next(self) -> Token:
        token = self.peek()
        if token.kind != "eof":
            self._index += 1
        return token

    def at(self, kind: str, text: Optional[str] = None) -> bool:
        token = self.peek()
        return token.kind == kind and (text is None or token.text == text)

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        if self.at(kind, text):
            return self.next()
        return None

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        token = self.peek()
        if not self.at(kind, text):
            wanted = text or kind
            raise LexError(f"expected {wanted!r}, found {token.text!r}", token.line, token.column)
        return self.next()

    @property
    def exhausted(self) -> bool:
        return self.peek().kind == "eof"
