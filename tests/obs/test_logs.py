"""Module loggers, level resolution, and trace-correlated breadcrumbs."""

import io
import logging

import pytest

from repro.obs import trace
from repro.obs.logs import (
    ENV_LOG_LEVEL,
    TraceContextFilter,
    configure_logging,
    get_logger,
    resolve_level,
)


@pytest.fixture(autouse=True)
def clean_slate(monkeypatch):
    """No env level, no handlers, no tracer leaking between tests."""
    monkeypatch.delenv(ENV_LOG_LEVEL, raising=False)
    trace.uninstall()
    yield
    configure_logging(None)  # strips the tagged handler
    trace.uninstall()


def test_get_logger_namespaces_under_repro():
    assert get_logger("engine").name == "repro.engine"
    assert get_logger("repro.store").name == "repro.store"


def test_resolve_level_prefers_argument_then_env(monkeypatch):
    assert resolve_level(None) is None
    monkeypatch.setenv(ENV_LOG_LEVEL, "info")
    assert resolve_level(None) == logging.INFO
    assert resolve_level("debug") == logging.DEBUG
    with pytest.raises(ValueError):
        resolve_level("chatty")


def test_configure_logging_noop_without_level():
    assert configure_logging(None) is None
    root = logging.getLogger("repro")
    assert not any(getattr(h, "_repro_obs", False) for h in root.handlers)


def test_breadcrumbs_carry_the_innermost_open_span():
    stream = io.StringIO()
    configure_logging("debug", stream=stream)
    logger = get_logger("engine")

    logger.debug("outside any span")
    with trace.session():
        with trace.span("discharge", cat="discharge"):
            logger.debug("inside the span")

    lines = stream.getvalue().splitlines()
    assert "[-]" in lines[0] and "outside any span" in lines[0]
    assert "[discharge#" in lines[1] and "repro.engine" in lines[1]


def test_reconfiguring_replaces_the_handler_instead_of_stacking():
    configure_logging("debug", stream=io.StringIO())
    configure_logging("info", stream=io.StringIO())
    root = logging.getLogger("repro")
    tagged = [h for h in root.handlers if getattr(h, "_repro_obs", False)]
    assert len(tagged) == 1
    assert root.level == logging.INFO


def test_filter_is_harmless_without_a_tracer():
    record = logging.LogRecord("repro.x", logging.DEBUG, __file__, 1, "m", (), None)
    assert TraceContextFilter().filter(record) is True
    assert record.trace_span == "-"
