"""End-to-end tests for the lazy SMT solver facade."""

from repro import smt
from repro.smt import sorts
from repro.smt.solver import Solver

BYTES = sorts.BYTES
PATH = sorts.PATH

isDir = smt.declare("isDir_s", [BYTES], smt.BOOL, method_predicate=True)
isDel = smt.declare("isDel_s", [BYTES], smt.BOOL, method_predicate=True)
isFile = smt.declare("isFile_s", [BYTES], smt.BOOL, method_predicate=True)
parent = smt.declare("parent_s", [PATH], PATH)

v = smt.var("s_v", BYTES)
w = smt.var("s_w", BYTES)
p = smt.var("s_p", PATH)
q = smt.var("s_q", PATH)
x = smt.var("s_x", smt.INT)
y = smt.var("s_y", smt.INT)


def dir_not_del_axiom():
    b = smt.var("s_ax_b", BYTES)
    return smt.axiom("dir-not-del", [b], smt.implies(smt.apply(isDir, b), smt.not_(smt.apply(isDel, b))))


def dir_not_file_axiom():
    b = smt.var("s_ax_b", BYTES)
    return smt.axiom("dir-not-file", [b], smt.implies(smt.apply(isDir, b), smt.not_(smt.apply(isFile, b))))


def test_propositional_sat_unsat():
    solver = Solver()
    a = smt.var("s_a", smt.BOOL)
    b = smt.var("s_b", smt.BOOL)
    assert solver.is_satisfiable(smt.or_(a, b))
    assert not solver.is_satisfiable(smt.and_(a, smt.not_(a)))
    assert solver.is_valid(smt.or_(a, smt.not_(a)))
    assert not solver.is_valid(a)


def test_euf_reasoning_through_boolean_structure():
    solver = Solver()
    phi = smt.and_(
        smt.eq(v, w),
        smt.apply(isDir, v),
        smt.not_(smt.apply(isDir, w)),
    )
    assert not solver.is_satisfiable(phi)


def test_arith_reasoning_through_boolean_structure():
    solver = Solver()
    phi = smt.and_(
        smt.lt(x, y),
        smt.or_(smt.lt(y, x), smt.eq(x, y)),
    )
    assert not solver.is_satisfiable(phi)
    phi_sat = smt.and_(smt.lt(x, y), smt.or_(smt.lt(y, x), smt.lt(x, smt.int_const(10))))
    assert solver.is_satisfiable(phi_sat)


def test_method_predicate_axioms_are_instantiated():
    solver = Solver(axioms=[dir_not_del_axiom()])
    phi = smt.and_(smt.apply(isDir, v), smt.apply(isDel, v))
    assert not solver.is_satisfiable(phi)
    # without the axiom the same conjunction is satisfiable
    assert Solver().is_satisfiable(phi)


def test_axioms_fire_on_terms_introduced_by_functions():
    solver = Solver(axioms=[dir_not_del_axiom()])
    stored = smt.declare("stored_s", [PATH], BYTES)
    phi = smt.and_(
        smt.apply(isDir, smt.apply(stored, smt.apply(parent, p))),
        smt.apply(isDel, smt.apply(stored, smt.apply(parent, p))),
    )
    assert not solver.is_satisfiable(phi)


def test_implication_interface():
    solver = Solver(axioms=[dir_not_del_axiom(), dir_not_file_axiom()])
    hyps = [smt.apply(isDir, v)]
    assert solver.implies(hyps, smt.not_(smt.apply(isDel, v)))
    assert solver.implies(hyps, smt.not_(smt.apply(isFile, v)))
    assert not solver.implies(hyps, smt.apply(isFile, v))


def test_validity_with_hypotheses_and_equalities():
    solver = Solver()
    hyps = [smt.eq(p, q)]
    goal = smt.eq(smt.apply(parent, p), smt.apply(parent, q))
    assert solver.is_valid(goal, hypotheses=hyps)
    assert not solver.is_valid(goal)


def test_mixed_theory_query():
    solver = Solver()
    size = smt.declare("size_s", [BYTES], smt.INT)
    phi = smt.and_(
        smt.eq(v, w),
        smt.lt(smt.apply(size, v), smt.apply(size, w)),
    )
    assert not solver.is_satisfiable(phi)


def test_stats_are_recorded():
    solver = Solver()
    before = solver.stats.queries
    solver.is_satisfiable(smt.TRUE)
    solver.is_valid(smt.TRUE)
    assert solver.stats.queries == before + 2
    assert solver.stats.time_seconds >= 0.0


def test_cache_keys_include_backend():
    """Regression: cache keys once ignored the backend, so a warm view from a
    dpll solver would answer a cdcl solver's queries — silently replaying the
    other core's counters.  Identical queries must hit within one backend and
    miss across backends."""
    phi = smt.or_(smt.apply(isDir, v), smt.lt(x, y))
    base = Solver(backend="dpll")
    assert base.is_satisfiable(phi)
    assert base.stats.cache_misses == 1

    same_backend = Solver(backend="dpll", warm_from=base)
    assert same_backend.is_satisfiable(phi)
    assert same_backend.stats.cache_hits == 1
    assert same_backend.stats.cache_misses == 0

    cross_backend = Solver(backend="cdcl", warm_from=base)
    assert cross_backend.is_satisfiable(phi)
    assert cross_backend.stats.cache_hits == 0
    assert cross_backend.stats.cache_misses == 1

    # enumeration caches are keyed the same way
    literals = [smt.apply(isDir, v), smt.apply(isDel, v)]
    base.enumerate_models(literals, base=phi)
    warm_enum = Solver(backend="dpll", warm_from=base)
    warm_enum.enumerate_models(literals, base=phi)
    assert warm_enum.stats.cache_hits == 1
    cross_enum = Solver(backend="cdcl", warm_from=base)
    cross_enum.enumerate_models(literals, base=phi)
    assert cross_enum.stats.cache_hits == 0


def test_warm_from_does_not_share_lemmas_across_backends():
    """Theory lemmas are sound for any backend, but the remembered set
    depends on the base backend's search history; cross-backend warm views
    must not couple one core's #SAT trajectory to another's."""
    contradictory = smt.and_(smt.eq(x, y), smt.lt(x, y))
    base = Solver(backend="dpll")
    assert not base.is_satisfiable(contradictory)
    assert base._theory_lemmas, "an arith conflict must be remembered as a lemma"

    same = Solver(backend="dpll", warm_from=base)
    cross = Solver(backend="cdcl", warm_from=base)
    assert dict(same._base_theory_lemmas) == dict(base._theory_lemmas)
    assert dict(cross._base_theory_lemmas) == {}
    # and the cross-backend solver still reaches the right verdict on its own
    assert not cross.is_satisfiable(contradictory)
