"""Multiprocess stress: N writer processes hammer one store; nothing is lost.

The acceptance suite of the concurrency work, against both backends:

* eight forked writers append distinct and overlapping entries, compact and
  commit runs against a single store path — afterwards every entry is
  present and intact (zero torn/skipped records) and the run log holds one
  record per writer under distinct sequence numbers;
* real engine runs in concurrent processes (each discharging one shard slice
  of the fast corpus straight into the shared main log) leave a store a warm
  re-run answers with **zero** misses, producing deterministic tables
  byte-identical to a serial run's.
"""

import multiprocessing

import pytest

from repro.evaluation.runner import run_evaluation
from repro.evaluation.tables import table1, table3, table4
from repro.store.obligation_store import ObligationStore, StoreEntry
from repro.typecheck.checker import CheckerConfig

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="the stress suite forks writer processes",
)

WRITERS = 8
DISTINCT = 20
SHARED = 10


def _entry(env, fp):
    return StoreEntry(
        env=env,
        fp=fp,
        included=True,
        solver_stats={"queries": 1},
        inclusion_stats={"fa_inclusion_checks": 1},
        scope="Set/KVStore",
        method="insert",
        spec="s1",
        library="l1",
        kind="postcondition",
        provenance="insert: postcondition",
    )


def _synthetic_writer(path, index, barrier):
    store = ObligationStore(path)
    barrier.wait()  # maximise contention: every writer starts at once
    for i in range(DISTINCT):
        store.record(_entry(f"env-{index}", f"w{index}-{i}"))
        if i % 5 == 4:
            store.flush()
    # overlapping keys: identical content (content-addressed), so any
    # interleaving of the writers must converge on the same bytes
    for i in range(SHARED):
        store.record(_entry("shared", f"common-{i}"))
    store.flush()
    if index % 2 == 0:
        store.compact()  # rewriters racing the appenders
    store.commit_run()
    store.backend.close()


def _run_forked(target, argslists):
    context = multiprocessing.get_context("fork")
    processes = [context.Process(target=target, args=args) for args in argslists]
    for process in processes:
        process.start()
    for process in processes:
        process.join()
    assert all(process.exitcode == 0 for process in processes), (
        f"writer exit codes: {[p.exitcode for p in processes]}"
    )
    return context


def test_eight_writers_lose_nothing(store_path):
    context = multiprocessing.get_context("fork")
    barrier = context.Barrier(WRITERS)
    _run_forked(
        _synthetic_writer, [(store_path, index, barrier) for index in range(WRITERS)]
    )

    merged = ObligationStore(store_path)
    expected = {
        (f"env-{w}", f"w{w}-{i}") for w in range(WRITERS) for i in range(DISTINCT)
    } | {("shared", f"common-{i}") for i in range(SHARED)}
    assert {entry.key for entry in merged} == expected, "no write may be lost"
    assert merged.summary()["skipped"] == 0, "no record may be torn"
    assert [r["run"] for r in merged._runs] == list(range(1, WRITERS + 1)), (
        "every writer's run record survives under its own sequence number"
    )


def _engine_writer(path, index, shards, barrier):
    store = ObligationStore(path)
    barrier.wait()
    # shard=(k, N): the full deterministic emit walk, but discharge (and
    # record) only this slice — the per-obligation counters are exactly a
    # serial run's, while the *writes* race on the shared main log
    config = CheckerConfig(shard=(index, shards), workers=1)
    run_evaluation(include_slow=False, config=config, store=store)
    store.flush()
    store.commit_run()
    store.backend.close()


def test_concurrent_engine_writers_yield_a_clean_warm_store(store_path):
    shards = 3
    context = multiprocessing.get_context("fork")
    barrier = context.Barrier(shards)
    _run_forked(
        _engine_writer,
        [(store_path, index, shards, barrier) for index in range(shards)],
    )

    serial = run_evaluation(include_slow=False)
    warm_store = ObligationStore(store_path)
    warm = run_evaluation(include_slow=False, store=warm_store)
    summary = warm_store.summary()
    assert summary["misses"] == 0, "the racing writers must have lost nothing"
    assert summary["skipped"] == 0, "and torn nothing"
    for render in (table1, table3, table4):
        assert render(warm, deterministic=True) == render(serial, deterministic=True), (
            "a store populated by racing writers must warm byte-identical tables"
        )
