"""The experiment runner: verify the corpus and collect the paper's statistics."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from ..suite.benchmark import AdtBenchmark
from ..suite.registry import all_benchmarks
from ..typecheck.checker import CheckerConfig
from ..typecheck.stats import AdtStats, MethodResult


@dataclass
class NegativeResult:
    """Outcome of checking a known-incorrect variant (must *not* verify)."""

    benchmark: str
    variant: str
    rejected: bool
    error: Optional[str]


@dataclass
class EvaluationReport:
    """Everything needed to regenerate Tables 1–4."""

    adt_stats: list[AdtStats] = field(default_factory=list)
    negative_results: list[NegativeResult] = field(default_factory=list)
    total_time_seconds: float = 0.0

    @property
    def all_verified(self) -> bool:
        return all(stats.all_verified for stats in self.adt_stats)

    @property
    def all_negatives_rejected(self) -> bool:
        return all(result.rejected for result in self.negative_results)

    def per_method_rows(self) -> list[dict[str, object]]:
        rows: list[dict[str, object]] = []
        for stats in self.adt_stats:
            for result in stats.method_results:
                row = {
                    "Datatype": stats.adt,
                    "Library": stats.library,
                    "#Ghost": stats.num_ghosts,
                    "sI": stats.invariant_size,
                    "verified": result.verified,
                }
                row.update(result.stats.as_row())
                rows.append(row)
        return rows


def run_benchmark(
    benchmark: AdtBenchmark,
    *,
    config: Optional[CheckerConfig] = None,
    check_negative_variants: bool = True,
    store=None,
) -> tuple[AdtStats, list[NegativeResult]]:
    """Verify one ADT/library row plus its known-bad variants.

    ``store`` is an optional :class:`repro.store.ObligationStore`: discharged
    obligations are written back to it and later runs answer from it.
    """
    checker = benchmark.make_checker(config, store=store)
    stats = benchmark.verify_all(checker)
    negatives: list[NegativeResult] = []
    if check_negative_variants:
        for variant in benchmark.negative_variants:
            result = benchmark.verify_negative_variant(variant, checker)
            negatives.append(
                NegativeResult(
                    benchmark=benchmark.key,
                    variant=variant,
                    rejected=not result.verified,
                    error=result.error,
                )
            )
    return stats, negatives


def run_evaluation(
    benchmarks: Optional[Sequence[AdtBenchmark]] = None,
    *,
    include_slow: bool = True,
    config: Optional[CheckerConfig] = None,
    check_negative_variants: bool = True,
    store=None,
) -> EvaluationReport:
    """Verify the whole corpus, mirroring the experiments behind Table 1."""
    if benchmarks is None:
        benchmarks = all_benchmarks(include_slow=include_slow)
    report = EvaluationReport()
    start = time.perf_counter()
    for benchmark in benchmarks:
        stats, negatives = run_benchmark(
            benchmark,
            config=config,
            check_negative_variants=check_negative_variants,
            store=store,
        )
        report.adt_stats.append(stats)
        report.negative_results.extend(negatives)
    report.total_time_seconds = time.perf_counter() - start
    return report
