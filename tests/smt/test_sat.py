"""Tests for the DPLL SAT core, including a brute-force equivalence property."""

import itertools

from hypothesis import given, settings, strategies as st

from repro.smt.sat import SatSolver


def brute_force_satisfiable(clauses, num_vars):
    for bits in itertools.product([False, True], repeat=num_vars):
        assignment = {i + 1: bits[i] for i in range(num_vars)}
        if all(any(assignment[abs(l)] == (l > 0) for l in clause) for clause in clauses):
            return True
    return False


def check_model(clauses, model):
    return all(any(model[abs(l)] == (l > 0) for l in clause) for clause in clauses)


def test_empty_problem_is_sat():
    solver = SatSolver()
    assert solver.solve() == {}


def test_single_unit_clause():
    solver = SatSolver()
    solver.add_clause([1])
    model = solver.solve()
    assert model == {1: True}


def test_simple_unsat():
    solver = SatSolver()
    solver.add_clause([1])
    solver.add_clause([-1])
    assert solver.solve() is None


def test_requires_propagation_chain():
    solver = SatSolver()
    solver.add_clauses([[1], [-1, 2], [-2, 3], [-3, -4], [4, 5]])
    model = solver.solve()
    assert model is not None
    assert model[1] and model[2] and model[3] and not model[4] and model[5]


def test_unsat_pigeonhole_2_into_1():
    # two pigeons, one hole: p1 in hole, p2 in hole, not both
    solver = SatSolver()
    solver.add_clauses([[1], [2], [-1, -2]])
    assert solver.solve() is None


def test_assumptions():
    solver = SatSolver()
    solver.add_clause([1, 2])
    assert solver.solve(assumptions=[-1]) == {1: False, 2: True}
    assert solver.solve(assumptions=[-1, -2]) is None
    # assumptions do not persist
    assert solver.solve() is not None


def test_zero_literal_rejected():
    solver = SatSolver()
    try:
        solver.add_clause([0])
    except ValueError:
        pass
    else:  # pragma: no cover
        raise AssertionError("expected ValueError")


clause_strategy = st.lists(
    st.integers(min_value=1, max_value=6).flatmap(
        lambda v: st.sampled_from([v, -v])
    ),
    min_size=1,
    max_size=4,
)


@settings(max_examples=120, deadline=None)
@given(st.lists(clause_strategy, min_size=0, max_size=14))
def test_matches_brute_force(clauses):
    solver = SatSolver()
    solver.add_clauses(clauses)
    solver.ensure_vars(6)
    model = solver.solve()
    expected = brute_force_satisfiable(clauses, 6)
    if expected:
        assert model is not None
        assert check_model(clauses, model)
    else:
        assert model is None
