"""Formatters that render the evaluation results in the layout of Tables 1–4."""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from ..suite.benchmark import AdtBenchmark
from ..suite.registry import all_benchmarks
from .runner import EvaluationReport


def _render(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    rows = [list(map(str, row)) for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def line(cells):
        return " | ".join(cell.ljust(width) for cell, width in zip(cells, widths))
    out = [line(headers), "-+-".join("-" * w for w in widths)]
    out.extend(line(row) for row in rows)
    return "\n".join(out)


TABLE1_COLUMNS = [
    "ADT",
    "Library",
    "#Method",
    "#Ghost",
    "sI",
    "ttotal (s)",
    "#Branch",
    "#App",
    "#Obl",
    "#SAT",
    "#SATcache",
    "#Confl",
    "#FA⊆",
    "#FAcache",
    "#Alph",
    "#Prod",
    "#Store",
    "#Batch",
    "avg. sFA",
    "tSAT (s)",
    "tFA⊆ (s)",
    "verified",
]


def _is_volatile_column(column: str) -> bool:
    """Columns that legitimately differ between byte-identical runs.

    Wall-clock columns vary run to run even serially, and ``#Store`` reads 0
    on a cold run and >0 on a warm one by design; every other column is a
    deterministic function of the obligation set and must match exactly.
    The single source of truth is :attr:`MethodStats.VOLATILE_COLUMNS`; the
    ``(s)`` suffix rule additionally covers the ADT-level time columns
    (``ttotal (s)``, ``tFA⊆ (s)``) that only exist in Table 1.
    """
    from ..typecheck.stats import MethodStats

    return column in MethodStats.VOLATILE_COLUMNS or column.endswith("(s)")


def _is_backend_column(column: str) -> bool:
    """Solver-internal columns (#SAT, #Confl): per-backend, else deterministic."""
    from ..typecheck.stats import MethodStats

    return column in MethodStats.BACKEND_SENSITIVE_COLUMNS


def _deterministic(columns: Sequence[str], backend_invariant: bool = False) -> list[str]:
    columns = [column for column in columns if not _is_volatile_column(column)]
    if backend_invariant:
        columns = [column for column in columns if not _is_backend_column(column)]
    return columns


def table1(
    report: EvaluationReport,
    *,
    deterministic: bool = False,
    backend_invariant: bool = False,
) -> str:
    """Table 1: per-ADT summary plus the most complex method's statistics.

    ``deterministic=True`` drops the volatile columns, yielding a rendering
    that must be byte-identical across cold/warm/sharded/parallel runs.
    ``backend_invariant=True`` additionally drops the solver-internal
    columns (#SAT, #Confl), yielding the rendering that must be
    byte-identical across ``--backend dpll`` / ``cdcl`` / ``z3`` too.
    """
    columns = (
        _deterministic(TABLE1_COLUMNS, backend_invariant)
        if deterministic
        else TABLE1_COLUMNS
    )
    rows = []
    for stats in report.adt_stats:
        row = stats.as_row()
        rows.append([row.get(column, "") for column in columns])
    return _render(columns, rows)


TABLE2_COLUMNS = ["Client ADT", "Underlying Library", "Representation invariant / policy"]


def table2_rows(benchmarks: Optional[Sequence[AdtBenchmark]] = None) -> list[dict[str, str]]:
    """Table 2's rows as dicts (shared by the text renderer and ``--json``)."""
    if benchmarks is None:
        benchmarks = all_benchmarks()
    return [
        dict(
            zip(
                TABLE2_COLUMNS,
                (benchmark.adt, benchmark.library_name, benchmark.invariant_description),
            )
        )
        for benchmark in benchmarks
    ]


def table2(benchmarks: Optional[Sequence[AdtBenchmark]] = None) -> str:
    """Table 2: the representation invariants of the corpus (descriptive)."""
    rows = [
        [row[column] for column in TABLE2_COLUMNS] for row in table2_rows(benchmarks)
    ]
    return _render(TABLE2_COLUMNS, rows)


TABLE34_COLUMNS = [
    "Datatype",
    "Library",
    "#Ghost",
    "sI",
    "Method",
    "#Branch",
    "#App",
    "#Obl",
    "#SAT",
    "#SATcache",
    "#Confl",
    "#Inc",
    "#FAcache",
    "#Alph",
    "#Prod",
    "sFAbuilt",
    "#Store",
    "#Batch",
    "avg. sFA",
    "tSAT (s)",
    "tInc (s)",
    "verified",
]

#: The split of ADTs between the paper's Table 3 and Table 4.
TABLE3_ADTS = ("Stack", "Set", "Queue", "MinSet", "LazySet")
TABLE4_ADTS = ("Heap", "FileSystem", "DFA", "ConnectedGraph")


def _per_method_table(
    report: EvaluationReport,
    adts: Sequence[str],
    deterministic: bool = False,
    backend_invariant: bool = False,
) -> str:
    columns = (
        _deterministic(TABLE34_COLUMNS, backend_invariant)
        if deterministic
        else TABLE34_COLUMNS
    )
    rows = []
    for row in report.per_method_rows():
        if row["Datatype"] not in adts:
            continue
        rows.append([row.get(column, "") for column in columns])
    return _render(columns, rows)


def table3(
    report: EvaluationReport,
    *,
    deterministic: bool = False,
    backend_invariant: bool = False,
) -> str:
    """Table 3: per-method details for the first half of the corpus."""
    return _per_method_table(report, TABLE3_ADTS, deterministic, backend_invariant)


def table4(
    report: EvaluationReport,
    *,
    deterministic: bool = False,
    backend_invariant: bool = False,
) -> str:
    """Table 4: per-method details for the second half of the corpus."""
    return _per_method_table(report, TABLE4_ADTS, deterministic, backend_invariant)


def negatives_table(report: EvaluationReport) -> str:
    """Rejection results for the known-incorrect variants (Example 2.1 etc.)."""
    headers = ["Benchmark", "Variant", "Rejected"]
    rows = [
        [result.benchmark, result.variant, result.rejected]
        for result in report.negative_results
    ]
    return _render(headers, rows)


def report_json(report: EvaluationReport, store=None) -> dict:
    """A machine-readable report (``--json``) for CI trend tracking.

    Contains the raw per-ADT and per-method rows (every column, times
    included), the negative-variant outcomes, and the *deterministic*
    renderings of Tables 1/3/4 — the strings CI compares byte-for-byte
    between cold and warm runs.  When a store session is passed, its
    summary and per-method hit/miss/invalidated counts are included.
    """
    payload: dict[str, object] = {
        "schema": 1,
        "all_verified": report.all_verified,
        "all_negatives_rejected": report.all_negatives_rejected,
        "total_time_seconds": report.total_time_seconds,
        "adts": [stats.as_row() for stats in report.adt_stats],
        "per_method": report.per_method_rows(),
        "negatives": [
            {
                "benchmark": result.benchmark,
                "variant": result.variant,
                "rejected": result.rejected,
                "error": result.error,
            }
            for result in report.negative_results
        ],
        "tables_deterministic": {
            "table1": table1(report, deterministic=True),
            "table3": table3(report, deterministic=True),
            "table4": table4(report, deterministic=True),
        },
        # the strings CI diffs *across backends*: the deterministic tables
        # minus the solver-internal #SAT/#Confl columns
        "tables_backend_invariant": {
            "table1": table1(report, deterministic=True, backend_invariant=True),
            "table3": table3(report, deterministic=True, backend_invariant=True),
            "table4": table4(report, deterministic=True, backend_invariant=True),
        },
    }
    # run-level reuse diagnostics (volatile, like the timing columns): the
    # summed cache counters and, in batch mode, the group-coalescing record —
    # previously only `repro bench` surfaced these
    payload["caches"] = report.cache_totals()
    batch_summary = report.batch_group_summary()
    if batch_summary is not None:
        payload["batch_groups"] = batch_summary
    if store is not None:
        payload["store"] = {"summary": store.summary(), "methods": store.explain()}
    if report.dispatch is not None:
        payload["dispatch"] = report.dispatch
    return payload


def render_all(report: EvaluationReport) -> str:
    sections = [
        ("Table 1 — per-ADT summary", table1(report)),
        ("Table 2 — representation invariants", table2()),
        ("Table 3 — per-method details (Stack/Set/Queue/MinSet/LazySet)", table3(report)),
        ("Table 4 — per-method details (Heap/FileSystem/DFA/ConnectedGraph)", table4(report)),
        ("Known-incorrect variants", negatives_table(report)),
    ]
    blocks = []
    for title, body in sections:
        blocks.append(f"== {title} ==\n{body}")
    return "\n\n".join(blocks)
