"""Tests for the Algorithm-1 SFA inclusion checker.

The key scenario mirrors the paper's verification story: the representation
invariant ``I`` is preserved exactly when ``(context ; new events) ⊆ I``.
"""

from repro import smt
from repro.smt import sorts
from repro.sfa import symbolic as S
from repro.sfa.inclusion import InclusionChecker


def insert_once_invariant(set_ops, el):
    ins = S.event_pinned(set_ops["insert"], [el])
    return S.globally(S.implies(ins, S.next_(S.not_(S.eventually(ins)))))


def not_yet_inserted(set_ops, el):
    return S.not_(S.eventually(S.event_pinned(set_ops["insert"], [el])))


def test_trivial_inclusions(set_ops, solver):
    checker = InclusionChecker(solver, set_ops)
    el = smt.var("inc_el", sorts.ELEM)
    inv = insert_once_invariant(set_ops, el)
    assert checker.check([], S.BOT, inv)
    assert checker.check([], inv, inv)
    assert checker.check([], inv, S.any_trace())
    assert not checker.check([], S.any_trace(), inv)


def test_insert_preserves_invariant_when_not_member(set_ops, solver):
    """(I ∧ el not yet inserted) ; ⟨insert el⟩∧LAST  ⊆  I."""
    checker = InclusionChecker(solver, set_ops)
    el = smt.var("inc2_el", sorts.ELEM)
    inv = insert_once_invariant(set_ops, el)
    context = S.and_(inv, not_yet_inserted(set_ops, el))
    effect = S.and_(S.event_pinned(set_ops["insert"], [el]), S.last())
    assert checker.check([], S.concat(context, effect), inv)
    assert checker.stats.fa_inclusion_checks >= 1
    # the default lazy discharge explores product pairs instead of building DFAs
    assert checker.stats.prod_states > 0
    assert checker.stats.automata_built == 0

    compiled = InclusionChecker(smt.Solver(), set_ops, discharge="compiled")
    assert compiled.check([], S.concat(context, effect), inv)
    assert compiled.stats.average_transitions > 0
    assert compiled.stats.states_built > 0


def test_insert_can_break_invariant_without_membership_check(set_ops, solver):
    """I ; ⟨insert el⟩∧LAST ⊄ I — the element may already be present."""
    checker = InclusionChecker(solver, set_ops)
    el = smt.var("inc3_el", sorts.ELEM)
    inv = insert_once_invariant(set_ops, el)
    effect = S.and_(S.event_pinned(set_ops["insert"], [el]), S.last())
    result = checker.check_detailed([], S.concat(inv, effect), inv)
    assert not result.included
    assert result.counterexample  # a witness trace is produced


def test_mem_false_event_also_protects_insert(set_ops, solver):
    """Conditioning on an observed ``mem el = false`` event plus the invariant."""
    checker = InclusionChecker(solver, set_ops)
    el = smt.var("inc4_el", sorts.ELEM)
    inv = insert_once_invariant(set_ops, el)
    # A context recording that mem(el) returned false and that no insert of el
    # has happened since the start (the Set library's exists-style signature).
    context = S.and_(inv, not_yet_inserted(set_ops, el))
    mem_event = S.and_(S.event_pinned(set_ops["mem"], [el], result=smt.FALSE), S.last())
    after_mem = S.concat(context, mem_event)
    effect = S.and_(S.event_pinned(set_ops["insert"], [el]), S.last())
    assert checker.check([], S.concat(after_mem, effect), inv)


def test_hypotheses_can_make_inclusion_hold(set_ops, solver):
    """Γ hypotheses participate in minterm satisfiability."""
    checker = InclusionChecker(solver, set_ops)
    el = smt.var("inc5_el", sorts.ELEM)
    x = smt.var("inc5_x", sorts.ELEM)
    insert = set_ops["insert"]
    # context: only x has ever been inserted; effect: insert el.
    only_x = S.globally(S.event(insert, smt.eq(insert.arg_vars[0], x)))
    target = S.globally(S.event(insert, smt.eq(insert.arg_vars[0], el)))
    lhs = only_x
    # Without knowing x == el the inclusion fails...
    assert not checker.check([], lhs, target)
    # ...but under the hypothesis x == el it holds.
    assert checker.check([smt.eq(x, el)], lhs, target)


def test_is_empty_and_equivalent(set_ops, solver):
    checker = InclusionChecker(solver, set_ops)
    el = smt.var("inc6_el", sorts.ELEM)
    ins = S.event_pinned(set_ops["insert"], [el])
    assert checker.is_empty([], S.BOT)
    assert checker.is_empty([], S.and_(ins, S.not_(ins)))
    assert not checker.is_empty([], ins)
    assert checker.equivalent([], S.globally(ins), S.not_(S.eventually(S.not_(ins))))


def test_minimize_option_reduces_reported_size(set_ops, solver):
    el = smt.var("inc7_el", sorts.ELEM)
    inv = insert_once_invariant(set_ops, el)
    effect = S.and_(S.event_pinned(set_ops["insert"], [el]), S.last())
    lhs = S.concat(S.and_(inv, not_yet_inserted(set_ops, el)), effect)

    plain = InclusionChecker(smt.Solver(), set_ops, minimize=False, discharge="compiled")
    minimized = InclusionChecker(smt.Solver(), set_ops, minimize=True, discharge="compiled")
    assert plain.check([], lhs, inv)
    assert minimized.check([], lhs, inv)
    assert minimized.stats.total_transitions <= plain.stats.total_transitions


def test_stats_snapshot_and_merge(set_ops, solver):
    from repro.sfa.inclusion import InclusionStats

    checker = InclusionChecker(solver, set_ops)
    el = smt.var("inc8_el", sorts.ELEM)
    inv = insert_once_invariant(set_ops, el)
    checker.check([], inv, inv)
    snap = checker.stats.snapshot()
    assert snap.fa_inclusion_checks == checker.stats.fa_inclusion_checks
    merged = InclusionStats()
    merged.merge(snap)
    merged.merge(snap)
    assert merged.fa_inclusion_checks == 2 * snap.fa_inclusion_checks
