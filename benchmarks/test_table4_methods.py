"""Table 4 — per-method verification statistics (Heap / FileSystem / DFA / ConnectedGraph).

The FileSystem/KVStore methods are the most expensive rows of the paper's
evaluation (tens to hundreds of seconds there, minutes here); they are only
run with ``PYMARPLE_FULL=1``.
"""

import pytest

from repro.suite.registry import all_benchmarks
from .conftest import corpus_param, include_slow

TABLE4_ADTS = ("Heap", "FileSystem", "DFA", "ConnectedGraph")


def _methods():
    rows = []
    for bench in all_benchmarks(include_slow=include_slow()):
        if bench.adt not in TABLE4_ADTS:
            continue
        for method in bench.specs:
            label = f"{bench.key}.{method}"
            rows.append(corpus_param(bench, label, bench, method, id=label))
    return rows


@pytest.mark.parametrize("label,bench,method", _methods())
def test_table4_method(benchmark, label, bench, method):
    checker = bench.make_checker()

    def verify():
        return bench.verify_method(method, checker)

    result = benchmark.pedantic(verify, rounds=1, iterations=1)
    assert result.verified, result.error
    benchmark.extra_info.update(result.stats.as_row())


def _negative_variants():
    rows = []
    for bench in all_benchmarks(include_slow=include_slow()):
        for variant in bench.negative_variants:
            label = f"{bench.key}.{variant}"
            rows.append(corpus_param(bench, label, bench, variant, id=label))
    return rows


@pytest.mark.parametrize("label,bench,variant", _negative_variants())
def test_incorrect_variants_are_rejected(benchmark, label, bench, variant):
    """Example 2.1 and friends: the buggy implementations must fail to check."""
    checker = bench.make_checker()

    def verify():
        return bench.verify_negative_variant(variant, checker)

    result = benchmark.pedantic(verify, rounds=1, iterations=1)
    assert not result.verified
    benchmark.extra_info["rejection reason"] = (result.error or "")[:120]
