"""SFA inclusion checking (Algorithm 1 of the paper).

``InclusionChecker.check(Γ, A, B)`` decides ``Γ ⊢ A ⊆ B``: under every
instantiation of the typing context, every trace accepted by ``A`` is accepted
by ``B``.  The pipeline is the paper's:

1. enumerate satisfiable boolean combinations of the context literals,
2. within each, enumerate satisfiable minterms per operator (the alphabet
   transformation), asking the SMT solver for each candidate,
3. decide inclusion over that finite alphabet.

Step 3 has two discharge modes, mirroring the guided/exhaustive split of the
enumeration layer:

* ``discharge="lazy"`` (the default) — an on-the-fly product walk over
  symbolic derivatives (:func:`repro.sfa.derivatives.lazy_inclusion_search`).
  Product states are explored breadth-first with antichain-style subsumption
  pruning; nothing is materialised beyond the reachable product, and the walk
  exits at the first counterexample.  The ``#prod-states`` statistic counts
  the pairs it explores.
* ``discharge="compiled"`` — the original Algorithm-1 reference path: compile
  **both** symbolic automata to complete DFAs over the minterm alphabet, then
  run the explicit product search.  Kept as the differential-testing oracle
  (``tests/sfa/test_discharge_diff.py``) and for the DFA-size statistics
  (``avg. s_FA``), which only make sense when DFAs are actually built.

The checker records the statistics reported in the paper's evaluation: the
number of FA inclusion checks (``#FA⊆``), the sizes of the constructed
automata (``avg. s_FA``), explored product states (``#prod-states``) and the
time spent in FA inclusion (``t_FA⊆``); SMT counts and times are tracked by
the shared solver.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from .. import smt
from ..obs import trace
from ..smt.terms import Term
from ..statsutil import MergeableStats
from .alphabet import (
    Alphabet,
    AlphabetError,
    AlphabetMemo,
    AlphabetStats,
    build_alphabets,
    resolve_max_literals,
)
from .automata import Dfa
from .derivatives import DerivativeCache, DfaCache, compile_dfa, lazy_inclusion_search
from .signatures import OperatorRegistry
from .symbolic import BOT, Sfa

#: The supported values of ``InclusionChecker(..., discharge=...)``.
#: ``batch`` only changes how the *engine* schedules cold obligations
#: (set-at-a-time groups, :mod:`repro.sfa.batch`); for the inline checks this
#: class serves directly it is identical to ``lazy`` — deliberately, since
#: batch mode must produce byte-identical verdicts and counters to lazy.
DISCHARGE_MODES = ("lazy", "compiled", "batch")


@dataclass
class InclusionStats(MergeableStats):
    """Counters mirroring #FA⊆ / avg s_FA / #prod-states of Tables 1, 3 and 4.

    ``merge``/``snapshot`` are derived from ``dataclasses.fields`` via
    :class:`MergeableStats`: a counter added here automatically participates
    in per-worker merges and before/after deltas.
    """

    fa_inclusion_checks: int = 0
    automata_built: int = 0
    total_transitions: int = 0
    #: DFA states constructed by the compiled discharge path
    states_built: int = 0
    #: product pairs explored by the lazy discharge path
    prod_states: int = 0
    context_cases: int = 0
    minterm_candidates: int = 0
    satisfiable_minterms: int = 0
    #: DFA-compilation memo behaviour (per (sfa_id, alphabet fingerprint))
    dfa_cache_hits: int = 0
    dfa_cache_misses: int = 0
    #: size-cap wipes of the DFA-compilation memo
    dfa_cache_evictions: int = 0
    #: alphabet constructions actually enumerated (#Alph — volatile: whether a
    #: check builds or reuses depends on what ran before it in this process)
    alphabet_builds: int = 0
    #: alphabet constructions answered by the cross-obligation memo, which
    #: replays the recorded counter bill so every other column stays put
    alphabet_memo_hits: int = 0
    fa_time_seconds: float = 0.0

    @property
    def average_transitions(self) -> float:
        if self.automata_built == 0:
            return 0.0
        return self.total_transitions / self.automata_built


@dataclass
class InclusionResult:
    included: bool
    #: one witness trace (one readable step per event) when not included
    counterexample: Optional[list[str]] = None


def render_witness(alphabet: Alphabet, witness: Sequence[int]) -> list[str]:
    """Render a character-index witness as a readable event trace.

    Each step shows the operator name and the qualifier valuation of the
    minterm (:meth:`Character.describe`), so failure messages read as
    ``put((key == x), not (value == x))`` rather than as raw indices.
    """
    return [alphabet.characters[index].describe() for index in witness]


class InclusionChecker:
    """Decides language inclusion between symbolic automata under a context."""

    def __init__(
        self,
        solver: smt.Solver,
        operators: OperatorRegistry,
        *,
        minimize: bool = False,
        filter_unsat_minterms: bool = True,
        max_literals: Optional[int] = None,
        strategy: str = "guided",
        discharge: str = "lazy",
        alphabet_memo: Optional[AlphabetMemo] = None,
        derivative_cache: Optional[DerivativeCache] = None,
    ) -> None:
        if discharge not in DISCHARGE_MODES:
            raise ValueError(
                f"unknown discharge mode {discharge!r}; expected one of {DISCHARGE_MODES}"
            )
        self.solver = solver
        self.operators = operators
        self.minimize = minimize
        self.filter_unsat_minterms = filter_unsat_minterms
        self.max_literals = resolve_max_literals(max_literals, strategy, filter_unsat_minterms)
        self.strategy = strategy
        self.discharge = discharge
        #: when set, alphabets come from the shared cross-obligation memo
        #: (hermetic construction + recorded-counter replay); when ``None``
        #: the checker builds them on its own solver, the standalone path
        self.alphabet_memo = alphabet_memo
        #: optional cross-search memo for lazy-derivative steps (pure reuse)
        self.derivative_cache = derivative_cache
        self.stats = InclusionStats()
        self.cache_hits = 0
        self._cache: dict[tuple, InclusionResult] = {}
        self._dfa_cache = DfaCache()

    # -- the main entry point ----------------------------------------------------------
    def check(
        self,
        hypotheses: Sequence[Term],
        lhs: Sfa,
        rhs: Sfa,
        *,
        extra_context_literals: Iterable[Term] = (),
    ) -> bool:
        return self.check_detailed(
            hypotheses, lhs, rhs, extra_context_literals=extra_context_literals
        ).included

    def check_detailed(
        self,
        hypotheses: Sequence[Term],
        lhs: Sfa,
        rhs: Sfa,
        *,
        extra_context_literals: Iterable[Term] = (),
    ) -> InclusionResult:
        cache_key = (
            tuple(sorted(h.term_id for h in hypotheses)),
            lhs.sfa_id,
            rhs.sfa_id,
            tuple(sorted(l.term_id for l in extra_context_literals)),
        )
        cached = self._cache.get(cache_key)
        if cached is not None:
            self.cache_hits += 1
            return cached
        alphabet_stats = AlphabetStats()
        if self.alphabet_memo is not None:
            alphabets, built = self.alphabet_memo.alphabets_for(
                list(hypotheses),
                [lhs, rhs],
                self.operators,
                extra_context_literals=extra_context_literals,
                max_literals=self.max_literals,
                filter_unsat=self.filter_unsat_minterms,
                strategy=self.strategy,
                stats=alphabet_stats,
                solver_stats=self.solver.stats,
            )
            if built:
                self.stats.alphabet_builds += 1
            else:
                self.stats.alphabet_memo_hits += 1
        else:
            alphabets = build_alphabets(
                self.solver,
                list(hypotheses),
                [lhs, rhs],
                self.operators,
                extra_context_literals=extra_context_literals,
                max_literals=self.max_literals,
                filter_unsat=self.filter_unsat_minterms,
                strategy=self.strategy,
                stats=alphabet_stats,
            )
            self.stats.alphabet_builds += 1
        self.stats.context_cases += alphabet_stats.context_cases
        self.stats.minterm_candidates += alphabet_stats.minterm_candidates
        self.stats.satisfiable_minterms += alphabet_stats.satisfiable_minterms

        outcome = InclusionResult(included=True)
        for alphabet in alphabets:
            result = self._check_under_alphabet(lhs, rhs, alphabet)
            if not result.included:
                outcome = result
                break
        self._cache[cache_key] = outcome
        return outcome

    # -- per-context-case check ---------------------------------------------------------
    def _check_under_alphabet(self, lhs: Sfa, rhs: Sfa, alphabet: Alphabet) -> InclusionResult:
        if self.discharge == "compiled":
            return self._check_compiled(lhs, rhs, alphabet)
        # "lazy" and "batch": batching happens at the engine's grouping
        # layer, a single inclusion query has no siblings to share with
        return self._check_lazy(lhs, rhs, alphabet)

    def _check_lazy(self, lhs: Sfa, rhs: Sfa, alphabet: Alphabet) -> InclusionResult:
        start = time.perf_counter()
        with trace.span("inclusion.lazy", cat="discharge", characters=len(alphabet.characters)):
            witness, explored = lazy_inclusion_search(
                lhs, rhs, alphabet, cache=self.derivative_cache
            )
        self.stats.prod_states += explored
        self.stats.fa_inclusion_checks += 1
        self.stats.fa_time_seconds += time.perf_counter() - start
        if witness is None:
            return InclusionResult(included=True)
        return InclusionResult(
            included=False, counterexample=render_witness(alphabet, witness)
        )

    def _check_compiled(self, lhs: Sfa, rhs: Sfa, alphabet: Alphabet) -> InclusionResult:
        start = time.perf_counter()
        with trace.span(
            "inclusion.compiled", cat="discharge", characters=len(alphabet.characters)
        ):
            hits_before = self._dfa_cache.hits
            misses_before = self._dfa_cache.misses
            evictions_before = self._dfa_cache.evictions
            lhs_dfa = compile_dfa(lhs, alphabet, cache=self._dfa_cache)
            rhs_dfa = compile_dfa(rhs, alphabet, cache=self._dfa_cache)
            self.stats.dfa_cache_hits += self._dfa_cache.hits - hits_before
            self.stats.dfa_cache_misses += self._dfa_cache.misses - misses_before
            self.stats.dfa_cache_evictions += self._dfa_cache.evictions - evictions_before
            if self.minimize:
                lhs_dfa = lhs_dfa.minimize()
                rhs_dfa = rhs_dfa.minimize()
            self.stats.automata_built += 2
            self.stats.total_transitions += lhs_dfa.num_transitions + rhs_dfa.num_transitions
            self.stats.states_built += lhs_dfa.num_states + rhs_dfa.num_states
            self.stats.fa_inclusion_checks += 1
            witness, explored = lhs_dfa.counterexample_search(rhs_dfa)
            self.stats.prod_states += explored
        self.stats.fa_time_seconds += time.perf_counter() - start
        if witness is None:
            return InclusionResult(included=True)
        return InclusionResult(
            included=False, counterexample=render_witness(alphabet, witness)
        )

    # -- auxiliary queries used by the type checker --------------------------------------
    def is_empty(self, hypotheses: Sequence[Term], formula: Sfa) -> bool:
        """Is L(formula) empty under every instantiation of the context?"""
        if formula is BOT:
            # the initial state is non-accepting and has no transitions: no
            # trace is ever accepted, so skip the alphabet transformation
            return True
        return self.check(hypotheses, formula, BOT)

    def equivalent(self, hypotheses: Sequence[Term], lhs: Sfa, rhs: Sfa) -> bool:
        return self.check(hypotheses, lhs, rhs) and self.check(hypotheses, rhs, lhs)
