"""The tracked benchmark harness (``repro bench``).

Runs the evaluation corpus twice — **cold** (no store, every obligation
discharged) and **warm** (a second run answered from a store the cold run
populated) — and reports wall-clock times next to the full deterministic
counter set of Tables 1/3/4.  The JSON payload is what gets committed as
``BENCH_PR<k>.json``: the counters give every later session an exact
behavioural fingerprint to diff against, the wall times give CI a regression
tripwire (``compare_payloads`` applies the tolerance), and the ``baseline``
section carries the numbers of the previous PR so "did this PR actually get
faster?" stays answerable from the repository alone.

Wall-clock comparisons are only meaningful on comparable hardware; the
committed payload records the machine it was measured on, and the CI
tolerance exists precisely because runners drift.  The *counters*, by
contrast, must reproduce everywhere byte for byte.
"""

from __future__ import annotations

import json
import platform
import sys
import tempfile
import time
from pathlib import Path
from typing import Optional

from ..evaluation.runner import EvaluationReport, run_evaluation
from ..evaluation.tables import table1, table3, table4
from ..store.obligation_store import ObligationStore
from ..typecheck.checker import CheckerConfig

#: Payload layout version for BENCH_*.json files.
BENCH_SCHEMA = 1

#: The per-method counters aggregated into the payload (sums over the corpus).
_COUNTER_FIELDS = (
    "obligations",
    "smt_queries",
    "smt_cache_hits",
    "sat_conflicts",
    "fa_inclusion_checks",
    "dfa_cache_hits",
    "alphabet_builds",
    "alphabet_memo_hits",
    "prod_states",
    "states_built",
    "store_hits",
)


def _aggregate_counters(report: EvaluationReport) -> dict:
    totals = {field: 0 for field in _COUNTER_FIELDS}
    for stats in report.adt_stats:
        for result in stats.method_results:
            for field in _COUNTER_FIELDS:
                totals[field] += getattr(result.stats, field)
    return totals


def _phase_payload(report: EvaluationReport, wall_seconds: float, all_walls: list) -> dict:
    return {
        "wall_seconds": round(wall_seconds, 4),
        "wall_seconds_all_runs": [round(w, 4) for w in all_walls],
        "all_verified": report.all_verified,
        "all_negatives_rejected": report.all_negatives_rejected,
        "per_adt_wall_seconds": {
            f"{stats.adt}/{stats.library}": round(stats.total_time_seconds, 4)
            for stats in report.adt_stats
        },
        "counters": _aggregate_counters(report),
        "tables_deterministic": {
            "table1": table1(report, deterministic=True),
            "table3": table3(report, deterministic=True),
            "table4": table4(report, deterministic=True),
        },
    }


def run_bench(
    *,
    include_slow: bool = False,
    runs: int = 3,
    config: Optional[CheckerConfig] = None,
    store_path: Optional[str] = None,
) -> dict:
    """Run the corpus cold and warm; return the BENCH payload.

    ``runs`` cold runs are timed and the best (minimum) wall time reported —
    the usual benchmarking convention, since noise only ever adds time.  The
    warm phase reuses a store populated by one extra cold pass (kept out of
    the timings) so its wall time measures pure store-replay speed.
    """
    if runs < 1:
        raise ValueError("bench requires runs >= 1")
    config = config or CheckerConfig()

    cold_walls: list[float] = []
    cold_report: Optional[EvaluationReport] = None
    for _ in range(runs):
        start = time.perf_counter()
        report = run_evaluation(include_slow=include_slow, config=config)
        wall = time.perf_counter() - start
        cold_walls.append(wall)
        if cold_report is None or wall <= min(cold_walls):
            cold_report = report

    with tempfile.TemporaryDirectory(prefix="pymarple-bench-") as tmp:
        store_dir = store_path or str(Path(tmp) / "store")
        store = ObligationStore(store_dir, backend=config.store_backend)
        run_evaluation(include_slow=include_slow, config=config, store=store)
        store.flush()
        store.commit_run()

        warm_walls: list[float] = []
        warm_report: Optional[EvaluationReport] = None
        for _ in range(runs):
            warm_store = ObligationStore(store_dir, backend=config.store_backend)
            start = time.perf_counter()
            report = run_evaluation(
                include_slow=include_slow, config=config, store=warm_store
            )
            wall = time.perf_counter() - start
            warm_walls.append(wall)
            if warm_report is None or wall <= min(warm_walls):
                warm_report = report
            warm_store.flush()
            warm_store.commit_run()

    assert cold_report is not None and warm_report is not None
    payload = {
        "schema": BENCH_SCHEMA,
        "corpus": "full" if include_slow else "fast",
        "runs": runs,
        "machine": {
            "python": sys.version.split()[0],
            "platform": platform.platform(),
            "machine": platform.machine(),
        },
        "config": {
            "backend": config.backend,
            "discharge": config.discharge,
            "strategy": config.enumeration_strategy,
            "workers": config.workers,
            "schedule": config.schedule,
            "memo": config.cross_obligation_memo,
        },
        "cold": _phase_payload(cold_report, min(cold_walls), cold_walls),
        "warm": _phase_payload(warm_report, min(warm_walls), warm_walls),
    }
    return payload


def load_payload(path) -> dict:
    """Read a BENCH payload; raises ValueError on a malformed file."""
    payload = json.loads(Path(path).read_text())
    if not isinstance(payload, dict) or "cold" not in payload:
        raise ValueError("not a BENCH payload (missing the 'cold' phase)")
    return payload


def compare_payloads(
    current: dict, baseline: dict, *, tolerance: float = 0.2
) -> tuple[bool, list[str]]:
    """Diff a fresh payload against a committed baseline.

    The gate is the **cold** wall time: a regression beyond ``tolerance``
    (relative) fails.  Warm-time drift and counter changes are reported but
    advisory — counters legitimately move when the pipeline changes, and the
    committed payload is refreshed in the same commit that moves them.
    """
    messages: list[str] = []
    ok = True
    base_cold = float(baseline["cold"]["wall_seconds"])
    cur_cold = float(current["cold"]["wall_seconds"])
    budget = base_cold * (1.0 + tolerance)
    delta = (cur_cold - base_cold) / base_cold if base_cold > 0 else 0.0
    verdict = "ok" if cur_cold <= budget else "REGRESSION"
    messages.append(
        f"cold wall: {cur_cold:.3f}s vs baseline {base_cold:.3f}s "
        f"({delta:+.1%}, tolerance {tolerance:.0%}) — {verdict}"
    )
    if cur_cold > budget:
        ok = False
    base_warm = baseline.get("warm", {}).get("wall_seconds")
    cur_warm = current.get("warm", {}).get("wall_seconds")
    if base_warm is not None and cur_warm is not None:
        messages.append(
            f"warm wall: {float(cur_warm):.3f}s vs baseline {float(base_warm):.3f}s (advisory)"
        )
    base_counters = baseline["cold"].get("counters", {})
    cur_counters = current["cold"].get("counters", {})
    moved = {
        key: (base_counters[key], cur_counters[key])
        for key in sorted(set(base_counters) & set(cur_counters))
        if base_counters[key] != cur_counters[key]
    }
    if moved:
        rendered = ", ".join(f"{k}: {a} -> {b}" for k, (a, b) in moved.items())
        messages.append(f"counters moved (advisory): {rendered}")
    else:
        messages.append("counters: identical to baseline")
    return ok, messages


def summarize(payload: dict) -> str:
    """A short human rendering of one payload (printed by ``repro bench``)."""
    cold, warm = payload["cold"], payload["warm"]
    counters = cold["counters"]
    lines = [
        f"bench ({payload['corpus']} corpus, best of {payload['runs']}):",
        f"  cold: {cold['wall_seconds']:.3f}s  "
        f"(verified={cold['all_verified']}, negatives rejected={cold['all_negatives_rejected']})",
        f"  warm: {warm['wall_seconds']:.3f}s  (store hits={warm['counters']['store_hits']})",
        f"  obligations={counters['obligations']}  #SAT={counters['smt_queries']}  "
        f"alphabet builds={counters['alphabet_builds']}  "
        f"memo hits={counters['alphabet_memo_hits']}  prod states={counters['prod_states']}",
    ]
    return "\n".join(lines)
