"""Unit tests for the obligation IR and the schedule/discharge engine."""

from dataclasses import dataclass

import pytest

from repro import smt
from repro.smt import sorts
from repro.engine import (
    DischargeParams,
    EngineStats,
    Obligation,
    ObligationEngine,
    ObligationSet,
    discharge_obligation,
)
from repro.sfa import symbolic as S
from repro.sfa.signatures import OperatorRegistry
from repro.statsutil import MergeableStats


@pytest.fixture(scope="module")
def registry() -> OperatorRegistry:
    ops = OperatorRegistry()
    ops.declare("insert", [("x", sorts.ELEM)], sorts.UNIT)
    ops.declare("mem", [("x", sorts.ELEM)], smt.BOOL)
    return ops


def _invariant(registry):
    el = smt.var("eng_el", sorts.ELEM)
    ins = S.event_pinned(registry["insert"], [el])
    return el, S.globally(S.implies(ins, S.next_(S.not_(S.eventually(ins)))))


# ---------------------------------------------------------------------------
# The IR: emission, fingerprints, dedupe, scheduling
# ---------------------------------------------------------------------------


def test_emit_records_walk_order_and_provenance(registry):
    _, inv = _invariant(registry)
    obset = ObligationSet(method="insert")
    first = obset.emit("coverage", [], inv, S.any_trace())
    second = obset.emit(
        "postcondition", [], inv, inv, provenance="insert: leaf", failure_message="boom"
    )
    assert (first.index, second.index) == (0, 1)
    assert first.provenance == "insert: coverage"
    assert second.failure_message == "boom"
    with pytest.raises(ValueError):
        obset.emit("mystery", [], inv, inv)


def test_fingerprint_is_structural(registry):
    el, inv = _invariant(registry)
    hyp = smt.eq(el, el)
    obset = ObligationSet()
    a = obset.emit("coverage", [hyp], inv, S.any_trace())
    b = obset.emit("postcondition", [hyp], inv, S.any_trace())
    c = obset.emit("coverage", [], inv, S.any_trace())
    # same hypotheses + automata → same fingerprint regardless of kind/index
    assert a.fingerprint() == b.fingerprint()
    assert a.fingerprint() != c.fingerprint()


def test_dedupe_groups_isomorphic_obligations(registry):
    _, inv = _invariant(registry)
    obset = ObligationSet()
    obset.emit("coverage", [], inv, S.any_trace())
    obset.emit("postcondition", [], inv, inv)
    obset.emit("postcondition", [], inv, S.any_trace())  # alias of the first
    groups = obset.deduped()
    assert len(groups) == 2
    representative, aliases = groups[0]
    assert representative.index == 0
    assert [alias.index for alias in aliases] == [2]


def test_schedule_orders_cheapest_first(registry):
    _, inv = _invariant(registry)
    small = S.any_trace()
    obset = ObligationSet()
    obset.emit("postcondition", [], inv, inv)   # expensive
    obset.emit("coverage", [], small, small)    # cheap
    scheduled = obset.schedule()
    assert scheduled[0][0].index == 1
    assert scheduled[1][0].index == 0


def test_emit_emptiness_targets_bot(registry):
    _, inv = _invariant(registry)
    obset = ObligationSet()
    obligation = obset.emit_emptiness([], inv)
    assert obligation.kind == "emptiness"
    assert obligation.rhs is S.BOT


# ---------------------------------------------------------------------------
# Hermetic discharge
# ---------------------------------------------------------------------------


def test_discharge_obligation_is_deterministic(registry):
    el, inv = _invariant(registry)
    effect = S.and_(S.event_pinned(registry["insert"], [el]), S.last())
    obligation = Obligation(
        kind="postcondition",
        hypotheses=(),
        lhs=S.concat(inv, effect),
        rhs=inv,
        provenance="unit",
        failure_message="not preserved",
        index=0,
    )
    params = DischargeParams(operators=registry)
    first = discharge_obligation(obligation, params)
    second = discharge_obligation(obligation, params)
    assert first["included"] is second["included"] is False
    assert first["counterexample"] == second["counterexample"]
    assert first["counterexample"], "a readable witness trace is produced"
    assert all("insert" in step or "mem" in step for step in first["counterexample"])

    # hermetic: identical counters on every run (wall-clock aside)
    def counters(result):
        return {k: v for k, v in result.items() if not k.endswith("seconds")}

    assert counters(first["inclusion"]) == counters(second["inclusion"])
    assert counters(first["solver"]) == counters(second["solver"])


def test_engine_memo_and_alias_outcomes(registry):
    el, inv = _invariant(registry)
    engine = ObligationEngine(registry)
    obset = ObligationSet(method="m")
    obset.emit("postcondition", [], inv, inv)
    obset.emit("coverage", [], inv, inv)  # alias
    outcomes = engine.discharge_all(obset)
    assert outcomes[0].included and outcomes[1].included
    assert outcomes[1].deduped and not outcomes[0].deduped
    assert engine.stats.obligations_discharged == 1
    assert engine.stats.deduped_aliases == 1

    # a second batch with the same obligation is answered from the memo
    obset2 = ObligationSet(method="m2")
    obset2.emit("postcondition", [], inv, inv)
    outcomes2 = engine.discharge_all(obset2)
    assert outcomes2[0].included and outcomes2[0].from_memo
    assert engine.stats.memo_hits == 1
    assert engine.stats.obligations_discharged == 1  # nothing re-discharged


def test_discharge_resource_errors_become_failures(registry):
    """A resource limit during discharge reports as a failed obligation."""
    _, inv = _invariant(registry)
    engine = ObligationEngine(registry, max_literals=0)
    obset = ObligationSet(method="m")
    obset.emit("postcondition", [], inv, inv, provenance="m: leaf")
    outcomes = engine.discharge_all(obset)
    assert outcomes[0].failed
    assert outcomes[0].error and "budget" in outcomes[0].error


def test_engine_merges_worker_stats_into_caller_tables(registry):
    from repro.sfa.inclusion import InclusionStats
    from repro.smt.solver import SolverStats

    el, inv = _invariant(registry)
    engine = ObligationEngine(registry)
    solver_stats = SolverStats()
    inclusion_stats = InclusionStats()
    obset = ObligationSet(method="m")
    obset.emit("postcondition", [], inv, inv)
    engine.discharge_all(
        obset, solver_stats=solver_stats, inclusion_stats=inclusion_stats
    )
    assert solver_stats.queries > 0
    assert inclusion_stats.fa_inclusion_checks == 1
    assert inclusion_stats.prod_states > 0


# ---------------------------------------------------------------------------
# The fields-driven stats mixin
# ---------------------------------------------------------------------------


@dataclass
class _Demo(MergeableStats):
    hits: int = 0
    misses: int = 0
    seconds: float = 0.0


def test_mergeable_stats_covers_every_field():
    a = _Demo(hits=1, misses=2, seconds=0.5)
    a.merge(_Demo(hits=10, misses=20, seconds=1.5))
    assert (a.hits, a.misses, a.seconds) == (11, 22, 2.0)

    snap = a.snapshot()
    a.hits += 5
    assert snap.hits == 11  # snapshots are independent copies
    assert a.since(snap) == _Demo(hits=5, misses=0, seconds=0.0)

    round_tripped = _Demo.from_dict(a.as_dict() | {"unknown": 99})
    assert round_tripped == a


def test_engine_stats_is_mergeable():
    stats = EngineStats(obligations_emitted=2, memo_hits=1)
    stats.merge(EngineStats(obligations_emitted=3, batches=1))
    assert stats.obligations_emitted == 5
    assert stats.memo_hits == 1
    assert stats.batches == 1
