"""The sharded suite runner: partition the corpus's obligations across N processes.

``run_sharded_evaluation(shards=N, store=...)`` verifies the whole corpus in
two phases:

1. **Warm** — N ``fork``-ed worker processes each run the full emit walk but
   discharge only the obligations whose fingerprint hashes into their shard
   (:func:`repro.store.fingerprint.shard_of`), writing verdicts + counters to
   a private ``shards/shard-K.jsonl`` file.  Obligation fingerprints are
   content addresses, so the partition is identical in every process and
   covers every obligation exactly once; obligations already present in the
   store are answered from it and not re-recorded.
2. **Merge + report** — the parent absorbs the shard files into the main log
   (deterministically: shard-index order, first write wins) and re-runs the
   evaluation warm: every obligation is now answered from the store, and the
   merged tables are computed in one process.

Because discharge is hermetic — every per-obligation counter is a pure
function of (warm snapshot, obligation) — and because the warm run repeats
the exact emit sequence of a serial run, ``--shards N`` never changes any
counter derived from the obligation set itself: the phase-2 tables are
byte-identical to a serial cold run's (volatile columns aside).
"""

from __future__ import annotations

import multiprocessing
from dataclasses import replace
from pathlib import Path
from typing import Optional, Sequence

from ..evaluation.runner import EvaluationReport, run_evaluation
from ..suite.benchmark import AdtBenchmark
from ..suite.registry import benchmark_by_key
from ..typecheck.checker import CheckerConfig
from .obligation_store import ObligationStore


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


def _warm_shard(
    store_path: Path,
    store_backend: str,
    index: int,
    shards: int,
    keys: Optional[list[str]],
    include_slow: bool,
    config: CheckerConfig,
    check_negative_variants: bool,
) -> None:
    """One forked worker: discharge this shard's obligations into a shard file."""
    # the backend is pinned explicitly: a forced backend choice in the parent
    # (e.g. REPRO_STORE_BACKEND at parent start) must not be re-inferred here
    store = ObligationStore(store_path, shard_output=index, backend=store_backend)
    benchmarks = [benchmark_by_key(key) for key in keys] if keys is not None else None
    # workers=1: parallelism already comes from the shard processes themselves
    shard_config = replace(config, shard=(index, shards), workers=1)
    run_evaluation(
        benchmarks,
        include_slow=include_slow,
        config=shard_config,
        check_negative_variants=check_negative_variants,
        store=store,
    )
    store.flush()


def run_sharded_evaluation(
    shards: int,
    store: ObligationStore,
    *,
    benchmarks: Optional[Sequence[AdtBenchmark]] = None,
    include_slow: bool = True,
    config: Optional[CheckerConfig] = None,
    check_negative_variants: bool = True,
) -> EvaluationReport:
    """Verify the corpus with its obligations partitioned across ``shards`` processes.

    ``benchmarks`` must come from the registry (the forked workers re-resolve
    them by key).  Falls back to a plain (store-backed) run when sharding is
    pointless or ``fork`` is unavailable.
    """
    if store is None:
        raise ValueError("sharded evaluation requires an obligation store")
    config = config or CheckerConfig()
    if shards <= 1 or not _fork_available():
        return run_evaluation(
            benchmarks,
            include_slow=include_slow,
            config=config,
            check_negative_variants=check_negative_variants,
            store=store,
        )

    keys = [benchmark.key for benchmark in benchmarks] if benchmarks is not None else None
    store.flush()  # children read the main log; make pending entries visible
    # neither an open sqlite connection nor a remote backend's keep-alive
    # socket may be carried across fork() — close here (children and the
    # parent alike reconnect lazily on next use; a remote child also takes a
    # fresh client identity, so per-client idempotency buckets never collide)
    store.backend.close()

    context = multiprocessing.get_context("fork")
    processes = [
        context.Process(
            target=_warm_shard,
            args=(
                store.path,
                store.backend_name,
                index,
                shards,
                keys,
                include_slow,
                config,
                check_negative_variants,
            ),
        )
        for index in range(shards)
    ]
    for process in processes:
        process.start()
    for process in processes:
        process.join()
    failed = [index for index, process in enumerate(processes) if process.exitcode != 0]
    if failed:
        raise RuntimeError(f"shard worker(s) {failed} exited with a non-zero status")

    store.absorb_shards()
    # phase 2: a warm single-process run produces the merged, deterministic report
    return run_evaluation(
        benchmarks,
        include_slow=include_slow,
        config=config,
        check_negative_variants=check_negative_variants,
        store=store,
    )
