"""A small DPLL SAT solver.

The propositional problems produced by the HAT type checker are tiny (a few
dozen variables coming from qualifier literals and Tseitin auxiliaries), so
the solver favours simplicity and obvious correctness over raw speed:
recursive DPLL with unit propagation and a most-occurrences decision
heuristic.  The interface is incremental — clauses may be added between
``solve`` calls — which is what the lazy SMT loop in ``repro.smt.solver``
relies on to add theory blocking clauses.
"""

from __future__ import annotations

import sys
from typing import Iterable, Optional

Clause = tuple[int, ...]


class SatSolver:
    """Incremental DPLL solver over integer literals (DIMACS convention)."""

    def __init__(self) -> None:
        self._clauses: list[Clause] = []
        self._num_vars = 0
        self.stats_decisions = 0
        self.stats_propagations = 0
        self.stats_conflicts = 0

    # -- problem construction ---------------------------------------------------
    def add_clause(self, clause: Iterable[int]) -> None:
        clause = tuple(clause)
        for lit in clause:
            if lit == 0:
                raise ValueError("0 is not a valid literal")
            self._num_vars = max(self._num_vars, abs(lit))
        self._clauses.append(clause)

    def add_clauses(self, clauses: Iterable[Iterable[int]]) -> None:
        for clause in clauses:
            self.add_clause(clause)

    def ensure_vars(self, num_vars: int) -> None:
        self._num_vars = max(self._num_vars, num_vars)

    @property
    def num_vars(self) -> int:
        return self._num_vars

    @property
    def num_clauses(self) -> int:
        return len(self._clauses)

    # -- solving ------------------------------------------------------------------
    def solve(self, assumptions: Iterable[int] = ()) -> Optional[dict[int, bool]]:
        """Return a satisfying assignment ``{var: bool}`` or ``None`` if UNSAT.

        ``assumptions`` are literals that must hold in the returned model.
        The returned model assigns every variable seen by the solver (variables
        not constrained by any clause default to ``False``).
        """
        clauses = list(self._clauses)
        for lit in assumptions:
            if lit == 0:
                raise ValueError("0 is not a valid literal")
            self._num_vars = max(self._num_vars, abs(lit))
            clauses.append((lit,))

        result = self._dpll(clauses, {})
        if result is None:
            return None
        return {v: result.get(v, False) for v in range(1, self._num_vars + 1)}

    def is_satisfiable(self, assumptions: Iterable[int] = ()) -> bool:
        return self.solve(assumptions) is not None

    # -- internals ----------------------------------------------------------------
    def _unit_propagate(
        self, clauses: list[Clause], assignment: dict[int, bool]
    ) -> Optional[dict[int, bool]]:
        """Close ``assignment`` under unit propagation; ``None`` on conflict."""
        assignment = dict(assignment)
        changed = True
        while changed:
            changed = False
            for clause in clauses:
                unassigned_lit: Optional[int] = None
                num_unassigned = 0
                satisfied = False
                for lit in clause:
                    value = assignment.get(abs(lit))
                    if value is None:
                        num_unassigned += 1
                        unassigned_lit = lit
                    elif value == (lit > 0):
                        satisfied = True
                        break
                if satisfied:
                    continue
                if num_unassigned == 0:
                    self.stats_conflicts += 1
                    return None
                if num_unassigned == 1:
                    assert unassigned_lit is not None
                    assignment[abs(unassigned_lit)] = unassigned_lit > 0
                    self.stats_propagations += 1
                    changed = True
        return assignment

    def _pick_branch_var(
        self, clauses: list[Clause], assignment: dict[int, bool]
    ) -> Optional[int]:
        """Most-occurrences-in-unsatisfied-clauses heuristic."""
        counts: dict[int, int] = {}
        for clause in clauses:
            if any(assignment.get(abs(lit)) == (lit > 0) for lit in clause):
                continue
            for lit in clause:
                if abs(lit) not in assignment:
                    counts[abs(lit)] = counts.get(abs(lit), 0) + 1
        if not counts:
            return None
        return max(counts, key=lambda v: (counts[v], -v))

    def _dpll(
        self, clauses: list[Clause], assignment: dict[int, bool]
    ) -> Optional[dict[int, bool]]:
        needed_depth = self._num_vars + 64
        if sys.getrecursionlimit() < needed_depth:
            sys.setrecursionlimit(needed_depth + 1024)

        propagated = self._unit_propagate(clauses, assignment)
        if propagated is None:
            return None
        branch_var = self._pick_branch_var(clauses, propagated)
        if branch_var is None:
            return propagated
        self.stats_decisions += 1
        for value in (True, False):
            candidate = dict(propagated)
            candidate[branch_var] = value
            result = self._dpll(clauses, candidate)
            if result is not None:
                return result
        return None
