"""The stateful Graph library used by the DFA and ConnectedGraph benchmarks.

Operators::

    add_node   : Node -> unit
    connect    : Node -> Char -> Node -> unit      (add a labelled edge)
    disconnect : Node -> Char -> Node -> unit      (remove a labelled edge)
    is_node    : Node -> bool
    connected  : Node -> Char -> bool              (is there a live outgoing edge?)

``connected`` and ``is_node`` are intersection types discriminating on the
corresponding trace predicates, in the same style as ``exists`` for KVStore.
"""

from __future__ import annotations

from .. import smt
from ..smt.sorts import BOOL, UNIT, Sort
from ..sfa import symbolic
from ..sfa.signatures import OperatorRegistry
from ..sfa.symbolic import Sfa
from ..types.context import BuiltinContext, PureOpContext
from ..types.rtypes import FunType, HatType, Intersection, RefinementType, base, nu
from .base import Library


def node_predicate(operators: OperatorRegistry, node: smt.Term) -> Sfa:
    """P_node(n) ≐ ♦⟨add_node ∼n⟩."""
    return symbolic.eventually(symbolic.event_pinned(operators["add_node"], {"n": node}))


def live_edge_predicate(operators: OperatorRegistry, node: smt.Term, char: smt.Term) -> Sfa:
    """P_out(n, c) ≐ ♦(⟨connect ∼n ∼c _⟩ ∧ ◯ □ ¬⟨disconnect ∼n ∼c _⟩)."""
    connect = operators["connect"]
    disconnect = operators["disconnect"]
    established = symbolic.event(
        connect,
        smt.and_(smt.eq(connect.arg_vars[0], node), smt.eq(connect.arg_vars[1], char)),
    )
    removed = symbolic.event(
        disconnect,
        smt.and_(smt.eq(disconnect.arg_vars[0], node), smt.eq(disconnect.arg_vars[1], char)),
    )
    return symbolic.eventually(
        symbolic.and_(established, symbolic.next_(symbolic.globally(symbolic.not_(removed))))
    )


def _single_event(precondition: Sfa, event: Sfa) -> Sfa:
    return symbolic.concat(precondition, symbolic.and_(event, symbolic.last()))


def make_graph(node_sort: Sort, char_sort: Sort, *, name: str = "Graph") -> Library:
    operators = OperatorRegistry()
    add_node = operators.declare("add_node", [("n", node_sort)], UNIT)
    connect = operators.declare(
        "connect", [("src", node_sort), ("char", char_sort), ("dst", node_sort)], UNIT
    )
    disconnect = operators.declare(
        "disconnect", [("src", node_sort), ("char", char_sort), ("dst", node_sort)], UNIT
    )
    is_node = operators.declare("is_node", [("n", node_sort)], BOOL)
    connected = operators.declare("connected", [("src", node_sort), ("char", char_sort)], BOOL)

    n_param = smt.var("n", node_sort)
    src_param = smt.var("src", node_sort)
    char_param = smt.var("char", char_sort)
    dst_param = smt.var("dst", node_sort)
    delta = BuiltinContext()

    def any_context_op(op_name, params, event):
        result = HatType(
            precondition=symbolic.any_trace(),
            result=base(UNIT),
            postcondition=_single_event(symbolic.any_trace(), event),
        )
        ty = result
        for pname, psort in reversed(params):
            ty = FunType(pname, base(psort), ty)
        delta.add(op_name, ty)

    any_context_op(
        "add_node", [("n", node_sort)], symbolic.event_pinned(add_node, {"n": n_param})
    )
    any_context_op(
        "connect",
        [("src", node_sort), ("char", char_sort), ("dst", node_sort)],
        symbolic.event_pinned(connect, {"src": src_param, "char": char_param, "dst": dst_param}),
    )
    any_context_op(
        "disconnect",
        [("src", node_sort), ("char", char_sort), ("dst", node_sort)],
        symbolic.event_pinned(
            disconnect, {"src": src_param, "char": char_param, "dst": dst_param}
        ),
    )

    p_node = node_predicate(operators, n_param)
    delta.add(
        "is_node",
        FunType(
            "n",
            base(node_sort),
            Intersection(
                (
                    HatType(
                        precondition=p_node,
                        result=RefinementType(BOOL, smt.eq(nu(BOOL), smt.TRUE)),
                        postcondition=_single_event(
                            p_node,
                            symbolic.event_pinned(is_node, {"n": n_param}, result=smt.TRUE),
                        ),
                    ),
                    HatType(
                        precondition=symbolic.not_(p_node),
                        result=RefinementType(BOOL, smt.eq(nu(BOOL), smt.FALSE)),
                        postcondition=_single_event(
                            symbolic.not_(p_node),
                            symbolic.event_pinned(is_node, {"n": n_param}, result=smt.FALSE),
                        ),
                    ),
                )
            ),
        ),
    )

    p_out = live_edge_predicate(operators, src_param, char_param)
    delta.add(
        "connected",
        FunType(
            "src",
            base(node_sort),
            FunType(
                "char",
                base(char_sort),
                Intersection(
                    (
                        HatType(
                            precondition=p_out,
                            result=RefinementType(BOOL, smt.eq(nu(BOOL), smt.TRUE)),
                            postcondition=_single_event(
                                p_out,
                                symbolic.event_pinned(
                                    connected,
                                    {"src": src_param, "char": char_param},
                                    result=smt.TRUE,
                                ),
                            ),
                        ),
                        HatType(
                            precondition=symbolic.not_(p_out),
                            result=RefinementType(BOOL, smt.eq(nu(BOOL), smt.FALSE)),
                            postcondition=_single_event(
                                symbolic.not_(p_out),
                                symbolic.event_pinned(
                                    connected,
                                    {"src": src_param, "char": char_param},
                                    result=smt.FALSE,
                                ),
                            ),
                        ),
                    )
                ),
            ),
        ),
    )

    # -- concrete trace semantics ---------------------------------------------------------
    def add_node_rule(trace, args):
        return ()

    def connect_rule(trace, args):
        return ()

    def disconnect_rule(trace, args):
        return ()

    def is_node_rule(trace, args):
        node = args[0]
        return trace.any_event("add_node", lambda e: e.args[0] == node)

    def connected_rule(trace, args):
        src, char = args
        live = set()
        for event in trace:
            if event.op == "connect" and event.args[0] == src and event.args[1] == char:
                live.add(event.args[2])
            elif event.op == "disconnect" and event.args[0] == src and event.args[1] == char:
                live.discard(event.args[2])
        return bool(live)

    return Library(
        name=name,
        operators=operators,
        delta=delta,
        pure_ops=PureOpContext(),
        model_rules={
            "add_node": add_node_rule,
            "connect": connect_rule,
            "disconnect": disconnect_rule,
            "is_node": is_node_rule,
            "connected": connected_rule,
        },
    )
