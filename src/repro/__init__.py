"""repro (pymarple) — a reproduction of "A HAT Trick" (PLDI 2024).

The package verifies *representation invariants* of datatypes implemented on
top of stateful libraries, using Hoare Automata Types: refinement types whose
effect component is a pair of symbolic finite automata over the trace of
library interactions.

Sub-packages
------------
``repro.smt``        from-scratch SMT substrate (terms, SAT, EUF, arithmetic)
``repro.sfa``        symbolic finite automata, minterms, DFA algebra, inclusion
``repro.lang``       the lambda-E core calculus: parser, MNF desugarer, interpreter
``repro.types``      refinement types, HATs, typing contexts, subtyping
``repro.typecheck``  the bidirectional checking algorithm and Abduce
``repro.libraries``  backing stateful libraries (KVStore, Set, Graph, MemCell)
``repro.suite``      the benchmark corpus (Table 1/2 rows)
``repro.evaluation`` the experiment runner and Table 1-4 formatters
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
