"""Unit coverage for the span tracer: recording, buffering, and both formats."""

import json

import pytest

from repro.obs import trace
from repro.obs.schema import validate_spans, validate_trace, validate_trace_file
from repro.obs.trace import (
    TRACE_SCHEMA,
    Tracer,
    read_trace,
    write_trace,
    _NULL_SPAN,
)


@pytest.fixture(autouse=True)
def no_leaked_tracer():
    """Every test starts and ends with tracing off."""
    trace.uninstall()
    yield
    trace.uninstall()


# -- the no-op default -------------------------------------------------------------


def test_disabled_module_span_is_the_shared_null_singleton():
    assert not trace.enabled()
    span = trace.span("anything", cat="discharge", key="value")
    assert span is _NULL_SPAN
    with span as inner:
        inner.set(late="attribute")  # must be a no-op, not an error
    assert trace.mark() == 0
    assert trace.drain(0) == []
    assert trace.current_span() is None
    assert trace.open_spans() == []
    trace.ingest([{"id": 1}])  # dropped silently while disabled


# -- recording ---------------------------------------------------------------------


def test_nested_spans_record_parents_and_durations():
    tracer = trace.install(Tracer())
    with trace.span("outer", cat="run"):
        with trace.span("inner", cat="discharge", fp="abc") as inner:
            inner.set(hit=True)
    trace.uninstall()

    inner_rec, outer_rec = tracer.spans  # children complete (append) first
    assert inner_rec["name"] == "inner"
    assert inner_rec["parent"] == outer_rec["id"]
    assert "parent" not in outer_rec
    assert inner_rec["args"] == {"fp": "abc", "hit": True}
    assert 0 <= inner_rec["ts"] <= inner_rec["ts"] + inner_rec["dur"]
    assert outer_rec["dur"] >= inner_rec["dur"]
    assert validate_spans(tracer.spans) == []


def test_span_ids_are_unique_and_open_stack_tracks_nesting():
    tracer = trace.install(Tracer())
    with trace.span("a"):
        with trace.span("b"):
            open_names = [record["name"] for record in trace.open_spans()]
            assert open_names == ["a", "b"]
            assert trace.current_span()["name"] == "b"
    ids = [record["id"] for record in tracer.spans]
    assert len(ids) == len(set(ids))


def test_exception_inside_span_still_closes_it():
    tracer = trace.install(Tracer())
    with pytest.raises(RuntimeError):
        with trace.span("doomed"):
            raise RuntimeError("boom")
    assert [record["name"] for record in tracer.spans] == ["doomed"]
    assert tracer.open_spans() == []


# -- worker buffering (the drain/ingest round trip) --------------------------------


def test_drain_pops_only_spans_after_the_mark_and_ingest_restores_them():
    tracer = trace.install(Tracer())
    with trace.span("before"):
        pass
    marked = trace.mark()
    with trace.span("worker-1"):
        pass
    with trace.span("worker-2"):
        pass
    drained = trace.drain(marked)
    assert [record["name"] for record in drained] == ["worker-1", "worker-2"]
    assert [record["name"] for record in tracer.spans] == ["before"]
    trace.ingest(drained)
    assert [record["name"] for record in tracer.spans] == [
        "before",
        "worker-1",
        "worker-2",
    ]


# -- export / import ---------------------------------------------------------------


def _record_some_spans(meta=None):
    tracer = Tracer(meta=meta)
    trace.install(tracer)
    with trace.span("evaluate", cat="run"):
        with trace.span("discharge", cat="discharge", obligation_fp="deadbeef"):
            pass
    trace.uninstall()
    tracer.counters = {"caches": {"derivative_cache_hits": 7}}
    return tracer


@pytest.mark.parametrize("suffix", (".jsonl", ".json"))
def test_write_read_round_trip(tmp_path, suffix):
    tracer = _record_some_spans(meta={"command": "evaluate"})
    path = tmp_path / f"trace{suffix}"
    write_trace(tracer, str(path))

    assert validate_trace_file(str(path)) == []
    data = read_trace(str(path))
    assert validate_trace(data) == []
    assert data["meta"]["schema"] == TRACE_SCHEMA
    assert data["meta"]["pid"] == tracer.pid
    assert data["meta"]["command"] == "evaluate"
    assert data["counters"] == {"caches": {"derivative_cache_hits": 7}}

    names = [span["name"] for span in data["spans"]]
    assert names == ["discharge", "evaluate"]
    child, root = data["spans"]
    assert child["parent"] == root["id"]
    assert child["args"]["obligation_fp"] == "deadbeef"
    # timestamps survive the round trip to at least microsecond precision
    assert child["ts"] == pytest.approx(tracer.spans[0]["ts"], abs=1e-5)
    assert child["dur"] == pytest.approx(tracer.spans[0]["dur"], abs=1e-5)


def test_chrome_export_is_perfetto_shaped(tmp_path):
    tracer = _record_some_spans()
    path = tmp_path / "trace.json"
    write_trace(tracer, str(path))

    payload = json.loads(path.read_text())
    assert "traceEvents" in payload
    events = payload["traceEvents"]
    metas = [event for event in events if event["ph"] == "M"]
    assert any(event["args"]["name"] == "pymarple" for event in metas)
    slices = [event for event in events if event["ph"] == "X"]
    assert len(slices) == 2
    for event in slices:
        assert set(event) >= {"ph", "pid", "tid", "name", "cat", "ts", "dur", "args"}
        assert event["ts"] >= 0 and event["dur"] >= 0  # microseconds
    assert payload["otherData"]["meta"]["schema"] == TRACE_SCHEMA


def test_session_installs_uninstalls_and_writes(tmp_path):
    path = tmp_path / "session.jsonl"
    with trace.session(str(path), meta={"command": "test"}) as tracer:
        assert trace.active() is tracer
        with trace.span("work"):
            pass
    assert not trace.enabled()
    data = read_trace(str(path))
    assert [span["name"] for span in data["spans"]] == ["work"]


# -- schema validation catches broken traces ---------------------------------------


def test_validator_flags_missing_fields_duplicates_and_dangling_parents():
    good = {"id": 1, "pid": 10, "name": "a", "cat": "run", "ts": 0.0, "dur": 1.0}
    assert validate_spans([good]) == []

    missing = dict(good)
    del missing["dur"]
    assert any("dur" in error for error in validate_spans([missing]))

    negative = dict(good, dur=-1.0)
    assert any(">= 0" in error for error in validate_spans([negative]))

    duplicate = [good, dict(good)]
    assert any("duplicate" in error for error in validate_spans(duplicate))

    dangling = [good, dict(good, id=2, parent=99)]
    assert any("parent" in error for error in validate_spans(dangling))


def test_validate_trace_rejects_wrong_schema_and_empty_spans():
    base = {"meta": {"schema": TRACE_SCHEMA, "pid": 1}, "spans": [], "counters": None}
    assert any("no spans" in error for error in validate_trace(base))
    wrong = dict(base, meta={"schema": 99, "pid": 1})
    assert any("schema" in error for error in validate_trace(wrong))
