"""Verification tests for the Set/Stack/LazySet-on-KVStore benchmarks."""

import pytest

from repro.suite.set_kvstore import lazyset_kvstore, set_kvstore, stack_kvstore


@pytest.fixture(scope="module")
def set_bench():
    return set_kvstore()


def test_set_insert_preserves_invariant(set_bench):
    result = set_bench.verify_method("insert")
    assert result.verified, result.error
    assert result.stats.smt_queries > 0
    assert result.stats.fa_inclusion_checks > 0
    assert result.stats.branches == 2


def test_set_mem_and_empty_preserve_invariant(set_bench):
    for method in ("mem", "empty"):
        result = set_bench.verify_method(method)
        assert result.verified, f"{method}: {result.error}"


def test_set_unchecked_insert_is_rejected(set_bench):
    result = set_bench.verify_negative_variant("insert_bad")
    assert not result.verified
    assert "postcondition" in (result.error or "") or "invariant" in (result.error or "")


def test_set_whole_adt_summary(set_bench):
    stats = set_bench.verify_all()
    assert stats.all_verified
    assert stats.num_methods == 3
    assert stats.num_ghosts == 1
    assert stats.invariant_size > 3
    hardest = stats.hardest_method()
    assert hardest is not None and hardest.method == "insert"


def test_stack_push_verifies_and_bad_push_rejected():
    bench = stack_kvstore()
    assert bench.verify_method("push").verified
    assert bench.verify_method("contains").verified
    assert bench.verify_method("next").verified
    assert bench.verify_method("is_empty").verified
    assert not bench.verify_negative_variant("push_bad").verified


def test_lazyset_kvstore_all_methods_verify():
    bench = lazyset_kvstore()
    stats = bench.verify_all()
    assert stats.all_verified, [
        (r.method, r.error) for r in stats.method_results if not r.verified
    ]


def test_dynamic_execution_respects_invariant(set_bench):
    """Run the verified implementation and check the traces against the SFA."""
    from repro import smt
    from repro.smt.sorts import ELEM
    from repro.sfa import accepts, Trace

    interp = set_bench.interpreter()
    module = set_bench.module(interp)
    trace = Trace()
    for element in ["a", "b", "a", "c", "b"]:
        outcome = interp.call(module["insert"], [element], trace)
        trace = outcome.trace
    el = smt.var("el", ELEM)
    for element in ["a", "b", "c"]:
        assert accepts(set_bench.invariant, trace, {el: element})
