"""Postmortem capture: unexpected discharge failures dump context, then raise."""

import json

import pytest

from repro.obs import trace
from repro.obs.postmortem import ENV_POSTMORTEM, dump_postmortem
from repro.sfa.inclusion import InclusionChecker
from repro.smt.solver import SolverError
from repro.suite.registry import all_benchmarks
from repro.typecheck.checker import CheckerConfig


@pytest.fixture(autouse=True)
def no_leaked_tracer():
    trace.uninstall()
    yield
    trace.uninstall()


# -- the writer itself -------------------------------------------------------------


def test_dump_writes_exception_spans_and_context(tmp_path):
    target = tmp_path / "pm.json"
    tracer = trace.install(trace.Tracer())
    with trace.span("discharge", cat="discharge"):
        with trace.span("solver.check", cat="solver"):
            pass  # one completed span
        try:
            raise RuntimeError("kaboom")
        except RuntimeError as exc:
            written = dump_postmortem(
                exc,
                obligation_fp="cafebabe",
                context={"kind": "postcondition"},
                path=str(target),
            )
            still_open = tracer.open_spans()
    assert written == str(target)
    assert [span["name"] for span in still_open] == ["discharge"]
    payload = json.loads(target.read_text())
    assert payload["exception"]["type"] == "RuntimeError"
    assert payload["exception"]["message"] == "kaboom"
    assert any("kaboom" in line for line in payload["exception"]["traceback"])
    assert payload["obligation_fp"] == "cafebabe"
    assert payload["context"] == {"kind": "postcondition"}
    assert [span["name"] for span in payload["open_spans"]] == ["discharge"]
    assert any(span["name"] == "solver.check" for span in payload["recent_spans"])


def test_dump_without_a_tracer_still_writes(tmp_path):
    target = tmp_path / "pm.json"
    try:
        raise ValueError("no tracer around")
    except ValueError as exc:
        assert dump_postmortem(exc, path=str(target)) == str(target)
    payload = json.loads(target.read_text())
    assert payload["open_spans"] == [] and payload["recent_spans"] == []


def test_dump_failure_is_swallowed(tmp_path):
    bad_path = tmp_path / "no-such-dir" / "pm.json"
    try:
        raise RuntimeError("x")
    except RuntimeError as exc:
        assert dump_postmortem(exc, path=str(bad_path)) is None


# -- the engine integration --------------------------------------------------------


def test_unexpected_discharge_error_dumps_then_propagates(tmp_path, monkeypatch):
    target = tmp_path / "crash.json"
    monkeypatch.setenv(ENV_POSTMORTEM, str(target))

    def explode(self, hypotheses, lhs, rhs):
        raise RuntimeError("simulated checker bug")

    monkeypatch.setattr(InclusionChecker, "check_detailed", explode)
    bench = all_benchmarks(include_slow=False)[0]
    checker = bench.make_checker(CheckerConfig())
    with pytest.raises(RuntimeError, match="simulated checker bug"):
        bench.verify_all(checker)

    payload = json.loads(target.read_text())
    assert payload["exception"]["type"] == "RuntimeError"
    assert payload["obligation_fp"], "the in-flight obligation must be identified"
    assert payload["context"]["kind"]


def test_expected_solver_error_reports_failure_without_a_dump(tmp_path, monkeypatch):
    target = tmp_path / "crash.json"
    monkeypatch.setenv(ENV_POSTMORTEM, str(target))

    def refuse(self, hypotheses, lhs, rhs):
        raise SolverError("expected, reportable failure")

    monkeypatch.setattr(InclusionChecker, "check_detailed", refuse)
    bench = all_benchmarks(include_slow=False)[0]
    checker = bench.make_checker(CheckerConfig())
    stats = bench.verify_all(checker)  # must not raise
    assert not stats.all_verified
    assert not target.exists(), "expected error families never trigger a postmortem"
