"""Set-at-a-time batched discharge (``discharge="batch"``).

The lazy path decides each obligation with its own product walk; obligations
that share an alphabet (the cross-obligation :class:`AlphabetMemo` key) still
pay separately to re-derive the same formulas over the same minterms.  This
module is the set-at-a-time alternative the ROADMAP names as the biggest raw
speed lever: group the cold obligations of a batch by alphabet key and
discharge each group against ONE shared, vectorised transition table.

The table (:class:`TransitionTable`) interns derivative formulas to dense
integer state ids, so the product walk runs over int pairs instead of formula
pairs: transitions are per-state rows of successor ids indexed by minterm
position, nullability and the antichain prune flags are precomputed bitsets
(``bytearray`` — one byte per state, replacing the recursive ``nullable()``
walk at every dequeue), and each row is built exactly once and shared by
every group member and both sides of every product pair.  Derivatives are
memoised per *subformula* per minterm, not per top-level step: overlapping
states (the common case — ACI-normalised ``and``/``or`` combinations over a
shared invariant) never re-derive their shared parts.  The same content
layout with ``numpy`` arrays was measured and rejected: at the corpus's
alphabet sizes (≤ ~32 minterms) Python-level element access into numpy rows
is slower than plain list indexing, so the dense-int layout stays stdlib.

**Exactness.**  Batching is a sharing transformation, never a semantic one.
Per member, :func:`_lockstep_search` replicates ``lazy_inclusion_search``
step for step — FIFO breadth-first order, the same BOT/TOP antichain prunes,
the witness test at dequeue time, first-witness exit, ``#prod-states`` =
``len(parents)``, the same ``max_pairs`` budget and error message — over the
bijection between interned ids and hash-consed formulas.  Verdicts, witness
traces and every deterministic counter are therefore byte-identical to the
lazy oracle by construction, which ``tests/sfa/test_batch_diff.py`` checks
differentially.  The sharing is the schedule: one table per alphabet, and a
level-lockstep loop that advances every live member one BFS level per round,
so row construction triggered by any member is immediately visible to all.

Solver-query coalescing happens one level up: the group's alphabet is built
(or replayed) ONCE through the shared :class:`AlphabetMemo`, so a minterm
decided for one member is never re-queried for another — the group executes
at most one construction's worth of SMT queries where fully-parallel lazy
would execute one per member.  The recorded bill is still replayed into
every member's counters, keeping the tables byte-identical to lazy.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..obs import trace
from ..smt.solver import SolverError, SolverStats
from . import symbolic
from .alphabet import Alphabet, AlphabetError, AlphabetMemo, AlphabetStats
from .derivatives import CompilationError, DerivativeCache, _evaluate_qualifier, nullable
from .inclusion import InclusionStats, render_witness
from .signatures import OperatorRegistry
from .symbolic import Sfa


class TransitionTable:
    """An interned (state-id × minterm-index) transition table for one alphabet.

    States are hash-consed SFA formulas interned to dense ids on first sight;
    ``row(state)`` lazily computes the full successor row — one derivative per
    minterm — and memoises it, so the walk only ever pays for the reachable
    part of the table, exactly like the lazy path, but pays for it once per
    *group* instead of once per obligation side.
    """

    __slots__ = (
        "alphabet",
        "characters",
        "num_chars",
        "context_truth",
        "formulas",
        "nullable",
        "is_bot",
        "is_top",
        "rows",
        "rows_built",
        "_id_of",
        "_truths",
        "_memos",
        "_cache",
        "_cache_keys",
    )

    def __init__(self, alphabet: Alphabet, *, cache: Optional[DerivativeCache] = None) -> None:
        self.alphabet = alphabet
        self.characters = alphabet.characters
        self.num_chars = len(alphabet.characters)
        self.context_truth = alphabet.context_truth()
        # the merged (context case + minterm) valuation, computed once per
        # minterm instead of once per K_EVENT derivative step
        self._truths = []
        for character in self.characters:
            truth = dict(self.context_truth)
            truth.update(character.truth())
            self._truths.append(truth)
        self._id_of: dict[Sfa, int] = {}
        self.formulas: list[Sfa] = []
        #: bitsets indexed by state id (one byte per state)
        self.nullable = bytearray()
        self.is_bot = bytearray()
        self.is_top = bytearray()
        self.rows: list[Optional[list[int]]] = []
        self.rows_built = 0
        #: per-minterm subformula-level derivative memos
        self._memos: list[dict[Sfa, Sfa]] = [dict() for _ in self.characters]
        # Top-level steps additionally go through the run-wide DerivativeCache
        # (when the engine shares one): its keys are content addresses, so
        # tables of different groups — and the lazy walks of inline checks —
        # reuse each other's steps across alphabet reuse boundaries.
        self._cache = cache
        self._cache_keys = cache.keys_for(alphabet) if cache is not None else None

    def intern(self, formula: Sfa) -> int:
        state = self._id_of.get(formula)
        if state is None:
            state = len(self.formulas)
            self._id_of[formula] = state
            self.formulas.append(formula)
            self.rows.append(None)
            self.nullable.append(1 if nullable(formula) else 0)
            self.is_bot.append(1 if formula is symbolic.BOT else 0)
            self.is_top.append(1 if formula is symbolic.TOP else 0)
        return state

    def row(self, state: int) -> list[int]:
        row = self.rows[state]
        if row is not None:
            return row
        formula = self.formulas[state]
        cache = self._cache
        row = []
        if cache is not None:
            context_id, character_ids = self._cache_keys
            sfa_id = formula.sfa_id
            for index in range(self.num_chars):
                key = (sfa_id, context_id, character_ids[index])
                target = cache.lookup(key)
                if target is None:
                    target = self._derive(formula, index)
                    cache.store(key, target)
                row.append(self.intern(target))
        else:
            for index in range(self.num_chars):
                row.append(self.intern(self._derive(formula, index)))
        self.rows[state] = row
        self.rows_built += 1
        return row

    def _derive(self, formula: Sfa, index: int) -> Sfa:
        """Memoised Brzozowski derivative w.r.t. minterm ``index``.

        Recursion mirrors :func:`repro.sfa.derivatives.derivative` case for
        case (it must: the two paths feed the same deterministic tables), but
        memoises every *subformula*, so shared parts of sibling states are
        derived once per minterm for the whole group.
        """
        memo = self._memos[index]
        cached = memo.get(formula)
        if cached is not None:
            return cached
        kind = formula.kind
        if kind == symbolic.K_TOP:
            result = symbolic.TOP
        elif kind == symbolic.K_BOT:
            result = symbolic.BOT
        elif kind == symbolic.K_EVENT:
            signature, phi = formula.payload
            if signature.name != self.characters[index].signature.name:
                result = symbolic.BOT
            else:
                result = (
                    symbolic.TOP
                    if _evaluate_qualifier(phi, self._truths[index])
                    else symbolic.BOT
                )
        elif kind == symbolic.K_GUARD:
            result = (
                symbolic.TOP
                if _evaluate_qualifier(formula.payload, self.context_truth)
                else symbolic.BOT
            )
        elif kind == symbolic.K_NOT:
            result = symbolic.not_(self._derive(formula.children[0], index))
        elif kind == symbolic.K_AND:
            result = symbolic.and_(*(self._derive(c, index) for c in formula.children))
        elif kind == symbolic.K_OR:
            result = symbolic.or_(*(self._derive(c, index) for c in formula.children))
        elif kind == symbolic.K_NEXT:
            result = formula.children[0]
        elif kind == symbolic.K_UNTIL:
            lhs, rhs = formula.children
            result = symbolic.or_(
                self._derive(rhs, index),
                symbolic.and_(self._derive(lhs, index), formula),
            )
        elif kind == symbolic.K_CONCAT:
            lhs, rhs = formula.children
            left_part = symbolic.concat(self._derive(lhs, index), rhs)
            if nullable(lhs):
                result = symbolic.or_(left_part, self._derive(rhs, index))
            else:
                result = left_part
        else:
            raise AssertionError(kind)
        memo[formula] = result
        return result


class _Walk:
    """One member's product-BFS state inside a lockstep round."""

    __slots__ = ("parents", "frontier", "done", "witness", "error", "explored", "seconds")

    def __init__(self) -> None:
        self.parents: dict[tuple[int, int], Optional[tuple[tuple[int, int], int]]] = {}
        self.frontier: deque[tuple[int, int]] = deque()
        self.done = False
        self.witness: Optional[tuple[int, ...]] = None
        self.error: Optional[CompilationError] = None
        self.explored = 0
        self.seconds = 0.0


def _lockstep_search(
    table: TransitionTable,
    pairs: Sequence[tuple[Sfa, Sfa]],
    *,
    max_pairs: int = 1_000_000,
) -> list[_Walk]:
    """BFS every ``(lhs, rhs)`` product over the shared table, in level lockstep.

    Each round advances every live member one breadth-first level, so a row
    computed for one member's frontier is already in the table when a sibling
    reaches the same state.  Per member the walk is *exactly*
    ``lazy_inclusion_search``: FIFO order, the same prunes, the witness test
    at dequeue, ``explored == len(parents)``, and the same ``max_pairs``
    error — members retire individually on first counterexample or fixpoint.
    """
    walks: list[_Walk] = []
    for lhs, rhs in pairs:
        walk = _Walk()
        a, b = table.intern(lhs), table.intern(rhs)
        if table.is_bot[a] or table.is_top[b]:
            walk.done = True  # pruned start: included, nothing explored
        else:
            start = (a, b)
            walk.parents[start] = None
            walk.frontier.append(start)
        walks.append(walk)

    nullable_flags = table.nullable
    is_bot = table.is_bot
    is_top = table.is_top
    num_chars = table.num_chars
    row_of = table.row

    live = [walk for walk in walks if not walk.done]
    while live:
        still_live = []
        for walk in live:
            started = time.perf_counter()
            frontier = walk.frontier
            parents = walk.parents
            for _ in range(len(frontier)):
                pair = frontier.popleft()
                a, b = pair
                if nullable_flags[a] and not nullable_flags[b]:
                    word: list[int] = []
                    node: Optional[tuple[int, int]] = pair
                    while parents[node] is not None:
                        node, index = parents[node]
                        word.append(index)
                    walk.witness = tuple(reversed(word))
                    walk.done = True
                    break
                row_a = row_of(a)
                row_b = row_of(b)
                for index in range(num_chars):
                    ta = row_a[index]
                    tb = row_b[index]
                    if is_bot[ta] or is_top[tb]:
                        continue
                    target = (ta, tb)
                    if target in parents:
                        continue
                    if len(parents) >= max_pairs:
                        walk.error = CompilationError(
                            f"lazy product walk exceeded {max_pairs} pairs"
                        )
                        walk.done = True
                        break
                    parents[target] = (pair, index)
                    frontier.append(target)
                if walk.done:
                    break
            if not walk.done and not frontier:
                walk.done = True  # fixpoint: inclusion holds
            walk.seconds += time.perf_counter() - started
            if not walk.done:
                still_live.append(walk)
        live = still_live

    for walk in walks:
        walk.explored = len(walk.parents)
    return walks


@dataclass
class GroupRecord:
    """Per-group accounting for the batch-vs-lazy solver-query claim.

    ``queries_executed`` is what the group actually ran (one hermetic
    construction, or zero on a memo hit); ``queries_billed`` is what the
    deterministic tables charge — the recorded bill replayed into every
    member, which is also what fully-parallel lazy executes.  For every
    multi-member group ``executed < billed`` by construction.
    """

    members: int = 0
    built: bool = False
    queries_executed: int = 0
    queries_billed: int = 0
    prod_states: int = 0
    error: Optional[str] = None

    def as_dict(self) -> dict:
        return {
            "members": self.members,
            "built": self.built,
            "queries_executed": self.queries_executed,
            "queries_billed": self.queries_billed,
            "prod_states": self.prod_states,
            "error": self.error,
        }


def discharge_group(
    obligations: Sequence,
    operators: OperatorRegistry,
    memo: AlphabetMemo,
    *,
    max_literals: Optional[int] = None,
    filter_unsat: bool = True,
    strategy: str = "guided",
    derivative_cache: Optional[DerivativeCache] = None,
    max_pairs: int = 1_000_000,
) -> tuple[list[dict], GroupRecord]:
    """Discharge one alphabet-sharing group of obligations set-at-a-time.

    Every obligation must share the group's :class:`AlphabetMemo` content key
    (same hypothesis set, same literal sets, same budget/strategy), which is
    exactly what makes one construction valid for all of them.  Returns one
    result dict per obligation — the same shape ``discharge_obligation``
    produces, so the engine merges them identically — plus the group record.

    Counter attribution mirrors what serial lazy discharge would report: the
    first member bills the build (``#Alph``), later members bill memo hits,
    and every member replays the identical recorded solver/alphabet bill.
    """
    group_started = time.perf_counter()
    count = len(obligations)
    first = obligations[0]
    bill_alphabet = AlphabetStats()
    bill_solver = SolverStats()
    try:
        alphabets, built = memo.alphabets_for(
            list(first.hypotheses),
            [first.lhs, first.rhs],
            operators,
            max_literals=max_literals,
            filter_unsat=filter_unsat,
            strategy=strategy,
            stats=bill_alphabet,
            solver_stats=bill_solver,
        )
    except (AlphabetError, SolverError) as exc:
        # The construction is pure in the group key, so the failure — and its
        # message — is what every member's individual lazy discharge would
        # have produced: report it for each, with the zero counters a failed
        # hermetic construction leaves behind.
        message = str(exc)
        results = [
            {
                "included": False,
                "counterexample": None,
                "error": message,
                "inclusion": InclusionStats().as_dict(),
                "solver": SolverStats().as_dict(),
                "wall": (time.perf_counter() - group_started) / count,
            }
            for _ in range(count)
        ]
        return results, GroupRecord(members=count, error=message)
    build_seconds = time.perf_counter() - group_started

    member_stats = [InclusionStats() for _ in range(count)]
    for position, stats in enumerate(member_stats):
        stats.context_cases = bill_alphabet.context_cases
        stats.minterm_candidates = bill_alphabet.minterm_candidates
        stats.satisfiable_minterms = bill_alphabet.satisfiable_minterms
        if position == 0 and built:
            stats.alphabet_builds = 1
        else:
            stats.alphabet_memo_hits = 1

    included = [True] * count
    counterexamples: list[Optional[list[str]]] = [None] * count
    errors: list[Optional[str]] = [None] * count
    walk_seconds = [0.0] * count

    pending = list(range(count))
    for alphabet in alphabets:
        with trace.span(
            "inclusion.batch",
            cat="discharge",
            members=len(pending),
            characters=len(alphabet.characters),
        ):
            table = TransitionTable(alphabet, cache=derivative_cache)
            walks = _lockstep_search(
                table,
                [(obligations[i].lhs, obligations[i].rhs) for i in pending],
                max_pairs=max_pairs,
            )
        next_pending = []
        for position, walk in zip(pending, walks):
            walk_seconds[position] += walk.seconds
            if walk.error is not None:
                # same partial counters lazy reports when its walk trips the
                # budget: earlier alphabets counted, the failing one not
                included[position] = False
                errors[position] = str(walk.error)
                continue
            stats = member_stats[position]
            stats.fa_inclusion_checks += 1
            stats.prod_states += walk.explored
            stats.fa_time_seconds += walk.seconds
            if walk.witness is not None:
                included[position] = False
                counterexamples[position] = render_witness(alphabet, walk.witness)
            else:
                next_pending.append(position)
        pending = next_pending
        if not pending:
            break

    solver_dict = bill_solver.as_dict()
    results = []
    for position in range(count):
        results.append(
            {
                "included": included[position],
                "counterexample": counterexamples[position],
                "error": errors[position],
                "inclusion": member_stats[position].as_dict(),
                "solver": dict(solver_dict),
                "wall": walk_seconds[position] + build_seconds / count,
            }
        )
    record = GroupRecord(
        members=count,
        built=built,
        queries_executed=bill_solver.queries if built else 0,
        queries_billed=count * bill_solver.queries,
        prod_states=sum(stats.prod_states for stats in member_stats),
    )
    return results, record
