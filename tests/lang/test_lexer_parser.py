"""Tests for the Mini-ML lexer and parser."""

import pytest

from repro.lang import lexer
from repro.lang import parser as P


def kinds(source):
    return [(t.kind, t.text) for t in lexer.tokenize(source) if t.kind != "eof"]


def test_tokenize_keywords_idents_and_symbols():
    tokens = kinds("let rec add (path : Path.t) = if exists path then false else true")
    assert ("keyword", "let") in tokens
    assert ("keyword", "rec") in tokens
    assert ("ident", "Path.t") in tokens
    assert ("ident", "exists") in tokens
    assert ("symbol", "(") in tokens and ("symbol", ":") in tokens


def test_tokenize_primed_identifiers_and_strings():
    tokens = kinds('let bytes\' = get "/" in bytes\'')
    assert ("ident", "bytes'") in tokens
    assert ("string", "/") in tokens


def test_tokenize_comments():
    tokens = kinds("let x = 1 (* a (* nested *) comment *) in -- trailing\n x")
    texts = [t for _, t in tokens]
    assert "comment" not in texts
    assert "trailing" not in texts


def test_tokenize_errors():
    with pytest.raises(lexer.LexError):
        lexer.tokenize('"unterminated')
    with pytest.raises(lexer.LexError):
        lexer.tokenize("let x = #bad")
    with pytest.raises(lexer.LexError):
        lexer.tokenize("(* never closed")


def test_parse_simple_definition():
    program = P.parse_program("let double (x : int) : int = x + x")
    assert len(program.definitions) == 1
    definition = program.definitions[0]
    assert definition.name == "double"
    assert definition.params == (("x", "int"),)
    assert definition.return_type == "int"
    assert isinstance(definition.body, P.SApp)
    assert definition.body.func == P.SVar("+")


def test_parse_if_let_and_application():
    source = """
    let add (path : Path.t) (bytes : Bytes.t) : bool =
      if exists path then false
      else
        let parent_path = Path.parent path in
        put path bytes;
        true
    """
    program = P.parse_program(source)
    body = program.definitions[0].body
    assert isinstance(body, P.SIf)
    assert isinstance(body.condition, P.SApp)
    assert body.condition.func == P.SVar("exists")
    else_branch = body.else_branch
    assert isinstance(else_branch, P.SLet)
    assert else_branch.name == "parent_path"
    assert isinstance(else_branch.body, P.SSeq)


def test_parse_match_and_fun():
    source = """
    let map_head f xs =
      match xs with
      | Nil -> Nil
      | Cons x rest -> f x
    let make = fun (x : int) -> x + 1
    """
    program = P.parse_program(source)
    match_body = program.definitions[0].body
    assert isinstance(match_body, P.SMatch)
    assert [arm.constructor for arm in match_body.arms] == ["Nil", "Cons"]
    assert match_body.arms[1].binders == ("x", "rest")
    fun_body = program.definitions[1].body
    assert isinstance(fun_body, P.SFun)
    assert fun_body.param_type == "int"


def test_parse_operators_and_precedence():
    expr = P.parse_expression("a && not b || c == 1")
    # ((a && (not b)) || (c == 1))
    assert isinstance(expr, P.SApp) and expr.func == P.SVar("||")
    left, right = expr.args
    assert isinstance(left, P.SApp) and left.func == P.SVar("&&")
    assert isinstance(right, P.SApp) and right.func == P.SVar("==")


def test_parse_or_keyword_and_parens():
    expr = P.parse_expression("(isRoot path) or not (exists path)")
    assert isinstance(expr, P.SApp) and expr.func == P.SVar("||")


def test_parse_unit_and_sequencing():
    expr = P.parse_expression("put k v; ()")
    assert isinstance(expr, P.SSeq)
    assert isinstance(expr.second, P.SUnit)


def test_parse_unit_parameter():
    program = P.parse_program("let init () : unit = put root empty")
    assert program.definitions[0].params == (("_unit", "unit"),)


def test_parse_errors():
    with pytest.raises(lexer.LexError):
        P.parse_program("let = 3")
    with pytest.raises(lexer.LexError):
        P.parse_expression("match x with")
    with pytest.raises(lexer.LexError):
        P.parse_expression("if x then 1")
    with pytest.raises(lexer.LexError):
        P.parse_expression("1 2 extra )")
