"""repro.evaluation — the experiment runner and Table 1–4 formatters."""

from .runner import EvaluationReport, NegativeResult, run_benchmark, run_evaluation
from .tables import negatives_table, render_all, report_json, table1, table2, table3, table4

__all__ = [
    "EvaluationReport",
    "NegativeResult",
    "run_benchmark",
    "run_evaluation",
    "negatives_table",
    "render_all",
    "report_json",
    "table1",
    "table2",
    "table3",
    "table4",
]
