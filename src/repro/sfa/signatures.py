"""Signatures of effectful operators used inside symbolic automata.

Every effectful library operator (``put``, ``exists``, ``insert``, ...) has a
fixed list of argument sorts and a result sort.  Symbolic event atoms
``⟨op x̄ = ν | φ⟩`` qualify the *formal* argument and result variables of the
operator; this module owns those formal variables so that every part of the
pipeline (spec parser, minterm construction, alphabet transformation, trace
acceptance) agrees on their identity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from .. import smt
from ..smt.sorts import Sort


@dataclass(frozen=True)
class EventSignature:
    """An effectful operator as seen by the automata layer."""

    name: str
    arg_names: tuple[str, ...]
    arg_sorts: tuple[Sort, ...]
    result_sort: Sort

    def __post_init__(self) -> None:
        if len(self.arg_names) != len(self.arg_sorts):
            raise ValueError("argument names and sorts must align")

    # -- formal variables -----------------------------------------------------------
    @property
    def arg_vars(self) -> tuple[smt.Term, ...]:
        return tuple(
            smt.var(f"{self.name}.{arg_name}", arg_sort)
            for arg_name, arg_sort in zip(self.arg_names, self.arg_sorts)
        )

    @property
    def result_var(self) -> smt.Term:
        return smt.var(f"{self.name}.result", self.result_sort)

    @property
    def formals(self) -> tuple[smt.Term, ...]:
        return self.arg_vars + (self.result_var,)

    def formal_named(self, binder_names: Sequence[str]) -> dict[str, smt.Term]:
        """Map user-chosen binder names to the formal variables.

        ``binder_names`` lists the argument binders followed by the result
        binder, mirroring the concrete syntax ``⟨op k v = u | φ⟩``.
        """
        if len(binder_names) != len(self.arg_names) + 1:
            raise ValueError(
                f"{self.name} expects {len(self.arg_names)} argument binders "
                f"plus a result binder, got {len(binder_names)}"
            )
        mapping = dict(zip(binder_names[:-1], self.arg_vars))
        mapping[binder_names[-1]] = self.result_var
        return mapping

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        args = ", ".join(
            f"{n}:{s.name}" for n, s in zip(self.arg_names, self.arg_sorts)
        )
        return f"{self.name}({args}) -> {self.result_sort.name}"


class OperatorRegistry:
    """A set of operator signatures (one per stateful library)."""

    def __init__(self, signatures: Sequence[EventSignature] = ()) -> None:
        self._by_name: dict[str, EventSignature] = {}
        for signature in signatures:
            self.add(signature)

    def add(self, signature: EventSignature) -> EventSignature:
        existing = self._by_name.get(signature.name)
        if existing is not None and existing != signature:
            raise ValueError(f"operator {signature.name} already registered")
        self._by_name[signature.name] = signature
        return signature

    def declare(
        self,
        name: str,
        args: Sequence[tuple[str, Sort]],
        result_sort: Sort,
    ) -> EventSignature:
        signature = EventSignature(
            name=name,
            arg_names=tuple(a for a, _ in args),
            arg_sorts=tuple(s for _, s in args),
            result_sort=result_sort,
        )
        return self.add(signature)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __getitem__(self, name: str) -> EventSignature:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"unknown effectful operator {name!r}") from None

    def get(self, name: str) -> EventSignature | None:
        return self._by_name.get(name)

    def __iter__(self):
        return iter(self._by_name.values())

    def __len__(self) -> int:
        return len(self._by_name)

    def names(self) -> list[str]:
        return sorted(self._by_name)

    def merge(self, other: "OperatorRegistry") -> "OperatorRegistry":
        merged = OperatorRegistry(list(self))
        for signature in other:
            merged.add(signature)
        return merged
