"""CLI coverage for the performance surface: ``bench``, ``store gc``,
``--schedule`` and ``--no-memo``."""

import json

import pytest

from repro.cli import main as cli_main


# -- bench -------------------------------------------------------------------------


def test_bench_quick_writes_payload_and_exits_zero(capsys, tmp_path):
    out_path = tmp_path / "bench.json"
    assert cli_main(["bench", "--quick", "--output", str(out_path)]) == 0
    printed = capsys.readouterr().out
    assert "cold:" in printed and "warm:" in printed
    payload = json.loads(out_path.read_text())
    assert payload["cold"]["all_verified"]
    assert payload["warm"]["counters"]["store_hits"] > 0


def test_bench_baseline_gate(capsys, tmp_path):
    out_path = tmp_path / "bench.json"
    assert cli_main(["bench", "--quick", "--output", str(out_path)]) == 0
    capsys.readouterr()
    # a fresh run against its own numbers is within any sane tolerance
    assert (
        cli_main(["bench", "--quick", "--baseline", str(out_path), "--tolerance", "5"])
        == 0
    )
    assert "cold wall" in capsys.readouterr().out

    # shrink the recorded baseline so the same machine must "regress"
    payload = json.loads(out_path.read_text())
    payload["cold"]["wall_seconds"] = payload["cold"]["wall_seconds"] / 1000.0
    out_path.write_text(json.dumps(payload))
    assert (
        cli_main(["bench", "--quick", "--baseline", str(out_path), "--tolerance", "0.2"])
        == 1
    )
    assert "REGRESSION" in capsys.readouterr().out


def test_bench_unreadable_baseline_exits_two(capsys, tmp_path):
    missing = tmp_path / "nope.json"
    assert cli_main(["bench", "--quick", "--baseline", str(missing)]) == 2
    assert "cannot read baseline" in capsys.readouterr().err


def test_bench_structurally_incomplete_baseline_exits_two(capsys, tmp_path):
    """A baseline that parses but lacks the wall numbers gets a clean error."""
    hollow = tmp_path / "hollow.json"
    hollow.write_text(json.dumps({"cold": {}}))
    assert cli_main(["bench", "--quick", "--baseline", str(hollow)]) == 2
    assert "cannot read baseline" in capsys.readouterr().err


def test_bench_baseline_missing_warm_wall_is_advisory(capsys, tmp_path):
    """An old baseline without warm numbers compares cold only, with a note."""
    out_path = tmp_path / "bench.json"
    assert cli_main(["bench", "--quick", "--output", str(out_path)]) == 0
    capsys.readouterr()
    payload = json.loads(out_path.read_text())
    del payload["warm"]["wall_seconds"]
    out_path.write_text(json.dumps(payload))
    assert (
        cli_main(["bench", "--quick", "--baseline", str(out_path), "--tolerance", "5"])
        == 0
    )
    out = capsys.readouterr().out
    assert "cold wall" in out
    assert "no warm wall time" in out


def test_bench_ab_compares_batch_against_lazy(capsys, tmp_path):
    """``--ab`` runs the other discharge mode cold and reports whether the
    deterministic tables are identical (the batch exactness contract)."""
    out_path = tmp_path / "bench.json"
    assert cli_main(["bench", "--quick", "--ab", "--output", str(out_path)]) == 0
    out = capsys.readouterr().out
    assert "A/B" in out
    assert "deterministic tables identical=True" in out
    payload = json.loads(out_path.read_text())
    assert payload["ab"]["discharge"] in ("lazy", "batch")
    assert payload["ab"]["tables_identical"] is True


def test_bench_rejects_zero_runs(capsys):
    assert cli_main(["bench", "--runs", "0"]) == 2
    assert "runs >= 1" in capsys.readouterr().err


# -- store gc ----------------------------------------------------------------------


def test_store_gc_cli_keeps_last_run_warm(capsys, tmp_path):
    store = str(tmp_path / "store")
    assert cli_main(["evaluate", "--fast", "--store", store, "--json"]) == 0
    assert cli_main(["check", "Set/KVStore", "--store", store]) == 0
    capsys.readouterr()
    assert cli_main(["store", "gc", "--keep-last", "1", "--store", store]) == 0
    out = capsys.readouterr().out
    assert "store gc: dropped" in out

    # the surviving entries answer the kept run's workload entirely
    assert cli_main(["check", "Set/KVStore", "--store", store, "--explain"]) == 0
    out = capsys.readouterr().out
    assert "misses" in out
    assert "misses=0" in out and "hits=" in out


def test_store_gc_rejects_bad_keep_last(capsys, tmp_path):
    store = str(tmp_path / "store")
    assert cli_main(["store", "gc", "--keep-last", "0", "--store", store]) == 2
    assert "keep_last" in capsys.readouterr().err


# -- scheduling + memo knobs -------------------------------------------------------


def test_schedule_flag_reaches_the_checker_config(monkeypatch):
    captured = {}
    from repro.suite import benchmark as benchmark_module

    original = benchmark_module.AdtBenchmark.make_checker

    def spy(self, config=None, *, store=None):
        captured["schedule"] = config.schedule
        captured["memo"] = config.cross_obligation_memo
        return original(self, config, store=store)

    monkeypatch.setattr(benchmark_module.AdtBenchmark, "make_checker", spy)
    assert (
        cli_main(
            ["check", "Set/KVStore", "--method", "mem", "--schedule", "lpt", "--no-memo"]
        )
        == 0
    )
    assert captured == {"schedule": "lpt", "memo": False}


def test_argparse_rejects_unknown_schedule():
    with pytest.raises(SystemExit) as excinfo:
        cli_main(["check", "Set/KVStore", "--schedule", "chaotic"])
    assert excinfo.value.code == 2


def test_bad_repro_schedule_env_exits_two(monkeypatch, capsys):
    monkeypatch.setenv("REPRO_SCHEDULE", "chaotic")
    with pytest.raises(SystemExit) as excinfo:
        cli_main(["check", "Set/KVStore", "--method", "mem"])
    assert excinfo.value.code == 2
    assert "unknown schedule mode" in capsys.readouterr().err


def test_schedule_modes_produce_identical_check_output(capsys):
    outputs = {}
    for schedule in ("syntactic", "cost", "lpt"):
        assert cli_main(["check", "Set/KVStore", "--schedule", schedule]) == 0
        outputs[schedule] = capsys.readouterr().out
    # wall-clock fields differ; the verdict lines must not
    verdicts = {
        schedule: [line for line in out.splitlines() if "verified" in line or ": ok" in line]
        for schedule, out in outputs.items()
    }
    assert verdicts["syntactic"] == verdicts["cost"] == verdicts["lpt"]
