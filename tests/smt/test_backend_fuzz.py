"""Seeded random-formula fuzzing across solver backends.

Three adversarial generators, all driven by ``REPRO_FUZZ_SEED`` (CI pins it,
so a red job reproduces locally with the same environment variable):

* **CNF + EUF + arith mixes** — ≥300 random boolean combinations of
  uninterpreted-predicate, congruence and linear-arithmetic atoms; every
  backend must return the same satisfiability verdict on each;
* **model enumeration** — random literal sets under random base formulas;
  the enumerated assignment *sets* must coincide across backends (the
  canonical ordering makes that a list equality), and every assignment must
  replay consistently through :func:`repro.smt.theory.check_theory` — a model
  a backend hands back is only correct if the theory combination agrees;
* **SFA inclusion** — ≥60 random symbolic-automata pairs; verdicts and
  counterexample traces must agree backend for backend (the alphabet
  transformation consumes enumeration results, so this exercises the whole
  seam end to end).

The z3 legs auto-skip when the package is missing.
"""

import os
import random

import pytest

from repro import smt
from repro.sfa import symbolic as S
from repro.sfa.inclusion import InclusionChecker
from repro.sfa.signatures import OperatorRegistry
from repro.smt import sorts
from repro.smt.backends import available_backends
from repro.smt.theory import check_theory

#: Base seed for every generator below; CI exports it so failures reproduce.
SEED = int(os.environ.get("REPRO_FUZZ_SEED", "271828"))

#: every importable registered backend is fuzzed — adding one to the
#: registry enrolls it here automatically (z3 drops out when not installed)
BACKENDS = available_backends()

# ---------------------------------------------------------------------------
# A mixed CNF + EUF + arithmetic atom pool
# ---------------------------------------------------------------------------

_P = smt.declare("fz_p", [sorts.ELEM], smt.BOOL)
_Q = smt.declare("fz_q", [sorts.ELEM, sorts.ELEM], smt.BOOL)
_F = smt.declare("fz_f", [sorts.ELEM], smt.INT)
_G = smt.declare("fz_g", [smt.INT], smt.INT)

_E = [smt.var(f"fz_e{i}", sorts.ELEM) for i in range(3)]
_N = [smt.var(f"fz_n{i}", smt.INT) for i in range(3)]
_B = [smt.var(f"fz_b{i}", smt.BOOL) for i in range(3)]


def _atom_pool() -> list[smt.Term]:
    e0, e1, e2 = _E
    n0, n1, n2 = _N
    return [
        *_B,
        smt.apply(_P, e0),
        smt.apply(_P, e1),
        smt.apply(_Q, e0, e1),
        smt.apply(_Q, e1, e2),
        smt.eq(e0, e1),
        smt.eq(e1, e2),
        smt.lt(n0, n1),
        smt.lt(n1, n2),
        smt.le(n2, n0),
        smt.eq(n0, smt.add(n1, smt.int_const(1))),
        smt.le(n1, smt.int_const(3)),
        # congruence feeding arithmetic (the Nelson–Oppen propagation path)
        smt.lt(smt.apply(_F, e0), n0),
        smt.eq(smt.apply(_F, e0), smt.apply(_F, e1)),
        smt.le(smt.apply(_G, n0), smt.int_const(5)),
    ]


def _random_formula(rng: random.Random, depth: int = 3) -> smt.Term:
    pool = _atom_pool()
    if depth == 0 or rng.random() < 0.35:
        atom = rng.choice(pool)
        return smt.not_(atom) if rng.random() < 0.3 else atom
    combinator = rng.randrange(5)
    left = _random_formula(rng, depth - 1)
    right = _random_formula(rng, depth - 1)
    if combinator == 0:
        return smt.and_(left, right)
    if combinator == 1:
        return smt.or_(left, right)
    if combinator == 2:
        return smt.not_(left)
    if combinator == 3:
        return smt.implies(left, right)
    return smt.iff(left, right)


# ---------------------------------------------------------------------------
# ≥300 satisfiability verdicts agree
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("case", range(320))
def test_random_mixes_agree_on_satisfiability(case):
    rng = random.Random(SEED + 1_000_003 * case)
    formula = _random_formula(rng, depth=4)
    verdicts = {
        backend: smt.Solver(backend=backend).is_satisfiable(formula)
        for backend in BACKENDS
    }
    assert len(set(verdicts.values())) == 1, (
        f"backends disagree on seed base {SEED}, case {case}: {verdicts}"
    )


# ---------------------------------------------------------------------------
# Model enumeration: identical sets, every model theory-consistent
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("case", range(90))
def test_random_enumerations_agree_and_replay(case):
    rng = random.Random(SEED + 7_000_003 * case)
    base = _random_formula(rng, depth=3)
    pool = [atom for atom in _atom_pool() if smt.is_atom(atom)]
    literals = rng.sample(pool, rng.randint(2, 4))
    results = {}
    for backend in BACKENDS:
        solver = smt.Solver(backend=backend)
        results[backend] = solver.enumerate_models(literals, base=base)
    reference = results["dpll"]
    for backend, models in results.items():
        assert models == reference, (
            f"{backend} enumerated a different set on seed base {SEED}, "
            f"case {case}"
        )
    # every minterm a backend reports must be a theory-consistent conjunction
    for assignment in reference:
        replay = check_theory(list(assignment))
        assert replay.consistent, (
            f"enumerated assignment fails theory replay (seed base {SEED}, "
            f"case {case}): {assignment}"
        )


# ---------------------------------------------------------------------------
# ≥60 random SFA-inclusion pairs agree (verdict + witness trace)
# ---------------------------------------------------------------------------

_SFA_PREDS = [
    smt.declare(f"fz_sp{i}", [sorts.ELEM], smt.BOOL, method_predicate=True)
    for i in range(2)
]


def _random_registry(rng: random.Random) -> OperatorRegistry:
    registry = OperatorRegistry()
    registry.declare("fz_op_a", [("x", sorts.ELEM)], sorts.UNIT)
    if rng.random() < 0.5:
        registry.declare("fz_op_b", [("y", sorts.ELEM), ("m", smt.INT)], smt.BOOL)
    return registry


def _random_event_literal(rng: random.Random, signature) -> smt.Term:
    formals = [f for f in signature.formals if f.sort in (smt.INT, sorts.ELEM)]
    if not formals:
        return smt.TRUE
    formal = rng.choice(formals)
    if formal.sort == smt.INT:
        if rng.random() < 0.5:
            return smt.lt(formal, rng.choice(_N))
        return smt.le(rng.choice(_N), formal)
    if rng.random() < 0.5:
        return smt.apply(rng.choice(_SFA_PREDS), formal)
    return smt.eq(formal, rng.choice(_E))


def _random_sfa(rng: random.Random, registry, depth: int = 3) -> S.Sfa:
    if depth == 0 or rng.random() < 0.3:
        choice = rng.randrange(4)
        if choice == 0:
            return S.TOP
        if choice == 1:
            signature = rng.choice(list(registry))
            return S.event(signature, _random_event_literal(rng, signature))
        if choice == 2:
            return S.guard(smt.apply(rng.choice(_SFA_PREDS), rng.choice(_E)))
        return S.event(rng.choice(list(registry)), smt.TRUE)
    combinator = rng.randrange(5)
    left = _random_sfa(rng, registry, depth - 1)
    right = _random_sfa(rng, registry, depth - 1)
    if combinator == 0:
        return S.and_(left, right)
    if combinator == 1:
        return S.or_(left, right)
    if combinator == 2:
        return S.not_(left)
    if combinator == 3:
        return S.next_(left)
    return S.concat(left, right)


@pytest.mark.parametrize("case", range(64))
def test_random_inclusions_agree(case):
    rng = random.Random(SEED + 13_000_027 * case)
    registry = _random_registry(rng)
    lhs = _random_sfa(rng, registry)
    rhs = _random_sfa(rng, registry)
    hypotheses = []
    if rng.random() < 0.3:
        hypothesis = smt.apply(rng.choice(_SFA_PREDS), rng.choice(_E))
        hypotheses.append(hypothesis)

    results = {}
    for backend in BACKENDS:
        checker = InclusionChecker(smt.Solver(backend=backend), registry)
        results[backend] = checker.check_detailed(hypotheses, lhs, rhs)
    reference = results["dpll"]
    for backend, result in results.items():
        assert result.included == reference.included, (
            f"{backend} verdict differs (seed base {SEED}, case {case})"
        )
        assert result.counterexample == reference.counterexample, (
            f"{backend} witness differs (seed base {SEED}, case {case})"
        )
