"""Table 3 — per-method verification statistics (Stack / Set / LazySet group)."""

import pytest

from repro.suite.registry import all_benchmarks
from .conftest import corpus_param, include_slow

TABLE3_ADTS = ("Stack", "Set", "Queue", "MinSet", "LazySet")


def _methods():
    rows = []
    for bench in all_benchmarks(include_slow=include_slow()):
        if bench.adt not in TABLE3_ADTS:
            continue
        for method in bench.specs:
            label = f"{bench.key}.{method}"
            rows.append(corpus_param(bench, label, bench, method, id=label))
    return rows


@pytest.mark.parametrize("label,bench,method", _methods())
def test_table3_method(benchmark, label, bench, method):
    checker = bench.make_checker()

    def verify():
        return bench.verify_method(method, checker)

    result = benchmark.pedantic(verify, rounds=1, iterations=1)
    assert result.verified, result.error
    benchmark.extra_info.update(result.stats.as_row())
