"""Unit tests for refinement types, HATs and typing contexts."""

import pytest

from repro import smt
from repro.smt.sorts import BOOL, ELEM, INT, UNIT
from repro.sfa import symbolic as S
from repro.types import (
    Binding,
    FunType,
    GhostArrow,
    HatType,
    Intersection,
    PureOpContext,
    RefinementType,
    TypingContext,
    TypingError,
    base,
    erase,
    function_signature,
    nu,
    singleton,
    strip_ghosts,
)


def test_refinement_type_instantiation_and_substitution():
    x = smt.var("rt_x", INT)
    ty = RefinementType(INT, smt.lt(nu(INT), x))
    value = smt.int_const(3)
    assert ty.instantiate(value) is smt.lt(value, x)
    replaced = ty.substitute({x: smt.int_const(10)})
    assert replaced.instantiate(value) is smt.TRUE  # 3 < 10 folds to true


def test_singleton_and_base():
    x = smt.var("rt_x2", ELEM)
    ty = singleton(ELEM, x)
    assert ty.instantiate(x) is smt.TRUE
    assert base(ELEM).qualifier is smt.TRUE
    assert erase(base(ELEM)) == "Elem"


def test_hat_type_substitution_touches_automata():
    ops = __import__("repro.sfa.signatures", fromlist=["OperatorRegistry"]).OperatorRegistry()
    sig = ops.declare("rt_op", [("x", ELEM)], UNIT)
    el = smt.var("rt_el", ELEM)
    other = smt.var("rt_other", ELEM)
    hat = HatType(
        precondition=S.eventually(S.event_pinned(sig, [el])),
        result=base(UNIT),
        postcondition=S.eventually(S.event_pinned(sig, [el])),
    )
    renamed = hat.substitute({el: other})
    assert renamed.precondition.context_vars() == {other}


def test_intersection_requires_matching_base_types():
    hat_bool = HatType(S.TOP, base(BOOL), S.TOP)
    hat_unit = HatType(S.TOP, base(UNIT), S.TOP)
    with pytest.raises(ValueError):
        Intersection((hat_bool, hat_unit))
    with pytest.raises(ValueError):
        Intersection(())
    assert len(Intersection((hat_bool, hat_bool)).cases) == 2


def test_function_signature_decomposition():
    hat = HatType(S.TOP, base(BOOL), S.TOP)
    ty = GhostArrow("g", ELEM, FunType("x", base(ELEM), FunType("y", base(INT), hat)))
    ghosts, params, effect = function_signature(ty)
    assert ghosts == [("g", ELEM)]
    assert [name for name, _ in params] == ["x", "y"]
    assert effect is hat
    assert strip_ghosts(ty)[0] == [("g", ELEM)]
    assert "->" in erase(ty)


def test_typing_context_bindings_and_hypotheses():
    gamma = TypingContext()
    gamma = gamma.bind("x", RefinementType(INT, smt.lt(nu(INT), smt.int_const(5))))
    gamma = gamma.bind("flag", RefinementType(BOOL, smt.eq(nu(BOOL), smt.TRUE)))
    gamma = gamma.assume(smt.lt(smt.var("x", INT), smt.int_const(3)))
    assert "x" in gamma and "missing" not in gamma
    assert gamma.term_of("x") is smt.var("x", INT)
    hyps = gamma.hypotheses()
    assert smt.lt(smt.var("x", INT), smt.int_const(5)) in hyps
    assert len(hyps) == 3
    assert gamma.names() == ["x", "flag"]
    with pytest.raises(TypingError):
        gamma.lookup("missing")


def test_typing_context_infeasibility():
    solver = smt.Solver()
    gamma = TypingContext().bind("b", RefinementType(BOOL, smt.eq(nu(BOOL), smt.TRUE)))
    assert not gamma.is_infeasible(solver)
    contradictory = gamma.assume(smt.eq(smt.var("b", BOOL), smt.FALSE))
    assert contradictory.is_infeasible(solver)


def test_function_typed_bindings_have_no_logical_term():
    thunk = FunType("u", base(UNIT), HatType(S.TOP, base(UNIT), S.TOP))
    gamma = TypingContext().bind("t", thunk)
    with pytest.raises(TypingError):
        gamma.term_of("t")


def test_pure_op_context():
    parent = smt.declare("rt_parent", [ELEM], ELEM)
    pure = PureOpContext()
    pure.declare("parent_of", parent)
    assert "parent_of" in pure
    spec = pure["parent_of"]
    x = smt.var("rt_x3", ELEM)
    result = spec.result_type([x])
    assert result.sort is ELEM
    assert result.instantiate(smt.apply(parent, x)) is smt.TRUE
    with pytest.raises(TypingError):
        pure["unknown"]
