"""Typing contexts Γ and the built-in operator context Δ.

Γ maps program variables to *pure* refinement types (HATs are not allowed in
contexts — see Sec. 4.2 of the paper) plus a set of path-condition
hypotheses.  Each binding also fixes the SMT variable that represents the
program variable inside qualifiers and automata.

Δ assigns types to the effectful operators of the backing library (Example
4.2) and to its pure helper functions (``Path.parent``, ``File.isDir``, ...).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Optional, Sequence, Union

from .. import smt
from ..smt.sorts import Sort
from . import rtypes
from .rtypes import FunType, GhostArrow, HatType, Intersection, RefinementType, Type


class TypingError(Exception):
    """A (user-facing) type error raised during verification."""


@dataclass(frozen=True)
class Binding:
    name: str
    type: Union[RefinementType, Type]

    @property
    def is_pure(self) -> bool:
        return isinstance(self.type, RefinementType)


class TypingContext:
    """An immutable ordered typing context."""

    def __init__(
        self,
        bindings: Sequence[Binding] = (),
        hypotheses: Sequence[smt.Term] = (),
    ) -> None:
        self._bindings = tuple(bindings)
        self._hypotheses = tuple(hypotheses)
        self._by_name = {b.name: b for b in self._bindings}

    # -- construction -------------------------------------------------------------
    def bind(self, name: str, ty: Type) -> "TypingContext":
        return TypingContext(self._bindings + (Binding(name, ty),), self._hypotheses)

    def bind_value(self, name: str, ty: RefinementType) -> "TypingContext":
        return self.bind(name, ty)

    def assume(self, formula: smt.Term) -> "TypingContext":
        if formula.is_true:
            return self
        return TypingContext(self._bindings, self._hypotheses + (formula,))

    # -- lookup --------------------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def lookup(self, name: str) -> Type:
        binding = self._by_name.get(name)
        if binding is None:
            raise TypingError(f"unbound variable {name!r}")
        return binding.type

    def term_of(self, name: str) -> smt.Term:
        """The SMT variable standing for program variable ``name``."""
        ty = self.lookup(name)
        if not isinstance(ty, RefinementType):
            raise TypingError(f"{name!r} is function-typed and has no logical term")
        return smt.var(name, ty.sort)

    @property
    def bindings(self) -> tuple[Binding, ...]:
        return self._bindings

    def names(self) -> list[str]:
        return [b.name for b in self._bindings]

    # -- logical content --------------------------------------------------------------
    def hypotheses(self) -> list[smt.Term]:
        """The qualifier of every pure binding (at its variable) plus assumptions."""
        out: list[smt.Term] = []
        for binding in self._bindings:
            if isinstance(binding.type, RefinementType):
                variable = smt.var(binding.name, binding.type.sort)
                qualifier = binding.type.instantiate(variable)
                if not qualifier.is_true:
                    out.append(qualifier)
        out.extend(self._hypotheses)
        return out

    def is_infeasible(self, solver: smt.Solver) -> bool:
        """Is the denotation of the context empty? (used to prune dead branches)"""
        return not solver.is_satisfiable(smt.and_(*self.hypotheses()))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = [f"{b.name}:{b.type!r}" for b in self._bindings]
        parts.extend(repr(h) for h in self._hypotheses)
        return "Γ[" + ", ".join(parts) + "]"


# ---------------------------------------------------------------------------
# Pure helper functions of the backing libraries
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PureOpSpec:
    """A pure library function, typed by an equational qualifier on ν.

    ``make_qualifier(nu, args)`` builds the refinement of the result in terms
    of the SMT encodings of the arguments (typically ``ν = f(args)`` for an
    uninterpreted function or ``ν ⟺ p(args)`` for a method predicate).
    """

    name: str
    arg_sorts: tuple[Sort, ...]
    result_sort: Sort
    make_qualifier: Callable[[smt.Term, Sequence[smt.Term]], smt.Term]

    def result_type(self, args: Sequence[smt.Term]) -> RefinementType:
        binder = rtypes.nu(self.result_sort)
        return RefinementType(self.result_sort, self.make_qualifier(binder, args))


def uninterpreted_pure_op(name: str, decl: smt.FuncDecl) -> PureOpSpec:
    """A pure op whose meaning is an uninterpreted SMT function/predicate."""

    def make_qualifier(binder: smt.Term, args: Sequence[smt.Term]) -> smt.Term:
        return smt.eq(binder, smt.apply(decl, *args))

    return PureOpSpec(name, decl.arg_sorts, decl.result_sort, make_qualifier)


class PureOpContext:
    """The pure fragment of Δ: library helper functions and method predicates."""

    def __init__(self, specs: Iterable[PureOpSpec] = ()) -> None:
        self._specs: dict[str, PureOpSpec] = {}
        for spec in specs:
            self.add(spec)

    def add(self, spec: PureOpSpec) -> PureOpSpec:
        self._specs[spec.name] = spec
        return spec

    def declare(self, name: str, decl: smt.FuncDecl) -> PureOpSpec:
        return self.add(uninterpreted_pure_op(name, decl))

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    def __getitem__(self, name: str) -> PureOpSpec:
        try:
            return self._specs[name]
        except KeyError:
            raise TypingError(f"unknown pure operator {name!r}") from None

    def names(self) -> list[str]:
        return sorted(self._specs)


# ---------------------------------------------------------------------------
# The effectful operator context Δ
# ---------------------------------------------------------------------------


class BuiltinContext:
    """Δ: HAT signatures for the effectful operators of a backing library."""

    def __init__(self, signatures: Mapping[str, Type] | None = None) -> None:
        self._signatures: dict[str, Type] = dict(signatures or {})

    def add(self, op: str, ty: Type) -> None:
        self._signatures[op] = ty

    def __contains__(self, op: str) -> bool:
        return op in self._signatures

    def __getitem__(self, op: str) -> Type:
        try:
            return self._signatures[op]
        except KeyError:
            raise TypingError(f"no HAT signature for effectful operator {op!r}") from None

    def operators(self) -> list[str]:
        return sorted(self._signatures)
