"""Benchmark harness regenerating the paper's Tables 1–4.

This package marker lets the table benchmarks use relative imports
(``from .conftest import include_slow``) when collected by ``pytest`` from
the repository root.
"""
