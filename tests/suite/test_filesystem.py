"""Tests for the FileSystem/KVStore benchmark (the paper's motivating example).

Full static verification of ``add`` is the most expensive obligation in the
corpus (as it is in the paper); it is exercised by the benchmark harness with
``PYMARPLE_FULL=1``.  The unit tests here cover the cheaper method
(``exists_path``), the structure of the benchmark, and the dynamic behaviour
of Example 2.1 — including the fact that the buggy ``addbad`` produces a
trace rejected by I_FS while the correct ``add`` does not.
"""

import pytest

from repro import smt
from repro.smt.sorts import PATH
from repro.sfa import accepts
from repro.sfa.events import Trace
from repro.suite.filesystem import FILESYSTEM_ADD_BAD, filesystem_kvstore


@pytest.fixture(scope="module")
def bench():
    return filesystem_kvstore()


def test_benchmark_structure(bench):
    assert bench.key == "FileSystem/KVStore"
    assert bench.num_ghosts == 1
    assert bench.invariant_size >= 15
    assert set(bench.specs) == {"init", "add", "exists_path"}
    assert bench.slow
    program = bench.program
    assert program["add"].params[0][0] == "path"
    from repro.lang import ast

    assert ast.count_branches(program["add"].body) >= 4
    assert ast.count_operator_applications(program["add"].body) >= 7


def test_exists_path_verifies(bench):
    result = bench.verify_method("exists_path")
    assert result.verified, result.error
    assert result.stats.smt_queries > 100  # the invariant alone induces many minterms
    assert result.stats.fa_inclusion_checks >= 3


def test_dynamic_example_2_1(bench):
    """Replays Example 2.1 and checks the traces against I_FS."""
    interp = bench.interpreter()
    module = bench.module(interp)
    file_bytes = {"kind": "file", "children": ()}
    dir_bytes = {"kind": "dir", "children": ()}

    alpha0 = interp.call(module["init"], [()], Trace()).trace
    assert [e.op for e in alpha0][-1] == "put"

    # correct add: refuses to create an orphan, emits the two exists probes of α2
    good = interp.call(module["add"], ["/a/b.txt", file_bytes], alpha0)
    assert good.value is False
    assert [e.op for e in good.emitted] == ["exists", "exists"]

    # buggy add: records the orphan (α1)
    bad_program = bench.parse_variant(FILESYSTEM_ADD_BAD)
    bad_fn = interp.eval_value(bad_program["addbad"].as_value(), {})
    bad = interp.call(bad_fn, ["/a/b.txt", file_bytes], alpha0)
    assert bad.value is True

    p = smt.var("p", PATH)
    meanings = bench.library.interpretation()
    # I_FS holds of the correct trace for every relevant path...
    for path in ("/", "/a", "/a/b.txt"):
        assert accepts(bench.invariant, good.trace, {p: path}, meanings)
    # ...but the buggy trace violates it for the orphan path
    assert not accepts(bench.invariant, bad.trace, {p: "/a/b.txt"}, meanings)
    assert accepts(bench.invariant, bad.trace, {p: "/"}, meanings)

    # creating the parent directory first preserves the invariant
    step1 = interp.call(module["add"], ["/a", dir_bytes], alpha0)
    step2 = interp.call(module["add"], ["/a/b.txt", file_bytes], step1.trace)
    assert step1.value is True and step2.value is True
    for path in ("/", "/a", "/a/b.txt"):
        assert accepts(bench.invariant, step2.trace, {p: path}, meanings)
