"""Tests for the subtyping engine (base subtyping via SMT, HAT subtyping via SFA)."""

from repro import smt
from repro.smt.sorts import BOOL, ELEM, INT
from repro.sfa import OperatorRegistry, symbolic as S
from repro.sfa.inclusion import InclusionChecker
from repro.types import HatType, RefinementType, SubtypingEngine, TypingContext, base, nu
from repro.smt.sorts import UNIT


def make_engine():
    ops = OperatorRegistry()
    ops.declare("sub_insert", [("x", ELEM)], UNIT)
    solver = smt.Solver()
    return SubtypingEngine(solver, InclusionChecker(solver, ops)), ops


def test_base_subtyping():
    engine, _ = make_engine()
    gamma = TypingContext()
    lt5 = RefinementType(INT, smt.lt(nu(INT), smt.int_const(5)))
    lt10 = RefinementType(INT, smt.lt(nu(INT), smt.int_const(10)))
    assert engine.base_subtype(gamma, lt5, lt10)
    assert not engine.base_subtype(gamma, lt10, lt5)
    assert engine.base_subtype(gamma, lt5, base(INT))


def test_base_subtyping_uses_context_hypotheses():
    engine, _ = make_engine()
    bound = smt.var("sub_bound", INT)
    gamma = TypingContext().bind("bound", RefinementType(INT, smt.lt(nu(INT), smt.int_const(0))))
    under_bound = RefinementType(INT, smt.lt(nu(INT), smt.var("bound", INT)))
    negative = RefinementType(INT, smt.lt(nu(INT), smt.int_const(0)))
    assert engine.base_subtype(gamma, under_bound, negative)
    assert not engine.base_subtype(TypingContext().bind("bound", base(INT)), under_bound, negative)


def test_value_has_type():
    engine, _ = make_engine()
    gamma = TypingContext()
    three = smt.int_const(3)
    assert engine.value_has_type(gamma, three, RefinementType(INT, smt.lt(nu(INT), smt.int_const(5))))
    assert not engine.value_has_type(gamma, three, RefinementType(INT, smt.lt(nu(INT), smt.int_const(2))))


def test_hat_subtyping_pre_contravariant_post_covariant():
    engine, ops = make_engine()
    gamma = TypingContext()
    el = smt.var("sub_el", ELEM)
    insert_el = S.event_pinned(ops["sub_insert"], [el])
    never_inserted = S.not_(S.eventually(insert_el))
    anything = S.any_trace()

    narrow_pre = HatType(never_inserted, base(BOOL), anything)
    wide_pre = HatType(anything, base(BOOL), anything)
    # precondition is contravariant: accepting *more* contexts is a subtype
    assert engine.hat_subtype(gamma, wide_pre, narrow_pre)
    assert not engine.hat_subtype(gamma, narrow_pre, wide_pre)

    strict_post = HatType(anything, base(BOOL), never_inserted)
    loose_post = HatType(anything, base(BOOL), anything)
    # postcondition is covariant: producing *fewer* traces is a subtype
    assert engine.hat_subtype(gamma, strict_post, loose_post)
    assert not engine.hat_subtype(gamma, loose_post, strict_post)


def test_automata_inclusion_respects_hypotheses():
    engine, ops = make_engine()
    el = smt.var("sub_el2", ELEM)
    x = smt.var("sub_x2", ELEM)
    insert = ops["sub_insert"]
    only_x = S.globally(S.event(insert, smt.eq(insert.arg_vars[0], x)))
    only_el = S.globally(S.event(insert, smt.eq(insert.arg_vars[0], el)))
    free = TypingContext().bind("x", base(ELEM)).bind("el", base(ELEM))
    assert not engine.automata_included(free, only_x, only_el)
    equal = free.assume(smt.eq(x, el))
    assert engine.automata_included(equal, only_x, only_el)
