"""The persistent memory-cell library (Example 4.3): ``read`` / ``write``."""

from __future__ import annotations

from .. import smt
from ..smt.sorts import INT, UNIT, Sort
from ..lang.interp import StuckError
from ..sfa import symbolic
from ..sfa.signatures import OperatorRegistry
from ..sfa.symbolic import Sfa
from ..types.context import BuiltinContext, PureOpContext
from ..types.rtypes import FunType, HatType, base
from .base import Library


def written_predicate(operators: OperatorRegistry, value: smt.Term) -> Sfa:
    """P_written(v) ≐ ♦(⟨write ∼v⟩ ∧ ◯ □ ¬⟨write _⟩) — v is the *current* content."""
    write = operators["write"]
    exact = symbolic.event_pinned(write, {"v": value})
    any_write = symbolic.event(write)
    return symbolic.eventually(
        symbolic.and_(exact, symbolic.next_(symbolic.globally(symbolic.not_(any_write))))
    )


def ever_written_predicate(operators: OperatorRegistry) -> Sfa:
    """♦⟨write _⟩ — the cell has been initialised."""
    return symbolic.eventually(symbolic.event(operators["write"]))


def _single_event(precondition: Sfa, event: Sfa) -> Sfa:
    return symbolic.concat(precondition, symbolic.and_(event, symbolic.last()))


def make_memcell(value_sort: Sort = INT, *, name: str = "MemCell") -> Library:
    operators = OperatorRegistry()
    write = operators.declare("write", [("v", value_sort)], UNIT)
    read = operators.declare("read", [], value_sort)

    v_param = smt.var("v", value_sort)
    delta = BuiltinContext()

    delta.add(
        "write",
        FunType(
            "v",
            base(value_sort),
            HatType(
                precondition=symbolic.any_trace(),
                result=base(UNIT),
                postcondition=_single_event(
                    symbolic.any_trace(), symbolic.event_pinned(write, {"v": v_param})
                ),
            ),
        ),
    )

    initialised = ever_written_predicate(operators)
    delta.add(
        "read",
        HatType(
            precondition=initialised,
            result=base(value_sort),
            postcondition=_single_event(initialised, symbolic.event(read)),
        ),
    )

    def write_rule(trace, args):
        return ()

    def read_rule(trace, args):
        event = trace.last_event("write")
        if event is None:
            raise StuckError("read from an uninitialised cell")
        return event.args[0]

    return Library(
        name=name,
        operators=operators,
        delta=delta,
        pure_ops=PureOpContext(),
        model_rules={"write": write_rule, "read": read_rule},
    )
