"""repro.types — refinement types, HATs, typing contexts and subtyping."""

from .rtypes import (
    EffectType,
    FunType,
    GhostArrow,
    HatType,
    Intersection,
    RefinementType,
    Type,
    base,
    cases_of,
    erase,
    function_signature,
    nu,
    singleton,
    strip_ghosts,
)
from .context import (
    Binding,
    BuiltinContext,
    PureOpContext,
    PureOpSpec,
    TypingContext,
    TypingError,
    uninterpreted_pure_op,
)
from .subtyping import SubtypingEngine

__all__ = [
    "EffectType",
    "FunType",
    "GhostArrow",
    "HatType",
    "Intersection",
    "RefinementType",
    "Type",
    "base",
    "cases_of",
    "erase",
    "function_signature",
    "nu",
    "singleton",
    "strip_ghosts",
    "Binding",
    "BuiltinContext",
    "PureOpContext",
    "PureOpSpec",
    "TypingContext",
    "TypingError",
    "uninterpreted_pure_op",
    "SubtypingEngine",
]
