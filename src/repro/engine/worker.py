"""The pull-based discharge worker behind ``repro worker --store URL``.

A worker is a long-lived loop against a ``repro store serve`` instance:

1. **lease** a batch of queue items (cost-ordered by the server — LPT at
   dequeue), each item a ``(env, fp, bench)`` triple;
2. **materialise** the obligations by re-running the named benchmark's emit
   walk with ``only_digests`` set — obligations are hash-consed in-memory
   objects, so only the recipe to re-emit them crosses the wire; everything
   outside the leased set is vacuously skipped, exactly like a foreign
   shard slice;
3. **discharge** the leased obligations with the ordinary engine (batch or
   lazy mode, memo layers intact) and write verdicts back through the
   normal store path — appends carry ``if_absent``, so a worker whose lease
   was stolen and re-discharged elsewhere can never land a duplicate
   verdict record;
4. **complete** the lease only after the verdicts are durably flushed —
   a worker killed at any earlier point merely lets its lease expire, and
   the items are re-issued to a live worker (work stealing).

Determinism rides on the same invariant as ``--shards``: per-obligation
counters are a pure function of (process walk prefix, obligation).  The
solver-effort columns (#SAT/#Confl) are steered by process-global,
append-only state (term interning, the SFA compile cache), which the serial
runner populates by walking benchmarks in registry order — so a worker must
replay that walk prefix before discharging anything, or a benchmark
discharged alone in a fresh process records slightly different effort
counters than serial did.  Forked local workers inherit the coordinator's
collect-phase walk through fork; a fresh ``repro worker`` process replays
it via :func:`_warm_process_state` (a vacuous ``only_digests=frozenset()``
walk — nothing discharged, nothing stored, ~tens of milliseconds on the
fast corpus).  The coordinator's phase-2 warm run then reads every verdict
back and produces byte-identical tables.

``REPRO_WORKER_CRASH=lease`` is the fault-injection hook: the worker
hard-kills itself (``os._exit``) immediately after its first successful
lease — items claimed, nothing discharged, nothing completed — which is how
the suite proves a dead worker loses no obligations.
"""

from __future__ import annotations

import os
import socket
import time
import uuid
from dataclasses import dataclass, replace
from typing import Optional

from ..obs import trace
from ..obs.logs import get_logger
from ..evaluation.runner import run_benchmark
from ..statsutil import MergeableStats
from ..store.obligation_store import ObligationStore
from ..suite.registry import all_benchmarks, benchmark_by_key
from ..typecheck.checker import CheckerConfig

logger = get_logger("worker")


def _warm_process_state(config: CheckerConfig, check_negative_variants: bool) -> None:
    """Replay the suite's emit walk so effort counters match serial runs.

    Term interning and the SFA compile cache are process-global and
    append-only; an obligation's recorded #SAT/#Confl depend on the walk
    prefix that populated them.  Walking the registry's fast rows in order
    (the slow rows sit at the registry tail, so this stays a true prefix of
    any serial run) puts a fresh process in the same state a serial
    evaluation is in when each benchmark discharges.  ``only_digests`` of
    the empty set makes the walk vacuous: every obligation is skipped, no
    store is attached, nothing persists but the interned state itself.
    """
    warm_config = replace(
        config, only_digests=frozenset(), collect_sink=None, workers=1, shard=None
    )
    for benchmark in all_benchmarks(include_slow=False):
        run_benchmark(
            benchmark,
            config=warm_config,
            check_negative_variants=check_negative_variants,
            store=None,
        )

#: fault-injection hook (see module docstring)
ENV_WORKER_CRASH = "REPRO_WORKER_CRASH"


@dataclass
class WorkerStats(MergeableStats):
    """What one worker session did (printed by ``repro worker``)."""

    leases: int = 0
    items: int = 0
    benchmarks_run: int = 0
    #: leased items naming a benchmark this build doesn't know — completed
    #: anyway (the coordinator's phase 2 discharges them locally) so an
    #: older worker can never wedge the drain
    unknown_benchmarks: int = 0
    completed: int = 0
    #: batches dropped because an ``extend`` was refused (lease stolen)
    abandoned: int = 0
    idle_polls: int = 0


def run_worker(
    store_url: str,
    *,
    config: Optional[CheckerConfig] = None,
    batch: int = 8,
    ttl: float = 30.0,
    poll: float = 0.5,
    idle_exit: int = 3,
    max_batches: Optional[int] = None,
    worker_id: Optional[str] = None,
    check_negative_variants: bool = True,
    warm_process: bool = True,
) -> WorkerStats:
    """Lease, discharge and complete until the queue stays empty.

    ``idle_exit`` consecutive empty leases (``poll`` seconds apart) end the
    loop — a fleet drains and exits without a shutdown broadcast.  The
    worker's ``config`` must describe the same semantic environment as the
    coordinator's (discharge mode, backend, strategy...); a mismatch is not
    an error — the verdicts land under the worker's own environment key and
    the coordinator's phase 2 simply discharges its misses locally.

    ``warm_process`` replays the registry walk before the first lease (see
    :func:`_warm_process_state`); pass ``False`` only for workers forked
    from a coordinator that has already walked the suite in this process.
    """
    config = config or CheckerConfig()
    worker_id = worker_id or f"{socket.gethostname()}:{os.getpid()}:{uuid.uuid4().hex[:6]}"
    store = ObligationStore(store_url, backend=config.store_backend)
    if not store.is_remote:
        raise ValueError(f"repro worker needs a store *server* URL, got {store_url!r}")
    backend = store.backend
    backend.append_if_absent = True
    crash_after_lease = os.environ.get(ENV_WORKER_CRASH, "") == "lease"
    stats = WorkerStats()
    idle = 0
    logger.info("worker %s pulling from %s (batch=%d ttl=%.1fs)", worker_id, store_url, batch, ttl)
    if warm_process:
        with trace.span("worker.warmup", cat="run", worker=worker_id):
            _warm_process_state(config, check_negative_variants)
    with trace.span("worker.loop", cat="run", worker=worker_id, store=store_url):
        while True:
            if max_batches is not None and stats.leases >= max_batches:
                break
            with trace.span("queue.lease", cat="store", worker=worker_id) as lease_span:
                grant = backend.lease(batch, ttl, worker=worker_id)
                lease_id = grant.get("lease")
                items = grant.get("items", [])
                lease_span.set(
                    lease=lease_id, items=len(items), reclaimed=grant.get("reclaimed", 0)
                )
            if not lease_id:
                idle += 1
                stats.idle_polls += 1
                if idle >= idle_exit:
                    break
                time.sleep(poll)
                continue
            idle = 0
            stats.leases += 1
            stats.items += len(items)
            if crash_after_lease:  # pragma: no cover - exits the process
                logger.warning("fault injection: worker dying holding lease %s", lease_id)
                os._exit(9)
            # group the batch by benchmark: one emit walk materialises every
            # leased obligation that benchmark emits
            by_bench: dict[str, set[str]] = {}
            for item in items:
                by_bench.setdefault(item["bench"], set()).add(item["fp"])
            abandoned = False
            benches = sorted(by_bench)
            for position, bench_key in enumerate(benches):
                if position > 0 and not backend.extend(lease_id, ttl):
                    # the lease expired and was stolen mid-batch: the rest of
                    # the batch belongs to someone else now — walk away
                    logger.warning("lease %s lost mid-batch; abandoning", lease_id)
                    stats.abandoned += 1
                    abandoned = True
                    break
                try:
                    benchmark = benchmark_by_key(bench_key)
                except KeyError:
                    stats.unknown_benchmarks += 1
                    logger.warning("leased unknown benchmark %r; completing anyway", bench_key)
                    continue
                worker_config = replace(
                    config,
                    only_digests=frozenset(by_bench[bench_key]),
                    workers=1,
                    shard=None,
                    collect_sink=None,
                )
                run_benchmark(
                    benchmark,
                    config=worker_config,
                    check_negative_variants=check_negative_variants,
                    store=store,
                )
                stats.benchmarks_run += 1
            if abandoned:
                continue
            # durability before acknowledgement: flush the verdicts, then
            # complete — a crash between the two merely re-issues items whose
            # verdicts are already in the store (a warm no-op for the thief)
            store.flush()
            done = backend.complete(lease_id, [f"{item['env']}:{item['fp']}" for item in items])
            stats.completed += done.get("completed", 0)
    store.flush()
    store.commit_run()
    backend.close()
    logger.info(
        "worker %s done: %d leases, %d items, %d completed",
        worker_id, stats.leases, stats.items, stats.completed,
    )
    return stats
