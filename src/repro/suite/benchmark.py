"""The benchmark-suite abstraction: an ADT implementation plus its specification.

Each entry of the paper's evaluation corpus (Table 1) is represented by an
:class:`AdtBenchmark`: the Mini-ML sources of the ADT methods, the backing
library, the representation invariant, and per-method HAT specifications.
Known-incorrect variants (such as §2's ``addbad``) are carried alongside so
the evaluation can confirm they are rejected.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Mapping, Optional, Sequence

from .. import smt
from ..lang import ast
from ..lang.desugar import desugar_program
from ..lang.interp import Interpreter, module_environment
from ..libraries.base import Library
from ..sfa import symbolic
from ..sfa.symbolic import Sfa
from ..typecheck.checker import Checker, CheckerConfig
from ..typecheck.spec import MethodSpec
from ..typecheck.stats import AdtStats, MethodResult


@dataclass
class AdtBenchmark:
    """One row of the evaluation corpus."""

    adt: str
    library_name: str
    library: Library
    source: str
    invariant_description: str
    invariant: Sfa
    ghosts: tuple[tuple[str, object], ...]
    specs: dict[str, MethodSpec]
    #: method name -> (source text, spec name) for variants that must be rejected
    negative_variants: dict[str, tuple[str, str]] = field(default_factory=dict)
    #: extra named constants used by the sources
    constants: dict[str, smt.Term] = field(default_factory=dict)
    #: maximum number of literals the inclusion checker may enumerate
    max_literals: int = 14
    #: rough cost marker: benchmarks flagged slow are skipped by quick runs
    slow: bool = False

    # -- derived artefacts -----------------------------------------------------------
    @property
    def key(self) -> str:
        return f"{self.adt}/{self.library_name}"

    @property
    def invariant_size(self) -> int:
        return symbolic.size(self.invariant)

    @property
    def num_ghosts(self) -> int:
        return len(self.ghosts)

    @cached_property
    def program(self) -> ast.Program:
        return desugar_program(
            self.source,
            effectful_ops=self.library.effectful_op_names(),
            pure_ops=self.library.pure_ops.names(),
        )

    def parse_variant(self, source: str) -> ast.Program:
        return desugar_program(
            source,
            effectful_ops=self.library.effectful_op_names(),
            pure_ops=self.library.pure_ops.names(),
        )

    def make_checker(self, config: Optional[CheckerConfig] = None, *, store=None) -> Checker:
        from dataclasses import replace

        from ..sfa.alphabet import resolve_max_literals

        config = config or CheckerConfig()
        # the benchmark's max_literals is a floor on top of the strategy
        # default; derive a fresh config rather than mutating the caller's
        # (one CheckerConfig is commonly reused across benchmarks)
        resolved = resolve_max_literals(
            config.max_literals,
            config.enumeration_strategy,
            config.filter_unsat_minterms,
        )
        config = replace(config, max_literals=max(resolved, self.max_literals))
        all_constants = dict(self.library.constants)
        all_constants.update(self.constants)
        return Checker(
            operators=self.library.operators,
            delta=self.library.delta,
            pure_ops=self.library.pure_ops,
            axioms=self.library.axioms,
            constants=all_constants,
            config=config,
            store=store,
            store_scope=self.key,
        )

    # -- verification ------------------------------------------------------------------
    def verify_method(self, method: str, checker: Optional[Checker] = None) -> MethodResult:
        checker = checker or self.make_checker()
        definition = self.program[method]
        return checker.check_method(definition, self.specs[method], self.specs)

    def verify_all(self, checker: Optional[Checker] = None) -> AdtStats:
        checker = checker or self.make_checker()
        stats = AdtStats(
            adt=self.adt,
            library=self.library_name,
            num_methods=len(self.specs),
            num_ghosts=self.num_ghosts,
            invariant_size=self.invariant_size,
        )
        for method in self.specs:
            result = self.verify_method(method, checker)
            stats.method_results.append(result)
            stats.total_time_seconds += result.stats.total_time_seconds
            stats.all_verified = stats.all_verified and result.verified
        return stats

    def verify_negative_variant(self, name: str, checker: Optional[Checker] = None) -> MethodResult:
        """Check a known-bad variant; callers assert the result is *not* verified."""
        checker = checker or self.make_checker()
        source, spec_name = self.negative_variants[name]
        program = self.parse_variant(source)
        return checker.check_method(program[name], self.specs[spec_name], self.specs)

    # -- dynamic execution (used by examples and property tests) --------------------------
    def interpreter(self) -> Interpreter:
        return Interpreter(self.library.model(), self.library.pure_impls)

    def module(self, interpreter: Optional[Interpreter] = None) -> dict[str, object]:
        interpreter = interpreter or self.interpreter()
        return module_environment(self.program, interpreter)
