"""Stable content fingerprints: process-independence and structural identity.

The store's digests must be pure functions of *structure*: independent of the
interning order that assigned ``term_id``/``sfa_id`` (which the smart
constructors use to order commutative children), and therefore reproducible
in any process.  The cross-process tests below intern the corpus in two very
different orders and require every persistent key to coincide.
"""

import os
import subprocess
import sys
from pathlib import Path

import repro
from repro import smt
from repro.engine.obligations import ObligationSet
from repro.sfa import symbolic
from repro.smt.sorts import ELEM, INT
from repro.store.fingerprint import (
    environment_fingerprint,
    library_digest,
    obligation_digest,
    sfa_digest,
    shard_of,
    spec_digest,
    term_digest,
)
from repro.suite.registry import all_benchmarks


def test_term_digest_distinguishes_structure():
    x = smt.var("x", INT)
    y = smt.var("y", INT)
    assert term_digest(x) != term_digest(y)
    assert term_digest(smt.lt(x, y)) != term_digest(smt.lt(y, x))
    assert term_digest(smt.and_(smt.lt(x, y), smt.le(x, y))) != term_digest(
        smt.lt(x, y)
    )


def test_symmetric_connectives_hash_order_insensitively():
    # eq orients its operands by interning id; whichever orientation the
    # constructor picked, the digest of the underlying relation is fixed
    x = smt.var("x", ELEM)
    y = smt.var("y", ELEM)
    assert term_digest(smt.eq(x, y)) == term_digest(smt.eq(y, x))
    assert term_digest(smt.iff(smt.eq(x, y), smt.TRUE)) == term_digest(
        smt.iff(smt.eq(y, x), smt.TRUE)
    )


def test_obligation_digest_ignores_hypothesis_order_and_provenance():
    x = smt.var("x", INT)
    y = smt.var("y", INT)
    hyp_a, hyp_b = smt.lt(x, y), smt.le(y, x)
    lhs, rhs = symbolic.any_trace(), symbolic.TOP

    forward = ObligationSet(method="m").emit("postcondition", [hyp_a, hyp_b], lhs, rhs)
    backward = ObligationSet(method="other").emit(
        "coverage", [hyp_b, hyp_a], lhs, rhs, provenance="elsewhere"
    )
    assert obligation_digest(forward) == obligation_digest(backward)

    different = ObligationSet(method="m").emit("postcondition", [hyp_a], lhs, rhs)
    assert obligation_digest(different) != obligation_digest(forward)


def test_environment_fingerprint_separates_configurations():
    bench = all_benchmarks(include_slow=False)[0]
    base = dict(strategy="guided", discharge="lazy")
    fp = environment_fingerprint(bench.library.operators, bench.library.axioms, **base)
    assert fp == environment_fingerprint(
        bench.library.operators, bench.library.axioms, **base
    )
    for change in (
        {"discharge": "compiled"},
        {"strategy": "exhaustive"},
        {"minimize": True},
        {"max_literals": 99},
    ):
        other = environment_fingerprint(
            bench.library.operators, bench.library.axioms, **{**base, **change}
        )
        assert other != fp, f"{change} must change the environment fingerprint"


def test_shard_assignment_is_total_and_stable():
    digests = [term_digest(smt.int_const(i)) for i in range(50)]
    for shards in (1, 2, 5):
        assignment = [shard_of(d, shards) for d in digests]
        assert all(0 <= s < shards for s in assignment)
        assert assignment == [shard_of(d, shards) for d in digests]
    assert len({shard_of(d, 5) for d in digests}) > 1, "hash should actually spread"


_CROSS_PROCESS_SCRIPT = """
import sys
from repro.suite.registry import all_benchmarks
from repro.store.fingerprint import (
    environment_fingerprint, library_digest, sfa_digest, spec_digest,
)

# intern the corpus in the order given on the command line: the ids terms and
# formulas receive differ wildly between orders, the digests must not
order = [int(x) for x in sys.argv[1].split(",")]
benches = all_benchmarks(include_slow=False)
for index in order:
    bench = benches[index]
    print("invariant", bench.key, sfa_digest(bench.invariant))
    print("library", bench.key, library_digest(
        bench.library.operators, bench.library.axioms, bench.library.constants))
    print("env", bench.key, environment_fingerprint(
        bench.library.operators, bench.library.axioms))
    for name, spec in bench.specs.items():
        print("spec", bench.key, name, spec_digest(spec))
"""


def test_digests_are_process_and_interning_order_independent():
    count = len(all_benchmarks(include_slow=False))
    forward = ",".join(str(i) for i in range(count))
    backward = ",".join(str(i) for i in reversed(range(count)))

    src_dir = str(Path(repro.__file__).resolve().parent.parent)
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [src_dir] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )

    def run(order: str) -> dict[str, str]:
        result = subprocess.run(
            [sys.executable, "-c", _CROSS_PROCESS_SCRIPT, order],
            capture_output=True,
            text=True,
            check=True,
            env=env,
        )
        lines = {}
        for line in result.stdout.splitlines():
            *key, digest = line.split()
            lines[" ".join(key)] = digest
        return lines

    assert run(forward) == run(backward)
