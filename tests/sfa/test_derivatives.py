"""Tests for the derivative-based DFA compilation.

Beyond unit tests, the property tests check the compiler against the boolean
structure of the DFA algebra: compiling ``A ∧ B`` must produce an automaton
equivalent to the product of the automata of ``A`` and ``B``, etc.
"""

from hypothesis import given, settings, strategies as st

from repro import smt
from repro.smt import sorts
from repro.sfa import symbolic as S
from repro.sfa.alphabet import build_alphabets
from repro.sfa.derivatives import compile_dfa, nullable


def simple_alphabet(set_ops, solver, el):
    formula = S.eventually(S.event_pinned(set_ops["insert"], [el]))
    return build_alphabets(solver, [], [formula], set_ops)[0]


def char_index(alphabet, op_name, wanted_truth=None):
    for i, c in enumerate(alphabet.characters):
        if c.signature.name != op_name:
            continue
        if wanted_truth is None or all(c.truth()[k] == v for k, v in wanted_truth.items()):
            return i
    raise AssertionError("character not found")


def test_nullable():
    assert nullable(S.TOP)
    assert not nullable(S.BOT)
    assert nullable(S.any_trace())
    assert not nullable(S.any_event())
    assert nullable(S.last())
    assert not nullable(S.next_(S.TOP))
    assert nullable(S.and_(S.TOP, S.last()))
    assert nullable(S.concat(S.any_trace(), S.any_trace()))


def test_compile_eventually_insert_el(set_ops, solver):
    el = smt.var("dv_el", sorts.ELEM)
    alphabet = simple_alphabet(set_ops, solver, el)
    formula = S.eventually(S.event_pinned(set_ops["insert"], [el]))
    dfa = compile_dfa(formula, alphabet)

    ins_el = char_index(alphabet, "insert", {smt.eq(set_ops["insert"].arg_vars[0], el): True})
    ins_other = char_index(alphabet, "insert", {smt.eq(set_ops["insert"].arg_vars[0], el): False})
    mem_any = char_index(alphabet, "mem")

    assert not dfa.accepts_word([])
    assert dfa.accepts_word([ins_el])
    assert dfa.accepts_word([mem_any, ins_other, ins_el, mem_any])
    assert not dfa.accepts_word([ins_other, mem_any])


def test_compile_insert_once_invariant(set_ops, solver):
    el = smt.var("dv2_el", sorts.ELEM)
    alphabet = simple_alphabet(set_ops, solver, el)
    ins = S.event_pinned(set_ops["insert"], [el])
    invariant = S.globally(S.implies(ins, S.next_(S.not_(S.eventually(ins)))))
    dfa = compile_dfa(invariant, alphabet)

    ins_el = char_index(alphabet, "insert", {smt.eq(set_ops["insert"].arg_vars[0], el): True})
    ins_other = char_index(alphabet, "insert", {smt.eq(set_ops["insert"].arg_vars[0], el): False})

    assert dfa.accepts_word([])
    assert dfa.accepts_word([ins_el])
    assert dfa.accepts_word([ins_other, ins_el, ins_other])
    assert not dfa.accepts_word([ins_el, ins_el])
    assert not dfa.accepts_word([ins_el, ins_other, ins_el])


def test_compile_concat_and_last(set_ops, solver):
    el = smt.var("dv3_el", sorts.ELEM)
    alphabet = simple_alphabet(set_ops, solver, el)
    ins = S.event_pinned(set_ops["insert"], [el])
    formula = S.concat(S.any_trace(), S.and_(ins, S.last()))
    dfa = compile_dfa(formula, alphabet)

    ins_el = char_index(alphabet, "insert", {smt.eq(set_ops["insert"].arg_vars[0], el): True})
    ins_other = char_index(alphabet, "insert", {smt.eq(set_ops["insert"].arg_vars[0], el): False})

    assert dfa.accepts_word([ins_el])
    assert dfa.accepts_word([ins_other, ins_el])
    assert not dfa.accepts_word([])
    assert not dfa.accepts_word([ins_el, ins_other])


def test_guard_depends_on_context_case(set_ops, solver):
    el = smt.var("dv4_el", sorts.ELEM)
    special = smt.declare("dv4_special", [sorts.ELEM], smt.BOOL, method_predicate=True)
    formula = S.or_(
        S.guard(smt.apply(special, el)),
        S.event_pinned(set_ops["insert"], [el]),
    )
    alphabets = build_alphabets(solver, [], [formula], set_ops)
    by_case = {alphabet.context_case[0][1]: alphabet for alphabet in alphabets}
    dfa_true = compile_dfa(formula, by_case[True])
    dfa_false = compile_dfa(formula, by_case[False])
    mem_true = char_index(by_case[True], "mem")
    mem_false = char_index(by_case[False], "mem")
    # under special(el): the guard accepts any single event
    assert dfa_true.accepts_word([mem_true])
    # otherwise only the pinned insert event is accepted
    assert not dfa_false.accepts_word([mem_false])


# -- algebraic property tests ---------------------------------------------------------


def formula_strategy(set_ops):
    el = smt.var("prop_el", sorts.ELEM)
    insert = set_ops["insert"]
    mem = set_ops["mem"]
    atoms = st.sampled_from(
        [
            S.event_pinned(insert, [el]),
            S.event(insert),
            S.event_pinned(mem, [el], result=smt.TRUE),
            S.event(mem),
            S.any_event(),
        ]
    )
    return st.recursive(
        atoms,
        lambda inner: st.one_of(
            st.tuples(inner).map(lambda t: S.not_(t[0])),
            st.tuples(inner, inner).map(lambda t: S.and_(*t)),
            st.tuples(inner, inner).map(lambda t: S.or_(*t)),
            st.tuples(inner).map(lambda t: S.next_(t[0])),
            st.tuples(inner).map(lambda t: S.eventually(t[0])),
            st.tuples(inner).map(lambda t: S.globally(t[0])),
            st.tuples(inner, inner).map(lambda t: S.concat(*t)),
        ),
        max_leaves=4,
    )


@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_boolean_structure_matches_dfa_products(data, set_ops):
    solver = smt.Solver()
    strategy = formula_strategy(set_ops)
    a = data.draw(strategy)
    b = data.draw(strategy)
    alphabet = build_alphabets(solver, [], [a, b], set_ops)[0]

    dfa_a = compile_dfa(a, alphabet)
    dfa_b = compile_dfa(b, alphabet)

    assert compile_dfa(S.and_(a, b), alphabet).equivalent(dfa_a.intersect(dfa_b))
    assert compile_dfa(S.or_(a, b), alphabet).equivalent(dfa_a.union(dfa_b))
    assert compile_dfa(S.not_(a), alphabet).equivalent(dfa_a.complement())


@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_temporal_dualities(data, set_ops):
    solver = smt.Solver()
    strategy = formula_strategy(set_ops)
    a = data.draw(strategy)
    alphabet = build_alphabets(solver, [], [a], set_ops)[0]
    # □A ≡ ¬♦¬A by definition; check ♦A ≡ ⊤* ; (A ∧ one-or-more-events)? Instead
    # verify the expansion laws: ♦A ≡ A' where A' = A ∨ ◯♦A restricted to
    # non-empty traces is awkward syntactically, so check the simpler fixpoint
    # property through the compiled automata: L(♦A) = L(A ∨ ◯ ♦ A) on traces of
    # length ≥ 1, and ♦A never accepts the empty trace.
    ev = S.eventually(a)
    dfa_ev = compile_dfa(ev, alphabet)
    assert not dfa_ev.accepts_word([])
    unfolding = S.or_(S.and_(a, S.guard(smt.TRUE)), S.next_(ev))
    # On non-empty traces ♦A and its unfolding agree; conjoin with "at least
    # one event" (⟨⊤⟩) to ignore the empty trace.
    lhs = S.and_(ev, S.guard(smt.TRUE))
    rhs = S.and_(unfolding, S.guard(smt.TRUE))
    assert compile_dfa(lhs, alphabet).equivalent(compile_dfa(rhs, alphabet))
