"""Table 2 — the representation-invariant catalogue (descriptive, cheap).

The benchmark measures how long it takes to elaborate every benchmark's
invariant into its symbolic automaton and to render the Table 2 layout; the
assertions pin the catalogue's content.
"""

from repro.evaluation.tables import table2
from repro.sfa import symbolic
from repro.suite.registry import all_benchmarks


def test_table2_catalogue(benchmark):
    def build():
        benchmarks = all_benchmarks()
        rendered = table2(benchmarks)
        sizes = {bench.key: symbolic.size(bench.invariant) for bench in benchmarks}
        return rendered, sizes

    rendered, sizes = benchmark(build)
    assert "Set" in rendered and "KVStore" in rendered
    assert "FileSystem" in rendered
    assert "non-deleted directory" in rendered
    # every invariant is a non-trivial automaton (the paper's s_I column)
    assert all(size >= 4 for size in sizes.values())
    # DFA determinism needs two ghost variables, as in the paper
    dfa = next(bench for bench in all_benchmarks() if bench.adt == "DFA")
    assert dfa.num_ghosts == 2
