"""End-to-end tests for the lazy SMT solver facade."""

from repro import smt
from repro.smt import sorts
from repro.smt.solver import Solver

BYTES = sorts.BYTES
PATH = sorts.PATH

isDir = smt.declare("isDir_s", [BYTES], smt.BOOL, method_predicate=True)
isDel = smt.declare("isDel_s", [BYTES], smt.BOOL, method_predicate=True)
isFile = smt.declare("isFile_s", [BYTES], smt.BOOL, method_predicate=True)
parent = smt.declare("parent_s", [PATH], PATH)

v = smt.var("s_v", BYTES)
w = smt.var("s_w", BYTES)
p = smt.var("s_p", PATH)
q = smt.var("s_q", PATH)
x = smt.var("s_x", smt.INT)
y = smt.var("s_y", smt.INT)


def dir_not_del_axiom():
    b = smt.var("s_ax_b", BYTES)
    return smt.axiom("dir-not-del", [b], smt.implies(smt.apply(isDir, b), smt.not_(smt.apply(isDel, b))))


def dir_not_file_axiom():
    b = smt.var("s_ax_b", BYTES)
    return smt.axiom("dir-not-file", [b], smt.implies(smt.apply(isDir, b), smt.not_(smt.apply(isFile, b))))


def test_propositional_sat_unsat():
    solver = Solver()
    a = smt.var("s_a", smt.BOOL)
    b = smt.var("s_b", smt.BOOL)
    assert solver.is_satisfiable(smt.or_(a, b))
    assert not solver.is_satisfiable(smt.and_(a, smt.not_(a)))
    assert solver.is_valid(smt.or_(a, smt.not_(a)))
    assert not solver.is_valid(a)


def test_euf_reasoning_through_boolean_structure():
    solver = Solver()
    phi = smt.and_(
        smt.eq(v, w),
        smt.apply(isDir, v),
        smt.not_(smt.apply(isDir, w)),
    )
    assert not solver.is_satisfiable(phi)


def test_arith_reasoning_through_boolean_structure():
    solver = Solver()
    phi = smt.and_(
        smt.lt(x, y),
        smt.or_(smt.lt(y, x), smt.eq(x, y)),
    )
    assert not solver.is_satisfiable(phi)
    phi_sat = smt.and_(smt.lt(x, y), smt.or_(smt.lt(y, x), smt.lt(x, smt.int_const(10))))
    assert solver.is_satisfiable(phi_sat)


def test_method_predicate_axioms_are_instantiated():
    solver = Solver(axioms=[dir_not_del_axiom()])
    phi = smt.and_(smt.apply(isDir, v), smt.apply(isDel, v))
    assert not solver.is_satisfiable(phi)
    # without the axiom the same conjunction is satisfiable
    assert Solver().is_satisfiable(phi)


def test_axioms_fire_on_terms_introduced_by_functions():
    solver = Solver(axioms=[dir_not_del_axiom()])
    stored = smt.declare("stored_s", [PATH], BYTES)
    phi = smt.and_(
        smt.apply(isDir, smt.apply(stored, smt.apply(parent, p))),
        smt.apply(isDel, smt.apply(stored, smt.apply(parent, p))),
    )
    assert not solver.is_satisfiable(phi)


def test_implication_interface():
    solver = Solver(axioms=[dir_not_del_axiom(), dir_not_file_axiom()])
    hyps = [smt.apply(isDir, v)]
    assert solver.implies(hyps, smt.not_(smt.apply(isDel, v)))
    assert solver.implies(hyps, smt.not_(smt.apply(isFile, v)))
    assert not solver.implies(hyps, smt.apply(isFile, v))


def test_validity_with_hypotheses_and_equalities():
    solver = Solver()
    hyps = [smt.eq(p, q)]
    goal = smt.eq(smt.apply(parent, p), smt.apply(parent, q))
    assert solver.is_valid(goal, hypotheses=hyps)
    assert not solver.is_valid(goal)


def test_mixed_theory_query():
    solver = Solver()
    size = smt.declare("size_s", [BYTES], smt.INT)
    phi = smt.and_(
        smt.eq(v, w),
        smt.lt(smt.apply(size, v), smt.apply(size, w)),
    )
    assert not solver.is_satisfiable(phi)


def test_stats_are_recorded():
    solver = Solver()
    before = solver.stats.queries
    solver.is_satisfiable(smt.TRUE)
    solver.is_valid(smt.TRUE)
    assert solver.stats.queries == before + 2
    assert solver.stats.time_seconds >= 0.0
