"""The store-recorded cost model: ordering policies and cost persistence."""

import pytest

from repro import smt
from repro.smt import sorts
from repro.engine import Obligation, ObligationEngine, ObligationSet
from repro.sfa import symbolic as S
from repro.sfa.signatures import OperatorRegistry
from repro.store.fingerprint import obligation_digest
from repro.store.obligation_store import ObligationStore, StoreContext
from repro.typecheck.checker import CheckerConfig


@pytest.fixture(scope="module")
def registry() -> OperatorRegistry:
    ops = OperatorRegistry()
    ops.declare("insert", [("x", sorts.ELEM)], sorts.UNIT)
    return ops


def _obligations(registry, count=4):
    """Obligations of visibly different syntactic size, emitted in order."""
    el = smt.var("cost_el", sorts.ELEM)
    ins = S.event_pinned(registry["insert"], [el])
    inv = S.globally(S.implies(ins, S.next_(S.not_(S.eventually(ins)))))
    obset = ObligationSet(method="cost")
    grown = inv
    for _ in range(count):
        obset.emit("postcondition", [], grown, inv)
        grown = S.and_(grown, S.next_(grown))  # strictly larger each time
    return obset


def test_schedule_syntactic_is_cheapest_first(registry):
    obset = _obligations(registry)
    order = [rep.index for rep, _ in obset.schedule()]
    assert order == [0, 1, 2, 3]  # size grows with emission index here


def test_schedule_with_costs_orders_by_recorded_history(registry):
    obset = _obligations(registry)
    costs = {0: 3.0, 1: 0.5, 3: 1.5}  # index 2 has no history

    def cost_of(rep):
        return costs.get(rep.index)

    cheapest = [rep.index for rep, _ in obset.schedule(cost_of=cost_of)]
    # measured costs ascending first, then the estimate fallback
    assert cheapest == [1, 3, 0, 2]

    lpt = [rep.index for rep, _ in obset.schedule(cost_of=cost_of, longest_first=True)]
    assert lpt == [0, 3, 1, 2]


def test_schedule_ties_break_by_emission_order(registry):
    obset = _obligations(registry, count=3)
    flat = [rep.index for rep, _ in obset.schedule(cost_of=lambda rep: 1.0)]
    assert flat == [0, 1, 2]
    flat_lpt = [
        rep.index
        for rep, _ in obset.schedule(cost_of=lambda rep: 1.0, longest_first=True)
    ]
    assert flat_lpt == [0, 1, 2]


def test_engine_rejects_unknown_schedule_mode(registry):
    with pytest.raises(ValueError):
        ObligationEngine(registry, schedule="chaotic")


def test_checker_config_rejects_unknown_schedule_mode():
    from repro.suite.registry import all_benchmarks

    bench = all_benchmarks(include_slow=False)[0]
    with pytest.raises(ValueError):
        bench.make_checker(CheckerConfig(schedule="chaotic"))


def test_discharge_records_cost_into_the_store(registry, tmp_path):
    store = ObligationStore(tmp_path)
    engine = ObligationEngine(registry, store=store)
    obset = _obligations(registry, count=2)
    context = StoreContext(scope="t", method="m", spec_digest="s", library_digest="l")
    outcomes = engine.discharge_all(obset, store_context=context)
    assert all(outcome.included for outcome in outcomes.values())
    store.flush()

    for representative, _ in obset.deduped():
        digest = obligation_digest(representative)
        assert store.cost_hint(digest) is not None
        entry = next(e for e in store if e.fp == digest)
        assert entry.cost["wall"] >= 0.0
        assert entry.cost["queries"] >= 1
        assert "prod_states" in entry.cost


def test_cost_hint_crosses_environments(registry, tmp_path):
    """Costs recorded under one backend order a run under another."""
    store = ObligationStore(tmp_path)
    obset = _obligations(registry, count=2)
    context = StoreContext(scope="t", method="m", spec_digest="s", library_digest="l")
    dpll = ObligationEngine(registry, store=store, backend="dpll")
    dpll.discharge_all(obset, store_context=context)
    store.flush()

    cdcl = ObligationEngine(registry, store=store, backend="cdcl", schedule="cost")
    outcomes = cdcl.discharge_all(_obligations(registry, count=2), store_context=context)
    assert all(outcome.included for outcome in outcomes.values())
    assert cdcl.stats.store_hits == 0, "verdicts must not cross environments"
    assert cdcl.stats.cost_hints_used > 0, "costs must cross environments"


def test_cost_hints_survive_a_reload(registry, tmp_path):
    store = ObligationStore(tmp_path)
    obset = _obligations(registry, count=1)
    context = StoreContext(scope="t", method="m", spec_digest="s", library_digest="l")
    ObligationEngine(registry, store=store).discharge_all(obset, store_context=context)
    store.flush()
    digest = obligation_digest(obset.obligations[0])

    reloaded = ObligationStore(tmp_path)
    assert reloaded.cost_hint(digest) == store.cost_hint(digest)
