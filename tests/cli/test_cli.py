"""End-to-end coverage for the ``pymarple`` command-line interface.

Exercises exit codes, the error paths (unknown benchmark/method), the
checker-knob flags that used to be reachable only through ``REPRO_*``
environment variables, the ``--json`` machine-readable output, and the
incremental-store surface (``--incremental/--store/--explain``).
"""

import json

import pytest

from repro.cli import main as cli_main


# -- exit codes and error paths ---------------------------------------------------


def test_list_exits_zero(capsys):
    assert cli_main(["list"]) == 0
    out = capsys.readouterr().out
    assert "Set/KVStore" in out and "FileSystem/KVStore" in out


def test_check_single_method_exits_zero(capsys):
    assert cli_main(["check", "Set/KVStore", "--method", "mem"]) == 0
    assert "VERIFIED" in capsys.readouterr().out


def test_verify_is_an_alias_of_check(capsys):
    assert cli_main(["verify", "Set/KVStore", "--method", "mem"]) == 0
    assert "VERIFIED" in capsys.readouterr().out


def test_unknown_benchmark_exits_two(capsys):
    assert cli_main(["check", "Nope/Nothing"]) == 2
    err = capsys.readouterr().err
    assert "unknown benchmark" in err and "Set/KVStore" in err


def test_unknown_method_exits_two(capsys):
    assert cli_main(["check", "Set/KVStore", "--method", "frobnicate"]) == 2
    err = capsys.readouterr().err
    assert "no method" in err and "insert" in err


def test_argparse_rejects_bad_usage():
    with pytest.raises(SystemExit) as excinfo:
        cli_main(["table", "9"])
    assert excinfo.value.code == 2
    with pytest.raises(SystemExit):
        cli_main(["check", "Set/KVStore", "--discharge", "telepathy"])


# -- checker knobs -----------------------------------------------------------------


def test_checker_knob_flags_are_accepted(capsys):
    assert (
        cli_main(
            [
                "check",
                "Set/KVStore",
                "--workers",
                "2",
                "--discharge",
                "compiled",
                "--strategy",
                "exhaustive",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "all verified = True" in out


def test_knob_flags_reach_the_checker_config(monkeypatch):
    captured = {}
    from repro.suite.benchmark import AdtBenchmark

    original = AdtBenchmark.make_checker

    def spy(self, config=None, *, store=None):
        captured["config"] = config
        return original(self, config, store=store)

    monkeypatch.setattr(AdtBenchmark, "make_checker", spy)
    assert (
        cli_main(
            ["check", "Set/KVStore", "--workers", "3", "--discharge", "compiled", "--strategy", "exhaustive"]
        )
        == 0
    )
    config = captured["config"]
    assert config.workers == 3
    assert config.discharge == "compiled"
    assert config.enumeration_strategy == "exhaustive"


# -- solver backends ---------------------------------------------------------------


def test_backend_flag_runs_the_check(capsys):
    assert cli_main(["check", "Set/KVStore", "--backend", "cdcl"]) == 0
    out = capsys.readouterr().out
    assert "all verified = True" in out


def test_backend_flag_reaches_the_checker_config(monkeypatch):
    captured = {}
    from repro.suite.benchmark import AdtBenchmark

    original = AdtBenchmark.make_checker

    def spy(self, config=None, *, store=None):
        captured["config"] = config
        return original(self, config, store=store)

    monkeypatch.setattr(AdtBenchmark, "make_checker", spy)
    assert cli_main(["check", "Set/KVStore", "--backend", "cdcl"]) == 0
    assert captured["config"].backend == "cdcl"


def test_unknown_backend_exits_two():
    with pytest.raises(SystemExit) as excinfo:
        cli_main(["check", "Set/KVStore", "--backend", "telepathy"])
    assert excinfo.value.code == 2


def test_bad_repro_backend_env_exits_two(monkeypatch, capsys):
    """REPRO_BACKEND mirrors --backend, so a bad value must get the same
    clean exit-2 diagnostics instead of a ValueError traceback."""
    monkeypatch.setenv("REPRO_BACKEND", "telepathy")
    with pytest.raises(SystemExit) as excinfo:
        cli_main(["check", "Set/KVStore"])
    assert excinfo.value.code == 2
    assert "unknown solver backend" in capsys.readouterr().err


def test_unavailable_backend_exits_two(monkeypatch, capsys):
    from repro.smt import backends

    monkeypatch.setattr(backends, "backend_available", lambda name: name != "z3")
    with pytest.raises(SystemExit) as excinfo:
        cli_main(["check", "Set/KVStore", "--backend", "z3"])
    assert excinfo.value.code == 2
    assert "not available" in capsys.readouterr().err


# -- JSON output -------------------------------------------------------------------


def test_table2_json(capsys):
    assert cli_main(["table", "2", "--json"]) == 0
    rows = json.loads(capsys.readouterr().out)
    assert any(row["Client ADT"] == "Set" for row in rows)


def test_table_json_filters_rows_to_the_tables_adts(capsys, tmp_path):
    store_path = str(tmp_path / "store")  # warm the runs so this stays cheap
    assert cli_main(["table", "3", "--fast", "--json", "--store", store_path]) == 0
    table3_rows = json.loads(capsys.readouterr().out)
    assert cli_main(["table", "4", "--fast", "--json", "--store", store_path]) == 0
    table4_rows = json.loads(capsys.readouterr().out)
    assert {row["Datatype"] for row in table3_rows} <= {"Stack", "Set", "Queue", "MinSet", "LazySet"}
    assert {row["Datatype"] for row in table4_rows} <= {"Heap", "FileSystem", "DFA", "ConnectedGraph"}
    assert table3_rows and table4_rows
    assert not {row["Datatype"] for row in table3_rows} & {
        row["Datatype"] for row in table4_rows
    }


def test_evaluate_json_is_machine_readable(capsys, tmp_path):
    store_path = str(tmp_path / "store")
    assert cli_main(["evaluate", "--fast", "--json", "--store", store_path]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["all_verified"] is True
    assert payload["all_negatives_rejected"] is True
    assert any(row["ADT"] == "Set" for row in payload["adts"])
    assert any(row["Method"] == "insert" for row in payload["per_method"])
    assert "#Store" in payload["per_method"][0]
    assert set(payload["tables_deterministic"]) == {"table1", "table3", "table4"}
    assert payload["store"]["summary"]["misses"] > 0  # cold run

    # a second (warm) run answers from the store and reproduces the tables
    assert cli_main(["evaluate", "--fast", "--json", "--store", store_path]) == 0
    warm = json.loads(capsys.readouterr().out)
    assert warm["store"]["summary"]["hits"] > 0
    assert warm["store"]["summary"]["misses"] == 0
    assert warm["tables_deterministic"] == payload["tables_deterministic"]


# -- the incremental store surface -------------------------------------------------


def test_check_incremental_store_and_explain(capsys, tmp_path):
    store_path = str(tmp_path / "store")
    assert cli_main(["check", "Set/KVStore", "--store", store_path]) == 0
    cold = capsys.readouterr().out
    assert "store:" in cold and "misses" in cold

    assert cli_main(["check", "Set/KVStore", "--store", store_path, "--explain"]) == 0
    warm = capsys.readouterr().out
    assert "0 misses" in warm
    assert "Set/KVStore.insert: hits=" in warm


def test_incremental_defaults_to_local_store(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    monkeypatch.delenv("REPRO_STORE_BACKEND", raising=False)  # jsonl layout asserted
    assert cli_main(["check", "Set/KVStore", "--method", "empty", "--incremental"]) == 0
    capsys.readouterr()
    assert (tmp_path / ".pymarple-store" / "entries.jsonl").exists()


def test_evaluate_sharded_cli(capsys, tmp_path):
    store_path = str(tmp_path / "store")
    assert (
        cli_main(["evaluate", "--fast", "--shards", "2", "--store", store_path, "--json"])
        == 0
    )
    payload = json.loads(capsys.readouterr().out)
    assert payload["all_verified"] is True
    # phase 2 is a warm run over the merged shard outputs
    assert payload["store"]["summary"]["misses"] == 0
    assert payload["store"]["summary"]["hits"] > 0


# -- store backends and migration --------------------------------------------------


def test_store_backend_flag_selects_sqlite(capsys, tmp_path):
    store_path = str(tmp_path / "store")
    assert (
        cli_main(
            ["check", "Set/KVStore", "--store", store_path, "--store-backend", "sqlite"]
        )
        == 0
    )
    capsys.readouterr()
    assert (tmp_path / "store").is_file(), "the sqlite backend keeps one database file"
    # the warm run needs no flag: auto infers sqlite from the existing file
    assert cli_main(["check", "Set/KVStore", "--store", store_path]) == 0
    assert "0 misses" in capsys.readouterr().out


def test_db_suffix_selects_sqlite(capsys, tmp_path):
    store_path = str(tmp_path / "store.db")
    assert cli_main(["evaluate", "--fast", "--json", "--store", store_path]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["all_verified"] is True
    assert (tmp_path / "store.db").is_file()


def test_unknown_store_backend_flag_exits_two():
    with pytest.raises(SystemExit) as excinfo:
        cli_main(["check", "Set/KVStore", "--incremental", "--store-backend", "parquet"])
    assert excinfo.value.code == 2


def test_bad_repro_store_backend_env_exits_two(monkeypatch, capsys, tmp_path):
    """REPRO_STORE_BACKEND mirrors --store-backend: same exit-2 diagnostics."""
    monkeypatch.setenv("REPRO_STORE_BACKEND", "parquet")
    with pytest.raises(SystemExit) as excinfo:
        cli_main(["check", "Set/KVStore", "--store", str(tmp_path / "store")])
    assert excinfo.value.code == 2
    assert "unknown store backend" in capsys.readouterr().err


def test_store_migrate_cli_roundtrip(capsys, tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_STORE_BACKEND", raising=False)
    store_path = str(tmp_path / "store")
    assert cli_main(["check", "Set/KVStore", "--store", store_path]) == 0
    capsys.readouterr()

    # no --to-backend and no telling suffix: the destination backend flips
    db_path = str(tmp_path / "migrated")
    assert cli_main(["store", "migrate", store_path, db_path]) == 0
    out = capsys.readouterr().out
    assert "jsonl → sqlite" in out and "entries" in out

    # a warm check straight off the migrated store: everything still hits
    assert cli_main(["check", "Set/KVStore", "--store", db_path]) == 0
    assert "0 misses" in capsys.readouterr().out

    # and back again, explicitly
    back_path = str(tmp_path / "roundtripped")
    assert (
        cli_main(["store", "migrate", db_path, back_path, "--to-backend", "jsonl"]) == 0
    )
    capsys.readouterr()
    assert cli_main(["check", "Set/KVStore", "--store", back_path]) == 0
    assert "0 misses" in capsys.readouterr().out


def test_store_migrate_same_path_exits_two(capsys, tmp_path):
    store_path = str(tmp_path / "store")
    assert cli_main(["check", "Set/KVStore", "--store", store_path]) == 0
    capsys.readouterr()
    assert (
        cli_main(["store", "migrate", store_path, store_path, "--to-backend", "jsonl"])
        == 2
    )
    assert "distinct" in capsys.readouterr().err


def test_store_gc_accepts_sqlite_stores(capsys, tmp_path):
    store_path = str(tmp_path / "store.db")
    assert cli_main(["check", "Set/KVStore", "--store", store_path]) == 0
    capsys.readouterr()
    assert cli_main(["store", "gc", "--store", store_path, "--keep-last", "1"]) == 0
    out = capsys.readouterr().out
    assert "store gc:" in out and "kept" in out
