"""repro.smt — a from-scratch SMT substrate for the HAT type checker.

The paper discharges its verification conditions with Z3; this package
provides the equivalent functionality used by the reproduction:

* :mod:`repro.smt.sorts` / :mod:`repro.smt.terms` — hash-consed many-sorted
  terms and formulas,
* :mod:`repro.smt.cnf` / :mod:`repro.smt.backends` — Tseitin conversion and
  the pluggable SAT cores (DPLL, CDCL, optional z3) behind it,
* :mod:`repro.smt.euf` / :mod:`repro.smt.arith` / :mod:`repro.smt.theory` —
  congruence closure, linear integer arithmetic and their combination,
* :mod:`repro.smt.axioms` — ground instantiation of method-predicate lemmas,
* :mod:`repro.smt.solver` — the lazy-SMT facade used everywhere else.
"""

from .sorts import BOOL, INT, Sort, sort, uninterpreted
from .terms import (
    FuncDecl,
    Term,
    add,
    and_,
    apply,
    atoms,
    bool_const,
    data_const,
    declare,
    eq,
    evaluate,
    forall,
    ge,
    gt,
    iff,
    implies,
    int_const,
    is_atom,
    le,
    lt,
    mul,
    ne,
    neg,
    not_,
    or_,
    sub,
    substitute,
    var,
    FALSE,
    TRUE,
)
from .axioms import Axiom, axiom
from .backends import (
    available_backends,
    backend_available,
    known_backends,
    make_sat_backend,
    resolve_backend,
)
from .solver import Solver, SolverStats, is_satisfiable, is_valid

__all__ = [
    "BOOL",
    "INT",
    "Sort",
    "sort",
    "uninterpreted",
    "FuncDecl",
    "Term",
    "add",
    "and_",
    "apply",
    "atoms",
    "bool_const",
    "data_const",
    "declare",
    "eq",
    "evaluate",
    "forall",
    "ge",
    "gt",
    "iff",
    "implies",
    "int_const",
    "is_atom",
    "le",
    "lt",
    "mul",
    "ne",
    "neg",
    "not_",
    "or_",
    "sub",
    "substitute",
    "var",
    "FALSE",
    "TRUE",
    "Axiom",
    "axiom",
    "available_backends",
    "backend_available",
    "known_backends",
    "make_sat_backend",
    "resolve_backend",
    "Solver",
    "SolverStats",
    "is_satisfiable",
    "is_valid",
]
