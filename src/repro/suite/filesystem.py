"""The FileSystem ADT of the paper's motivating example (Fig. 1) over KVStore.

The representation invariant is the paper's Invariant_FS / I_FS(p): every
path stored in the key-value store, other than the root, must have its parent
stored as a non-deleted directory.  ``add`` follows Fig. 1 (existence check,
parent check, parent-kind check, then the two ``put``s); the incorrect
``addbad`` of Example 2.1 is carried as a negative variant and must be
rejected.

The ``delete``/``deleteChildren`` pair of Fig. 1 is not reproduced: verifying
it requires recursing over the children list of a directory, which needs
inductive datatypes in specifications (see EXPERIMENTS.md).
"""

from __future__ import annotations

from .. import smt
from ..smt.sorts import BOOL, BYTES, PATH, UNIT
from ..libraries.filelib import (
    ROOT_PATH,
    is_del,
    is_dir,
    is_file,
    is_root,
    make_file_helpers,
    parent_fn,
)
from ..libraries.base import merge_libraries
from ..libraries.kvstore import make_kvstore, stored_kind_predicate
from ..sfa import symbolic
from ..types.rtypes import base
from ..typecheck.spec import invariant_method
from .benchmark import AdtBenchmark


def _root_axiom() -> smt.Axiom:
    q = smt.var("fs_ax_q", PATH)
    return smt.axiom("isRoot-def", [q], smt.iff(smt.apply(is_root, q), smt.eq(q, ROOT_PATH)))


def _filesystem_library():
    kinds = [
        ("dir", lambda v: smt.apply(is_dir, v)),
        ("file", lambda v: smt.apply(is_file, v)),
        ("deleted", lambda v: smt.apply(is_del, v)),
    ]
    kv = make_kvstore(PATH, BYTES, name="KVStore", get_kinds=kinds)
    helpers = make_file_helpers()
    library = merge_libraries("KVStore", kv, helpers)
    library.axioms = tuple(library.axioms) + (_root_axiom(),)
    return library


def filesystem_invariant(library) -> symbolic.Sfa:
    """I_FS(p) of Example 2.2."""
    operators = library.operators
    p = smt.var("p", PATH)
    p_is_dir = stored_kind_predicate(
        operators,
        p,
        lambda v: smt.apply(is_dir, v),
        lambda v: smt.or_(smt.apply(is_del, v), smt.apply(is_file, v)),
    )
    p_is_file = stored_kind_predicate(
        operators,
        p,
        lambda v: smt.apply(is_file, v),
        lambda v: smt.or_(smt.apply(is_del, v), smt.apply(is_dir, v)),
    )
    parent_is_dir = stored_kind_predicate(
        operators,
        smt.apply(parent_fn, p),
        lambda v: smt.apply(is_dir, v),
        lambda v: smt.or_(smt.apply(is_del, v), smt.apply(is_file, v)),
    )
    return symbolic.or_(
        symbolic.globally(symbolic.guard(smt.apply(is_root, p))),
        symbolic.implies(symbolic.or_(p_is_file, p_is_dir), parent_is_dir),
    )


FILESYSTEM_SOURCE = """
let init (u : unit) : bool =
  if exists "/" then false
  else begin put "/" (File.init ()); true end

let add (path : Path.t) (bytes : Bytes.t) : bool =
  if exists path then false
  else
    let parent_path = Path.parent path in
    if not (exists parent_path) then false
    else
      let b = get parent_path in
      if File.isDir b then
        begin put path bytes; put parent_path (File.addChild b path); true end
      else false

let exists_path (path : Path.t) : bool =
  exists path
"""

FILESYSTEM_ADD_BAD = """
let addbad (path : Path.t) (bytes : Bytes.t) : bool =
  put path bytes; true
"""


def filesystem_kvstore() -> AdtBenchmark:
    library = _filesystem_library()
    invariant = filesystem_invariant(library)
    ghosts = (("p", PATH),)

    specs = {
        "init": invariant_method("init", ghosts, [("u", base(UNIT))], invariant, base(BOOL)),
        "add": invariant_method(
            "add", ghosts, [("path", base(PATH)), ("bytes", base(BYTES))], invariant, base(BOOL)
        ),
        "exists_path": invariant_method(
            "exists_path", ghosts, [("path", base(PATH))], invariant, base(BOOL)
        ),
    }

    return AdtBenchmark(
        adt="FileSystem",
        library_name="KVStore",
        library=library,
        source=FILESYSTEM_SOURCE,
        invariant_description=(
            "Any non-root path stored as a key must have its parent stored as a "
            "non-deleted directory"
        ),
        invariant=invariant,
        ghosts=ghosts,
        specs=specs,
        negative_variants={"addbad": (FILESYSTEM_ADD_BAD, "add")},
        max_literals=20,
        slow=True,
    )
