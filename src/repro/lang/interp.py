"""A trace-based interpreter for the MNF core calculus.

Implements the operational semantics of Fig. 3: evaluation is performed under
an *effect context* (a trace of previous events); each effectful operator
consults the trace through a library model (the ``α ⊨ op v̄ ⇓ v`` judgement)
and appends the event it produces.  The interpreter is used by the example
programs and by the property-based tests that check, dynamically, that
verified methods preserve their representation invariants (the paper's
Corollary 4.9).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional, Protocol, Sequence

from ..sfa.events import Event, Trace
from . import ast


class StuckError(RuntimeError):
    """Raised when evaluation gets stuck (e.g. ``get`` on an absent key)."""


class EffectModel(Protocol):
    """The semantics of a stateful library, given by trace inspection."""

    def apply(self, op: str, trace: Trace, args: Sequence[object]) -> object:
        """The result of ``op args`` under effect context ``trace``.

        Must raise :class:`StuckError` when no reduction rule applies.
        """


@dataclass(frozen=True)
class Closure:
    """A function value paired with its defining environment."""

    param: str
    body: ast.Expr
    env: Mapping[str, object]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<closure {self.param}>"


@dataclass(frozen=True)
class DataValue:
    """A constructed datum ``C(v̄)`` (used by list/tree style libraries)."""

    constructor: str
    fields: tuple[object, ...] = ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if not self.fields:
            return self.constructor
        return f"{self.constructor}({', '.join(map(repr, self.fields))})"


#: Default implementations of the built-in pure operators.
BUILTIN_PURE_IMPLS: dict[str, Callable[..., object]] = {
    "==": lambda a, b: a == b,
    "<>": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "&&": lambda a, b: bool(a) and bool(b),
    "||": lambda a, b: bool(a) or bool(b),
    "not": lambda a: not a,
}


@dataclass
class EvalResult:
    value: object
    trace: Trace
    #: the events emitted by this evaluation (suffix of ``trace``)
    emitted: Trace


class Interpreter:
    """Evaluates λᴱ programs under an effect model."""

    def __init__(
        self,
        effect_model: EffectModel,
        pure_ops: Mapping[str, Callable[..., object]] | None = None,
        *,
        max_steps: int = 100000,
    ) -> None:
        self.effect_model = effect_model
        self.pure_ops = dict(BUILTIN_PURE_IMPLS)
        if pure_ops:
            self.pure_ops.update(pure_ops)
        self.max_steps = max_steps
        self._steps = 0

    # -- values ----------------------------------------------------------------------
    def eval_value(self, value: ast.Value, env: Mapping[str, object]) -> object:
        if isinstance(value, ast.Const):
            return value.value
        if isinstance(value, ast.Var):
            if value.name not in env:
                raise StuckError(f"unbound variable {value.name!r}")
            return env[value.name]
        if isinstance(value, ast.Lambda):
            return Closure(value.param, value.body, dict(env))
        if isinstance(value, ast.Fix):
            lam = value.body
            closure_env = dict(env)
            closure = Closure(lam.param, lam.body, closure_env)
            closure_env[value.name] = closure
            return closure
        raise TypeError(f"unexpected value {value!r}")

    # -- computations -----------------------------------------------------------------
    def run(
        self,
        expr: ast.Expr,
        env: Mapping[str, object] | None = None,
        trace: Trace | None = None,
    ) -> EvalResult:
        """Evaluate ``expr`` under ``trace``; returns the value and traces."""
        self._steps = 0
        initial = trace if trace is not None else Trace()
        try:
            value, final = self._eval(expr, dict(env or {}), initial)
        except RecursionError as exc:
            raise StuckError("evaluation exceeded Python's recursion depth") from exc
        emitted = Trace(final.events[len(initial) :])
        return EvalResult(value=value, trace=final, emitted=emitted)

    def call(
        self,
        function: object,
        args: Sequence[object],
        trace: Trace | None = None,
    ) -> EvalResult:
        """Apply a closure (curried) to ``args`` under ``trace``."""
        initial = trace if trace is not None else Trace()
        current = initial
        value = function
        try:
            for arg in args:
                if not isinstance(value, Closure):
                    raise StuckError(f"cannot apply non-function value {value!r}")
                env = dict(value.env)
                env[value.param] = arg
                value, current = self._eval(value.body, env, current)
        except RecursionError as exc:
            raise StuckError("evaluation exceeded Python's recursion depth") from exc
        emitted = Trace(current.events[len(initial) :])
        return EvalResult(value=value, trace=current, emitted=emitted)

    def _tick(self) -> None:
        self._steps += 1
        if self._steps > self.max_steps:
            raise StuckError("evaluation exceeded the step budget (diverging program?)")

    def _eval(self, expr: ast.Expr, env: dict[str, object], trace: Trace) -> tuple[object, Trace]:
        self._tick()
        if isinstance(expr, ast.Ret):
            return self.eval_value(expr.value, env), trace
        if isinstance(expr, ast.LetPure):
            impl = self.pure_ops.get(expr.op)
            if impl is None:
                raise StuckError(f"no implementation for pure operator {expr.op!r}")
            args = [self.eval_value(a, env) for a in expr.args]
            result = impl(*args)
            new_env = dict(env)
            new_env[expr.name] = result
            return self._eval(expr.body, new_env, trace)
        if isinstance(expr, ast.LetOp):
            args = [self.eval_value(a, env) for a in expr.args]
            result = self.effect_model.apply(expr.op, trace, args)
            new_trace = trace.append(Event(expr.op, tuple(args), result))
            new_env = dict(env)
            new_env[expr.name] = result
            return self._eval(expr.body, new_env, new_trace)
        if isinstance(expr, ast.LetApp):
            func = self.eval_value(expr.func, env)
            args = [self.eval_value(a, env) for a in expr.args]
            value: object = func
            current = trace
            for arg in args:
                if not isinstance(value, Closure):
                    raise StuckError(f"cannot apply non-function value {value!r}")
                call_env = dict(value.env)
                call_env[value.param] = arg
                value, current = self._eval(value.body, call_env, current)
            new_env = dict(env)
            new_env[expr.name] = value
            return self._eval(expr.body, new_env, current)
        if isinstance(expr, ast.LetIn):
            value, current = self._eval(expr.bound, env, trace)
            new_env = dict(env)
            new_env[expr.name] = value
            return self._eval(expr.body, new_env, current)
        if isinstance(expr, ast.Match):
            scrutinee = self.eval_value(expr.scrutinee, env)
            branch, bound_values = self._select_branch(expr, scrutinee)
            new_env = dict(env)
            new_env.update(zip(branch.binders, bound_values))
            return self._eval(branch.body, new_env, trace)
        raise TypeError(f"unexpected computation {expr!r}")

    def _select_branch(self, expr: ast.Match, scrutinee: object) -> tuple[ast.Branch, tuple]:
        for branch in expr.branches:
            if branch.constructor == "true" and scrutinee is True:
                return branch, ()
            if branch.constructor == "false" and scrutinee is False:
                return branch, ()
            if branch.constructor == "unit" and scrutinee == ():
                return branch, ()
            if isinstance(scrutinee, DataValue) and scrutinee.constructor == branch.constructor:
                if len(branch.binders) != len(scrutinee.fields):
                    raise StuckError(
                        f"constructor {branch.constructor} expects {len(scrutinee.fields)} "
                        f"fields, pattern binds {len(branch.binders)}"
                    )
                return branch, scrutinee.fields
        raise StuckError(f"no match arm for scrutinee {scrutinee!r}")


# ---------------------------------------------------------------------------
# Running whole programs / modules
# ---------------------------------------------------------------------------


def module_environment(
    program: ast.Program,
    interpreter: Interpreter,
) -> dict[str, object]:
    """Evaluate the top-level definitions of a module into closures.

    Later definitions may reference earlier ones (and themselves when
    declared ``rec``), mirroring OCaml module initialisation order.
    """
    env: dict[str, object] = {}
    for definition in program.definitions:
        value = interpreter.eval_value(definition.as_value(), env)
        env[definition.name] = value
    return env
