"""Tests for the Abduce-style ghost variable instantiation (Algorithm 3)."""

from repro import smt
from repro.smt.sorts import ELEM, UNIT
from repro.libraries import make_set
from repro.sfa import symbolic as S
from repro.typecheck.abduction import abduce_ghosts
from repro.typecheck.checker import Checker
from repro.types import GhostArrow, FunType, HatType, base
from repro.types.context import TypingContext


def make_checker():
    library = make_set(ELEM)
    checker = Checker(
        operators=library.operators,
        delta=library.delta,
        pure_ops=library.pure_ops,
    )
    return library, checker


def test_no_ghosts_is_a_noop():
    _, checker = make_checker()
    gamma = TypingContext()
    effect = HatType(S.any_trace(), base(UNIT), S.any_trace())
    new_gamma, subst = abduce_ghosts(checker, gamma, S.any_trace(), [], effect, {})
    assert new_gamma is gamma
    assert subst == {}


def test_ghost_satisfied_without_strengthening():
    """If the coverage already holds with an unconstrained ghost, keep ⊤."""
    library, checker = make_checker()
    gamma = TypingContext()
    ghost = ("g", ELEM)
    effect = HatType(S.any_trace(), base(UNIT), S.any_trace())
    new_gamma, subst = abduce_ghosts(checker, gamma, S.any_trace(), [ghost], effect, {})
    assert smt.var("g", ELEM) in subst
    fresh = subst[smt.var("g", ELEM)]
    assert fresh.payload[0] in new_gamma.names()


def test_ghost_strengthened_to_validate_inclusion():
    """The ghost must be constrained (g = x) for the inclusion to hold."""
    library, checker = make_checker()
    insert = library.operators["insert"]
    x = smt.var("abd_x", ELEM)
    g = smt.var("g", ELEM)
    gamma = TypingContext().bind("abd_x", base(ELEM))
    # context: only x has ever been inserted
    context = S.globally(S.event(insert, smt.eq(insert.arg_vars[0], x)))
    # operator precondition: only g has ever been inserted
    precondition = S.globally(S.event(insert, smt.eq(insert.arg_vars[0], g)))
    effect = HatType(precondition, base(UNIT), S.concat(precondition, S.any_trace()))
    new_gamma, subst = abduce_ghosts(checker, gamma, context, [("g", ELEM)], effect, {})
    fresh = subst[g]
    specialised = S.substitute(precondition, {g: fresh})
    assert checker.engine.automata_included(new_gamma, context, specialised)
