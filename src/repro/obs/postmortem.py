"""Crash context capture for unexpected discharge failures.

When a discharge worker dies on an exception the engine does not expect
(anything outside the Alphabet/Compilation/Solver error family), the
traceback alone loses the interesting part: *which* obligation was in
flight and what the tracer had seen recently.  :func:`dump_postmortem`
writes that context to a JSON file — last N completed spans, the
open-span stack, the active obligation fingerprint — before the
exception propagates.  Dumping must never mask the original error, so
every failure in here is swallowed.
"""

from __future__ import annotations

import json
import os
import time
import traceback
from typing import Any, Optional

from . import trace

ENV_POSTMORTEM = "REPRO_POSTMORTEM"
DEFAULT_POSTMORTEM_PATH = ".pymarple-postmortem.json"

#: How many most-recent completed spans to include alongside the open stack.
RECENT_SPAN_COUNT = 25


def postmortem_path() -> str:
    return os.environ.get(ENV_POSTMORTEM) or DEFAULT_POSTMORTEM_PATH


def dump_postmortem(
    exc: BaseException,
    *,
    obligation_fp: Optional[str] = None,
    context: Optional[dict] = None,
    path: Optional[str] = None,
) -> Optional[str]:
    """Write crash context to ``path`` (default ``REPRO_POSTMORTEM``).

    Returns the path written, or None if the dump itself failed — the
    caller re-raises the original exception either way.
    """
    target = path or postmortem_path()
    tracer = trace.active()
    payload: dict[str, Any] = {
        "schema": 1,
        "time": time.time(),
        "pid": os.getpid(),
        "exception": {
            "type": type(exc).__name__,
            "message": str(exc),
            "traceback": traceback.format_exception(type(exc), exc, exc.__traceback__),
        },
        "obligation_fp": obligation_fp,
        "context": context or {},
        "open_spans": tracer.open_spans() if tracer is not None else [],
        "recent_spans": list(tracer.spans[-RECENT_SPAN_COUNT:]) if tracer is not None else [],
    }
    try:
        tmp = f"{target}.{os.getpid()}.tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True, default=str)
            handle.write("\n")
        os.replace(tmp, target)
        return target
    except OSError:
        return None
