"""Set, Stack and LazySet on top of the key-value store.

All three share the same backing library and the same style of invariant
(Table 2):

* **Set/KVStore** — "every key is associated with a distinct value": the ADT
  always stores an element under itself as key, and an element is never put
  twice;
* **Stack/KVStore** — "not a circular linked list": the stack is a chain in
  the store (element ↦ previous top) and a chain key is never re-put, so the
  chain cannot loop back;
* **LazySet/KVStore** — the Set invariant, with insertions delayed behind a
  thunk.
"""

from __future__ import annotations

from .. import smt
from ..smt.sorts import BOOL, ELEM, UNIT
from ..libraries.kvstore import exists_predicate, make_kvstore
from ..sfa import symbolic
from ..types.rtypes import FunType, HatType, base
from ..typecheck.spec import MethodSpec, invariant_method
from .benchmark import AdtBenchmark


def _kv_invariant(library) -> symbolic.Sfa:
    """I_Set(el): puts are keyed by their value, and a value is put at most once."""
    put = library.operators["put"]
    el = smt.var("el", ELEM)
    key_var, value_var = put.arg_vars
    keyed = symbolic.globally(
        symbolic.not_(symbolic.event(put, smt.not_(smt.eq(key_var, value_var))))
    )
    put_el = symbolic.event(put, smt.eq(value_var, el))
    unique = symbolic.globally(
        symbolic.implies(put_el, symbolic.next_(symbolic.not_(symbolic.eventually(put_el))))
    )
    return symbolic.and_(keyed, unique)


SET_SOURCE = """
let insert (x : Elem.t) : unit =
  if exists x then () else put x x

let mem (x : Elem.t) : bool =
  exists x

let empty (u : unit) : bool =
  true
"""

SET_INSERT_BAD = """
let insert_bad (x : Elem.t) : unit =
  put x x
"""


def set_kvstore() -> AdtBenchmark:
    library = make_kvstore(ELEM, ELEM, name="KVStore")
    invariant = _kv_invariant(library)
    ghosts = (("el", ELEM),)

    specs = {
        "insert": invariant_method("insert", ghosts, [("x", base(ELEM))], invariant, base(UNIT)),
        "mem": invariant_method("mem", ghosts, [("x", base(ELEM))], invariant, base(BOOL)),
        "empty": invariant_method("empty", ghosts, [("u", base(UNIT))], invariant, base(BOOL)),
    }

    return AdtBenchmark(
        adt="Set",
        library_name="KVStore",
        library=library,
        source=SET_SOURCE,
        invariant_description="Every key is associated with a distinct value",
        invariant=invariant,
        ghosts=ghosts,
        specs=specs,
        negative_variants={"insert_bad": (SET_INSERT_BAD, "insert")},
    )


STACK_SOURCE = """
let push (x : Elem.t) (top : Elem.t) : bool =
  if exists x then false
  else begin put x top; true end

let contains (x : Elem.t) : bool =
  exists x

let next (x : Elem.t) : Elem.t =
  get x

let is_empty (u : unit) : bool =
  true
"""

STACK_PUSH_BAD = """
let push_bad (x : Elem.t) (top : Elem.t) : bool =
  put x top; true
"""


def _stack_invariant(library) -> symbolic.Sfa:
    """I_Stack(el): a chain key is never put twice (the chain cannot become circular)."""
    put = library.operators["put"]
    el = smt.var("el", ELEM)
    key_var = put.arg_vars[0]
    put_el = symbolic.event(put, smt.eq(key_var, el))
    return symbolic.globally(
        symbolic.implies(put_el, symbolic.next_(symbolic.not_(symbolic.eventually(put_el))))
    )


def stack_kvstore() -> AdtBenchmark:
    library = make_kvstore(ELEM, ELEM, name="KVStore")
    invariant = _stack_invariant(library)
    ghosts = (("el", ELEM),)

    # `next` follows the chain with `get`, so its precondition additionally
    # requires the queried element to be in the store (a HAT whose pre- and
    # postconditions differ, unlike the invariant-preserving methods).
    x_var = smt.var("x", ELEM)
    next_pre = symbolic.and_(invariant, exists_predicate(library.operators, x_var))
    next_post = symbolic.concat(next_pre, symbolic.any_trace())

    specs = {
        "push": invariant_method(
            "push", ghosts, [("x", base(ELEM)), ("top", base(ELEM))], invariant, base(BOOL)
        ),
        "contains": invariant_method("contains", ghosts, [("x", base(ELEM))], invariant, base(BOOL)),
        "next": MethodSpec(
            name="next",
            ghosts=ghosts,
            params=(("x", base(ELEM)),),
            precondition=next_pre,
            result=base(ELEM),
            postcondition=next_post,
        ),
        "is_empty": invariant_method("is_empty", ghosts, [("u", base(UNIT))], invariant, base(BOOL)),
    }

    return AdtBenchmark(
        adt="Stack",
        library_name="KVStore",
        library=library,
        source=STACK_SOURCE,
        invariant_description="Not a circular linked list (chain keys are never re-put)",
        invariant=invariant,
        ghosts=ghosts,
        specs=specs,
        negative_variants={"push_bad": (STACK_PUSH_BAD, "push")},
    )


LAZYSET_KV_SOURCE = """
let new_thunk (u : unit) : unit =
  ()

let force (x : Elem.t) : unit =
  if exists x then () else put x x

let lazy_insert (x : Elem.t) : unit =
  if exists x then () else put x x

let lazy_mem (x : Elem.t) : bool =
  exists x
"""


def lazyset_kvstore() -> AdtBenchmark:
    library = make_kvstore(ELEM, ELEM, name="KVStore")
    invariant = _kv_invariant(library)
    ghosts = (("el", ELEM),)

    specs = {
        "new_thunk": invariant_method("new_thunk", ghosts, [("u", base(UNIT))], invariant, base(UNIT)),
        "force": invariant_method("force", ghosts, [("x", base(ELEM))], invariant, base(UNIT)),
        "lazy_insert": invariant_method(
            "lazy_insert", ghosts, [("x", base(ELEM))], invariant, base(UNIT)
        ),
        "lazy_mem": invariant_method("lazy_mem", ghosts, [("x", base(ELEM))], invariant, base(BOOL)),
    }

    return AdtBenchmark(
        adt="LazySet",
        library_name="KVStore",
        library=library,
        source=LAZYSET_KV_SOURCE,
        invariant_description="Every key is associated with a distinct value",
        invariant=invariant,
        ghosts=ghosts,
        specs=specs,
    )
