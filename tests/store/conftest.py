"""Fixtures that run every store test against both persistence backends.

``store_backend`` pins the backend through ``REPRO_STORE_BACKEND`` rather
than through a path suffix, so everything the code under test opens on its
own — reloads, engines, forked shard workers — lands on the same backend as
the test itself.  Tests that poke at one backend's on-disk layout construct
their store with an explicit ``backend=`` argument instead of these fixtures.
"""

import json
import sqlite3

import pytest

STORE_BACKENDS = ("jsonl", "sqlite")


@pytest.fixture(params=STORE_BACKENDS)
def store_backend(request, monkeypatch):
    monkeypatch.setenv("REPRO_STORE_BACKEND", request.param)
    return request.param


@pytest.fixture
def store_path(tmp_path, store_backend):
    """A fresh, unsuffixed store path: the backend flows from the environment."""
    return tmp_path / "store"


@pytest.fixture
def tamper_schema(store_backend):
    """Stamp an unknown schema version onto an existing store at ``path``."""

    def tamper(path):
        if store_backend == "jsonl":
            (path / "meta.json").write_text(
                json.dumps({"schema": "some-other-version"}) + "\n"
            )
        else:
            conn = sqlite3.connect(path)
            with conn:
                conn.execute(
                    "UPDATE meta SET value='some-other-version' WHERE key='schema'"
                )
            conn.close()

    return tamper
