"""The tracked performance harness behind ``repro bench``."""

from .bench import compare_payloads, load_payload, run_bench, summarize

__all__ = ["compare_payloads", "load_payload", "run_bench", "summarize"]
