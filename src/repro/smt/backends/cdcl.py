"""A CDCL SAT backend: clause learning on top of the watched-literal machinery.

Same incremental interface as the DPLL core (:mod:`repro.smt.backends.dpll`)
— clauses may be added between ``solve`` calls, ``priority_vars`` are decided
first, ``phase_hint`` steers branch polarity, and ``solve_partial`` stops as
soon as every clause is satisfied — but the search is conflict-driven:

* **1-UIP clause learning** — every conflict is analysed back to the first
  unique implication point; the learned clause is attached permanently (it is
  a logical consequence of the input clauses, so it stays valid across the
  incremental ``solve`` calls of one encoding) and its asserting literal is
  enqueued after a non-chronological backjump;
* **VSIDS-style activity** — variables involved in conflict analysis are
  bumped and decisions pick the highest-activity unassigned variable, with
  the increment decayed geometrically per conflict; ties break toward the
  lowest variable index so runs are deterministic;
* **Luby restarts** — the conflict budget between restarts follows the Luby
  sequence (scaled by ``restart_base``), and restarts keep the learned
  clauses and phase saving, so repeated work is bounded;
* **incremental assumptions** — assumption literals are re-asserted as the
  first decisions after every restart/backjump (the MiniSat scheme), which is
  what lets ``Solver.enumerate_models`` drive one shared encoding through
  thousands of assumption-prefixed queries while pushing blocking clauses.

Learned clauses are internal: :attr:`num_clauses` counts only externally
added clauses, because the lazy SMT loop uses it as a cursor for syncing new
Tseitin/blocking clauses from its ``CnfBuilder``.
"""

from __future__ import annotations

from typing import Iterable, Optional

Clause = tuple[int, ...]

#: Unit of the Luby restart schedule, in conflicts.
RESTART_BASE = 64

#: Geometric decay applied to the VSIDS increment after every conflict.
VARIABLE_DECAY = 0.95


def luby(index: int) -> int:
    """The ``index``-th element (1-based) of the Luby sequence: 1 1 2 1 1 2 4 …"""
    x = index - 1
    size, exponent = 1, 0
    while size < x + 1:
        exponent += 1
        size = 2 * size + 1
    while size - 1 != x:
        size = (size - 1) >> 1
        exponent -= 1
        x %= size
    return 1 << exponent


class CdclSolver:
    """Incremental CDCL solver over integer literals (DIMACS convention).

    Drop-in for :class:`repro.smt.backends.dpll.SatSolver`: same construction
    surface, same solve contract (a partial model satisfying every clause, or
    ``None``), same determinism guarantees — given the same clause/solve
    sequence, the search is bit-for-bit reproducible.
    """

    def __init__(self) -> None:
        #: every clause the solver knows, external first come first; learned
        #: clauses are appended here too but not counted by :attr:`num_clauses`
        self._clauses: list[Clause] = []
        self._external_clauses = 0
        self._num_vars = 0
        self._has_empty_clause = False
        #: literals of unit clauses (external and learned), asserted at level 0
        self._units: list[int] = []
        #: clause index -> the two currently watched literals of that clause
        self._watched: list[list[int]] = []
        #: literal -> indices of clauses currently watching it
        self._watches: dict[int, list[int]] = {}
        #: variables branched on first (in order) before the VSIDS heuristic
        self.priority_vars: tuple[int, ...] = ()
        #: preferred branch values; overrides phase saving when present
        self.phase_hint: dict[int, bool] = {}
        #: VSIDS activity; persists across solve calls of one instance
        self._activity: dict[int, float] = {}
        self._variable_increment = 1.0
        #: last polarity assigned per variable (phase saving across restarts)
        self._saved_phase: dict[int, bool] = {}
        self.stats_decisions = 0
        self.stats_propagations = 0
        self.stats_conflicts = 0
        self.stats_restarts = 0
        self.stats_learned_clauses = 0
        # per-call search state (reset by solve_partial)
        self._assign: dict[int, bool] = {}
        self._level: dict[int, int] = {}
        self._reason: dict[int, Optional[int]] = {}
        self._trail: list[int] = []
        self._trail_lim: list[int] = []
        self._qhead = 0

    # -- problem construction ---------------------------------------------------
    def add_clause(self, clause: Iterable[int]) -> None:
        clause = tuple(clause)
        for lit in clause:
            if lit == 0:
                raise ValueError("0 is not a valid literal")
            self._num_vars = max(self._num_vars, abs(lit))
        self._external_clauses += 1
        self._attach(clause)

    def add_clauses(self, clauses: Iterable[Iterable[int]]) -> None:
        for clause in clauses:
            self.add_clause(clause)

    def _attach(self, clause: Clause) -> int:
        """Store ``clause`` and set up its watches; returns its index."""
        index = len(self._clauses)
        self._clauses.append(clause)
        if not clause:
            self._has_empty_clause = True
            self._watched.append([])
        elif len(clause) == 1:
            self._units.append(clause[0])
            self._watched.append([])
        else:
            pair = [clause[0], clause[1]]
            self._watched.append(pair)
            self._watches.setdefault(pair[0], []).append(index)
            self._watches.setdefault(pair[1], []).append(index)
        return index

    def ensure_vars(self, num_vars: int) -> None:
        self._num_vars = max(self._num_vars, num_vars)

    @property
    def num_vars(self) -> int:
        return self._num_vars

    @property
    def num_clauses(self) -> int:
        """Externally added clauses only — the sync cursor of the lazy loop."""
        return self._external_clauses

    # -- solving ------------------------------------------------------------------
    def solve(self, assumptions: Iterable[int] = ()) -> Optional[dict[int, bool]]:
        """A total satisfying assignment ``{var: bool}`` or ``None`` if UNSAT."""
        result = self.solve_partial(assumptions)
        if result is None:
            return None
        return {v: result.get(v, False) for v in range(1, self._num_vars + 1)}

    def is_satisfiable(self, assumptions: Iterable[int] = ()) -> bool:
        return self.solve_partial(assumptions) is not None

    def solve_partial(self, assumptions: Iterable[int] = ()) -> Optional[dict[int, bool]]:
        """Like :meth:`solve` but leaves irrelevant variables unassigned.

        The returned partial assignment satisfies every clause the solver
        knows.  Assumption literals hold in any returned model; ``None`` means
        the clauses are unsatisfiable *under the assumptions*.
        """
        if self._has_empty_clause:
            return None
        assumptions = tuple(assumptions)
        for lit in assumptions:
            if lit == 0:
                raise ValueError("0 is not a valid literal")
            self._num_vars = max(self._num_vars, abs(lit))

        self._assign = {}
        self._level = {}
        self._reason = {}
        self._trail = []
        self._trail_lim = []
        self._qhead = 0

        for lit in self._units:
            if not self._enqueue(lit, None):
                return None
        if self._propagate() is not None:
            return None

        # Clauses satisfied by the root (level-0) assignment stay satisfied
        # for the whole search; the satisfaction scan skips that growing prefix.
        level0_vars = frozenset(self._assign)
        scan_state = [0]

        restart_index = 1
        conflict_budget = RESTART_BASE * luby(restart_index)
        conflicts_since_restart = 0

        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.stats_conflicts += 1
                conflicts_since_restart += 1
                if self._decision_level() == 0:
                    return None
                learnt, backjump = self._analyze(conflict)
                self._backtrack(backjump)
                self._learn(learnt)
                self._decay_activities()
                continue
            if conflicts_since_restart >= conflict_budget:
                self.stats_restarts += 1
                restart_index += 1
                conflict_budget = RESTART_BASE * luby(restart_index)
                conflicts_since_restart = 0
                self._backtrack(0)
                continue
            level = self._decision_level()
            if level < len(assumptions):
                # re-assert the next assumption as a decision (MiniSat scheme:
                # survives restarts and backjumps into the assumption prefix)
                lit = assumptions[level]
                value = self._assign.get(abs(lit))
                if value is None:
                    self._new_decision_level()
                    self._enqueue(lit, None)
                elif value == (lit > 0):
                    self._new_decision_level()  # dummy level keeps indices aligned
                else:
                    return None  # the assumption is refuted by implied literals
                continue
            variable = self._pick_branch_variable(level0_vars, scan_state)
            if variable is None:
                return dict(self._assign)
            value = self.phase_hint.get(
                variable, self._saved_phase.get(variable, True)
            )
            self.stats_decisions += 1
            self._new_decision_level()
            self._enqueue(variable if value else -variable, None)

    # -- trail management ---------------------------------------------------------
    def _decision_level(self) -> int:
        return len(self._trail_lim)

    def _new_decision_level(self) -> None:
        self._trail_lim.append(len(self._trail))

    def _enqueue(self, lit: int, reason: Optional[int]) -> bool:
        variable = abs(lit)
        value = lit > 0
        current = self._assign.get(variable)
        if current is not None:
            return current == value
        self._assign[variable] = value
        self._level[variable] = self._decision_level()
        self._reason[variable] = reason
        self._trail.append(lit)
        return True

    def _backtrack(self, level: int) -> None:
        if self._decision_level() <= level:
            return
        mark = self._trail_lim[level]
        for lit in self._trail[mark:]:
            variable = abs(lit)
            self._saved_phase[variable] = lit > 0
            del self._assign[variable]
            del self._level[variable]
            del self._reason[variable]
        del self._trail[mark:]
        del self._trail_lim[level:]
        self._qhead = mark

    # -- propagation ----------------------------------------------------------------
    def _propagate(self) -> Optional[int]:
        """Exhaust the queue; returns a conflicting clause index or ``None``."""
        while self._qhead < len(self._trail):
            lit = self._trail[self._qhead]
            self._qhead += 1
            conflict = self._propagate_literal(lit)
            if conflict is not None:
                return conflict
        return None

    def _propagate_literal(self, lit: int) -> Optional[int]:
        """Visit the clauses watching ``-lit``; a conflict index or ``None``."""
        falsified = -lit
        watchers = self._watches.get(falsified)
        if not watchers:
            return None
        assign = self._assign
        keep: list[int] = []
        for position, index in enumerate(watchers):
            watched = self._watched[index]
            if watched[0] == falsified:
                watched[0], watched[1] = watched[1], watched[0]
            other = watched[0]
            other_value = assign.get(abs(other))
            if other_value is not None and other_value == (other > 0):
                keep.append(index)
                continue
            replacement = 0
            for candidate in self._clauses[index]:
                if candidate == other or candidate == falsified:
                    continue
                candidate_value = assign.get(abs(candidate))
                if candidate_value is None or candidate_value == (candidate > 0):
                    replacement = candidate
                    break
            if replacement:
                watched[1] = replacement
                self._watches.setdefault(replacement, []).append(index)
                continue
            keep.append(index)
            if other_value is None:
                self.stats_propagations += 1
                self._enqueue(other, index)
            else:
                # every literal of the clause is false: conflict
                keep.extend(watchers[position + 1:])
                self._watches[falsified] = keep
                return index
        self._watches[falsified] = keep
        return None

    # -- conflict analysis (1-UIP) ----------------------------------------------------
    def _analyze(self, conflict_index: int) -> tuple[list[int], int]:
        """Resolve the conflict back to the first UIP of the current level.

        Returns ``(learnt, backjump_level)``: ``learnt[0]`` is the asserting
        literal (unassigned after backjumping), ``learnt[1]`` — when present —
        is a literal of the backjump level, so attaching the clause with its
        first two literals watched is immediately correct.
        """
        current_level = self._decision_level()
        learnt: list[int] = [0]  # placeholder for the asserting literal
        seen: set[int] = set()
        pending = 0  # current-level variables awaiting resolution
        resolved_literal: Optional[int] = None
        index = len(self._trail) - 1
        clause: Clause = self._clauses[conflict_index]
        while True:
            for lit in clause:
                if lit == resolved_literal:
                    continue
                variable = abs(lit)
                if variable in seen:
                    continue
                level = self._level[variable]
                if level == 0:
                    continue  # root-level facts never need to be learned
                seen.add(variable)
                self._bump_activity(variable)
                if level == current_level:
                    pending += 1
                else:
                    learnt.append(lit)
            while abs(self._trail[index]) not in seen:
                index -= 1
            resolved_literal = self._trail[index]
            variable = abs(resolved_literal)
            pending -= 1
            index -= 1
            if pending == 0:
                learnt[0] = -resolved_literal
                break
            # not the UIP, so it was propagated: resolve with its reason clause
            reason = self._reason[variable]
            assert reason is not None, "decision reached before the first UIP"
            clause = self._clauses[reason]
        if len(learnt) == 1:
            return learnt, 0
        deepest = max(
            range(1, len(learnt)), key=lambda i: self._level[abs(learnt[i])]
        )
        learnt[1], learnt[deepest] = learnt[deepest], learnt[1]
        return learnt, self._level[abs(learnt[1])]

    def _learn(self, learnt: list[int]) -> None:
        """Attach the learned clause and enqueue its asserting literal."""
        self.stats_learned_clauses += 1
        clause = tuple(learnt)
        if len(clause) == 1:
            # permanent root-level fact: future solve calls assert it with the
            # external units, this call enqueues it at the current (0) level
            self._units.append(clause[0])
            self._watched.append([])
            self._clauses.append(clause)
            self._enqueue(clause[0], None)
            return
        # _attach stores and watches without touching the external count:
        # learned clauses are internal and invisible to the sync cursor
        index = self._attach(clause)
        self._enqueue(clause[0], index)

    # -- VSIDS --------------------------------------------------------------------
    def _bump_activity(self, variable: int) -> None:
        activity = self._activity.get(variable, 0.0) + self._variable_increment
        self._activity[variable] = activity
        if activity > 1e100:
            for var in self._activity:
                self._activity[var] *= 1e-100
            self._variable_increment *= 1e-100

    def _decay_activities(self) -> None:
        self._variable_increment /= VARIABLE_DECAY

    def _pick_branch_variable(
        self, level0_vars: frozenset[int], scan_state: list[int]
    ) -> Optional[int]:
        """Priority variables first; else the VSIDS-best variable, or ``None``.

        ``None`` means every clause is already satisfied by the current
        partial assignment (the scan skips and greedily extends the prefix of
        clauses satisfied at level 0, exactly like the DPLL core), so the
        search can stop with a partial model.
        """
        for variable in self.priority_vars:
            if variable not in self._assign:
                return variable
        assign = self._assign
        unsatisfied = False
        for index in range(scan_state[0], len(self._clauses)):
            clause = self._clauses[index]
            satisfied_by = 0
            for lit in clause:
                value = assign.get(abs(lit))
                if value is not None and value == (lit > 0):
                    satisfied_by = abs(lit)
                    break
            if satisfied_by:
                if index == scan_state[0] and satisfied_by in level0_vars:
                    scan_state[0] += 1
                continue
            unsatisfied = True
            break
        if not unsatisfied:
            return None
        best: Optional[int] = None
        best_activity = -1.0
        for variable in range(1, self._num_vars + 1):
            if variable in assign:
                continue
            activity = self._activity.get(variable, 0.0)
            if activity > best_activity:
                best, best_activity = variable, activity
        return best
