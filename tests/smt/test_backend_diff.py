"""Cross-backend differential suite: every backend is one oracle of many.

The lazy SMT loop may run on the DPLL core, the CDCL core or (when
installed) z3 — and the whole reproduction's output must not care:

* every fast-corpus obligation discharged under ``dpll`` and ``cdcl`` yields
  the same verdict *and* the same witness trace (the z3 leg auto-skips when
  the package is absent);
* the deterministic Tables 1/3/4 are byte-identical across backends once the
  solver-internal columns (#SAT, #Confl) are dropped — those are per-backend
  by design and keep their own columns;
* a store warmed under one backend is invisible to another (environment
  fingerprints differ), so warm-start counters can never cross-contaminate.

Together with ``test_backend_fuzz.py`` this is what turns the single
hand-rolled oracle into N mutually-checking ones.
"""

import pytest

from repro.evaluation.runner import run_evaluation
from repro.evaluation.tables import table1, table3, table4
from repro.smt.backends import available_backends, z3_available
from repro.suite.registry import all_benchmarks
from repro.typecheck.checker import CheckerConfig

#: Every available backend is cross-checked against the dpll reference —
#: registering a new backend enrolls it here automatically.
BACKEND_PAIRS = [
    ("dpll", candidate) for candidate in available_backends() if candidate != "dpll"
]

_FAST_KEYS = [bench.key for bench in all_benchmarks(include_slow=False)]


def _bench(key):
    return next(b for b in all_benchmarks(include_slow=False) if b.key == key)


# ---------------------------------------------------------------------------
# Per-benchmark: verdicts and witness traces agree obligation for obligation
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("reference,candidate", BACKEND_PAIRS)
@pytest.mark.parametrize("key", _FAST_KEYS)
def test_suite_verification_agrees(key, reference, candidate):
    bench = _bench(key)
    outcomes = {}
    for backend in (reference, candidate):
        checker = bench.make_checker(CheckerConfig(backend=backend))
        stats = bench.verify_all(checker)
        outcomes[backend] = [
            (
                result.method,
                result.verified,
                result.error,
                result.counterexample,
                # obligation-derived counters must match too — only the
                # solver-internal ones (#SAT/#Confl) may differ
                result.stats.obligations,
                result.stats.fa_inclusion_checks,
                result.stats.prod_states,
                result.stats.states_built,
                result.stats.smt_cache_hits,
            )
            for result in stats.method_results
        ]
    assert outcomes[reference] == outcomes[candidate]


@pytest.mark.parametrize("reference,candidate", BACKEND_PAIRS)
@pytest.mark.parametrize("key", _FAST_KEYS)
def test_suite_negative_variants_agree(key, reference, candidate):
    """Known-bad variants are rejected identically, witness traces included."""
    bench = _bench(key)
    if not bench.negative_variants:
        pytest.skip(f"{key} has no negative variants")
    for variant in bench.negative_variants:
        outcomes = {}
        for backend in (reference, candidate):
            checker = bench.make_checker(CheckerConfig(backend=backend))
            result = bench.verify_negative_variant(variant, checker)
            outcomes[backend] = (result.verified, result.error, result.counterexample)
        assert not outcomes[reference][0], f"{variant} must be rejected"
        assert outcomes[reference] == outcomes[candidate]


# ---------------------------------------------------------------------------
# The acceptance bar: backend-invariant tables are byte-identical
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def per_backend_reports():
    """One fast-corpus evaluation per available backend (negatives skipped:
    the per-benchmark tests above already compare them trace for trace)."""
    return {
        backend: run_evaluation(
            include_slow=False,
            config=CheckerConfig(backend=backend),
            check_negative_variants=False,
        )
        for backend in available_backends()
    }


def test_backend_invariant_tables_are_byte_identical(per_backend_reports):
    reference = per_backend_reports["dpll"]
    assert reference.all_verified
    for backend, report in per_backend_reports.items():
        assert report.all_verified, backend
        for render in (table1, table3, table4):
            assert render(report, deterministic=True, backend_invariant=True) == render(
                reference, deterministic=True, backend_invariant=True
            ), backend


def test_solver_internal_counters_have_their_own_columns(per_backend_reports):
    """#SAT/#Confl stay visible in the deterministic render — they are
    per-backend columns, not dropped data."""
    report = per_backend_reports["dpll"]

    def header(rendering):
        return [cell.strip() for cell in rendering.splitlines()[0].split(" | ")]

    deterministic = header(table3(report, deterministic=True))
    assert "#SAT" in deterministic and "#Confl" in deterministic
    invariant = header(table3(report, deterministic=True, backend_invariant=True))
    assert "#SAT" not in invariant and "#Confl" not in invariant
    # and the obligation-derived columns survive the backend-invariant render
    for column in ("#Obl", "#Inc", "#Prod", "#SATcache"):
        assert column in invariant


@pytest.mark.skipif(not z3_available(), reason="z3 is not installed")
def test_z3_backend_is_listed_available():
    assert "z3" in available_backends()
