"""Universally quantified axioms over method predicates and their instantiation.

Marple's qualifiers may use *method predicates* — uninterpreted boolean
functions such as ``isDir`` or ``isRoot`` — whose semantics is given by a
small set of first-order lemmas (Sec. 6 of the paper, e.g.
``forall x. isDir(x) ==> not isDel(x)``).  To keep the solver's job
quantifier-free we ground these axioms over the terms that actually occur in
a query, in a bounded number of rounds so axioms that introduce new terms
(such as ``parent(p)``) get a chance to fire on them as well.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Sequence

from . import terms
from .terms import Term
from .sorts import Sort


@dataclass(frozen=True)
class Axiom:
    """A named universally quantified lemma."""

    name: str
    variables: tuple[Term, ...]
    body: Term

    def __post_init__(self) -> None:
        for v in self.variables:
            if v.kind != terms.VAR:
                raise ValueError("axiom binders must be variables")

    @property
    def formula(self) -> Term:
        return terms.forall(self.variables, self.body)


def axiom(name: str, variables: Sequence[Term], body: Term) -> Axiom:
    return Axiom(name, tuple(variables), body)


def ground_terms_by_sort(formulas: Iterable[Term]) -> dict[Sort, set[Term]]:
    """Collect ground (variable-free or free-variable) non-boolean subterms.

    Free variables of the query count as ground witnesses: they denote fixed
    (if unknown) individuals, so axioms must hold for them.
    """
    out: dict[Sort, set[Term]] = {}
    for formula in formulas:
        for node in formula.walk():
            if node.sort.is_bool:
                continue
            if node.kind in (terms.VAR, terms.DATA_CONST, terms.APP, terms.INT_CONST):
                out.setdefault(node.sort, set()).add(node)
    return out


def instantiate(
    axioms: Sequence[Axiom],
    query_formulas: Sequence[Term],
    *,
    rounds: int = 2,
    max_instances: int = 4000,
) -> list[Term]:
    """Ground the axioms over terms occurring in the query.

    Returns a list of quantifier-free instances.  Instantiation runs for
    ``rounds`` passes so that terms introduced by earlier instances (for
    example ``parent(p)``) can trigger further instantiations.
    """
    instances: list[Term] = []
    seen: set[Term] = set()
    pool: list[Term] = list(query_formulas)

    for _ in range(max(1, rounds)):
        universe = ground_terms_by_sort(pool)
        new_instances: list[Term] = []
        for ax in axioms:
            candidate_lists: list[list[Term]] = []
            feasible = True
            for binder in ax.variables:
                candidates = sorted(universe.get(binder.sort, set()), key=lambda t: t.term_id)
                if not candidates:
                    feasible = False
                    break
                candidate_lists.append(candidates)
            if not feasible:
                continue
            for combo in itertools.product(*candidate_lists):
                mapping = dict(zip(ax.variables, combo))
                instance = terms.substitute(ax.body, mapping)
                if instance.is_true or instance in seen:
                    continue
                seen.add(instance)
                new_instances.append(instance)
                if len(seen) >= max_instances:
                    break
            if len(seen) >= max_instances:
                break
        if not new_instances:
            break
        instances.extend(new_instances)
        pool = list(query_formulas) + instances
        if len(seen) >= max_instances:
            break
    return instances
