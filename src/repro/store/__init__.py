"""repro.store — persistent incremental verification.

The subsystem behind ``pymarple --incremental``:

* :mod:`repro.store.fingerprint` — process-independent content addresses for
  terms, automata, obligations, specs and libraries;
* :mod:`repro.store.backends` — the pluggable persistence backends (JSONL
  directory with advisory locking, or a WAL-mode SQLite file), both safe
  under concurrent writer processes, plus lossless migration between them;
* :mod:`repro.store.obligation_store` — the store facade mapping
  (environment fingerprint, obligation fingerprint) to verdicts, witness
  traces and per-obligation discharge counters, with dependency-tracked
  invalidation;
* :mod:`repro.store.remote` / :mod:`repro.store.server` — the shared-cache
  service: ``repro store serve`` wraps a local backend behind JSON-over-HTTP
  and :class:`~repro.store.remote.RemoteStoreBackend` is the client a
  ``--store http://host:port`` URL resolves to;
* :mod:`repro.store.shard` — the sharded suite runner (imported lazily: it
  sits above the evaluation layer, which itself depends on this package).
"""

from .backends import (
    KNOWN_STORE_BACKENDS,
    JsonlStoreBackend,
    SqliteStoreBackend,
    migrate_store,
    resolve_store_backend,
)
from .remote import RemoteStoreBackend, RemoteStoreError
from .fingerprint import (
    environment_fingerprint,
    library_digest,
    obligation_digest,
    sfa_digest,
    shard_of,
    spec_digest,
    term_digest,
)
from .obligation_store import (
    SCHEMA_VERSION,
    MethodStoreCounts,
    ObligationStore,
    StoreContext,
    StoreEntry,
)

__all__ = [
    "KNOWN_STORE_BACKENDS",
    "SCHEMA_VERSION",
    "JsonlStoreBackend",
    "MethodStoreCounts",
    "RemoteStoreBackend",
    "RemoteStoreError",
    "SqliteStoreBackend",
    "migrate_store",
    "resolve_store_backend",
    "ObligationStore",
    "StoreContext",
    "StoreEntry",
    "environment_fingerprint",
    "library_digest",
    "obligation_digest",
    "sfa_digest",
    "shard_of",
    "spec_digest",
    "term_digest",
]
