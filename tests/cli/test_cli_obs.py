"""CLI surface of the observability layer: --trace, --log-level, repro trace."""

import json

import pytest

from repro.cli import main as cli_main
from repro.obs import trace
from repro.obs.trace import ENV_TRACE, read_trace


@pytest.fixture(autouse=True)
def clean_obs_state(monkeypatch):
    monkeypatch.delenv(ENV_TRACE, raising=False)
    monkeypatch.delenv("REPRO_LOG_LEVEL", raising=False)
    trace.uninstall()
    yield
    trace.uninstall()


def _trace_a_run(tmp_path, name="run.json"):
    path = tmp_path / name
    assert cli_main(["check", "Set/KVStore", "--trace", str(path)]) == 0
    return path


# -- producing traces --------------------------------------------------------------


def test_evaluate_trace_writes_a_loadable_chrome_trace(tmp_path, capsys):
    path = tmp_path / "eval.json"
    assert cli_main(["evaluate", "--fast", "--trace", str(path)]) == 0
    assert f"trace written to {path}" in capsys.readouterr().err
    payload = json.loads(path.read_text())
    assert payload["traceEvents"], "Chrome trace-event export must contain events"
    data = read_trace(str(path))
    assert data["meta"]["command"] == "evaluate"
    assert data["counters"]["caches"]  # cache totals ride along for the report
    assert any(span["cat"] == "discharge" for span in data["spans"])


def test_trace_env_var_is_the_flag_fallback(tmp_path, monkeypatch, capsys):
    path = tmp_path / "env.jsonl"
    monkeypatch.setenv(ENV_TRACE, str(path))
    assert cli_main(["check", "Set/KVStore", "--method", "mem"]) == 0
    capsys.readouterr()
    assert path.exists()
    assert read_trace(str(path))["spans"]


def test_untraced_runs_write_nothing_and_leave_no_tracer(tmp_path, capsys):
    assert cli_main(["check", "Set/KVStore", "--method", "mem"]) == 0
    capsys.readouterr()
    assert not list(tmp_path.iterdir())
    assert not trace.enabled()


# -- consuming traces --------------------------------------------------------------


def test_trace_validate_and_report_round_trip(tmp_path, capsys):
    path = _trace_a_run(tmp_path)
    capsys.readouterr()

    assert cli_main(["trace", "validate", str(path)]) == 0
    assert "valid trace" in capsys.readouterr().out

    assert cli_main(["trace", "report", str(path)]) == 0
    out = capsys.readouterr().out
    assert "phase breakdown" in out and "discharge" in out
    assert "cache rates" in out


def test_trace_report_min_coverage_gate(tmp_path, capsys):
    path = _trace_a_run(tmp_path)
    capsys.readouterr()
    assert cli_main(["trace", "report", str(path), "--min-coverage", "0.95"]) == 0
    capsys.readouterr()
    assert cli_main(["trace", "report", str(path), "--min-coverage", "1.01"]) == 1
    assert "below the required" in capsys.readouterr().err


def test_trace_subcommands_reject_garbage_files(tmp_path, capsys):
    missing = tmp_path / "nope.json"
    assert cli_main(["trace", "report", str(missing)]) == 2
    capsys.readouterr()
    garbage = tmp_path / "garbage.jsonl"
    garbage.write_text("not json\n")
    assert cli_main(["trace", "validate", str(garbage)]) == 1
    assert "unreadable" in capsys.readouterr().err


# -- logging and --json ------------------------------------------------------------


def test_log_level_emits_breadcrumbs_on_stderr(capsys):
    assert cli_main(["check", "Set/KVStore", "--method", "mem", "--log-level", "debug"]) == 0
    err = capsys.readouterr().err
    assert "repro.engine" in err or "repro.checker" in err


def test_unknown_log_level_exits_two(capsys):
    assert cli_main(["check", "Set/KVStore", "--log-level", "chatty"]) == 2
    assert "unknown log level" in capsys.readouterr().err


def test_evaluate_json_exposes_cache_totals_and_batch_groups(capsys):
    assert cli_main(["evaluate", "--fast", "--json", "--discharge", "batch"]) == 0
    payload = json.loads(capsys.readouterr().out)
    caches = payload["caches"]
    assert "derivative_cache_hits" in caches and "alphabet_memo_builds" in caches
    groups = payload["batch_groups"]
    assert groups["groups"] >= groups["multi_member_groups"]
    assert groups["queries_executed"] <= groups["queries_billed"]
    assert groups["multi_groups_strictly_fewer"] is True


def test_evaluate_json_omits_batch_groups_in_lazy_mode(capsys):
    assert cli_main(["evaluate", "--fast", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert "caches" in payload
    assert "batch_groups" not in payload
