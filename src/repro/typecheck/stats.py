"""Per-method verification statistics (the columns of Tables 1, 3 and 4)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass
class MethodStats:
    """Statistics collected while checking one ADT method."""

    method: str = ""
    branches: int = 0
    operator_applications: int = 0
    #: proof obligations emitted by the checker's walk (before dedupe)
    obligations: int = 0
    smt_queries: int = 0
    #: SMT queries and model enumerations answered from the solver's caches
    smt_cache_hits: int = 0
    #: SAT-core conflicts during those queries (#Confl — backend-internal,
    #: like #SAT: DPLL/CDCL/z3 legitimately differ here and nowhere else)
    sat_conflicts: int = 0
    fa_inclusion_checks: int = 0
    #: DFA compilations answered from the (sfa_id, alphabet) memo
    dfa_cache_hits: int = 0
    #: alphabet/minterm constructions actually enumerated (#Alph) — volatile:
    #: whether a check builds or reuses depends on what the shared
    #: cross-obligation memo saw earlier in the process, so, like #Store,
    #: this may read 0 on a warm run that built nothing
    alphabet_builds: int = 0
    #: alphabet constructions answered by the cross-obligation memo (which
    #: replays the recorded counter bill, so every other column stays put)
    alphabet_memo_hits: int = 0
    #: product pairs explored during inclusion (#prod-states)
    prod_states: int = 0
    #: DFA states materialised by the compiled discharge path
    states_built: int = 0
    #: obligations answered by the persistent store (warm start, #Store)
    store_hits: int = 0
    #: alphabet-sharing groups discharged set-at-a-time (#Batch — volatile
    #: like #Store/#Alph: 0 under ``discharge="lazy"``, 0 on a warm run, and
    #: otherwise a function of which obligations were still cold; the group
    #: members' counters themselves are byte-identical to lazy discharge)
    batch_groups: int = 0
    average_fa_size: float = 0.0
    smt_time_seconds: float = 0.0
    fa_time_seconds: float = 0.0
    total_time_seconds: float = 0.0

    def as_row(self) -> dict[str, object]:
        return {
            "Method": self.method,
            "#Branch": self.branches,
            "#App": self.operator_applications,
            "#Obl": self.obligations,
            "#SAT": self.smt_queries,
            "#SATcache": self.smt_cache_hits,
            "#Confl": self.sat_conflicts,
            "#Inc": self.fa_inclusion_checks,
            "#FAcache": self.dfa_cache_hits,
            "#Alph": self.alphabet_builds,
            "#Prod": self.prod_states,
            "sFAbuilt": self.states_built,
            "#Store": self.store_hits,
            "#Batch": self.batch_groups,
            "avg. sFA": round(self.average_fa_size, 1),
            "tSAT (s)": round(self.smt_time_seconds, 2),
            "tInc (s)": round(self.fa_time_seconds, 2),
            "t (s)": round(self.total_time_seconds, 2),
        }

    #: the wall-clock columns of :meth:`as_row` (excluded from determinism
    #: comparisons — every counter column must be byte-identical across
    #: worker counts, but times vary run to run even serially)
    TIME_COLUMNS = ("tSAT (s)", "tInc (s)", "t (s)")

    #: columns excluded from cold-vs-warm/worker-count determinism
    #: comparisons: the time columns, plus #Store (by design 0 on a cold run
    #: and >0 on a warm one), #Alph (how many alphabet constructions a
    #: method *ran* depends on what the shared cross-obligation memo already
    #: held — the memo replays recorded counters, so everything else is
    #: deterministic, but the build count itself is reuse bookkeeping) and
    #: #Batch (set-at-a-time groups formed: 0 in lazy mode and on warm runs,
    #: reuse bookkeeping like #Alph in batch mode)
    VOLATILE_COLUMNS = TIME_COLUMNS + ("#Store", "#Alph", "#Batch")

    #: solver-internal columns: deterministic for a *fixed* backend (they
    #: participate in cold-vs-warm and worker-count comparisons) but
    #: legitimately different *between* backends — which model a SAT core
    #: returns steers the guided enumeration's branching.  Everything else in
    #: :meth:`counter_row` must be byte-identical across dpll/cdcl/z3.
    BACKEND_SENSITIVE_COLUMNS = ("#SAT", "#Confl")

    def counter_row(self) -> dict[str, object]:
        """The :meth:`as_row` columns that are deterministic counters."""
        return {
            key: value
            for key, value in self.as_row().items()
            if key not in self.VOLATILE_COLUMNS
        }


@dataclass
class MethodResult:
    """The outcome of verifying one method against its HAT specification."""

    method: str
    verified: bool
    error: Optional[str] = None
    #: the witness trace of the first failing obligation (readable events)
    counterexample: Optional[list[str]] = None
    stats: MethodStats = field(default_factory=MethodStats)

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.verified


@dataclass
class AdtStats:
    """Aggregate statistics for a whole ADT implementation (Table 1 rows)."""

    adt: str = ""
    library: str = ""
    num_methods: int = 0
    num_ghosts: int = 0
    invariant_size: int = 0
    total_time_seconds: float = 0.0
    all_verified: bool = True
    method_results: list[MethodResult] = field(default_factory=list)

    def hardest_method(self) -> Optional[MethodResult]:
        """The most complex method (paper: second half of Table 1).

        Ranked by emission-derived complexity (obligations, branches,
        applications) rather than #SAT: the selection must not depend on the
        solver backend, or Table 1's obligation-derived columns would change
        between ``--backend dpll`` and ``--backend cdcl`` merely because a
        different method was featured.
        """
        if not self.method_results:
            return None
        return max(
            self.method_results,
            key=lambda r: (r.stats.obligations, r.stats.branches, r.stats.operator_applications),
        )

    def as_row(self) -> dict[str, object]:
        hardest = self.hardest_method()
        row: dict[str, object] = {
            "ADT": self.adt,
            "Library": self.library,
            "#Method": self.num_methods,
            "#Ghost": self.num_ghosts,
            "sI": self.invariant_size,
            "ttotal (s)": round(self.total_time_seconds, 2),
            "verified": self.all_verified,
        }
        if hardest is not None:
            row.update(
                {
                    "#Branch": hardest.stats.branches,
                    "#App": hardest.stats.operator_applications,
                    "#Obl": hardest.stats.obligations,
                    "#SAT": hardest.stats.smt_queries,
                    "#SATcache": hardest.stats.smt_cache_hits,
                    "#Confl": hardest.stats.sat_conflicts,
                    "#FA⊆": hardest.stats.fa_inclusion_checks,
                    "#FAcache": hardest.stats.dfa_cache_hits,
                    "#Alph": hardest.stats.alphabet_builds,
                    "#Prod": hardest.stats.prod_states,
                    "#Store": hardest.stats.store_hits,
                    "#Batch": hardest.stats.batch_groups,
                    "avg. sFA": round(hardest.stats.average_fa_size, 1),
                    "tSAT (s)": round(hardest.stats.smt_time_seconds, 2),
                    "tFA⊆ (s)": round(hardest.stats.fa_time_seconds, 2),
                }
            )
        return row
