"""Verification tests for the LazySet/Set, DFA/Graph and ConnectedGraph/Graph rows."""

import pytest

from repro.suite.dfa_graph import connected_graph_graph, dfa_graph
from repro.suite.lazyset_set import lazyset_set


def test_lazyset_set_all_methods_verify_and_bad_variant_rejected():
    bench = lazyset_set()
    checker = bench.make_checker()
    stats = bench.verify_all(checker)
    assert stats.all_verified, [(r.method, r.error) for r in stats.method_results if not r.verified]
    assert stats.num_ghosts == 1
    rejected = bench.verify_negative_variant("lazy_insert_bad", checker)
    assert not rejected.verified


def test_lazyset_thunk_chain_runs_and_respects_invariant():
    from repro import smt
    from repro.smt.sorts import ELEM
    from repro.sfa import Trace, accepts

    bench = lazyset_set()
    interp = bench.interpreter()
    module = bench.module(interp)
    trace = Trace()
    thunk = interp.call(module["new_thunk"], [()], trace)
    thunk_value, trace = thunk.value, thunk.trace
    for element in ["a", "b", "a", "c"]:
        outcome = interp.call(module["lazy_insert"], [element, thunk_value], trace)
        thunk_value, trace = outcome.value, outcome.trace
    forced = interp.call(module["force"], [thunk_value], trace)
    el = smt.var("el", ELEM)
    for element in ["a", "b", "c"]:
        assert accepts(bench.invariant, forced.trace, {el: element})
    inserts = [e.args[0] for e in forced.trace if e.op == "insert"]
    assert len(inserts) == len(set(inserts))


def test_dfa_graph_all_methods_verify_and_bad_variant_rejected():
    bench = dfa_graph()
    checker = bench.make_checker()
    stats = bench.verify_all(checker)
    assert stats.all_verified, [(r.method, r.error) for r in stats.method_results if not r.verified]
    assert stats.num_ghosts == 2
    assert not bench.verify_negative_variant("add_transition_bad", checker).verified
    hardest = stats.hardest_method()
    assert hardest.method == "add_transition"


def test_dfa_dynamic_determinism():
    bench = dfa_graph()
    interp = bench.interpreter()
    module = bench.module(interp)
    from repro.sfa import Trace

    trace = Trace()
    first = interp.call(module["add_transition"], ["q0", "a", "q1"], trace)
    assert first.value is True
    second = interp.call(module["add_transition"], ["q0", "a", "q2"], first.trace)
    assert second.value is False  # refused: the edge is still live
    removed = interp.call(module["del_transition"], ["q0", "a", "q1"], second.trace)
    third = interp.call(module["add_transition"], ["q0", "a", "q2"], removed.trace)
    assert third.value is True


def test_connected_graph_all_methods_verify_and_bad_variant_rejected():
    bench = connected_graph_graph()
    checker = bench.make_checker()
    stats = bench.verify_all(checker)
    assert stats.all_verified, [(r.method, r.error) for r in stats.method_results if not r.verified]
    assert not bench.verify_negative_variant("add_edge_bad", checker).verified


def test_connected_graph_dynamic_policy():
    bench = connected_graph_graph()
    interp = bench.interpreter()
    module = bench.module(interp)
    from repro.sfa import Trace

    trace = Trace()
    refused = interp.call(module["add_edge"], ["q0", "a", "q1"], trace)
    assert refused.value is False  # endpoints not yet added
    trace = interp.call(module["add_state"], ["q0"], trace).trace
    trace = interp.call(module["add_state"], ["q1"], trace).trace
    accepted = interp.call(module["add_edge"], ["q0", "a", "q1"], trace)
    assert accepted.value is True
    self_loop = interp.call(module["add_edge"], ["q0", "a", "q0"], accepted.trace)
    assert self_loop.value is False
