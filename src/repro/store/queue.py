"""The lease-based work queue behind distributed obligation discharge.

A :class:`WorkQueue` holds obligations a coordinator wants discharged —
each item is a ``(env, fp)`` store key plus the benchmark that emits it and
an advisory cost — and hands them to pulling workers under *leases*:

* :meth:`lease` reclaims every expired lease first (a dead or straggling
  worker's items go back to pending — work stealing needs no extra
  machinery), then issues the ``count`` most expensive pending items.
  Measured costs (the store's ``cost_hint`` index) sort before syntactic
  estimates, both longest-first: LPT applied *at dequeue time*, so the
  straggler obligation is always in flight while cheap ones fill the gaps
  — the static hash-slice sharding this replaces pinned it to one shard.
* :meth:`complete` removes items by key no matter who currently holds
  them, and is idempotent: completing an already-removed key is a no-op,
  completing under a stale (stolen) lease merely counts as ``stale``.
  Durability is the *store's* job — a worker completes only after its
  verdicts are durably appended, so losing the in-memory queue loses no
  work a re-dispatch cannot recompute from the store.
* :meth:`extend` renews a live lease's deadline **relative to the
  server's clock** (``deadline = now + ttl``): a worker with a skewed
  clock can never push its deadline into the past or the far future,
  because client time never enters the computation.

Every method takes ``now`` explicitly — the queue owns no clock, which is
what makes lease expiry, stealing and skew unit-testable without sleeping.
Dispatch tags (:meth:`status`) let a coordinator poll the drain of exactly
its own enqueue wave while other tenants share the queue.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence


def item_key(env: str, fp: str) -> str:
    """The wire spelling of a queue item's identity (also the store key)."""
    return f"{env}:{fp}"


@dataclass
class QueueItem:
    """One obligation awaiting discharge."""

    env: str
    fp: str
    #: registry key of the benchmark whose emit walk materialises the
    #: obligation (obligations are hash-consed in-memory objects; only the
    #: recipe to re-emit them crosses the wire)
    bench: str
    #: advisory discharge cost: seconds when ``measured``, else the
    #: syntactic estimate — the two populations sort separately, like
    #: :meth:`repro.engine.obligations.ObligationSet.schedule`
    cost: float = 0.0
    measured: bool = False
    #: id of the lease currently holding this item, if any
    leased_by: Optional[str] = None
    #: how many times this item has been leased (> 1 means it was stolen)
    attempts: int = 0
    #: enqueue-wave tags; :meth:`WorkQueue.status` filters by them
    dispatches: set = field(default_factory=set)

    @property
    def key(self) -> str:
        return item_key(self.env, self.fp)

    def to_record(self) -> dict:
        return {
            "env": self.env,
            "fp": self.fp,
            "bench": self.bench,
            "cost": self.cost,
            "measured": self.measured,
            "attempts": self.attempts,
        }


@dataclass
class Lease:
    """One worker's claim on a batch of items, valid until ``deadline``."""

    id: str
    worker: str
    deadline: float
    keys: set


class WorkQueue:
    """Pure in-memory lease queue; all timing flows in through ``now``."""

    def __init__(self) -> None:
        self._items: dict[str, QueueItem] = {}
        self._leases: dict[str, Lease] = {}
        self._sequence = 0
        self.counters = {
            "enqueued": 0,
            "requeued": 0,
            "leases_issued": 0,
            "completed": 0,
            "stale_completes": 0,
            "reclaimed": 0,
            "extended": 0,
            "extend_rejected": 0,
        }

    # -- enqueue ------------------------------------------------------------------
    def enqueue(
        self,
        items: Sequence[QueueItem],
        *,
        dispatch: Optional[str] = None,
    ) -> tuple[int, int]:
        """Add items, deduplicating on ``(env, fp)``; returns ``(new, requeued)``.

        Re-enqueueing a known key never duplicates it and never disturbs an
        active lease; it re-tags the item with the new dispatch so the
        re-dispatching coordinator's drain poll counts it, and adopts a
        better (measured over estimated) cost if one arrived.
        """
        added = requeued = 0
        for item in items:
            existing = self._items.get(item.key)
            if existing is None:
                if dispatch:
                    item.dispatches.add(dispatch)
                self._items[item.key] = item
                added += 1
            else:
                if dispatch:
                    existing.dispatches.add(dispatch)
                if item.measured and not existing.measured:
                    existing.cost, existing.measured = item.cost, True
                requeued += 1
        self.counters["enqueued"] += added
        self.counters["requeued"] += requeued
        return added, requeued

    # -- lease / steal ------------------------------------------------------------
    def _reclaim(self, now: float) -> int:
        """Return every expired lease's items to pending (work stealing)."""
        expired = [lease for lease in self._leases.values() if lease.deadline <= now]
        reclaimed = 0
        for lease in expired:
            for key in lease.keys:
                item = self._items.get(key)
                if item is not None and item.leased_by == lease.id:
                    item.leased_by = None
                    reclaimed += 1
            del self._leases[lease.id]
        self.counters["reclaimed"] += reclaimed
        return reclaimed

    def lease(
        self, count: int, ttl: float, now: float, *, worker: str = ""
    ) -> tuple[Optional[Lease], list[QueueItem], int]:
        """Issue up to ``count`` pending items, most expensive first.

        Returns ``(lease, items, reclaimed)``; the lease is ``None`` when
        nothing is pending.  ``reclaimed`` counts items stolen back from
        expired leases during this call (they are immediately eligible).
        """
        if count < 1:
            raise ValueError("lease requires count >= 1")
        if ttl <= 0:
            raise ValueError("lease requires ttl > 0")
        reclaimed = self._reclaim(now)
        pending = [item for item in self._items.values() if item.leased_by is None]
        # LPT at dequeue: measured costs first (informative), both longest-
        # first; the fp tiebreak keeps the order deterministic for tests
        pending.sort(key=lambda item: (0 if item.measured else 1, -item.cost, item.fp))
        taken = pending[:count]
        if not taken:
            return None, [], reclaimed
        self._sequence += 1
        lease = Lease(
            id=f"L{self._sequence}",
            worker=worker,
            deadline=now + ttl,
            keys={item.key for item in taken},
        )
        for item in taken:
            item.leased_by = lease.id
            item.attempts += 1
        self._leases[lease.id] = lease
        self.counters["leases_issued"] += 1
        return lease, taken, reclaimed

    # -- complete -----------------------------------------------------------------
    def complete(self, lease_id: str, keys: Sequence[str]) -> tuple[int, int]:
        """Remove items by key; idempotent.  Returns ``(completed, stale)``.

        ``stale`` counts keys completed under a lease that no longer owns
        them (expired and re-issued to another worker).  The item is removed
        either way: the completing worker only calls this after its verdict
        is durable in the store, and the usurping worker's own writes are
        ``if_absent``-filtered server-side, so neither loses nor duplicates
        a record.  Unknown leases and already-removed keys are no-ops.
        """
        completed = stale = 0
        for key in keys:
            item = self._items.pop(key, None)
            if item is None:
                continue
            completed += 1
            if item.leased_by != lease_id:
                stale += 1
            owner = self._leases.get(item.leased_by) if item.leased_by else None
            if owner is not None:
                owner.keys.discard(key)
                if not owner.keys:
                    del self._leases[owner.id]
        lease = self._leases.get(lease_id)
        if lease is not None:
            lease.keys.difference_update(keys)
            if not lease.keys:
                del self._leases[lease_id]
        self.counters["completed"] += completed
        self.counters["stale_completes"] += stale
        return completed, stale

    # -- extend -------------------------------------------------------------------
    def extend(self, lease_id: str, ttl: float, now: float) -> bool:
        """Renew a live lease to ``now + ttl`` (server-relative; skew-proof).

        Returns ``False`` for an unknown, expired or reclaimed lease — the
        worker must abandon the batch, its items already belong to someone
        else (or will, at the next :meth:`lease`).
        """
        if ttl <= 0:
            raise ValueError("extend requires ttl > 0")
        lease = self._leases.get(lease_id)
        if lease is None or lease.deadline <= now:
            self.counters["extend_rejected"] += 1
            return False
        lease.deadline = now + ttl
        self.counters["extended"] += 1
        return True

    # -- introspection ------------------------------------------------------------
    def status(self, dispatch: Optional[str] = None, *, now: Optional[float] = None) -> dict:
        """Pending/leased/remaining counts, optionally for one dispatch tag.

        When ``now`` is given, expired leases are reclaimed first so the
        reported ``leased`` count never includes dead workers' claims.
        """
        if now is not None:
            self._reclaim(now)
        items = [
            item
            for item in self._items.values()
            if dispatch is None or dispatch in item.dispatches
        ]
        leased = sum(1 for item in items if item.leased_by is not None)
        return {
            "pending": len(items) - leased,
            "leased": leased,
            "remaining": len(items),
            "leases": len(self._leases),
            "counters": dict(self.counters),
        }

    def __len__(self) -> int:
        return len(self._items)
