"""Tseitin-style CNF conversion.

Converts an arbitrary quantifier-free boolean combination of atoms into an
equisatisfiable set of clauses over integer propositional variables.  Atoms
are mapped to positive variables; auxiliary (Tseitin) variables are introduced
for internal connectives so the clause count stays linear in the formula size.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from . import terms
from .terms import Term

Clause = tuple[int, ...]


@dataclass
class CnfResult:
    """Clauses plus the atom <-> propositional-variable correspondence."""

    clauses: list[Clause]
    atom_of_var: dict[int, Term]
    var_of_atom: dict[Term, int]
    num_vars: int


class CnfBuilder:
    """Incremental Tseitin converter.

    A single builder may be used to convert several formulas that share atoms,
    which is how the lazy SMT loop adds theory-conflict blocking clauses.
    """

    def __init__(self) -> None:
        self._var_of_atom: dict[Term, int] = {}
        self._atom_of_var: dict[int, Term] = {}
        self._aux_of_term: dict[Term, int] = {}
        self._next_var = 1
        self.clauses: list[Clause] = []

    # -- variable management ---------------------------------------------------
    def _fresh_var(self) -> int:
        v = self._next_var
        self._next_var += 1
        return v

    def var_for_atom(self, atom: Term) -> int:
        existing = self._var_of_atom.get(atom)
        if existing is not None:
            return existing
        v = self._fresh_var()
        self._var_of_atom[atom] = v
        self._atom_of_var[v] = atom
        return v

    @property
    def num_vars(self) -> int:
        return self._next_var - 1

    @property
    def atom_of_var(self) -> dict[int, Term]:
        return self._atom_of_var

    @property
    def var_of_atom(self) -> dict[Term, int]:
        return self._var_of_atom

    # -- clause emission ---------------------------------------------------------
    def add_clause(self, clause: Clause) -> None:
        self.clauses.append(tuple(clause))

    def assert_formula(self, formula: Term) -> None:
        """Add clauses forcing ``formula`` to be true."""
        lit = self._encode(formula)
        if lit is not None:
            self.add_clause((lit,))

    def assert_literal_true(self, atom: Term, value: bool) -> None:
        v = self.var_for_atom(atom)
        self.add_clause((v if value else -v,))

    def block_assignment(self, literals: list[tuple[Term, bool]]) -> None:
        """Add a clause forbidding the given conjunction of atom values."""
        clause = []
        for atom, value in literals:
            v = self.var_for_atom(atom)
            clause.append(-v if value else v)
        self.add_clause(tuple(clause))

    # -- Tseitin encoding --------------------------------------------------------
    def _encode(self, formula: Term) -> int | None:
        """Return a literal equivalent to ``formula`` (or None for TRUE).

        Raises ``Unsatisfiable`` conditions by returning a literal that is
        forced false (via a unit clause) for the FALSE constant.
        """
        if formula.is_true:
            return None
        if formula.is_false:
            v = self._fresh_var()
            self.add_clause((-v,))
            return v
        if terms.is_atom(formula):
            return self.var_for_atom(formula)
        if formula.kind == terms.NOT:
            inner = self._encode(formula.children[0])
            if inner is None:  # not true == false
                v = self._fresh_var()
                self.add_clause((-v,))
                return v
            return -inner

        cached = self._aux_of_term.get(formula)
        if cached is not None:
            return cached

        if formula.kind == terms.AND:
            lits = [self._encode(c) for c in formula.children]
            lits = [l for l in lits if l is not None]
            out = self._fresh_var()
            for l in lits:
                self.add_clause((-out, l))
            self.add_clause(tuple([out] + [-l for l in lits]))
        elif formula.kind == terms.OR:
            lits = [self._encode(c) for c in formula.children]
            concrete = [l for l in lits if l is not None]
            out = self._fresh_var()
            if len(concrete) != len(lits):
                # one disjunct is TRUE
                self.add_clause((out,))
            else:
                for l in concrete:
                    self.add_clause((out, -l))
                self.add_clause(tuple([-out] + concrete))
        elif formula.kind == terms.IMPLIES:
            return self._encode(terms.or_(terms.not_(formula.children[0]), formula.children[1]))
        elif formula.kind == terms.IFF:
            a = self._encode(formula.children[0])
            b = self._encode(formula.children[1])
            out = self._fresh_var()
            if a is None and b is None:
                self.add_clause((out,))
            elif a is None:
                assert b is not None
                self.add_clause((-out, b))
                self.add_clause((out, -b))
            elif b is None:
                self.add_clause((-out, a))
                self.add_clause((out, -a))
            else:
                self.add_clause((-out, -a, b))
                self.add_clause((-out, a, -b))
                self.add_clause((out, a, b))
                self.add_clause((out, -a, -b))
        else:
            raise ValueError(f"cannot CNF-encode term of kind {formula.kind}")

        self._aux_of_term[formula] = out
        return out

    def result(self) -> CnfResult:
        return CnfResult(
            clauses=list(self.clauses),
            atom_of_var=dict(self._atom_of_var),
            var_of_atom=dict(self._var_of_atom),
            num_vars=self.num_vars,
        )


def to_cnf(formula: Term) -> CnfResult:
    """Convenience wrapper converting a single formula."""
    builder = CnfBuilder()
    builder.assert_formula(formula)
    return builder.result()
