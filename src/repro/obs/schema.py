"""Trace-file schema validation (stdlib-only, no jsonschema dependency).

Used by the test suite and the CI trace-smoke job via
``repro trace validate PATH``.  Validation accepts both on-disk formats
by going through :func:`repro.obs.trace.read_trace` and then checking
the normalised span records.
"""

from __future__ import annotations

from numbers import Number
from typing import Optional

from .trace import TRACE_SCHEMA, read_trace

_REQUIRED_SPAN_FIELDS = ("id", "pid", "name", "cat", "ts", "dur")


def validate_spans(spans: list, *, errors: Optional[list] = None, limit: int = 20) -> list:
    """Check span records; append violations to ``errors`` and return it."""
    if errors is None:
        errors = []
    seen: set = set()
    for index, record in enumerate(spans):
        if len(errors) >= limit:
            return errors
        if not isinstance(record, dict):
            errors.append(f"span[{index}]: not an object")
            continue
        for field in _REQUIRED_SPAN_FIELDS:
            if field not in record:
                errors.append(f"span[{index}]: missing field {field!r}")
        if not isinstance(record.get("name"), str) or not record.get("name"):
            errors.append(f"span[{index}]: name must be a non-empty string")
        if not isinstance(record.get("cat"), str) or not record.get("cat"):
            errors.append(f"span[{index}]: cat must be a non-empty string")
        for field in ("ts", "dur"):
            value = record.get(field)
            if not isinstance(value, Number) or isinstance(value, bool):
                errors.append(f"span[{index}]: {field} must be a number")
            elif value < 0:
                errors.append(f"span[{index}]: {field} must be >= 0, got {value}")
        for field in ("id", "pid"):
            value = record.get(field)
            if not isinstance(value, int) or isinstance(value, bool):
                errors.append(f"span[{index}]: {field} must be an integer")
        args = record.get("args")
        if args is not None and not isinstance(args, dict):
            errors.append(f"span[{index}]: args must be an object")
        key = (record.get("pid"), record.get("id"))
        if None not in key:
            if key in seen:
                errors.append(f"span[{index}]: duplicate (pid, id) {key}")
            seen.add(key)
    # Parent references must resolve to a recorded span id (same pid first,
    # falling back to any pid for cross-fork links) or be absent.
    ids_by_pid: dict = {}
    all_ids = set()
    for record in spans:
        if isinstance(record, dict) and isinstance(record.get("id"), int):
            ids_by_pid.setdefault(record.get("pid"), set()).add(record["id"])
            all_ids.add(record["id"])
    for index, record in enumerate(spans):
        if len(errors) >= limit:
            return errors
        if not isinstance(record, dict):
            continue
        parent = record.get("parent")
        if parent is None:
            continue
        if not isinstance(parent, int) or isinstance(parent, bool):
            errors.append(f"span[{index}]: parent must be an integer span id")
        elif parent not in all_ids:
            errors.append(f"span[{index}]: parent {parent} does not match any span id")
    return errors


def validate_trace(data: dict, *, limit: int = 20) -> list:
    """Validate a normalised trace dict; return a list of error strings."""
    errors: list = []
    meta = data.get("meta")
    if not isinstance(meta, dict) or not meta:
        errors.append("meta: missing meta record")
    else:
        if meta.get("schema") != TRACE_SCHEMA:
            errors.append(
                f"meta: schema must be {TRACE_SCHEMA}, got {meta.get('schema')!r}"
            )
        if not isinstance(meta.get("pid"), int):
            errors.append("meta: pid must be an integer")
    spans = data.get("spans")
    if not isinstance(spans, list) or not spans:
        errors.append("spans: trace contains no spans")
    else:
        validate_spans(spans, errors=errors, limit=limit)
    counters = data.get("counters")
    if counters is not None and not isinstance(counters, dict):
        errors.append("counters: must be an object when present")
    return errors[:limit]


def validate_trace_file(path: str, *, limit: int = 20) -> list:
    """Read ``path`` (either format) and return schema violations, if any."""
    try:
        data = read_trace(path)
    except (OSError, ValueError) as exc:
        return [f"unreadable trace file: {exc}"]
    return validate_trace(data, limit=limit)
