"""Client-side units for the remote store backend: no server, no sockets.

Everything here drives :class:`RemoteStoreBackend` against a stubbed
``_post``, pinning the wire-client contract in isolation: URL resolution,
the retry/backoff loop, idempotency-key stability across retries, the
4xx-never-retried rule, and handshake verification of the schema tag and
the expected wrapped backend.  The real-socket paths live in
``test_store_server.py`` and ``test_server_crash.py``.
"""

import http.client
import json

import pytest

from repro.store.backends import (
    SCHEMA_VERSION,
    open_backend,
    resolve_store_backend,
)
from repro.store.obligation_store import ObligationStore
from repro.store.remote import (
    ENV_RPC_BACKOFF,
    ENV_RPC_RETRIES,
    ENV_RPC_TIMEOUT,
    RemoteStoreBackend,
    RemoteStoreError,
)

URL = "http://cache.example:8642"


@pytest.fixture(autouse=True)
def fast_rpc(monkeypatch):
    """No real sleeping between retry attempts."""
    monkeypatch.setenv(ENV_RPC_BACKOFF, "0.0001")
    monkeypatch.setattr("repro.store.remote.time.sleep", lambda _s: None)


def _scripted(backend, responses):
    """Replace the transport with a script of (status, payload) answers.

    A response may also be an exception instance, raised instead.  Returns
    the request log: ``(op, decoded body)`` per attempt.
    """
    calls = []

    def fake_post(op, body):
        calls.append((op, json.loads(body.decode("utf-8")) if body else {}))
        answer = responses.pop(0)
        if isinstance(answer, BaseException):
            raise answer
        status, payload = answer
        # the real transport also reports whether the keep-alive connection
        # was reused; a scripted transport never reuses one
        return status, payload, False

    backend._post = fake_post
    return calls


# -- resolution --------------------------------------------------------------------


def test_urls_resolve_to_the_remote_backend(monkeypatch):
    monkeypatch.delenv("REPRO_STORE_BACKEND", raising=False)
    assert resolve_store_backend("http://host:1234")[0] == "remote"
    assert resolve_store_backend("https://host/base/")[0] == "remote"
    # the URL stays a string — Path() would eat the double slash
    name, path = resolve_store_backend("http://host:1234/")
    assert (name, path) == ("remote", "http://host:1234")

    backend = open_backend("http://host:1234")
    assert isinstance(backend, RemoteStoreBackend)
    assert backend.name == "remote"
    assert backend.supports_update is False
    assert backend.expect_backend is None


def test_an_explicit_local_backend_becomes_the_handshake_expectation():
    backend = open_backend("http://host:1234", "sqlite")
    assert backend.expect_backend == "sqlite"
    # 'auto' and 'remote' demand nothing of the server
    assert open_backend("http://host:1234", "auto").expect_backend is None
    assert open_backend("http://host:1234", "remote").expect_backend is None
    with pytest.raises(ValueError, match="unknown store backend"):
        open_backend("http://host:1234", "parquet")


def test_the_remote_backend_name_requires_a_url(tmp_path):
    with pytest.raises(ValueError, match="http"):
        resolve_store_backend(tmp_path / "store", "remote")


def test_environment_backend_applies_to_urls_as_an_expectation(monkeypatch):
    """REPRO_STORE_BACKEND reaches a URL store through the checker config,
    where it means "the server must wrap this" — it must not break opening."""
    monkeypatch.setenv("REPRO_STORE_BACKEND", "sqlite")
    assert resolve_store_backend("http://host:1")[0] == "remote"


def test_malformed_urls_are_rejected():
    with pytest.raises(ValueError, match="http"):
        RemoteStoreBackend("http://")
    with pytest.raises(ValueError, match="http"):
        RemoteStoreBackend("ftp://host:1")


def test_shard_dir_is_deterministic_per_url():
    one, two = RemoteStoreBackend(URL), RemoteStoreBackend(URL)
    assert one.shard_dir == two.shard_dir, (
        "forked shard workers must agree with the parent on the spool dir"
    )
    assert RemoteStoreBackend("http://other:1").shard_dir != one.shard_dir


# -- retry loop --------------------------------------------------------------------


def _ok(payload):
    return (200, payload)


def test_connection_errors_are_retried_until_success():
    backend = RemoteStoreBackend(URL)
    calls = _scripted(
        backend,
        [ConnectionRefusedError("down"), ConnectionResetError("mid"), _ok({"found": [], "entries": 7})],
    )
    assert backend.lookup("e", ["f"]) == []
    assert len(calls) == 3
    assert backend.entries_total == 7


def test_5xx_responses_are_retried():
    backend = RemoteStoreBackend(URL)
    calls = _scripted(backend, [(500, {"error": "boom"}), _ok({"entries": 0})])
    backend.compact()
    assert len(calls) == 2


def test_exhausted_retries_surface_as_remote_store_error(monkeypatch):
    monkeypatch.setenv(ENV_RPC_RETRIES, "3")
    backend = RemoteStoreBackend(URL)
    calls = _scripted(backend, [ConnectionRefusedError("down")] * 3)
    with pytest.raises(RemoteStoreError, match="after 3 attempts"):
        backend.lookup("e", ["f"])
    assert len(calls) == 3


def test_4xx_responses_are_never_retried():
    backend = RemoteStoreBackend(URL)
    calls = _scripted(backend, [(400, {"error": "bad payload"})])
    with pytest.raises(RemoteStoreError, match="bad payload"):
        backend.lookup("e", ["f"])
    assert len(calls) == 1, "a client error must not be replayed at the server"


def test_http_protocol_errors_count_as_connection_loss():
    backend = RemoteStoreBackend(URL)
    _scripted(
        backend,
        [http.client.BadStatusLine("garbage"), _ok({"entries": 0, "found": []})],
    )
    assert backend.lookup("e", ["f"]) == []


def test_rpc_knobs_come_from_the_environment(monkeypatch):
    monkeypatch.setenv(ENV_RPC_TIMEOUT, "0.75")
    monkeypatch.setenv(ENV_RPC_RETRIES, "9")
    backend = RemoteStoreBackend(URL)
    assert backend.timeout == 0.75
    assert backend.retries == 9
    monkeypatch.setenv(ENV_RPC_RETRIES, "not-a-number")
    monkeypatch.setenv(ENV_RPC_TIMEOUT, "")
    fallback = RemoteStoreBackend(URL)
    assert fallback.retries == 5 and fallback.timeout == 10.0


# -- idempotency keys --------------------------------------------------------------


def test_writes_carry_one_idempotency_key_across_retries():
    backend = RemoteStoreBackend(URL)
    calls = _scripted(
        backend,
        [ConnectionResetError("lost response"), (500, {}), _ok({"run": 3, "entries": 1})],
    )
    assert backend.commit_run(["e:f"]) == 3
    keys = {body["key"] for _op, body in calls}
    assert len(keys) == 1, "every retry must resend the same key verbatim"
    assert all(op == "commit_run" for op, _ in calls)


def test_each_logical_write_gets_a_fresh_key():
    backend = RemoteStoreBackend(URL)
    calls = _scripted(backend, [_ok({"dropped": 0, "entries": 0})] * 2)
    backend.gc(2)
    backend.gc(2)
    assert calls[0][1]["key"] != calls[1][1]["key"]


def test_reads_carry_no_idempotency_key():
    backend = RemoteStoreBackend(URL)
    calls = _scripted(backend, [_ok({"found": [], "entries": 0})])
    backend.lookup("e", ["f"])
    assert "key" not in calls[0][1]


# -- handshake verification --------------------------------------------------------


def _identity(**overrides):
    base = {
        "server": "pymarple-store-serve/1",
        "schema": SCHEMA_VERSION,
        "backend": "jsonl",
        "path": "/srv/store",
        "entries": 5,
        "runs": 2,
        "skipped": 0,
    }
    base.update(overrides)
    return base


def test_handshake_rejects_a_foreign_schema():
    backend = RemoteStoreBackend(URL)
    _scripted(backend, [_ok(_identity(schema="pymarple-store-v999"))])
    with pytest.raises(RemoteStoreError, match="schema"):
        backend.handshake()


def test_handshake_enforces_the_expected_backend():
    backend = RemoteStoreBackend(URL, expect_backend="sqlite")
    _scripted(backend, [_ok(_identity(backend="jsonl"))])
    with pytest.raises(RemoteStoreError, match="'sqlite'"):
        backend.handshake()


def test_handshake_is_cached_after_the_first_success():
    backend = RemoteStoreBackend(URL, expect_backend="jsonl")
    calls = _scripted(backend, [_ok(_identity())])
    first = backend.handshake()
    assert backend.handshake() is first
    assert len(calls) == 1


# -- the local-protocol stubs ------------------------------------------------------


def test_the_wholesale_local_protocol_is_refused():
    backend = RemoteStoreBackend(URL)
    with pytest.raises(RemoteStoreError):
        backend.load()
    with pytest.raises(RemoteStoreError):
        backend.update(lambda entries, runs: (entries, runs))


def test_an_unreachable_server_fails_the_store_open(monkeypatch):
    """ObligationStore surfaces a dead server as RemoteStoreError at open."""
    monkeypatch.setenv(ENV_RPC_RETRIES, "2")
    monkeypatch.setenv(ENV_RPC_TIMEOUT, "0.2")
    with pytest.raises(RemoteStoreError, match="unreachable"):
        ObligationStore("http://127.0.0.1:9")  # port 9: discard, nothing listens
