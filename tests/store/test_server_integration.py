"""The served store under real load: concurrent clients and full engine runs.

The acceptance suite of the shared-cache service, against both wrapped
backends:

* eight concurrent client *processes* hammer one serve instance with
  distinct and overlapping writes — afterwards every entry is present and
  intact (zero skipped records) and the run log holds one record per client
  under distinct sequence numbers;
* a cold engine run against ``--store http://…`` warms the shared store such
  that a second run records **zero** misses and renders deterministic
  Tables 1/3/4 byte-identical to a plain local-backend run's;
* the CLI round-trips: ``store serve`` + ``evaluate --store URL`` as real
  subprocesses, including the clean-shutdown path.
"""

import json
import multiprocessing
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.evaluation.runner import run_evaluation
from repro.evaluation.tables import table1, table3, table4
from repro.store.backends import open_backend
from repro.store.obligation_store import ObligationStore, StoreEntry
from repro.store.server import StoreHTTPServer, StoreService

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="the integration suite forks client processes",
)

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")

CLIENTS = 8
DISTINCT = 20
SHARED = 10


@pytest.fixture
def served(store_path):
    service = StoreService(store_path)
    httpd = StoreHTTPServer(("127.0.0.1", 0), service)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    yield httpd.url
    httpd.shutdown()
    thread.join()
    httpd.server_close()
    service.close()


def _entry(env, fp):
    return StoreEntry(
        env=env,
        fp=fp,
        included=True,
        solver_stats={"queries": 1},
        inclusion_stats={"fa_inclusion_checks": 1},
        scope="Set/KVStore",
        method="insert",
        spec="s1",
        library="l1",
        kind="postcondition",
        provenance="insert: postcondition",
    )


def _client(url, index, barrier):
    store = ObligationStore(url)
    barrier.wait()  # maximise contention: every client fires at once
    for i in range(DISTINCT):
        store.record(_entry(f"env-{index}", f"c{index}-{i}"))
        if i % 5 == 4:
            store.flush()
    # overlapping keys: identical content, so any interleaving converges
    for i in range(SHARED):
        store.record(_entry("shared", f"common-{i}"))
    store.flush()
    if index % 2 == 0:
        store.compact()  # rewriters racing the appenders, server-side
    store.commit_run()


def test_eight_concurrent_clients_lose_nothing(served, store_path):
    context = multiprocessing.get_context("fork")
    barrier = context.Barrier(CLIENTS)
    processes = [
        context.Process(target=_client, args=(served, index, barrier))
        for index in range(CLIENTS)
    ]
    for process in processes:
        process.start()
    for process in processes:
        process.join()
    assert all(process.exitcode == 0 for process in processes), (
        f"client exit codes: {[p.exitcode for p in processes]}"
    )

    backend = open_backend(store_path)
    try:
        state = backend.load(wipe_mismatch=False)
    finally:
        backend.close()
    expected = {
        (f"env-{c}", f"c{c}-{i}") for c in range(CLIENTS) for i in range(DISTINCT)
    } | {("shared", f"common-{i}") for i in range(SHARED)}
    assert set(state.entries) == expected, "no write may be lost"
    assert state.skipped == 0, "no record may be torn"
    assert [r["run"] for r in state.runs] == list(range(1, CLIENTS + 1)), (
        "every client's run record survives under its own sequence number"
    )


def test_remote_engine_runs_warm_to_byte_identical_tables(served, store_path):
    cold_store = ObligationStore(served)
    run_evaluation(include_slow=False, store=cold_store)
    assert cold_store.summary()["misses"] > 0

    warm_store = ObligationStore(served)
    warm = run_evaluation(include_slow=False, store=warm_store)
    summary = warm_store.summary()
    assert summary["misses"] == 0, "the server answers the whole warm workload"
    assert summary["invalidated"] == 0
    assert summary["skipped"] == 0

    # against the backend files directly, not through the server: the wire
    # must not have altered a byte that matters
    local = run_evaluation(include_slow=False, store=ObligationStore(store_path))
    for render in (table1, table3, table4):
        assert render(warm, deterministic=True) == render(local, deterministic=True), (
            "a served store must warm byte-identical deterministic tables"
        )


def test_remote_store_invalidation_and_gc_round_trip(served):
    """The maintenance surface works end to end against a live server."""
    store = ObligationStore(served)
    run_evaluation(include_slow=False, store=store)
    total = len(store)
    assert total > 0
    assert store.gc(keep_last=1) == 0, "everything is referenced by the run just committed"
    assert len(store) == total


def _cli(args, env=None):
    merged = dict(os.environ)
    merged["PYTHONPATH"] = REPO_SRC + os.pathsep + merged.get("PYTHONPATH", "")
    if env:
        merged.update(env)
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        env=merged,
        capture_output=True,
        text=True,
        timeout=300,
    )


def test_cli_serve_and_evaluate_round_trip(store_path, tmp_path):
    ready = tmp_path / "ready"
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    server = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "store", "serve",
            "--store", str(store_path), "--port", "0", "--ready-file", str(ready),
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        deadline = time.monotonic() + 30
        while not (ready.exists() and ready.read_text().strip()):
            assert time.monotonic() < deadline, "server never became ready"
            assert server.poll() is None, "server died at startup"
            time.sleep(0.02)
        url = ready.read_text().strip()

        cold = _cli(["evaluate", "--fast", "--store", url, "--json"])
        assert cold.returncode == 0, cold.stderr
        warm = _cli(["evaluate", "--fast", "--store", url, "--json"])
        assert warm.returncode == 0, warm.stderr
        cold_payload, warm_payload = json.loads(cold.stdout), json.loads(warm.stdout)
        assert warm_payload["store"]["summary"]["misses"] == 0
        assert warm_payload["store"]["summary"]["skipped"] == 0
        assert (
            warm_payload["tables_deterministic"] == cold_payload["tables_deterministic"]
        )
    finally:
        server.send_signal(signal.SIGTERM)
        output, _ = server.communicate(timeout=15)
    assert server.returncode == 0, f"clean shutdown expected, got: {output}"
    assert "store server stopped" in output


def test_cli_rejects_a_dead_server_with_a_diagnosis():
    result = _cli(
        ["evaluate", "--fast", "--store", "http://127.0.0.1:9", "--json"],
        env={
            "REPRO_STORE_RPC_RETRIES": "2",
            "REPRO_STORE_RPC_TIMEOUT": "0.2",
            "REPRO_STORE_RPC_BACKOFF": "0.01",
        },
    )
    assert result.returncode == 2
    assert "error:" in result.stderr and "unreachable" in result.stderr


def test_cli_rejects_conflicting_store_directives(tmp_path):
    result = _cli(
        ["evaluate", "--fast", "--store", f"sqlite:{tmp_path / 's'}", "--store-backend", "jsonl"]
    )
    assert result.returncode == 2
    assert "conflicting" in result.stderr
