"""Trace analysis: self-time attribution, coverage, slowest obligations."""

from repro.obs.report import analyze_trace, render_report


def _span(id, pid, name, cat, ts, dur, parent=None, args=None):
    record = {"id": id, "pid": pid, "name": name, "cat": cat, "ts": ts, "dur": dur}
    if parent is not None:
        record["parent"] = parent
    if args is not None:
        record["args"] = args
    return record


def _trace(spans, counters=None):
    return {"meta": {"schema": 1, "pid": 100}, "spans": spans, "counters": counters}


def test_self_time_subtracts_direct_children_and_buckets_by_category():
    spans = [
        _span(1, 100, "evaluate", "run", 0.0, 10.0),
        _span(2, 100, "discharge", "discharge", 1.0, 6.0, parent=1),
        _span(3, 100, "solver.check", "solver", 2.0, 2.0, parent=2),
    ]
    summary = analyze_trace(_trace(spans))
    assert summary["wall"] == 10.0  # only the root span counts toward wall
    by_cat = {entry["cat"]: entry for entry in summary["phases"]}
    assert by_cat["run"]["self"] == 4.0  # 10 - 6
    assert by_cat["discharge"]["self"] == 4.0  # 6 - 2
    assert by_cat["solver"]["self"] == 2.0
    # run is structural; discharge + solver are attributed
    assert summary["structural_self"] == 4.0
    assert summary["coverage"] == (4.0 + 2.0) / 10.0


def test_parallel_children_clamp_self_time_at_zero():
    spans = [
        _span(1, 100, "discharge.pool", "discharge", 0.0, 2.0),
        _span(2, 100, "a", "discharge", 0.0, 1.5, parent=1),
        _span(3, 100, "b", "discharge", 0.0, 1.5, parent=1),
    ]
    summary = analyze_trace(_trace(spans))
    by_cat = {entry["cat"]: entry for entry in summary["phases"]}
    # 2.0 - 3.0 of child time clamps to 0, never negative
    assert by_cat["discharge"]["self"] == 0.0 + 1.5 + 1.5


def test_worker_root_resolves_parent_into_the_main_process():
    spans = [
        _span(1, 100, "discharge.pool", "discharge", 0.0, 4.0),
        # a forked worker inherited the counter, so its id collides with the
        # pool span's id in another pid; its parent must resolve to pid 100
        _span(2, 200, "discharge", "discharge", 0.5, 3.0, parent=1),
    ]
    summary = analyze_trace(_trace(spans))
    assert summary["workers"] == {200: 3.0}
    by_cat = {entry["cat"]: entry for entry in summary["phases"]}
    # the worker's time was charged to the pool span as child time
    assert by_cat["discharge"]["self"] == (4.0 - 3.0) + 3.0


def test_slowest_obligations_sorted_by_duration_keyed_by_fingerprint():
    spans = [
        _span(1, 100, "evaluate", "run", 0.0, 10.0),
        _span(2, 100, "discharge", "discharge", 0.0, 1.0, parent=1,
              args={"obligation_fp": "aa", "kind": "postcondition"}),
        _span(3, 100, "discharge", "discharge", 1.0, 3.0, parent=1,
              args={"obligation_fp": "bb", "kind": "coverage"}),
        _span(4, 100, "discharge", "discharge", 4.0, 2.0, parent=1,
              args={"obligation_fp": "cc", "kind": "postcondition"}),
    ]
    summary = analyze_trace(_trace(spans), top=2)
    assert [row["fingerprint"] for row in summary["slowest"]] == ["bb", "cc"]
    assert summary["slowest"][0]["kind"] == "coverage"


def test_render_report_includes_phases_slowest_and_cache_rates():
    spans = [
        _span(1, 100, "evaluate", "run", 0.0, 2.0),
        _span(2, 100, "discharge", "discharge", 0.0, 1.0, parent=1,
              args={"obligation_fp": "deadbeef"}),
    ]
    counters = {
        "caches": {
            "derivative_cache_hits": 3,
            "derivative_cache_misses": 1,
            "derivative_cache_evictions": 0,
            "alphabet_memo_builds": 4,
            "alphabet_memo_replays": 4,
            "alphabet_memo_evictions": 0,
        }
    }
    text = render_report(_trace(spans, counters=counters))
    assert "attributed coverage 50.0%" in text
    assert "discharge" in text and "deadbeef" in text
    assert "derivative cache: 75.0% hit" in text
    assert "alphabet memo:    50.0% replay" in text


def test_empty_trace_reports_zero_coverage_not_a_crash():
    summary = analyze_trace({"meta": {"pid": 1}, "spans": [], "counters": None})
    assert summary["wall"] == 0.0 and summary["coverage"] == 0.0
    assert "none recorded" in render_report({"meta": {"pid": 1}, "spans": []})
