"""repro.sfa — symbolic finite automata for Hoare Automata Types.

Public surface:

* :mod:`repro.sfa.events` — concrete events and traces,
* :mod:`repro.sfa.signatures` — effectful operator signatures,
* :mod:`repro.sfa.symbolic` — the symbolic automata formula algebra (events,
  guards, boolean/temporal/regular connectives, the derived ♦ □ LAST forms),
* :mod:`repro.sfa.alphabet` — minterm construction / alphabet transformation,
* :mod:`repro.sfa.derivatives` — derivative-based DFA compilation,
* :mod:`repro.sfa.automata` — the explicit DFA algebra,
* :mod:`repro.sfa.inclusion` — the Algorithm-1 inclusion checker.
"""

from .events import Event, Trace, event
from .signatures import EventSignature, OperatorRegistry
from .symbolic import (
    BOT,
    TOP,
    Sfa,
    accepts,
    and_,
    any_event,
    any_trace,
    concat,
    eventually,
    event as sym_event,
    event_pinned,
    globally,
    guard,
    implies,
    last,
    next_,
    not_,
    or_,
    seq,
    single,
    size,
    substitute,
    until,
)
from .alphabet import Alphabet, AlphabetStats, Character, build_alphabets, collect_literals
from .automata import Dfa, empty_dfa, universal_dfa, word_dfa
from .derivatives import compile_dfa, derivative, nullable
from .inclusion import InclusionChecker, InclusionResult, InclusionStats

__all__ = [
    "Event",
    "Trace",
    "event",
    "EventSignature",
    "OperatorRegistry",
    "BOT",
    "TOP",
    "Sfa",
    "accepts",
    "and_",
    "any_event",
    "any_trace",
    "concat",
    "eventually",
    "sym_event",
    "event_pinned",
    "globally",
    "guard",
    "implies",
    "last",
    "next_",
    "not_",
    "or_",
    "seq",
    "single",
    "size",
    "substitute",
    "until",
    "Alphabet",
    "AlphabetStats",
    "Character",
    "build_alphabets",
    "collect_literals",
    "Dfa",
    "empty_dfa",
    "universal_dfa",
    "word_dfa",
    "compile_dfa",
    "derivative",
    "nullable",
    "InclusionChecker",
    "InclusionResult",
    "InclusionStats",
]
