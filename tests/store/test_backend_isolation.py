"""Store isolation across solver backends.

The environment fingerprint includes the backend id, so verdicts (and, more
importantly, the recorded per-obligation #SAT/#Confl counters) discharged
under one backend must be invisible to a run under another: zero warm hits,
no entry overwritten — the two backends populate disjoint key spaces in the
same store file.
"""

from repro.store.fingerprint import environment_fingerprint
from repro.store.obligation_store import ObligationStore
from repro.suite.registry import benchmark_by_key
from repro.typecheck.checker import CheckerConfig


def _verify_with(store, backend):
    bench = benchmark_by_key("Set/KVStore")
    checker = bench.make_checker(CheckerConfig(backend=backend), store=store)
    stats = bench.verify_all(checker)
    assert stats.all_verified
    return stats


def test_environment_fingerprint_separates_backends():
    bench = benchmark_by_key("Set/KVStore")
    fps = {
        backend: environment_fingerprint(
            bench.library.operators, bench.library.axioms, backend=backend
        )
        for backend in ("dpll", "cdcl", "z3")
    }
    assert len(set(fps.values())) == 3


def test_warm_store_from_other_backend_is_invisible(store_path):
    path = store_path

    # cold run under dpll populates the store
    warm_store = ObligationStore(path)
    _verify_with(warm_store, "dpll")
    warm_store.flush()
    dpll_summary = ObligationStore(path).summary()
    assert dpll_summary["entries"] > 0

    dpll_entries = {
        entry.key: entry.to_json() for entry in ObligationStore(path)
    }

    # a cdcl run against the same store: zero hits, nothing overwritten
    cdcl_store = ObligationStore(path)
    cdcl_stats = _verify_with(cdcl_store, "cdcl")
    cdcl_store.flush()
    summary = cdcl_store.summary()
    assert summary["hits"] == 0, "a cdcl run must not hit dpll-recorded entries"
    assert summary["misses"] > 0

    reloaded = {entry.key: entry.to_json() for entry in ObligationStore(path)}
    for key, payload in dpll_entries.items():
        assert reloaded[key] == payload, "dpll entries must survive byte for byte"
    assert len(reloaded) > len(dpll_entries), (
        "the cdcl run records its own entries under its own environment key"
    )
    assert sum(r.stats.store_hits for r in cdcl_stats.method_results) == 0

    # and the warm start *within* the cdcl environment still works
    warm_cdcl = ObligationStore(path)
    _verify_with(warm_cdcl, "cdcl")
    assert warm_cdcl.summary()["misses"] == 0
    assert warm_cdcl.summary()["hits"] > 0
