"""Tests for the evaluation runner, the table formatters and the CLI."""

import pytest

from repro.cli import main as cli_main
from repro.evaluation.runner import run_benchmark, run_evaluation
from repro.evaluation.tables import negatives_table, render_all, table1, table2, table3, table4
from repro.suite.registry import all_benchmarks, benchmark_by_key
from repro.suite.set_kvstore import set_kvstore


@pytest.fixture(scope="module")
def small_report():
    """An evaluation over two fast rows (keeps the test suite quick)."""
    benches = [benchmark_by_key("Set/KVStore"), benchmark_by_key("LazySet/Set")]
    return run_evaluation(benches)


def test_registry_contents():
    keys = [b.key for b in all_benchmarks()]
    assert "Set/KVStore" in keys
    assert "FileSystem/KVStore" in keys
    assert len(keys) >= 7
    assert len(all_benchmarks(include_slow=False)) < len(keys)
    with pytest.raises(KeyError):
        benchmark_by_key("Nope/Nothing")


def test_run_benchmark_single_row():
    stats, negatives = run_benchmark(set_kvstore())
    assert stats.all_verified
    assert negatives and all(n.rejected for n in negatives)


def test_report_and_tables(small_report):
    assert small_report.all_verified
    assert small_report.all_negatives_rejected
    assert small_report.total_time_seconds > 0

    t1 = table1(small_report)
    assert "Set" in t1 and "KVStore" in t1 and "#SAT" in t1
    t3 = table3(small_report)
    assert "insert" in t3 and "lazy_insert" in t3
    t4 = table4(small_report)
    assert "Method" in t4  # header renders even with no rows in this subset
    t2 = table2()
    assert "FileSystem" in t2
    neg = negatives_table(small_report)
    assert "insert_bad" in neg
    everything = render_all(small_report)
    assert "Table 1" in everything and "Table 4" in everything

    rows = small_report.per_method_rows()
    assert any(row["Method"] == "insert" and row["verified"] for row in rows)


def test_cli_list_and_table2(capsys):
    assert cli_main(["list"]) == 0
    out = capsys.readouterr().out
    assert "Set/KVStore" in out and "FileSystem/KVStore" in out

    assert cli_main(["table", "2"]) == 0
    out = capsys.readouterr().out
    assert "Representation invariant" in out


def test_cli_check_single_method(capsys):
    assert cli_main(["check", "Set/KVStore", "--method", "mem"]) == 0
    out = capsys.readouterr().out
    assert "VERIFIED" in out
