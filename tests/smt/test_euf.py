"""Tests for the congruence closure engine."""

from repro import smt
from repro.smt import sorts
from repro.smt.euf import CongruenceClosure, check_euf, implied_int_equalities


ELEM = sorts.ELEM
f = smt.declare("euf_f", [ELEM], ELEM)
g = smt.declare("euf_g", [ELEM, ELEM], ELEM)
p = smt.declare("euf_p", [ELEM], smt.BOOL, method_predicate=True)

a = smt.data_const("euf_a", ELEM)
b = smt.data_const("euf_b", ELEM)
x = smt.var("euf_x", ELEM)
y = smt.var("euf_y", ELEM)
z = smt.var("euf_z", ELEM)


def test_basic_transitivity():
    cc = CongruenceClosure()
    cc.assert_equal(x, y)
    cc.assert_equal(y, z)
    assert cc.are_equal(x, z)
    assert not cc.are_equal(x, a)


def test_congruence_of_function_applications():
    cc = CongruenceClosure()
    cc.assert_equal(x, y)
    assert cc.are_equal(smt.apply(f, x), smt.apply(f, y))
    assert cc.are_equal(smt.apply(g, x, z), smt.apply(g, y, z))
    assert not cc.are_equal(smt.apply(g, x, z), smt.apply(g, z, x))


def test_nested_congruence():
    cc = CongruenceClosure()
    cc.assert_equal(x, smt.apply(f, y))
    cc.assert_equal(y, z)
    assert cc.are_equal(smt.apply(f, x), smt.apply(f, smt.apply(f, z)))


def test_disequality_conflict():
    cc = CongruenceClosure()
    cc.assert_equal(x, y)
    cc.assert_distinct(x, y)
    assert not cc.is_consistent()


def test_distinct_data_constants_conflict():
    cc = CongruenceClosure()
    cc.assert_equal(a, b)
    assert not cc.is_consistent()


def test_distinct_int_constants_conflict():
    cc = CongruenceClosure()
    cc.assert_equal(smt.int_const(1), smt.int_const(2))
    assert not cc.is_consistent()


def test_check_euf_predicate_polarity_conflict():
    lits = [(smt.eq(x, y), True), (smt.apply(p, x), True), (smt.apply(p, y), False)]
    result = check_euf(lits)
    assert not result.consistent
    assert result.conflict


def test_check_euf_consistent_set():
    lits = [
        (smt.eq(x, y), True),
        (smt.apply(p, x), True),
        (smt.apply(p, z), False),
        (smt.eq(x, z), False),
    ]
    assert check_euf(lits).consistent


def test_check_euf_functional_consistency():
    lits = [
        (smt.eq(x, y), True),
        (smt.eq(smt.apply(f, x), smt.apply(f, y)), False),
    ]
    assert not check_euf(lits).consistent


def test_implied_int_equalities_propagates_shared_terms():
    length = smt.declare("euf_len", [ELEM], smt.INT)
    i = smt.var("euf_i", smt.INT)
    lits = [
        (smt.eq(x, y), True),
        (smt.eq(smt.apply(length, x), i), True),
    ]
    implied = implied_int_equalities(lits)
    pairs = {frozenset((lhs, rhs)) for lhs, rhs in implied}
    assert frozenset((smt.apply(length, x), i)) in pairs
