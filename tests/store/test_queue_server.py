"""The queue protocol and keep-alive transport over real sockets.

Same shape as ``test_store_server.py`` — an in-process
:class:`StoreHTTPServer` over each local backend, a real
:class:`RemoteStoreBackend` on the loopback — but focused on what PR 10
added: the lease queue ops, ``/stats``, idempotent lease replay, the
per-client replay-cache isolation that makes a slow client's retry safe,
and the persistent keep-alive connection (reuse, transparent reconnect,
fork identity).
"""

import threading

import pytest

from repro.store import server as server_mod
from repro.store.backends import StoreEntry
from repro.store.remote import RemoteStoreBackend, RemoteStoreError
from repro.store.server import StoreHTTPServer, StoreService


@pytest.fixture
def server(store_path):
    service = StoreService(store_path)
    httpd = StoreHTTPServer(("127.0.0.1", 0), service)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    yield httpd
    httpd.shutdown()
    thread.join()
    httpd.server_close()
    service.close()


@pytest.fixture
def client(server):
    backend = RemoteStoreBackend(server.url)
    yield backend
    backend.close()


@pytest.fixture
def clock(server):
    """Replace the server's queue clock with a hand-cranked one."""

    class Clock:
        now = 1000.0

        def __call__(self):
            return self.now

        def advance(self, seconds):
            self.now += seconds

    clock = Clock()
    server.service.queue_clock = clock
    return clock


def _items(*fps, env="e", bench="Set/KVStore", cost=1.0, measured=False):
    return [
        {"env": env, "fp": fp, "bench": bench, "cost": cost, "measured": measured}
        for fp in fps
    ]


def _entry(fp, env="env1", wall=None):
    return StoreEntry(
        env=env,
        fp=fp,
        included=True,
        solver_stats={"queries": 2},
        inclusion_stats={"fa_inclusion_checks": 1},
        scope="Set/KVStore",
        method="insert",
        spec="s1",
        library="l1",
        kind="postcondition",
        provenance="insert: postcondition",
        cost={"wall": wall} if wall is not None else {},
    )


# -- the queue over the wire -------------------------------------------------------


def test_enqueue_lease_complete_roundtrip(client, clock):
    response = client.enqueue(_items("f1", "f2"), "d1")
    assert response["enqueued"] == 2 and response["queued"] == 2

    grant = client.lease(8, 30.0, worker="w1")
    assert grant["lease"] is not None
    assert {item["fp"] for item in grant["items"]} == {"f1", "f2"}
    assert client.queue_status("d1") == {
        **client.queue_status("d1"),
        "remaining": 2,
        "leased": 2,
    }

    done = client.complete(grant["lease"], [f"e:{item['fp']}" for item in grant["items"]])
    assert done["completed"] == 2 and done["queued"] == 0
    assert client.queue_status("d1")["remaining"] == 0


def test_the_servers_cost_index_outranks_the_clients_estimate(client, clock):
    # the store has already measured f-slow under *another* environment;
    # the coordinator only knows a (low) syntactic estimate for it
    client.append_entries([_entry("f-slow", env="other-env", wall=3.5)])
    client.enqueue(
        _items("f-slow", cost=0.1) + _items("f-cheap", cost=50.0), "d1"
    )
    grant = client.lease(2, 30.0)
    first = grant["items"][0]
    assert first["fp"] == "f-slow"
    assert first["measured"] and first["cost"] == 3.5, (
        "a recorded wall time is the LPT signal, whatever the client sent"
    )


def test_an_expired_lease_is_stolen_by_the_next_worker(client, clock):
    client.enqueue(_items("f1"), "d1")
    dead = client.lease(1, 5.0, worker="doomed")
    assert dead["items"]

    clock.advance(4.9)
    assert client.lease(1, 5.0, worker="thief")["lease"] is None

    clock.advance(0.2)  # past the deadline
    stolen = client.lease(1, 5.0, worker="thief")
    assert stolen["reclaimed"] == 1
    assert stolen["items"][0]["fp"] == "f1"
    assert stolen["items"][0]["attempts"] == 2


def test_extend_is_skew_proof_and_refuses_dead_leases(client, clock):
    client.enqueue(_items("f1"), "d1")
    grant = client.lease(1, 10.0)

    # the wire carries only the relative ttl — the worker's wall clock (be
    # it hours ahead or behind) never reaches the deadline computation
    clock.advance(8.0)
    assert client.extend(grant["lease"], 10.0) is True
    clock.advance(8.0)  # 16s after lease, but only 8s after the extend
    assert client.lease(1, 10.0)["lease"] is None, "renewed lease still shields"

    clock.advance(2.1)
    assert client.extend(grant["lease"], 10.0) is False, (
        "an expired lease cannot be revived; the worker must abandon the batch"
    )


def test_lease_replay_returns_the_original_grant(server, client, clock):
    """A retried lease RPC must not burn a second lease (idempotent replay)."""
    client.enqueue(_items("f1", "f2"), "d1")
    payload = {"count": 2, "ttl": 30.0, "key": "k-lease", "client": "c1"}
    first = server.service.execute("lease", dict(payload))
    replay = server.service.execute("lease", dict(payload))
    assert replay == first, "the cached grant is replayed verbatim"
    assert server.service.queue.counters["leases_issued"] == 1


def test_queue_ops_reject_malformed_payloads_without_retry(client):
    with pytest.raises(RemoteStoreError, match="items"):
        client._call("enqueue", {"items": "not-a-list"}, idempotent=True)
    with pytest.raises(RemoteStoreError, match="bench"):
        client.enqueue([{"env": "e", "fp": "f"}], "d1")  # missing bench
    with pytest.raises(RemoteStoreError, match="count"):
        client._call("lease", {"count": "many", "ttl": 1.0}, idempotent=True)
    with pytest.raises(RemoteStoreError, match="lease"):
        client._call("complete", {"lease": 7, "keys": []}, idempotent=True)


# -- /stats ------------------------------------------------------------------------


def test_stats_snapshot_covers_entries_ops_lookup_and_queue(client, clock):
    client.append_entries([_entry("f1")])
    client.lookup("env1", ["f1", "f-missing"])
    client.enqueue(_items("q1"), "d1")
    client.lease(1, 30.0)

    stats = client.stats()
    assert stats["entries"] == 1
    assert stats["lookup"] == {"requested": 2, "found": 1}
    assert stats["queue"]["counters"]["enqueued"] == 1
    assert stats["queue"]["counters"]["leases_issued"] == 1
    assert stats["ops"]["append"]["count"] == 1
    assert stats["ops"]["append"]["replays"] == 0
    assert stats["uptime_seconds"] >= 0
    assert stats["idempotency_clients"] >= 1


# -- per-client idempotency: the double-apply regression ---------------------------


def test_a_flooding_client_cannot_evict_a_slow_clients_retry(server, client, monkeypatch):
    """Regression: the replay cache evicts per client, so another client's
    key flood can never push a slow client's pending write out of the cache
    and turn its retry into a double-apply."""
    monkeypatch.setattr(server_mod, "_MAX_IDEMPOTENCY_KEYS_PER_CLIENT", 4)
    service = server.service

    # the slow client commits a run... and its ack is lost in the network
    slow = {"touched": ["e:f1"], "key": "k-slow", "client": "slow"}
    first = service.execute("commit_run", dict(slow))

    # meanwhile a busy client floods far more writes than the (tiny) cap
    for index in range(12):
        service.execute(
            "commit_run",
            {"touched": [f"e:g{index}"], "key": f"k-busy-{index}", "client": "busy"},
        )

    # the slow client finally retries: under the old *global* cap its key
    # would have been evicted and the run appended a second time
    replay = service.execute("commit_run", dict(slow))
    assert replay == first, "the retry must replay, not re-apply"
    runs = service.backend.load().runs
    assert sum(1 for run in runs if run.get("touched") == ["e:f1"]) == 1


def test_append_if_absent_filters_existing_keys(client):
    client.append_entries([_entry("f1", wall=1.0)])
    client.append_if_absent = True
    # a worker whose lease was stolen re-appends the same (env, fp): the
    # server filters it — first write wins, no duplicate record
    client.append_entries([_entry("f1", wall=99.0), _entry("f2")])
    assert client.stats()["entries"] == 2
    [kept] = client.lookup("env1", ["f1"])
    assert kept.cost == {"wall": 1.0}


# -- keep-alive transport ----------------------------------------------------------


def test_the_connection_is_reused_across_rpcs(client):
    client.handshake()
    client.lookup("e", ["f"])
    client.queue_status()
    assert client.rpc_calls == 3
    assert client.rpc_reused == 2, "one connect, then keep-alive reuse"


def test_a_dead_kept_alive_socket_reconnects_transparently(client):
    client.handshake()
    assert client._conn is not None
    # the server (or a middlebox) dropped the idle connection under us
    client._conn.sock.close()
    assert client.lookup("e", ["f"]) == []  # one silent reconnect, no error
    assert client._conn is not None


def test_fork_regenerates_the_client_identity(client, monkeypatch):
    client.handshake()
    parent_id, parent_conn = client._client_id, client._conn
    assert parent_conn is not None

    # simulate the fork: same object, new pid
    monkeypatch.setattr("repro.store.remote.os.getpid", lambda: client._client_pid + 1)
    client.lookup("e", ["f"])
    assert client._client_id != parent_id, (
        "per-client idempotency buckets must never collide across fork"
    )
    assert client._conn is not parent_conn, "the parent's socket is abandoned"
