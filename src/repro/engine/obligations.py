"""The obligation IR connecting the type checker to proof discharge.

The checker (Sec. 5.2) used to decide every leaf/coverage/emptiness check
inline, interleaving the bidirectional walk with Algorithm-1 inclusion
queries.  It now *emits* first-class :class:`Obligation` values instead —
context hypotheses, the two symbolic automata, and provenance — collected
into an :class:`ObligationSet`.  The :mod:`repro.engine.scheduler` stage
dedupes, orders and discharges them afterwards, serially or across a
process pool.

Because terms and SFA formulas are hash-consed, an obligation has an exact
structural fingerprint ``(sorted hypothesis ids, lhs id, rhs id)``: two
obligations with equal fingerprints denote the same logical query, no matter
where in the program they were emitted.  This is what the engine's dedupe
and cross-method memo key on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional, Sequence

from ..sfa import symbolic
from ..sfa.symbolic import Sfa
from ..smt.terms import Term

#: The obligation kinds the checker emits (plus "emptiness" for L(A) = ∅
#: queries, which are inclusions into BOT).
KINDS = ("postcondition", "coverage", "precondition", "emptiness")

Fingerprint = tuple


@dataclass(frozen=True)
class Obligation:
    """One leaf proof obligation ``Γ ⊢ L(lhs) ⊆ L(rhs)``."""

    kind: str
    hypotheses: tuple[Term, ...]
    lhs: Sfa
    rhs: Sfa
    #: where the obligation came from, e.g. "insert: postcondition at return"
    provenance: str
    #: the message reported when the obligation fails to discharge
    failure_message: str
    #: emission order within the method (walk order); fixes error reporting
    index: int

    def fingerprint(self) -> Fingerprint:
        """Structural content address: isomorphic obligations coincide."""
        cached = getattr(self, "_fingerprint", None)
        if cached is None:
            cached = (
                tuple(sorted(h.term_id for h in self.hypotheses)),
                self.lhs.sfa_id,
                self.rhs.sfa_id,
            )
            object.__setattr__(self, "_fingerprint", cached)
        return cached

    def cost_estimate(self) -> int:
        """A cheap syntactic proxy for discharge cost (used cheapest-first).

        Formula size bounds both the literal sets driving the alphabet
        transformation and the derivative state space, so it orders
        obligations well without any solver work.
        """
        return symbolic.size(self.lhs) + symbolic.size(self.rhs) + len(self.hypotheses)


@dataclass
class ObligationSet:
    """Obligations emitted while walking one method body."""

    method: str = ""
    obligations: list[Obligation] = field(default_factory=list)

    def emit(
        self,
        kind: str,
        hypotheses: Sequence[Term],
        lhs: Sfa,
        rhs: Sfa,
        *,
        provenance: str = "",
        failure_message: str = "",
    ) -> Obligation:
        if kind not in KINDS:
            raise ValueError(f"unknown obligation kind {kind!r}; expected one of {KINDS}")
        obligation = Obligation(
            kind=kind,
            hypotheses=tuple(hypotheses),
            lhs=lhs,
            rhs=rhs,
            provenance=provenance or f"{self.method}: {kind}",
            failure_message=failure_message or f"{kind} obligation failed",
            index=len(self.obligations),
        )
        self.obligations.append(obligation)
        return obligation

    def emit_emptiness(
        self,
        hypotheses: Sequence[Term],
        formula: Sfa,
        *,
        provenance: str = "",
        failure_message: str = "",
    ) -> Obligation:
        """``L(formula) = ∅`` as an inclusion into the empty automaton."""
        return self.emit(
            "emptiness",
            hypotheses,
            formula,
            symbolic.BOT,
            provenance=provenance,
            failure_message=failure_message,
        )

    def __len__(self) -> int:
        return len(self.obligations)

    def __iter__(self) -> Iterator[Obligation]:
        return iter(self.obligations)

    def deduped(self) -> list[tuple[Obligation, list[Obligation]]]:
        """Group structurally-isomorphic obligations under one representative.

        Returns ``(representative, aliases)`` pairs in first-emission order;
        ``aliases`` lists every later obligation with the same fingerprint
        (they receive the representative's verdict without re-discharge).
        """
        groups: dict[Fingerprint, tuple[Obligation, list[Obligation]]] = {}
        for obligation in self.obligations:
            key = obligation.fingerprint()
            entry = groups.get(key)
            if entry is None:
                groups[key] = (obligation, [])
            else:
                entry[1].append(obligation)
        return list(groups.values())

    def schedule(
        self,
        *,
        cost_of: Optional[Callable[["Obligation"], Optional[float]]] = None,
        longest_first: bool = False,
    ) -> list[tuple[Obligation, list[Obligation]]]:
        """Deduped obligations in discharge order (emission order breaks ties).

        ``cost_of`` supplies a *historical* cost in seconds for obligations
        the persistent store has discharged before (under any environment);
        obligations it returns ``None`` for fall back to the syntactic
        :meth:`Obligation.cost_estimate`.  The two populations sort
        separately (measured costs first — they are informative, estimates
        are a guess) but under the same policy:

        * ``longest_first=False`` (serial discharge) — cheapest first, so
          cheap obligations surface counterexamples early;
        * ``longest_first=True`` (process pool) — longest processing time
          first, the classic LPT heuristic that cuts the pool's makespan by
          never leaving the most expensive obligation for last.

        Order is advisory only: discharge is hermetic and per-obligation
        counters are pure functions of the obligation, so *any* order
        produces the same verdicts and the same deterministic tables — the
        scheduling-determinism suite locks that in.
        """
        sign = -1.0 if longest_first else 1.0

        def key(entry: tuple[Obligation, list[Obligation]]) -> tuple:
            representative = entry[0]
            cost = cost_of(representative) if cost_of is not None else None
            if cost is not None:
                return (0, sign * cost, representative.index)
            return (1, sign * representative.cost_estimate(), representative.index)

        return sorted(self.deduped(), key=key)


@dataclass
class DischargeOutcome:
    """The verdict for one emitted obligation (representatives and aliases)."""

    obligation: Obligation
    included: bool
    #: readable event trace witnessing the failure, when not included
    counterexample: Optional[list[str]] = None
    #: set when discharge hit a resource limit (AlphabetError & co.); the
    #: obligation is then reported as failed with this message
    error: Optional[str] = None
    #: answered from the engine's cross-method memo (no discharge work done)
    from_memo: bool = False
    #: answered from the persistent obligation store (warm start)
    from_store: bool = False
    #: assigned to another shard: not discharged here, verdict is vacuous
    skipped: bool = False
    #: this obligation was an alias of an isomorphic representative
    deduped: bool = False

    @property
    def failed(self) -> bool:
        return not self.included
