"""The tracked benchmark harness (``repro bench``).

Runs the evaluation corpus twice — **cold** (no store, every obligation
discharged) and **warm** (a second run answered from a store the cold run
populated) — and reports wall-clock times next to the full deterministic
counter set of Tables 1/3/4.  The JSON payload is what gets committed as
``BENCH_PR<k>.json``: the counters give every later session an exact
behavioural fingerprint to diff against, the wall times give CI a regression
tripwire (``compare_payloads`` applies the tolerance), and the ``baseline``
section carries the numbers of the previous PR so "did this PR actually get
faster?" stays answerable from the repository alone.

Wall-clock comparisons are only meaningful on comparable hardware; the
committed payload records the machine it was measured on, and the CI
tolerance exists precisely because runners drift.  The *counters*, by
contrast, must reproduce everywhere byte for byte.
"""

from __future__ import annotations

import json
import platform
import sys
import tempfile
import time
from dataclasses import replace
from pathlib import Path
from typing import Optional

from ..evaluation.runner import EvaluationReport, run_evaluation
from ..evaluation.tables import table1, table3, table4
from ..store.obligation_store import ObligationStore
from ..typecheck.checker import CheckerConfig

#: Payload layout version for BENCH_*.json files.
BENCH_SCHEMA = 1

#: The per-method counters aggregated into the payload (sums over the corpus).
_COUNTER_FIELDS = (
    "obligations",
    "smt_queries",
    "smt_cache_hits",
    "sat_conflicts",
    "fa_inclusion_checks",
    "dfa_cache_hits",
    "alphabet_builds",
    "alphabet_memo_hits",
    "prod_states",
    "states_built",
    "store_hits",
)


def _aggregate_counters(report: EvaluationReport) -> dict:
    totals = {field: 0 for field in _COUNTER_FIELDS}
    for stats in report.adt_stats:
        for result in stats.method_results:
            for field in _COUNTER_FIELDS:
                totals[field] += getattr(result.stats, field)
    # the cross-obligation reuse layers' own rates (cache/memo hit and
    # eviction counts) — reuse bookkeeping, so advisory in comparisons, but
    # they answer "is the memo actually earning its keep?" from the payload
    totals.update(report.cache_totals())
    return totals


def _phase_payload(report: EvaluationReport, wall_seconds: float, all_walls: list) -> dict:
    payload = {
        "wall_seconds": round(wall_seconds, 4),
        "wall_seconds_all_runs": [round(w, 4) for w in all_walls],
        "all_verified": report.all_verified,
        "all_negatives_rejected": report.all_negatives_rejected,
        "per_adt_wall_seconds": {
            f"{stats.adt}/{stats.library}": round(stats.total_time_seconds, 4)
            for stats in report.adt_stats
        },
        "counters": _aggregate_counters(report),
        "tables_deterministic": {
            "table1": table1(report, deterministic=True),
            "table3": table3(report, deterministic=True),
            "table4": table4(report, deterministic=True),
        },
    }
    batch_summary = report.batch_group_summary()
    if batch_summary is not None:
        payload["batch_groups"] = batch_summary
    return payload


def run_bench(
    *,
    include_slow: bool = False,
    runs: int = 3,
    config: Optional[CheckerConfig] = None,
    store_path: Optional[str] = None,
    ab: bool = False,
) -> dict:
    """Run the corpus cold and warm; return the BENCH payload.

    ``runs`` cold runs are timed and the best (minimum) wall time reported —
    the usual benchmarking convention, since noise only ever adds time.  The
    warm phase reuses a store populated by one extra cold pass (kept out of
    the timings) so its wall time measures pure store-replay speed.

    ``ab=True`` additionally times cold runs in the *other* discharge mode
    (batch when the config says lazy and vice versa) and records the
    comparison — wall times plus a byte-identity check over the
    deterministic tables — under the payload's ``"ab"`` key.
    """
    if runs < 1:
        raise ValueError("bench requires runs >= 1")
    config = config or CheckerConfig()

    cold_walls: list[float] = []
    cold_report: Optional[EvaluationReport] = None
    for _ in range(runs):
        start = time.perf_counter()
        report = run_evaluation(include_slow=include_slow, config=config)
        wall = time.perf_counter() - start
        cold_walls.append(wall)
        if cold_report is None or wall <= min(cold_walls):
            cold_report = report

    with tempfile.TemporaryDirectory(prefix="pymarple-bench-") as tmp:
        store_dir = store_path or str(Path(tmp) / "store")
        store = ObligationStore(store_dir, backend=config.store_backend)
        run_evaluation(include_slow=include_slow, config=config, store=store)
        store.flush()
        store.commit_run()

        warm_walls: list[float] = []
        warm_report: Optional[EvaluationReport] = None
        for _ in range(runs):
            warm_store = ObligationStore(store_dir, backend=config.store_backend)
            start = time.perf_counter()
            report = run_evaluation(
                include_slow=include_slow, config=config, store=warm_store
            )
            wall = time.perf_counter() - start
            warm_walls.append(wall)
            if warm_report is None or wall <= min(warm_walls):
                warm_report = report
            warm_store.flush()
            warm_store.commit_run()

    assert cold_report is not None and warm_report is not None
    payload = {
        "schema": BENCH_SCHEMA,
        "corpus": "full" if include_slow else "fast",
        "runs": runs,
        "machine": {
            "python": sys.version.split()[0],
            "platform": platform.platform(),
            "machine": platform.machine(),
        },
        "config": {
            "backend": config.backend,
            "discharge": config.discharge,
            "strategy": config.enumeration_strategy,
            "workers": config.workers,
            "schedule": config.schedule,
            "memo": config.cross_obligation_memo,
        },
        "cold": _phase_payload(cold_report, min(cold_walls), cold_walls),
        "warm": _phase_payload(warm_report, min(warm_walls), warm_walls),
    }
    if ab:
        other = "batch" if config.discharge != "batch" else "lazy"
        ab_config = replace(config, discharge=other)
        ab_walls: list[float] = []
        ab_report: Optional[EvaluationReport] = None
        for _ in range(runs):
            start = time.perf_counter()
            report = run_evaluation(include_slow=include_slow, config=ab_config)
            wall = time.perf_counter() - start
            ab_walls.append(wall)
            if ab_report is None or wall <= min(ab_walls):
                ab_report = report
        assert ab_report is not None
        ab_phase = _phase_payload(ab_report, min(ab_walls), ab_walls)
        payload["ab"] = {
            "discharge": other,
            "cold": ab_phase,
            # the batch≡lazy contract, checked on the spot: both modes must
            # render byte-identical deterministic tables over this corpus
            "tables_identical": (
                ab_phase["tables_deterministic"]
                == payload["cold"]["tables_deterministic"]
            ),
        }
    return payload


def load_payload(path) -> dict:
    """Read a BENCH payload; raises ValueError on a malformed file."""
    payload = json.loads(Path(path).read_text())
    if not isinstance(payload, dict) or "cold" not in payload:
        raise ValueError("not a BENCH payload (missing the 'cold' phase)")
    return payload


def compare_payloads(
    current: dict, baseline: dict, *, tolerance: float = 0.2
) -> tuple[bool, list[str]]:
    """Diff a fresh payload against a committed baseline.

    The gate is the **cold** wall time: a regression beyond ``tolerance``
    (relative) fails.  Warm-time drift and counter changes are reported but
    advisory — counters legitimately move when the pipeline changes, and the
    committed payload is refreshed in the same commit that moves them.
    """
    messages: list[str] = []
    ok = True
    base_cold_phase = baseline.get("cold")
    if not isinstance(base_cold_phase, dict) or "wall_seconds" not in base_cold_phase:
        raise ValueError(
            "baseline payload records no cold wall time "
            "(missing 'cold.wall_seconds'); re-record it with `repro bench --output`"
        )
    base_cold = float(base_cold_phase["wall_seconds"])
    cur_cold = float(current["cold"]["wall_seconds"])
    budget = base_cold * (1.0 + tolerance)
    delta = (cur_cold - base_cold) / base_cold if base_cold > 0 else 0.0
    verdict = "ok" if cur_cold <= budget else "REGRESSION"
    messages.append(
        f"cold wall: {cur_cold:.3f}s vs baseline {base_cold:.3f}s "
        f"({delta:+.1%}, tolerance {tolerance:.0%}) — {verdict}"
    )
    if cur_cold > budget:
        ok = False
    base_warm_phase = baseline.get("warm")
    base_warm = (
        base_warm_phase.get("wall_seconds")
        if isinstance(base_warm_phase, dict)
        else None
    )
    cur_warm = current.get("warm", {}).get("wall_seconds")
    if base_warm is None:
        # a degraded but legal baseline (e.g. hand-trimmed, or from a tool
        # version without a warm phase): say so instead of KeyError-ing
        messages.append(
            "baseline records no warm wall time (no 'warm.wall_seconds' field); "
            "warm drift not compared"
        )
    elif cur_warm is not None:
        messages.append(
            f"warm wall: {float(cur_warm):.3f}s vs baseline {float(base_warm):.3f}s (advisory)"
        )
    base_counters = baseline["cold"].get("counters", {})
    cur_counters = current["cold"].get("counters", {})
    moved = {
        key: (base_counters[key], cur_counters[key])
        for key in sorted(set(base_counters) & set(cur_counters))
        if base_counters[key] != cur_counters[key]
    }
    if moved:
        rendered = ", ".join(f"{k}: {a} -> {b}" for k, (a, b) in moved.items())
        messages.append(f"counters moved (advisory): {rendered}")
    else:
        messages.append("counters: identical to baseline")
    return ok, messages


def summarize(payload: dict) -> str:
    """A short human rendering of one payload (printed by ``repro bench``)."""
    cold, warm = payload["cold"], payload["warm"]
    counters = cold["counters"]
    lines = [
        f"bench ({payload['corpus']} corpus, best of {payload['runs']}):",
        f"  cold: {cold['wall_seconds']:.3f}s  "
        f"(verified={cold['all_verified']}, negatives rejected={cold['all_negatives_rejected']})",
        f"  warm: {warm['wall_seconds']:.3f}s  (store hits={warm['counters']['store_hits']})",
        f"  obligations={counters['obligations']}  #SAT={counters['smt_queries']}  "
        f"alphabet builds={counters['alphabet_builds']}  "
        f"memo hits={counters['alphabet_memo_hits']}  prod states={counters['prod_states']}",
    ]
    if "derivative_cache_hits" in counters:
        lines.append(
            f"  caches: derivative {counters['derivative_cache_hits']} hits / "
            f"{counters.get('derivative_cache_misses', 0)} misses "
            f"({counters.get('derivative_cache_evictions', 0)} evictions)  "
            f"alphabet memo {counters.get('alphabet_memo_replays', 0)} replays / "
            f"{counters.get('alphabet_memo_builds', 0)} builds "
            f"({counters.get('alphabet_memo_evictions', 0)} evictions)"
        )
    groups = cold.get("batch_groups")
    if groups:
        lines.append(
            f"  batch: {groups['groups']} groups over "
            f"{groups['grouped_obligations']} obligations  "
            f"queries {groups['queries_executed']} executed vs "
            f"{groups['queries_billed']} billed  "
            f"(multi-member strictly fewer: {groups['multi_groups_strictly_fewer']})"
        )
    ab = payload.get("ab")
    if ab:
        lines.append(
            f"  A/B {ab['discharge']}: cold {ab['cold']['wall_seconds']:.3f}s  "
            f"deterministic tables identical={ab['tables_identical']}"
        )
    return "\n".join(lines)
