"""Micro-benchmarks for the two engines behind the type checker.

These correspond to the per-query cost components t_SAT and t_FA⊆ of the
paper's tables: individual SMT validity queries (with method-predicate axiom
instantiation) and individual symbolic-automata inclusion checks.
"""

from repro import smt
from repro.smt.sorts import BYTES, ELEM, PATH
from repro.libraries.filelib import file_axioms, is_del, is_dir, parent_fn
from repro.libraries.setlib import make_set
from repro.sfa import symbolic as S
from repro.sfa.inclusion import InclusionChecker


def test_smt_validity_with_axioms(benchmark):
    solver = smt.Solver(axioms=file_axioms())
    stored = smt.declare("mb_stored", [PATH], BYTES)
    p = smt.var("mb_p", PATH)

    goal = smt.implies(
        smt.apply(is_dir, smt.apply(stored, smt.apply(parent_fn, p))),
        smt.not_(smt.apply(is_del, smt.apply(stored, smt.apply(parent_fn, p)))),
    )

    def run():
        assert solver.is_valid(goal)
        return solver.stats.queries

    benchmark(run)


def test_smt_unsat_core_query(benchmark):
    solver = smt.Solver(axioms=file_axioms())
    b = smt.var("mb_b", BYTES)
    conflict = smt.and_(smt.apply(is_dir, b), smt.apply(is_del, b))

    def run():
        assert not solver.is_satisfiable(conflict)

    benchmark(run)


def test_sfa_inclusion_insert_once(benchmark):
    library = make_set(ELEM)
    insert = library.operators["insert"]
    el = smt.var("mb_el", ELEM)
    x = smt.var("mb_x", ELEM)
    insert_el = S.event_pinned(insert, {"x": el})
    invariant = S.globally(S.implies(insert_el, S.next_(S.not_(S.eventually(insert_el)))))
    fresh = S.and_(invariant, S.not_(S.eventually(S.event_pinned(insert, {"x": x}))))
    effect = S.and_(S.event_pinned(insert, {"x": x}), S.last())
    lhs = S.concat(fresh, effect)

    def run():
        checker = InclusionChecker(smt.Solver(), library.operators)
        assert checker.check([], lhs, invariant)
        return checker.stats.average_transitions

    benchmark(run)


def test_sfa_noninclusion_with_counterexample(benchmark):
    library = make_set(ELEM)
    insert = library.operators["insert"]
    el = smt.var("mb_el2", ELEM)
    x = smt.var("mb_x2", ELEM)
    insert_el = S.event_pinned(insert, {"x": el})
    invariant = S.globally(S.implies(insert_el, S.next_(S.not_(S.eventually(insert_el)))))
    effect = S.and_(S.event_pinned(insert, {"x": x}), S.last())
    lhs = S.concat(invariant, effect)  # no freshness check: not included

    def run():
        checker = InclusionChecker(smt.Solver(), library.operators)
        result = checker.check_detailed([], lhs, invariant)
        assert not result.included and result.counterexample
        return result

    benchmark(run)
