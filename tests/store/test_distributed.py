"""Distributed discharge end-to-end: coordinator + server + pulling workers.

The determinism acceptance test mirrors ``test_shard.py`` — the dynamic
lease-queue partition, like the static hash partition, must never change a
table — and the fault-injection suite proves the lease protocol's claims:
a worker killed mid-lease loses no obligations and duplicates no records,
and a coordinator killed mid-drain resumes from the store (completed work
stays warm).

Everything runs in one process tree: the store server on a loopback
thread, local workers forked exactly as ``--local-workers`` does — plus one
*spawned* fleet, because a fresh interpreter (a real ``repro worker``
process) shares none of the coordinator's interned state and is the only
way to regression-test the worker's warmup walk.
"""

import multiprocessing
import os
import threading
import time
from dataclasses import replace

import pytest

from repro.engine.dispatch import DispatchError, run_distributed_evaluation
from repro.engine.worker import ENV_WORKER_CRASH, run_worker
from repro.evaluation.runner import run_benchmark, run_evaluation
from repro.evaluation.tables import report_json, table1, table3, table4
from repro.store.obligation_store import ObligationStore
from repro.store.server import StoreHTTPServer, StoreService
from repro.suite.registry import benchmark_by_key
from repro.typecheck.checker import CheckerConfig


@pytest.fixture
def server(store_path):
    service = StoreService(store_path)
    httpd = StoreHTTPServer(("127.0.0.1", 0), service)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    yield httpd
    httpd.shutdown()
    thread.join()
    httpd.server_close()
    service.close()


def _subset():
    return [benchmark_by_key("Set/KVStore"), benchmark_by_key("Stack/KVStore")]


def _verdicts(report):
    return [
        (stats.adt, result.method, result.verified, result.error)
        for stats in report.adt_stats
        for result in stats.method_results
    ] + [
        (negative.benchmark, negative.variant, negative.rejected)
        for negative in report.negative_results
    ]


def _collect_and_enqueue(store, benchmarks, dispatch):
    """The coordinator's phase 1, by hand: report misses, enqueue them."""
    items = []
    for benchmark in benchmarks:
        def sink(env, digest, hint, estimate, _bench=benchmark.key):
            items.append({
                "env": env or "",
                "fp": digest,
                "bench": _bench,
                "cost": hint if hint is not None else float(estimate),
                "measured": hint is not None,
            })
        config = replace(CheckerConfig(), collect_sink=sink)
        run_benchmark(benchmark, config=config, store=store)
    store.backend.enqueue(items, dispatch)
    return items


# -- determinism -------------------------------------------------------------------


def test_distributed_run_matches_serial_byte_identical(server):
    serial = run_evaluation(_subset())

    store = ObligationStore(server.url)
    report = run_distributed_evaluation(
        store,
        benchmarks=_subset(),
        local_workers=2,
        batch=4,
        ttl=30.0,
        drain_timeout=300.0,
        poll=0.1,
    )

    assert _verdicts(report) == _verdicts(serial)
    for render in (table1, table3, table4):
        assert render(report, deterministic=True) == render(serial, deterministic=True)

    dispatch = report.dispatch
    assert dispatch is not None
    assert dispatch["cold_obligations"] > 0
    # collect reports miss *occurrences* (a digest emitted twice is reported
    # twice — skipped obligations are never memoised); the server dedupes
    assert dispatch["enqueued"] + dispatch["requeued"] == dispatch["cold_obligations"]
    assert dispatch["queue"]["completed"] == dispatch["enqueued"], (
        "the fleet, not the coordinator, discharged every cold obligation"
    )
    # the provenance rides into the JSON report for postmortems
    assert report_json(report)["dispatch"]["dispatch"] == dispatch["dispatch"]


def test_fresh_process_workers_match_serial_byte_identical(server):
    """Spawned workers (fresh interpreters, like real ``repro worker``
    processes) must reproduce serial solver-effort columns on the full fast
    corpus.  Forked workers inherit the coordinator's interned terms and SFA
    compile cache, which is exactly what steers #SAT/#Confl — only a spawn
    exercises the warmup walk that a fresh process needs to match serial."""
    serial = run_evaluation(include_slow=False)

    context = multiprocessing.get_context("spawn")
    workers = [
        context.Process(
            target=run_worker,
            args=(server.url,),
            kwargs={"batch": 4, "ttl": 30.0, "poll": 0.2, "idle_exit": 150},
        )
        for _ in range(2)
    ]
    for worker in workers:
        worker.start()
    try:
        store = ObligationStore(server.url)
        report = run_distributed_evaluation(
            store,
            include_slow=False,
            local_workers=0,
            batch=4,
            ttl=30.0,
            drain_timeout=300.0,
            poll=0.1,
        )
    finally:
        for worker in workers:
            worker.join(timeout=120)
            if worker.is_alive():  # pragma: no cover - defensive cleanup
                worker.terminate()

    assert _verdicts(report) == _verdicts(serial)
    for render in (table1, table3, table4):
        assert render(report, deterministic=True) == render(serial, deterministic=True)
    assert report.dispatch["queue"]["completed"] == report.dispatch["enqueued"], (
        "the spawned fleet, not the coordinator, discharged every cold obligation"
    )


def test_distributed_requires_a_store_server(store_path):
    with pytest.raises(ValueError, match="server"):
        run_distributed_evaluation(ObligationStore(store_path))


# -- fault injection ---------------------------------------------------------------


def _crashing_worker(url):
    run_worker(url, batch=4, ttl=1.0, poll=0.05, idle_exit=2)


def test_a_worker_killed_mid_lease_loses_nothing(server, monkeypatch):
    """The dead worker's lease expires, its items are stolen, and the store
    ends with exactly one record per obligation — zero lost, zero doubled."""
    bench = [benchmark_by_key("Set/KVStore")]
    store = ObligationStore(server.url)
    items = _collect_and_enqueue(store, bench, "d-crash")
    # the collect walk reports occurrences; the queue holds unique (env, fp)
    unique = {(item["env"], item["fp"]) for item in items}
    assert unique
    store.backend.close()  # no socket across fork

    monkeypatch.setenv(ENV_WORKER_CRASH, "lease")
    context = multiprocessing.get_context("fork")
    doomed = context.Process(target=_crashing_worker, args=(server.url,))
    doomed.start()
    doomed.join(timeout=60)
    assert doomed.exitcode == 9, "the fault hook must fire after the first lease"
    monkeypatch.delenv(ENV_WORKER_CRASH)

    # the doomed worker died holding a lease on the most expensive items;
    # once its 1s ttl passes, a healthy worker steals and finishes them
    time.sleep(1.1)
    stats = run_worker(server.url, batch=4, ttl=10.0, poll=0.2, idle_exit=3)
    assert stats.items == len(unique), "every obligation ran on the healthy worker"

    status = server.service.queue.status()
    assert status["remaining"] == 0
    assert status["counters"]["reclaimed"] >= 1, "stealing actually happened"
    assert status["counters"]["completed"] == len(unique)

    state = server.service.backend.load()
    assert state.skipped == 0
    recorded = {(entry.env, entry.fp) for entry in state.entries.values()}
    assert recorded == unique
    assert len(state.entries) == len(unique), "one record per obligation, exactly"


def test_a_coordinator_killed_mid_drain_resumes_from_the_store(server):
    """Re-dispatch after a partial drain: completed items are warm hits, only
    the remainder is re-enqueued, and the tables still match serial."""
    benchmarks = _subset()
    serial = run_evaluation(benchmarks)

    first_session = ObligationStore(server.url)
    items = _collect_and_enqueue(first_session, benchmarks, "d-doomed")
    # one bounded worker makes partial progress before the coordinator "dies"
    partial = run_worker(server.url, batch=4, ttl=30.0, max_batches=1)
    assert 0 < partial.items < len(items)
    del first_session  # the dead coordinator's session state is gone

    # the re-dispatch: a fresh session recomputes the misses from the store
    store = ObligationStore(server.url)
    report = run_distributed_evaluation(
        store,
        benchmarks=benchmarks,
        local_workers=1,
        batch=4,
        ttl=30.0,
        drain_timeout=300.0,
        poll=0.1,
    )
    assert 0 < report.dispatch["cold_obligations"] < len(items), (
        "completed obligations are warm hits — only the remainder re-dispatches"
    )
    # the first dispatch's still-queued items are re-tagged, not duplicated
    assert report.dispatch["enqueued"] == 0
    assert _verdicts(report) == _verdicts(serial)
    for render in (table1, table3, table4):
        assert render(report, deterministic=True) == render(serial, deterministic=True)
    assert server.service.queue.status()["remaining"] == 0


def test_drain_timeout_surfaces_as_dispatch_error(server):
    """No workers, a queued item, a tiny timeout: the coordinator reports
    the stall instead of spinning forever (completed work stays durable)."""
    store = ObligationStore(server.url)
    with pytest.raises(DispatchError, match="re-dispatch to resume"):
        run_distributed_evaluation(
            store,
            benchmarks=[benchmark_by_key("Set/KVStore")],
            local_workers=0,
            drain_timeout=0.5,
            poll=0.05,
        )
