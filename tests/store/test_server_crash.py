"""Crash recovery: kill the server mid-protocol, restart it, lose nothing.

Each scenario runs ``repro store serve`` as a real subprocess with the
``REPRO_STORE_SERVE_CRASH`` fault injection armed, so the process dies with
``os._exit`` at an exact protocol point — before a write persists, after it
persists but before the response leaves, and between a client's append and
its commit_run.  A restarted server (same port, no fault) then absorbs the
client's retries.  The acceptance bar in every case: the client call returns
success, and the store holds exactly the expected entries and run records —
zero lost, zero duplicated, zero torn.
"""

import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.store.backends import StoreEntry, open_backend
from repro.store.remote import (
    ENV_RPC_BACKOFF,
    ENV_RPC_RETRIES,
    ENV_RPC_TIMEOUT,
    RemoteStoreBackend,
)
from repro.store.server import ENV_SERVE_CRASH

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")


def _entry(fp):
    return StoreEntry(
        env="crash-env",
        fp=fp,
        included=True,
        solver_stats={"queries": 1},
        scope="Set/KVStore",
        method="insert",
        spec="s1",
        library="l1",
    )


def _spawn_server(store_path, tmp_path, *, port=0, crash=""):
    """Start ``repro store serve`` and wait until its ready-file appears."""
    ready = tmp_path / f"ready-{port}-{crash.replace(':', '-')}-{time.time_ns()}"
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    if crash:
        env[ENV_SERVE_CRASH] = crash
    else:
        env.pop(ENV_SERVE_CRASH, None)
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "store", "serve",
            "--store", str(store_path),
            "--port", str(port),
            "--ready-file", str(ready),
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        if ready.exists() and ready.read_text().strip():
            return process, ready.read_text().strip()
        if process.poll() is not None:
            raise RuntimeError(f"server died at startup (exit {process.returncode})")
        time.sleep(0.02)
    process.kill()
    raise RuntimeError("server never wrote its ready file")


@pytest.fixture
def patient_client(monkeypatch):
    """RPC knobs generous enough to ride out a full server restart."""
    monkeypatch.setenv(ENV_RPC_RETRIES, "60")
    monkeypatch.setenv(ENV_RPC_BACKOFF, "0.05")
    monkeypatch.setenv(ENV_RPC_TIMEOUT, "5")
    return RemoteStoreBackend


def _crash_and_restart(store_path, tmp_path, crash, call):
    """Run ``call(client)`` against a crashing server; restart; return result.

    The client call runs in a worker thread (its retry loop spans the
    outage); the main thread watches the armed server die and brings up the
    replacement on the same port.
    """
    process, url = _spawn_server(store_path, tmp_path, crash=crash)
    port = int(url.rsplit(":", 1)[1])
    client = RemoteStoreBackend(url)
    client.handshake()  # before the fault trips: the server is genuinely up

    outcome = {}

    def run_call():
        try:
            outcome["result"] = call(client)
        except BaseException as exc:  # surfaced to the main thread below
            outcome["error"] = exc

    worker = threading.Thread(target=run_call)
    worker.start()
    assert process.wait(timeout=30) == 3, "the fault injection must os._exit(3)"

    replacement = None
    try:
        # the port just freed; a bind can still race the kernel briefly
        for attempt in range(20):
            try:
                replacement, _ = _spawn_server(store_path, tmp_path, port=port)
                break
            except RuntimeError:
                time.sleep(0.1)
        else:
            raise RuntimeError(f"could not rebind port {port}")
        worker.join(timeout=60)
        assert not worker.is_alive(), "the client retried forever"
        if "error" in outcome:
            raise outcome["error"]
        return outcome["result"]
    finally:
        if replacement is not None:
            replacement.send_signal(signal.SIGTERM)
            replacement.wait(timeout=15)


def _disk_state(store_path):
    backend = open_backend(store_path)
    try:
        return backend.load(wipe_mismatch=False)
    finally:
        backend.close()


def test_crash_before_the_append_persists(store_path, tmp_path, patient_client):
    """The write was lost with the server: the retry must land it."""
    _crash_and_restart(
        store_path,
        tmp_path,
        "append:before",
        lambda client: client.append_entries([_entry("f1"), _entry("f2")]),
    )
    state = _disk_state(store_path)
    assert set(state.entries) == {("crash-env", "f1"), ("crash-env", "f2")}
    assert state.skipped == 0


def test_crash_after_the_append_persists(store_path, tmp_path, patient_client):
    """Only the *response* was lost: the keyed retry must not double-apply."""
    _crash_and_restart(
        store_path,
        tmp_path,
        "append:after",
        lambda client: client.append_entries([_entry("f1")]),
    )
    state = _disk_state(store_path)
    assert set(state.entries) == {("crash-env", "f1")}
    assert state.skipped == 0


def test_crash_between_append_and_commit_run(store_path, tmp_path, patient_client):
    """Kill the server after the entries land but before the run commits."""

    def append_then_commit(client):
        client.append_entries([_entry("f1")])  # crash arms on commit_run only
        return client.commit_run(["crash-env:f1"])

    run = _crash_and_restart(
        store_path, tmp_path, "commit_run:before", append_then_commit
    )
    assert run == 1
    state = _disk_state(store_path)
    assert set(state.entries) == {("crash-env", "f1")}, "the append survived the crash"
    assert [record["run"] for record in state.runs] == [1], "exactly one run record"
    assert state.runs[0]["touched"] == ["crash-env:f1"]
    assert state.skipped == 0


def test_a_warm_client_after_recovery_sees_everything(
    store_path, tmp_path, patient_client
):
    """End to end: recover from a mid-append crash, then warm-read it all."""
    _crash_and_restart(
        store_path,
        tmp_path,
        "append:before",
        lambda client: client.append_entries([_entry("f1")]),
    )
    process, url = _spawn_server(store_path, tmp_path)
    try:
        from repro.store.obligation_store import ObligationStore

        warm = ObligationStore(url)
        warm.prefetch("crash-env", ["f1"])
        assert warm.lookup("crash-env", "f1") is not None
        assert warm.summary()["skipped"] == 0
    finally:
        process.send_signal(signal.SIGTERM)
        process.wait(timeout=15)
