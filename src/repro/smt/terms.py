"""Hash-consed terms and formulas for the SMT substrate.

Terms form a single algebra covering both first-order terms (variables,
constants, uninterpreted function applications, linear arithmetic) and
formulas (boolean connectives, comparisons, universally quantified axioms).
Every node is interned, so structural equality is pointer equality and terms
can be freely used as dictionary keys.

The smart constructors perform light normalisation (flattening of ``and`` /
``or``, absorption of ``true`` / ``false``, double-negation elimination,
constant folding on ground arithmetic) which keeps downstream components —
CNF conversion, literal collection for automata minterms — small and
predictable.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional, Sequence

from .sorts import BOOL, INT, Sort

# ---------------------------------------------------------------------------
# Function declarations
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FuncDecl:
    """An uninterpreted function or method-predicate symbol."""

    name: str
    arg_sorts: tuple[Sort, ...]
    result_sort: Sort
    is_method_predicate: bool = False

    def __repr__(self) -> str:  # pragma: no cover - trivial
        args = ", ".join(s.name for s in self.arg_sorts)
        return f"{self.name}({args}) -> {self.result_sort.name}"

    @property
    def arity(self) -> int:
        return len(self.arg_sorts)


_DECL_CACHE: dict[tuple[str, tuple[Sort, ...], Sort], FuncDecl] = {}


def declare(
    name: str,
    arg_sorts: Sequence[Sort],
    result_sort: Sort,
    *,
    method_predicate: bool = False,
) -> FuncDecl:
    """Declare (or fetch) a function symbol.

    Redeclaration with an incompatible signature raises ``ValueError``.
    """
    key = (name, tuple(arg_sorts), result_sort)
    for (other_name, other_args, other_res), decl in _DECL_CACHE.items():
        if other_name == name and (other_args, other_res) != (key[1], key[2]):
            raise ValueError(
                f"function {name} already declared with a different signature"
            )
    existing = _DECL_CACHE.get(key)
    if existing is not None:
        return existing
    decl = FuncDecl(name, tuple(arg_sorts), result_sort, method_predicate)
    _DECL_CACHE[key] = decl
    return decl


# ---------------------------------------------------------------------------
# Terms
# ---------------------------------------------------------------------------

# Node kinds.  Formula-valued kinds always have sort BOOL.
VAR = "var"
INT_CONST = "int"
BOOL_CONST = "bool"
DATA_CONST = "data"  # named constant of an uninterpreted sort
APP = "app"
NOT = "not"
AND = "and"
OR = "or"
IMPLIES = "implies"
IFF = "iff"
EQ = "eq"
LT = "lt"
LE = "le"
ADD = "add"
SUB = "sub"
NEG = "neg"
MUL = "mul"  # multiplication by an integer literal (kept linear)
FORALL = "forall"

_ARITH_KINDS = {ADD, SUB, NEG, MUL, INT_CONST}
_CONNECTIVES = {NOT, AND, OR, IMPLIES, IFF}


class Term:
    """An interned term.  Instances must be created via the constructors below."""

    __slots__ = ("kind", "sort", "children", "payload", "_id", "__weakref__")

    _counter = itertools.count()

    def __init__(self, kind: str, sort: Sort, children: tuple["Term", ...], payload):
        self.kind = kind
        self.sort = sort
        self.children = children
        self.payload = payload
        self._id = next(Term._counter)

    # Interning guarantees pointer equality for structurally equal terms, so
    # the default identity-based __eq__/__hash__ are what we want.

    @property
    def term_id(self) -> int:
        return self._id

    # -- convenience observers -------------------------------------------------
    @property
    def is_true(self) -> bool:
        return self.kind == BOOL_CONST and self.payload is True

    @property
    def is_false(self) -> bool:
        return self.kind == BOOL_CONST and self.payload is False

    @property
    def is_formula(self) -> bool:
        return self.sort is BOOL

    @property
    def name(self) -> str:
        if self.kind == VAR or self.kind == DATA_CONST:
            return self.payload[0]
        if self.kind == APP:
            return self.payload.name
        raise AttributeError(f"term of kind {self.kind} has no name")

    @property
    def decl(self) -> FuncDecl:
        if self.kind != APP:
            raise AttributeError("not an application")
        return self.payload

    @property
    def value(self):
        if self.kind in (INT_CONST, BOOL_CONST):
            return self.payload
        raise AttributeError("not a literal constant")

    def __repr__(self) -> str:
        return pretty(self)

    # -- traversal ---------------------------------------------------------------
    def walk(self) -> Iterator["Term"]:
        """Pre-order traversal (descends under quantifiers)."""
        stack = [self]
        seen: set[int] = set()
        while stack:
            node = stack.pop()
            if node._id in seen:
                continue
            seen.add(node._id)
            yield node
            stack.extend(node.children)

    def free_vars(self) -> set["Term"]:
        """All free variables in the term (quantified variables are excluded)."""
        bound: set[Term] = set()
        out: set[Term] = set()
        _free_vars(self, bound, out)
        return out


def _free_vars(term: Term, bound: set[Term], out: set[Term]) -> None:
    if term.kind == VAR:
        if term not in bound:
            out.add(term)
        return
    if term.kind == FORALL:
        binders = set(term.payload)
        newly = binders - bound
        bound |= newly
        _free_vars(term.children[0], bound, out)
        bound -= newly
        return
    for child in term.children:
        _free_vars(child, bound, out)


_TERM_CACHE: dict[tuple, Term] = {}


def _intern(kind: str, sort: Sort, children: tuple[Term, ...], payload) -> Term:
    if kind == APP:
        payload_key: object = payload
    elif kind == FORALL:
        payload_key = tuple(v._id for v in payload)
    else:
        payload_key = payload
    key = (kind, sort.name, tuple(c._id for c in children), payload_key)
    existing = _TERM_CACHE.get(key)
    if existing is not None:
        return existing
    term = Term(kind, sort, children, payload)
    _TERM_CACHE[key] = term
    return term


# ---------------------------------------------------------------------------
# Constructors: atoms and constants
# ---------------------------------------------------------------------------

TRUE = _intern(BOOL_CONST, BOOL, (), True)
FALSE = _intern(BOOL_CONST, BOOL, (), False)


def var(name: str, sort: Sort) -> Term:
    """A free variable.  Variables with the same name and sort are identical."""
    return _intern(VAR, sort, (), (name, sort.name))


def int_const(value: int) -> Term:
    return _intern(INT_CONST, INT, (), int(value))


def bool_const(value: bool) -> Term:
    return TRUE if value else FALSE


def data_const(name: str, sort: Sort) -> Term:
    """A named constant of an uninterpreted sort (e.g. the root path)."""
    if not sort.is_uninterpreted:
        raise ValueError("data_const requires an uninterpreted sort")
    return _intern(DATA_CONST, sort, (), (name, sort.name))


def apply(decl: FuncDecl, *args: Term) -> Term:
    if len(args) != decl.arity:
        raise ValueError(f"{decl.name} expects {decl.arity} arguments, got {len(args)}")
    for arg, expected in zip(args, decl.arg_sorts):
        if arg.sort is not expected:
            raise ValueError(
                f"argument {arg!r} of {decl.name} has sort {arg.sort.name}, "
                f"expected {expected.name}"
            )
    return _intern(APP, decl.result_sort, tuple(args), decl)


# ---------------------------------------------------------------------------
# Constructors: boolean connectives
# ---------------------------------------------------------------------------


def _require_formula(*terms: Term) -> None:
    for t in terms:
        if not t.is_formula:
            raise ValueError(f"expected a formula, got {t!r} of sort {t.sort.name}")


def not_(phi: Term) -> Term:
    _require_formula(phi)
    if phi.is_true:
        return FALSE
    if phi.is_false:
        return TRUE
    if phi.kind == NOT:
        return phi.children[0]
    return _intern(NOT, BOOL, (phi,), None)


def and_(*phis: Term) -> Term:
    _require_formula(*phis)
    flat: list[Term] = []
    seen: set[int] = set()
    for phi in phis:
        parts = phi.children if phi.kind == AND else (phi,)
        for part in parts:
            if part.is_false:
                return FALSE
            if part.is_true or part._id in seen:
                continue
            seen.add(part._id)
            flat.append(part)
    if not flat:
        return TRUE
    if len(flat) == 1:
        return flat[0]
    flat.sort(key=lambda t: t._id)
    return _intern(AND, BOOL, tuple(flat), None)


def or_(*phis: Term) -> Term:
    _require_formula(*phis)
    flat: list[Term] = []
    seen: set[int] = set()
    for phi in phis:
        parts = phi.children if phi.kind == OR else (phi,)
        for part in parts:
            if part.is_true:
                return TRUE
            if part.is_false or part._id in seen:
                continue
            seen.add(part._id)
            flat.append(part)
    if not flat:
        return FALSE
    if len(flat) == 1:
        return flat[0]
    flat.sort(key=lambda t: t._id)
    return _intern(OR, BOOL, tuple(flat), None)


def implies(lhs: Term, rhs: Term) -> Term:
    _require_formula(lhs, rhs)
    if lhs.is_true:
        return rhs
    if lhs.is_false or rhs.is_true:
        return TRUE
    if rhs.is_false:
        return not_(lhs)
    return _intern(IMPLIES, BOOL, (lhs, rhs), None)


def iff(lhs: Term, rhs: Term) -> Term:
    _require_formula(lhs, rhs)
    if lhs is rhs:
        return TRUE
    if lhs.is_true:
        return rhs
    if rhs.is_true:
        return lhs
    if lhs.is_false:
        return not_(rhs)
    if rhs.is_false:
        return not_(lhs)
    return _intern(IFF, BOOL, (lhs, rhs), None)


def forall(variables: Sequence[Term], body: Term) -> Term:
    _require_formula(body)
    for v in variables:
        if v.kind != VAR:
            raise ValueError("forall binders must be variables")
    if not variables:
        return body
    return _intern(FORALL, BOOL, (body,), tuple(variables))


# ---------------------------------------------------------------------------
# Constructors: atoms over terms
# ---------------------------------------------------------------------------


def eq(lhs: Term, rhs: Term) -> Term:
    if lhs.sort is not rhs.sort:
        raise ValueError(
            f"cannot equate terms of different sorts {lhs.sort.name} / {rhs.sort.name}"
        )
    if lhs is rhs:
        return TRUE
    if lhs.kind == INT_CONST and rhs.kind == INT_CONST:
        return bool_const(lhs.payload == rhs.payload)
    if lhs.kind == BOOL_CONST and rhs.kind == BOOL_CONST:
        return bool_const(lhs.payload == rhs.payload)
    if lhs.kind == DATA_CONST and rhs.kind == DATA_CONST:
        return bool_const(lhs.payload == rhs.payload)
    if lhs.is_formula and rhs.is_formula:
        return iff(lhs, rhs)
    # orient for canonicity
    if rhs._id < lhs._id:
        lhs, rhs = rhs, lhs
    return _intern(EQ, BOOL, (lhs, rhs), None)


def ne(lhs: Term, rhs: Term) -> Term:
    return not_(eq(lhs, rhs))


def _require_int(*terms: Term) -> None:
    for t in terms:
        if t.sort is not INT:
            raise ValueError(f"expected an Int term, got {t!r}")


def lt(lhs: Term, rhs: Term) -> Term:
    _require_int(lhs, rhs)
    if lhs.kind == INT_CONST and rhs.kind == INT_CONST:
        return bool_const(lhs.payload < rhs.payload)
    return _intern(LT, BOOL, (lhs, rhs), None)


def le(lhs: Term, rhs: Term) -> Term:
    _require_int(lhs, rhs)
    if lhs is rhs:
        return TRUE
    if lhs.kind == INT_CONST and rhs.kind == INT_CONST:
        return bool_const(lhs.payload <= rhs.payload)
    return _intern(LE, BOOL, (lhs, rhs), None)


def gt(lhs: Term, rhs: Term) -> Term:
    return lt(rhs, lhs)


def ge(lhs: Term, rhs: Term) -> Term:
    return le(rhs, lhs)


def add(*terms: Term) -> Term:
    _require_int(*terms)
    const = 0
    rest: list[Term] = []
    for t in terms:
        if t.kind == INT_CONST:
            const += t.payload
        else:
            rest.append(t)
    if not rest:
        return int_const(const)
    parts = tuple(rest + ([int_const(const)] if const else []))
    if len(parts) == 1:
        return parts[0]
    return _intern(ADD, INT, parts, None)


def sub(lhs: Term, rhs: Term) -> Term:
    _require_int(lhs, rhs)
    if lhs.kind == INT_CONST and rhs.kind == INT_CONST:
        return int_const(lhs.payload - rhs.payload)
    return _intern(SUB, INT, (lhs, rhs), None)


def neg(term: Term) -> Term:
    _require_int(term)
    if term.kind == INT_CONST:
        return int_const(-term.payload)
    return _intern(NEG, INT, (term,), None)


def mul(coeff: int, term: Term) -> Term:
    _require_int(term)
    if coeff == 0:
        return int_const(0)
    if coeff == 1:
        return term
    if term.kind == INT_CONST:
        return int_const(coeff * term.payload)
    return _intern(MUL, INT, (term,), coeff)


# ---------------------------------------------------------------------------
# Substitution and pretty printing
# ---------------------------------------------------------------------------


def substitute(term: Term, mapping: dict[Term, Term]) -> Term:
    """Simultaneously substitute variables (or arbitrary subterms) in ``term``."""
    if not mapping:
        return term
    cache: dict[int, Term] = {}

    def go(node: Term) -> Term:
        hit = mapping.get(node)
        if hit is not None:
            return hit
        cached = cache.get(node._id)
        if cached is not None:
            return cached
        if not node.children:
            cache[node._id] = node
            return node
        new_children = tuple(go(c) for c in node.children)
        if all(a is b for a, b in zip(new_children, node.children)):
            result = node
        else:
            result = _rebuild(node, new_children)
        cache[node._id] = result
        return result

    return go(term)


def _rebuild(node: Term, children: tuple[Term, ...]) -> Term:
    kind = node.kind
    if kind == APP:
        return apply(node.payload, *children)
    if kind == NOT:
        return not_(children[0])
    if kind == AND:
        return and_(*children)
    if kind == OR:
        return or_(*children)
    if kind == IMPLIES:
        return implies(*children)
    if kind == IFF:
        return iff(*children)
    if kind == EQ:
        return eq(*children)
    if kind == LT:
        return lt(*children)
    if kind == LE:
        return le(*children)
    if kind == ADD:
        return add(*children)
    if kind == SUB:
        return sub(*children)
    if kind == NEG:
        return neg(children[0])
    if kind == MUL:
        return mul(node.payload, children[0])
    if kind == FORALL:
        return forall(node.payload, children[0])
    raise AssertionError(f"unexpected kind {kind}")


_INFIX = {EQ: "==", LT: "<", LE: "<=", ADD: "+", SUB: "-", IMPLIES: "==>", IFF: "<=>"}


def pretty(term: Term) -> str:
    kind = term.kind
    if kind == VAR or kind == DATA_CONST:
        return term.payload[0]
    if kind == INT_CONST:
        return str(term.payload)
    if kind == BOOL_CONST:
        return "true" if term.payload else "false"
    if kind == APP:
        if not term.children:
            return term.payload.name
        return f"{term.payload.name}({', '.join(pretty(c) for c in term.children)})"
    if kind == NOT:
        return f"!({pretty(term.children[0])})"
    if kind == AND:
        return "(" + " && ".join(pretty(c) for c in term.children) + ")"
    if kind == OR:
        return "(" + " || ".join(pretty(c) for c in term.children) + ")"
    if kind in _INFIX:
        lhs, rhs = term.children
        return f"({pretty(lhs)} {_INFIX[kind]} {pretty(rhs)})"
    if kind == NEG:
        return f"-({pretty(term.children[0])})"
    if kind == MUL:
        return f"{term.payload}*{pretty(term.children[0])}"
    if kind == FORALL:
        binders = ", ".join(v.payload[0] for v in term.payload)
        return f"(forall {binders}. {pretty(term.children[0])})"
    raise AssertionError(f"unexpected kind {kind}")


# ---------------------------------------------------------------------------
# Literal / atom utilities shared with the SFA minterm machinery
# ---------------------------------------------------------------------------


def is_atom(term: Term) -> bool:
    """An atom is a boolean term with no boolean connectives at the root."""
    return term.is_formula and term.kind not in _CONNECTIVES and term.kind != FORALL


def atoms(term: Term) -> set[Term]:
    """All atoms occurring in a (quantifier-free) formula."""
    out: set[Term] = set()

    def go(node: Term) -> None:
        if is_atom(node):
            if node.kind != BOOL_CONST:
                out.add(node)
            return
        if node.kind == FORALL:
            go(node.children[0])
            return
        for child in node.children:
            go(child)

    go(term)
    return out


def evaluate(term: Term, assignment: dict[Term, bool]) -> Optional[bool]:
    """Evaluate a formula under a (partial) truth assignment to its atoms.

    Returns ``None`` when the assignment does not determine the value.
    """
    if term.is_true:
        return True
    if term.is_false:
        return False
    if is_atom(term):
        return assignment.get(term)
    if term.kind == NOT:
        inner = evaluate(term.children[0], assignment)
        return None if inner is None else not inner
    if term.kind == AND:
        result: Optional[bool] = True
        for child in term.children:
            val = evaluate(child, assignment)
            if val is False:
                return False
            if val is None:
                result = None
        return result
    if term.kind == OR:
        result = False
        for child in term.children:
            val = evaluate(child, assignment)
            if val is True:
                return True
            if val is None:
                result = None
        return result
    if term.kind == IMPLIES:
        lhs = evaluate(term.children[0], assignment)
        rhs = evaluate(term.children[1], assignment)
        if lhs is False or rhs is True:
            return True
        if lhs is True and rhs is False:
            return False
        return None
    if term.kind == IFF:
        lhs = evaluate(term.children[0], assignment)
        rhs = evaluate(term.children[1], assignment)
        if lhs is None or rhs is None:
            return None
        return lhs == rhs
    raise ValueError(f"cannot evaluate {term!r}")
