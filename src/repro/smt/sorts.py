"""Sorts (types) for the SMT term language.

The fragment Marple needs is small: booleans, integers, and a family of
uninterpreted sorts used for opaque datatype payloads (paths, byte blobs,
set elements, graph nodes, characters, ...).  Sorts are interned so they can
be compared with ``is`` and used as dictionary keys cheaply.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Sort:
    """An SMT sort.  ``name`` uniquely identifies the sort."""

    name: str

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return self.name

    @property
    def is_bool(self) -> bool:
        return self.name == "Bool"

    @property
    def is_int(self) -> bool:
        return self.name == "Int"

    @property
    def is_uninterpreted(self) -> bool:
        return not (self.is_bool or self.is_int)


BOOL = Sort("Bool")
INT = Sort("Int")

_SORT_CACHE: dict[str, Sort] = {"Bool": BOOL, "Int": INT}


def sort(name: str) -> Sort:
    """Return the interned sort with the given name, creating it if needed."""
    existing = _SORT_CACHE.get(name)
    if existing is not None:
        return existing
    fresh = Sort(name)
    _SORT_CACHE[name] = fresh
    return fresh


def uninterpreted(name: str) -> Sort:
    """Declare (or fetch) an uninterpreted sort.

    ``Bool`` and ``Int`` are rejected so interpreted sorts cannot be shadowed.
    """
    if name in ("Bool", "Int"):
        raise ValueError(f"{name} is an interpreted sort")
    return sort(name)


# Sorts that appear throughout the benchmark suite.  Declaring them here keeps
# the rest of the code base free of stringly-typed sort names.
PATH = uninterpreted("Path")
BYTES = uninterpreted("Bytes")
ELEM = uninterpreted("Elem")
NODE = uninterpreted("Node")
CHAR = uninterpreted("Char")
ADDR = uninterpreted("Addr")
UNIT = uninterpreted("Unit")
