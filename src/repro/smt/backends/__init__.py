"""repro.smt.backends — pluggable SAT cores behind the lazy SMT loop.

The solver facade (:class:`repro.smt.solver.Solver`) is generic over the
propositional engine that answers its encoded queries.  A backend is any
object satisfying the :class:`SatBackend` protocol — the incremental
clause/solve surface the original DPLL core established:

=====================  ======================================================
``add_clause(s)``      incremental clause addition (DIMACS integer literals)
``ensure_vars(n)``     widen the variable universe
``num_clauses``        *externally added* clauses only — the lazy loop uses
                       it as a cursor when syncing new Tseitin/blocking
                       clauses, so learned clauses must not inflate it
``solve_partial(a)``   a partial model satisfying every clause (unassigned
                       variables absent) or ``None`` under assumptions ``a``
``solve(a)``           like ``solve_partial`` but totalised
``priority_vars``      variables that must be decided (hence assigned) first
``phase_hint``         preferred branch polarities; may be ignored
``stats_*``            decisions / propagations / conflicts / restarts
=====================  ======================================================

**Determinism contract.**  Given the same sequence of ``add_clause`` /
``solve`` calls, a backend must return the same answers *and the same
models* on every run — verdicts, witness traces and obligation-derived
counters all flow from it.  Which model a backend returns is its own
business (DPLL, CDCL and z3 legitimately differ, which is why the
solver-internal ``#SAT``/``#Confl`` counters are per-backend columns), but
the answer itself is semantics and must agree across backends — enforced by
the cross-backend differential and fuzzing suites
(``tests/smt/test_backend_diff.py``, ``tests/smt/test_backend_fuzz.py``).

Adding a backend: implement the protocol, register a zero-argument factory
in :data:`_FACTORIES` (gate availability like the z3 entry if it needs an
import), and the differential suite picks it up via
:func:`available_backends`.
"""

from __future__ import annotations

import os
from typing import Callable, Optional, Protocol, runtime_checkable

from .cdcl import CdclSolver
from .dpll import SatSolver
from .z3smt import Z3Backend, z3_available

#: Default backend when neither the caller nor ``REPRO_BACKEND`` says otherwise.
DEFAULT_BACKEND = "dpll"


@runtime_checkable
class SatBackend(Protocol):
    """The incremental SAT surface the lazy SMT loop is written against."""

    priority_vars: tuple[int, ...]
    phase_hint: dict[int, bool]
    stats_decisions: int
    stats_propagations: int
    stats_conflicts: int
    stats_restarts: int

    def add_clause(self, clause) -> None: ...

    def add_clauses(self, clauses) -> None: ...

    def ensure_vars(self, num_vars: int) -> None: ...

    @property
    def num_vars(self) -> int: ...

    @property
    def num_clauses(self) -> int: ...

    def solve(self, assumptions=()) -> Optional[dict[int, bool]]: ...

    def is_satisfiable(self, assumptions=()) -> bool: ...

    def solve_partial(self, assumptions=()) -> Optional[dict[int, bool]]: ...


#: backend id -> (factory, availability probe)
_FACTORIES: dict[str, tuple[Callable[[], SatBackend], Callable[[], bool]]] = {
    "dpll": (SatSolver, lambda: True),
    "cdcl": (CdclSolver, lambda: True),
    "z3": (Z3Backend, z3_available),
}


def known_backends() -> tuple[str, ...]:
    """Every registered backend id, available or not (CLI choices)."""
    return tuple(_FACTORIES)


def available_backends() -> tuple[str, ...]:
    """The backend ids whose dependencies are importable here."""
    return tuple(name for name, (_, probe) in _FACTORIES.items() if probe())


def backend_available(name: str) -> bool:
    entry = _FACTORIES.get(name)
    return entry is not None and entry[1]()


def resolve_backend(name: Optional[str] = None) -> str:
    """Normalise a backend id: explicit > ``REPRO_BACKEND`` > ``dpll``.

    Raises ``ValueError`` for unknown ids and for known-but-unavailable ones
    (e.g. ``z3`` without the package), so misconfiguration fails at
    construction time instead of deep inside a discharge.
    """
    resolved = name or os.environ.get("REPRO_BACKEND") or DEFAULT_BACKEND
    if resolved not in _FACTORIES:
        raise ValueError(
            f"unknown solver backend {resolved!r}; known: {', '.join(_FACTORIES)}"
        )
    if not backend_available(resolved):
        raise ValueError(
            f"solver backend {resolved!r} is not available in this environment "
            "(is its package installed?)"
        )
    return resolved


def make_sat_backend(name: Optional[str] = None) -> SatBackend:
    """Instantiate a fresh SAT core for ``name`` (resolved like above)."""
    factory, _ = _FACTORIES[resolve_backend(name)]
    return factory()


__all__ = [
    "DEFAULT_BACKEND",
    "SatBackend",
    "SatSolver",
    "CdclSolver",
    "Z3Backend",
    "available_backends",
    "backend_available",
    "known_backends",
    "make_sat_backend",
    "resolve_backend",
    "z3_available",
]
