"""Symbolic finite automata, written as symbolic LTL-on-finite-traces formulas.

This is the qualifier language of HATs (Fig. 4 of the paper):

    A, B ::= ⟨op x̄ = ν | φ⟩ | ⟨φ⟩ | ¬A | A ∧ A | A ∨ A | A ; A | ◯A | A U A

plus the derived forms ``♦A``, ``□A``, ``A ⟹ B`` and ``LAST``.  Formulas are
hash-consed, and the smart constructors normalise associative/commutative/
idempotent structure so the Brzozowski-style derivative construction in
:mod:`repro.sfa.derivatives` reaches a fixpoint on a small number of states.

Two internal constants extend the surface syntax:

* :data:`TOP` — the automaton accepting every trace (including the empty one),
* :data:`BOT` — the automaton accepting nothing.

They arise as derivatives of atoms and make the algebra closed under
differentiation.
"""

from __future__ import annotations

import itertools
from typing import Callable, Iterable, Mapping, Optional, Sequence

from .. import smt
from ..smt.terms import Term
from .events import Event, Trace
from .signatures import EventSignature

# Node kinds
K_TOP = "top"
K_BOT = "bot"
K_EVENT = "event"
K_GUARD = "guard"
K_NOT = "not"
K_AND = "and"
K_OR = "or"
K_CONCAT = "concat"
K_NEXT = "next"
K_UNTIL = "until"


class Sfa:
    """A hash-consed symbolic automaton formula."""

    __slots__ = ("kind", "children", "payload", "_id", "__weakref__")
    _counter = itertools.count()

    def __init__(self, kind: str, children: tuple["Sfa", ...], payload):
        self.kind = kind
        self.children = children
        self.payload = payload
        self._id = next(Sfa._counter)

    @property
    def sfa_id(self) -> int:
        return self._id

    # -- observers -------------------------------------------------------------------
    @property
    def operator(self) -> EventSignature:
        if self.kind != K_EVENT:
            raise AttributeError("not an event atom")
        return self.payload[0]

    @property
    def qualifier(self) -> Term:
        if self.kind == K_EVENT:
            return self.payload[1]
        if self.kind == K_GUARD:
            return self.payload
        raise AttributeError("not an atom")

    def __repr__(self) -> str:
        return pretty(self)

    def walk(self) -> Iterable["Sfa"]:
        stack = [self]
        seen: set[int] = set()
        while stack:
            node = stack.pop()
            if node._id in seen:
                continue
            seen.add(node._id)
            yield node
            stack.extend(node.children)

    def operators(self) -> set[EventSignature]:
        """All effectful operators mentioned by event atoms in this formula."""
        return {node.payload[0] for node in self.walk() if node.kind == K_EVENT}

    def context_vars(self) -> set[Term]:
        """Free variables of the qualifiers, excluding operator formals."""
        out: set[Term] = set()
        for node in self.walk():
            if node.kind == K_EVENT:
                signature, phi = node.payload
                out |= phi.free_vars() - set(signature.formals)
            elif node.kind == K_GUARD:
                out |= node.payload.free_vars()
        return out


_CACHE: dict[tuple, Sfa] = {}


def _intern(kind: str, children: tuple[Sfa, ...], payload) -> Sfa:
    if kind == K_EVENT:
        payload_key = (payload[0].name, payload[1].term_id)
    elif kind == K_GUARD:
        payload_key = payload.term_id
    else:
        payload_key = None
    key = (kind, tuple(c._id for c in children), payload_key)
    existing = _CACHE.get(key)
    if existing is not None:
        return existing
    node = Sfa(kind, children, payload)
    _CACHE[key] = node
    return node


TOP = _intern(K_TOP, (), None)
BOT = _intern(K_BOT, (), None)


# ---------------------------------------------------------------------------
# Smart constructors
# ---------------------------------------------------------------------------


def event(signature: EventSignature, qualifier: Term = smt.TRUE) -> Sfa:
    """The symbolic event ⟨op x̄ = ν | φ⟩."""
    if not qualifier.is_formula:
        raise ValueError("event qualifier must be a formula")
    if qualifier.is_false:
        return BOT
    return _intern(K_EVENT, (), (signature, qualifier))


def event_pinned(
    signature: EventSignature,
    pinned_args: Mapping[str, Term] | Sequence[Optional[Term]] = (),
    result: Optional[Term] = None,
    qualifier: Term = smt.TRUE,
) -> Sfa:
    """The paper's ``⟨op ∼v̄ = ν | φ⟩`` sugar: pin arguments/result to values.

    ``pinned_args`` maps argument names (or positions, when given as a
    sequence) to context terms; the generated qualifier equates the matching
    formal variable with the term.
    """
    equalities: list[Term] = []
    if isinstance(pinned_args, Mapping):
        items = pinned_args.items()
        arg_index = {name: i for i, name in enumerate(signature.arg_names)}
        for name, value in items:
            if name not in arg_index:
                raise ValueError(f"{signature.name} has no argument called {name}")
            equalities.append(smt.eq(signature.arg_vars[arg_index[name]], value))
    else:
        for position, value in enumerate(pinned_args):
            if value is None:
                continue
            equalities.append(smt.eq(signature.arg_vars[position], value))
    if result is not None:
        equalities.append(smt.eq(signature.result_var, result))
    return event(signature, smt.and_(*equalities, qualifier))


def guard(qualifier: Term) -> Sfa:
    """The test event ⟨φ⟩ — any single event, provided φ holds of the context."""
    if not qualifier.is_formula:
        raise ValueError("guard qualifier must be a formula")
    if qualifier.is_false:
        return BOT
    return _intern(K_GUARD, (), qualifier)


def not_(a: Sfa) -> Sfa:
    if a is TOP:
        return BOT
    if a is BOT:
        return TOP
    if a.kind == K_NOT:
        return a.children[0]
    return _intern(K_NOT, (a,), None)


def and_(*parts: Sfa) -> Sfa:
    flat: list[Sfa] = []
    seen: set[int] = set()
    for part in parts:
        subparts = part.children if part.kind == K_AND else (part,)
        for sub in subparts:
            if sub is BOT:
                return BOT
            if sub is TOP or sub._id in seen:
                continue
            seen.add(sub._id)
            flat.append(sub)
    if not flat:
        return TOP
    if len(flat) == 1:
        return flat[0]
    flat.sort(key=lambda n: n._id)
    return _intern(K_AND, tuple(flat), None)


def or_(*parts: Sfa) -> Sfa:
    flat: list[Sfa] = []
    seen: set[int] = set()
    for part in parts:
        subparts = part.children if part.kind == K_OR else (part,)
        for sub in subparts:
            if sub is TOP:
                return TOP
            if sub is BOT or sub._id in seen:
                continue
            seen.add(sub._id)
            flat.append(sub)
    if not flat:
        return BOT
    if len(flat) == 1:
        return flat[0]
    flat.sort(key=lambda n: n._id)
    return _intern(K_OR, tuple(flat), None)


def concat(first: Sfa, second: Sfa) -> Sfa:
    """Language concatenation ``A ; B``."""
    if first is BOT or second is BOT:
        return BOT
    if first is TOP and second is TOP:
        return TOP
    return _intern(K_CONCAT, (first, second), None)


def seq(*parts: Sfa) -> Sfa:
    if not parts:
        return TOP
    result = parts[-1]
    for part in reversed(parts[:-1]):
        result = concat(part, result)
    return result


def next_(a: Sfa) -> Sfa:
    if a is BOT:
        return BOT
    return _intern(K_NEXT, (a,), None)


def until(a: Sfa, b: Sfa) -> Sfa:
    if b is BOT:
        return BOT
    return _intern(K_UNTIL, (a, b), None)


# -- derived operators -----------------------------------------------------------


def implies(a: Sfa, b: Sfa) -> Sfa:
    return or_(not_(a), b)


def any_event() -> Sfa:
    """⟨⊤⟩ — a single arbitrary event followed by anything."""
    return guard(smt.TRUE)


def eventually(a: Sfa) -> Sfa:
    """♦A ≐ ⟨⊤⟩ U A."""
    return until(any_event(), a)


def globally(a: Sfa) -> Sfa:
    """□A ≐ ¬♦¬A."""
    return not_(eventually(not_(a)))


def last() -> Sfa:
    """LAST ≐ ¬◯⟨⊤⟩ — no further event follows the current one."""
    return not_(next_(any_event()))


def any_trace() -> Sfa:
    """□⟨⊤⟩, the automaton accepting every trace."""
    return globally(any_event())


def single(signature: EventSignature, qualifier: Term = smt.TRUE) -> Sfa:
    """Exactly one event: ⟨op x̄ = ν | φ⟩ ∧ LAST."""
    return and_(event(signature, qualifier), last())


# ---------------------------------------------------------------------------
# Substitution of context variables
# ---------------------------------------------------------------------------


def substitute(formula: Sfa, mapping: Mapping[Term, Term]) -> Sfa:
    """Substitute context variables throughout the qualifiers of ``formula``.

    The mapping must not mention operator formal variables; those are locally
    bound by each event atom.
    """
    if not mapping:
        return formula
    mapping = dict(mapping)

    def go(node: Sfa) -> Sfa:
        kind = node.kind
        if kind in (K_TOP, K_BOT):
            return node
        if kind == K_EVENT:
            signature, phi = node.payload
            clash = set(mapping) & set(signature.formals)
            if clash:
                raise ValueError(
                    f"substitution would capture formal variables {clash}"
                )
            return event(signature, smt.substitute(phi, mapping))
        if kind == K_GUARD:
            return guard(smt.substitute(node.payload, mapping))
        children = tuple(go(c) for c in node.children)
        if kind == K_NOT:
            return not_(children[0])
        if kind == K_AND:
            return and_(*children)
        if kind == K_OR:
            return or_(*children)
        if kind == K_CONCAT:
            return concat(*children)
        if kind == K_NEXT:
            return next_(children[0])
        if kind == K_UNTIL:
            return until(*children)
        raise AssertionError(kind)

    return go(formula)


# ---------------------------------------------------------------------------
# Size and pretty printing
# ---------------------------------------------------------------------------


def size(formula: Sfa) -> int:
    """Number of connectives and atoms — the paper's s_I measure."""
    total = 0
    for node in formula.walk():
        if node.kind in (K_EVENT, K_GUARD):
            total += 1 + len(smt.atoms(node.qualifier))
        elif node.kind not in (K_TOP, K_BOT):
            total += 1
    return total


def pretty(formula: Sfa) -> str:
    kind = formula.kind
    if kind == K_TOP:
        return "TOP"
    if kind == K_BOT:
        return "BOT"
    if kind == K_EVENT:
        signature, phi = formula.payload
        binders = " ".join(signature.arg_names)
        return f"<{signature.name} {binders} = result | {phi!r}>"
    if kind == K_GUARD:
        return f"[{formula.payload!r}]"
    if kind == K_NOT:
        return f"not ({pretty(formula.children[0])})"
    if kind == K_AND:
        return "(" + " && ".join(pretty(c) for c in formula.children) + ")"
    if kind == K_OR:
        return "(" + " || ".join(pretty(c) for c in formula.children) + ")"
    if kind == K_CONCAT:
        return f"({pretty(formula.children[0])} ; {pretty(formula.children[1])})"
    if kind == K_NEXT:
        return f"next ({pretty(formula.children[0])})"
    if kind == K_UNTIL:
        return f"({pretty(formula.children[0])} until {pretty(formula.children[1])})"
    raise AssertionError(kind)


# ---------------------------------------------------------------------------
# Concrete trace acceptance (Fig. 7 semantics)
# ---------------------------------------------------------------------------

#: Interpretation of pure functions / method predicates over concrete values.
Interpretation = Mapping[str, Callable[..., object]]


def accepts(
    formula: Sfa,
    trace: Trace,
    env: Mapping[Term, object] | None = None,
    interpretation: Interpretation | None = None,
) -> bool:
    """Does ``trace`` belong to ``L(formula)``?

    ``env`` gives concrete values to the context variables of the formula;
    ``interpretation`` gives meanings to pure functions and method predicates
    occurring in qualifiers.  Used by the interpreter-level dynamic checks and
    by the property tests that validate the type system's soundness claim.
    """
    env = dict(env or {})
    interpretation = dict(interpretation or {})
    memo: dict[tuple[int, int], bool] = {}

    def sat(node: Sfa, index: int) -> bool:
        key = (node._id, index)
        cached = memo.get(key)
        if cached is not None:
            return cached
        result = _sat(node, index)
        memo[key] = result
        return result

    def _sat(node: Sfa, index: int) -> bool:
        kind = node.kind
        remaining = len(trace) - index
        if kind == K_TOP:
            return True
        if kind == K_BOT:
            return False
        if kind == K_EVENT:
            if remaining == 0:
                return False
            signature, phi = node.payload
            current = trace[index]
            if current.op != signature.name:
                return False
            local_env = dict(env)
            for formal, actual in zip(signature.arg_vars, current.args):
                local_env[formal] = actual
            local_env[signature.result_var] = current.result
            return bool(concrete_eval(phi, local_env, interpretation))
        if kind == K_GUARD:
            if remaining == 0:
                return False
            return bool(concrete_eval(node.payload, env, interpretation))
        if kind == K_NOT:
            return not sat(node.children[0], index)
        if kind == K_AND:
            return all(sat(c, index) for c in node.children)
        if kind == K_OR:
            return any(sat(c, index) for c in node.children)
        if kind == K_NEXT:
            if remaining == 0:
                return False
            return sat(node.children[0], index + 1)
        if kind == K_UNTIL:
            lhs, rhs = node.children
            for j in range(index, len(trace)):
                if sat(rhs, j):
                    if all(sat(lhs, k) for k in range(index, j)):
                        return True
            return False
        if kind == K_CONCAT:
            lhs, rhs = node.children
            # try every split of the suffix starting at `index`
            for split in range(index, len(trace) + 1):
                if _accepts_segment(lhs, index, split) and sat_from(rhs, split):
                    return True
            return False
        raise AssertionError(kind)

    segment_memo: dict[tuple[int, int, int], bool] = {}

    def _accepts_segment(node: Sfa, start: int, end: int) -> bool:
        """Does the sub-trace [start, end) belong to L(node)?"""
        key = (node._id, start, end)
        cached = segment_memo.get(key)
        if cached is not None:
            return cached
        sub = Trace(trace.events[start:end])
        result = accepts(node, sub, env, interpretation)
        segment_memo[key] = result
        return result

    def sat_from(node: Sfa, index: int) -> bool:
        return sat(node, index)

    return sat(formula, 0)


def concrete_eval(term: Term, env: Mapping[Term, object], interpretation: Interpretation):
    """Evaluate an SMT term over concrete Python values."""
    from ..smt import terms as t

    kind = term.kind
    if kind == t.VAR:
        if term in env:
            return env[term]
        raise KeyError(f"no concrete value for variable {term!r}")
    if kind == t.DATA_CONST:
        return env.get(term, term.payload[0])
    if kind in (t.INT_CONST, t.BOOL_CONST):
        return term.payload
    if kind == t.APP:
        func = interpretation.get(term.payload.name)
        if func is None:
            raise KeyError(f"no interpretation for function {term.payload.name}")
        return func(*(concrete_eval(c, env, interpretation) for c in term.children))
    if kind == t.NOT:
        return not concrete_eval(term.children[0], env, interpretation)
    if kind == t.AND:
        return all(concrete_eval(c, env, interpretation) for c in term.children)
    if kind == t.OR:
        return any(concrete_eval(c, env, interpretation) for c in term.children)
    if kind == t.IMPLIES:
        lhs, rhs = term.children
        return (not concrete_eval(lhs, env, interpretation)) or concrete_eval(
            rhs, env, interpretation
        )
    if kind == t.IFF:
        lhs, rhs = term.children
        return bool(concrete_eval(lhs, env, interpretation)) == bool(
            concrete_eval(rhs, env, interpretation)
        )
    if kind == t.EQ:
        lhs, rhs = term.children
        return concrete_eval(lhs, env, interpretation) == concrete_eval(
            rhs, env, interpretation
        )
    if kind == t.LT:
        lhs, rhs = term.children
        return concrete_eval(lhs, env, interpretation) < concrete_eval(
            rhs, env, interpretation
        )
    if kind == t.LE:
        lhs, rhs = term.children
        return concrete_eval(lhs, env, interpretation) <= concrete_eval(
            rhs, env, interpretation
        )
    if kind == t.ADD:
        return sum(concrete_eval(c, env, interpretation) for c in term.children)
    if kind == t.SUB:
        lhs, rhs = term.children
        return concrete_eval(lhs, env, interpretation) - concrete_eval(
            rhs, env, interpretation
        )
    if kind == t.NEG:
        return -concrete_eval(term.children[0], env, interpretation)
    if kind == t.MUL:
        return term.payload * concrete_eval(term.children[0], env, interpretation)
    raise ValueError(f"cannot evaluate term of kind {kind}")
