"""Subtyping (Fig. 5): pure refinement subtyping and HAT subtyping.

Pure subtyping is the classical refinement-type implication check discharged
by the SMT solver (rule SubBaseAlg).  HAT subtyping (rule SubHoare) is
contravariant in the precondition automaton and covariant in the
postcondition automaton *relative to the target's precondition*; both sides
reduce to SFA inclusion queries handled by :class:`repro.sfa.InclusionChecker`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from .. import smt
from ..sfa import symbolic
from ..sfa.inclusion import InclusionChecker
from . import rtypes
from .context import TypingContext, TypingError
from .rtypes import HatType, RefinementType


@dataclass
class SubtypingEngine:
    """Bundles the SMT solver and the SFA inclusion checker."""

    solver: smt.Solver
    inclusion: InclusionChecker

    # -- pure refinement subtyping -------------------------------------------------
    def base_subtype(
        self, context: TypingContext, sub: RefinementType, sup: RefinementType
    ) -> bool:
        """Γ ⊢ {ν:b|φ₁} <: {ν:b|φ₂}."""
        if sub.sort is not sup.sort:
            raise TypingError(
                f"cannot compare refinement types over {sub.sort.name} and {sup.sort.name}"
            )
        binder = rtypes.nu(sub.sort)
        hypotheses = context.hypotheses() + [sub.instantiate(binder)]
        return self.solver.is_valid(sup.instantiate(binder), hypotheses=hypotheses)

    def value_has_type(
        self, context: TypingContext, value_term: smt.Term, ty: RefinementType
    ) -> bool:
        """Γ ⊢ {ν = value} <: ty — the common 'check a value against a type' query."""
        return self.solver.is_valid(
            ty.instantiate(value_term), hypotheses=context.hypotheses()
        )

    # -- automata inclusion -----------------------------------------------------------
    def automata_included(
        self, context: TypingContext, lhs: symbolic.Sfa, rhs: symbolic.Sfa
    ) -> bool:
        """Γ ⊢ A₁ ⊆ A₂ (rule SubAutomata)."""
        return self.inclusion.check(context.hypotheses(), lhs, rhs)

    # -- HAT subtyping -------------------------------------------------------------------
    def hat_subtype(self, context: TypingContext, sub: HatType, sup: HatType) -> bool:
        """Γ ⊢ [A₁] t₁ [B₁] <: [A₂] t₂ [B₂] (rule SubHoare)."""
        if not self.automata_included(context, sup.precondition, sub.precondition):
            return False
        if not self.base_subtype(context, sub.result, sup.result):
            return False
        frame = symbolic.concat(sup.precondition, symbolic.any_trace())
        return self.automata_included(
            context,
            symbolic.and_(frame, sub.postcondition),
            symbolic.and_(frame, sup.postcondition),
        )
