"""Minterm construction and alphabet transformation (Sec. 5.1, Algorithms 1–2).

Symbolic automata have an unbounded alphabet of events ``op v̄ = v``.  The
inclusion check finitises it:

1. collect the qualifier *literals* appearing in the automata, split into
   **context literals** (mentioning only typing-context variables — ghost
   variables, function parameters) and **event literals** (mentioning the
   formal argument/result variables of some operator);
2. enumerate the satisfiable boolean combinations of the context literals —
   each combination is one *context case* (the ``φ_Γ`` loop of Algorithm 1);
3. within a context case, for each operator enumerate the satisfiable boolean
   combinations of its event literals: these are the **minterms**, and each
   becomes one character of the finite alphabet.

Satisfiability is discharged by :class:`repro.smt.Solver`, which is where the
``#SAT`` statistic of the paper's tables comes from.

Two enumeration strategies are available:

* ``"guided"`` (the default) — solver-guided AllSAT enumeration via
  :meth:`repro.smt.Solver.enumerate_models`: the base formula is encoded once
  and blocking clauses walk the satisfiable assignments directly, so the
  query count scales with the number of *satisfiable* minterms rather than
  with 2^n candidates.  This is what allows the default literal budget to be
  much larger than the exhaustive walk could afford.
* ``"exhaustive"`` — the original per-candidate depth-first walk that
  discharges one conjunction per SMT query (pruning unsatisfiable subtrees).
  Kept as the reference oracle for the differential test-suite
  (``tests/sfa/test_enumeration_diff.py``).

Both strategies produce byte-identical alphabets (same context cases, same
minterms, same order); the differential suite enforces this.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional, Sequence

from .. import smt
from ..obs import trace
from ..smt.terms import Term
from ..statsutil import MergeableStats
from . import symbolic
from .signatures import EventSignature, OperatorRegistry
from .symbolic import Sfa


class AlphabetError(RuntimeError):
    """Raised when the literal sets are too large to enumerate."""


#: Default enumeration budget for the guided strategy, which scales with the
#: number of *satisfiable* minterms rather than with 2^n candidates.
DEFAULT_MAX_LITERALS = 24

#: Default budget for the per-candidate exhaustive walk (and for
#: ``filter_unsat=False``, which materialises every candidate): these paths
#: really do pay 2^n, so they keep the original conservative cap.
EXHAUSTIVE_MAX_LITERALS = 14

#: The supported values of ``build_alphabets(..., strategy=...)``.
STRATEGIES = ("guided", "exhaustive")


def resolve_max_literals(max_literals: Optional[int], strategy: str, filter_unsat: bool) -> int:
    """The effective literal budget: explicit value, else a strategy default."""
    if max_literals is not None:
        return max_literals
    if strategy == "guided" and filter_unsat:
        return DEFAULT_MAX_LITERALS
    return EXHAUSTIVE_MAX_LITERALS


@dataclass(frozen=True)
class LiteralSets:
    """Literals collected from a group of symbolic automata."""

    context_literals: tuple[Term, ...]
    event_literals: Mapping[str, tuple[Term, ...]]

    def total(self) -> int:
        return len(self.context_literals) + sum(len(v) for v in self.event_literals.values())

    def fingerprint(self) -> tuple:
        """A hashable content address for the literal sets.

        Terms are interned, so ``term_id`` identifies each literal globally;
        two groups of automata that mention the same qualifier literals get
        the same fingerprint even when the automata themselves differ.  This
        is what the cross-obligation :class:`AlphabetMemo` keys on: the
        alphabets are a pure function of (hypotheses, literal sets) — the
        formulas only matter through the literals they contribute.
        """
        return (
            tuple(lit.term_id for lit in self.context_literals),
            tuple(
                (name, tuple(lit.term_id for lit in lits))
                for name, lits in sorted(self.event_literals.items())
            ),
        )


def collect_literals(
    formulas: Sequence[Sfa],
    operators: OperatorRegistry,
    extra_context_literals: Iterable[Term] = (),
) -> LiteralSets:
    """Split the atoms of the automata qualifiers into context/event literals.

    Besides the atoms that literally occur in the qualifiers, the context
    literal set is closed under *pinned-term equalities*: whenever two context
    terms ``t₁`` and ``t₂`` are both pinned to the same formal variable of the
    same operator (``key = t₁`` in one atom, ``key = t₂`` in another), the
    equality ``t₁ = t₂`` is added as a context literal.  Splitting on these
    equalities keeps the truth of per-character facts consistent *across* the
    characters of one abstract trace, which the FA abstraction would otherwise
    lose (and without which valid inclusions such as the Set-on-KVStore
    uniqueness invariant would be rejected).
    """
    context: dict[Term, None] = {}
    per_op: dict[str, dict[Term, None]] = {sig.name: {} for sig in operators}
    #: (operator, formal) -> context terms pinned to that formal
    pinned: dict[tuple[str, int], dict[Term, None]] = {}

    for literal in extra_context_literals:
        context.setdefault(literal, None)

    for formula in formulas:
        for node in formula.walk():
            if node.kind == symbolic.K_EVENT:
                signature, phi = node.payload
                formals = set(signature.formals)
                bucket = per_op.setdefault(signature.name, {})
                for atom in smt.atoms(phi):
                    if atom.free_vars() & formals:
                        bucket.setdefault(atom, None)
                        _record_pinned(pinned, signature, atom)
                    else:
                        context.setdefault(atom, None)
            elif node.kind == symbolic.K_GUARD:
                for atom in smt.atoms(node.payload):
                    context.setdefault(atom, None)

    for terms_for_slot in pinned.values():
        slot_terms = list(terms_for_slot)
        for i in range(len(slot_terms)):
            for j in range(i + 1, len(slot_terms)):
                equality = smt.eq(slot_terms[i], slot_terms[j])
                if not (equality.is_true or equality.is_false):
                    context.setdefault(equality, None)

    # Canonical literal order (by content address): the alphabets — and with
    # them the enumeration-cache keys and DFA-memo fingerprints — become
    # independent of the order the formulas were supplied in, so e.g. the two
    # directions of an equivalence check share every cache layer.
    return LiteralSets(
        context_literals=tuple(sorted(context, key=lambda term: term.term_id)),
        event_literals={
            name: tuple(sorted(bucket, key=lambda term: term.term_id))
            for name, bucket in per_op.items()
        },
    )


def _record_pinned(
    pinned: dict[tuple[str, int], dict[Term, None]],
    signature: EventSignature,
    atom: Term,
) -> None:
    """Record ``formal = context-term`` equations for the pinned-equality closure."""
    from ..smt import terms as t

    if atom.kind != t.EQ:
        return
    lhs, rhs = atom.children
    formals = list(signature.formals)
    for formal_side, other in ((lhs, rhs), (rhs, lhs)):
        if formal_side in formals and not (other.free_vars() & set(formals)):
            slot = (signature.name, formals.index(formal_side))
            pinned.setdefault(slot, {}).setdefault(other, None)


@dataclass(frozen=True)
class Character:
    """One character of the finitised alphabet: an operator plus a minterm."""

    signature: EventSignature
    literal_values: tuple[tuple[Term, bool], ...]

    def truth(self) -> dict[Term, bool]:
        return dict(self.literal_values)

    def formula(self) -> Term:
        """The conjunction of signed literals defining this minterm."""
        parts = [lit if value else smt.not_(lit) for lit, value in self.literal_values]
        return smt.and_(*parts)

    def describe(self) -> str:
        """A readable rendering: operator name plus the qualifier valuation.

        Used when counterexample traces are surfaced in verification failure
        messages, e.g. ``insert((x == el), not (mem el))``.
        """
        parts = [
            f"{lit!r}" if value else f"not {lit!r}" for lit, value in self.literal_values
        ]
        valuation = ", ".join(parts) if parts else "any arguments"
        return f"{self.signature.name}({valuation})"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        bits = ", ".join(
            f"{'+' if value else '-'}{lit!r}" for lit, value in self.literal_values
        )
        return f"⟨{self.signature.name} | {bits or '⊤'}⟩"


@dataclass
class Alphabet:
    """A finite alphabet valid under one context case."""

    context_case: tuple[tuple[Term, bool], ...]
    characters: tuple[Character, ...]

    def context_truth(self) -> dict[Term, bool]:
        return dict(self.context_case)

    def context_formula(self) -> Term:
        parts = [lit if value else smt.not_(lit) for lit, value in self.context_case]
        return smt.and_(*parts)

    def __len__(self) -> int:
        return len(self.characters)

    def index_of(self, character: Character) -> int:
        return self.characters.index(character)

    def fingerprint(self) -> tuple:
        """A hashable content address for this alphabet.

        Terms are interned, so ``term_id`` identifies a literal globally; the
        fingerprint therefore coincides for alphabets rebuilt from the same
        literal sets (e.g. across the two directions of an equivalence check),
        which is what the DFA compilation memo keys on.
        """
        fp = getattr(self, "_fingerprint", None)
        if fp is None:
            fp = (
                tuple((lit.term_id, value) for lit, value in self.context_case),
                tuple(
                    (
                        character.signature.name,
                        tuple((lit.term_id, value) for lit, value in character.literal_values),
                    )
                    for character in self.characters
                ),
            )
            self._fingerprint = fp
        return fp


@dataclass
class AlphabetStats(MergeableStats):
    """Bookkeeping for the evaluation tables.

    A :class:`~repro.statsutil.MergeableStats` so the cross-obligation
    :class:`AlphabetMemo` can record the counters of one construction and
    replay them verbatim on every later hit.
    """

    context_cases: int = 0
    minterm_candidates: int = 0
    satisfiable_minterms: int = 0


def _signed_combinations(literals: Sequence[Term]) -> Iterable[tuple[tuple[Term, bool], ...]]:
    if not literals:
        yield ()
        return
    for bits in itertools.product((True, False), repeat=len(literals)):
        yield tuple(zip(literals, bits))


def _satisfiable_combinations(
    solver: smt.Solver,
    base_formula: Term,
    literals: Sequence[Term],
    stats: "AlphabetStats",
    *,
    count_candidates: bool,
) -> Iterable[tuple[tuple[Term, bool], ...]]:
    """Enumerate the satisfiable signed combinations of ``literals``.

    The enumeration prunes whole subtrees whose partial conjunction is already
    unsatisfiable, which keeps the number of SMT queries close to the number
    of *satisfiable* minterms rather than 2^n.
    """

    def recurse(index: int, chosen: tuple[tuple[Term, bool], ...], formula: Term):
        if index == len(literals):
            if count_candidates:
                stats.minterm_candidates += 1
            yield chosen
            return
        literal = literals[index]
        for value in (True, False):
            signed = literal if value else smt.not_(literal)
            extended = smt.and_(formula, signed)
            if not solver.is_satisfiable(extended):
                if count_candidates:
                    stats.minterm_candidates += 2 ** (len(literals) - index - 1)
                continue
            yield from recurse(index + 1, chosen + ((literal, value),), extended)

    if not literals:
        if solver.is_satisfiable(base_formula):
            if count_candidates:
                stats.minterm_candidates += 1
            yield ()
        return
    yield from recurse(0, (), base_formula)


def build_alphabets(
    solver: smt.Solver,
    hypotheses: Sequence[Term],
    formulas: Sequence[Sfa],
    operators: OperatorRegistry,
    *,
    extra_context_literals: Iterable[Term] = (),
    max_literals: Optional[int] = None,
    filter_unsat: bool = True,
    strategy: str = "guided",
    stats: Optional[AlphabetStats] = None,
) -> list[Alphabet]:
    """Build one finite alphabet per satisfiable context case.

    ``hypotheses`` are the typing-context facts Γ (already instantiated);
    they are conjoined to every satisfiability query but, unlike the context
    literals of the automata, are not case-split (an optimisation over the
    literal reading of Algorithm 1 that preserves completeness because a
    hypothesis has a fixed truth value in every model of Γ).

    ``strategy`` selects how satisfiable combinations are found: ``"guided"``
    (solver-guided AllSAT enumeration over one incremental encoding) or
    ``"exhaustive"`` (one SMT query per candidate conjunction, the reference
    oracle for differential testing).  Both yield identical alphabets.

    ``filter_unsat=False`` disables minterm pruning altogether; it exists for
    the ablation benchmark showing why Algorithm 1's satisfiability filter
    matters.

    ``max_literals=None`` picks a strategy-appropriate budget: the guided
    enumerator affords :data:`DEFAULT_MAX_LITERALS`, while the exhaustive and
    unfiltered paths (which genuinely pay 2^n queries/characters) keep the
    conservative :data:`EXHAUSTIVE_MAX_LITERALS`.
    """
    if strategy not in STRATEGIES:
        raise ValueError(f"unknown enumeration strategy {strategy!r}; expected one of {STRATEGIES}")
    literal_sets = collect_literals(formulas, operators, extra_context_literals)
    with trace.span("alphabet.build", cat="alphabet", strategy=strategy):
        return enumerate_alphabets(
            solver,
            hypotheses,
            literal_sets,
            operators,
            max_literals=max_literals,
            filter_unsat=filter_unsat,
            strategy=strategy,
            stats=stats,
        )


def enumerate_alphabets(
    solver: smt.Solver,
    hypotheses: Sequence[Term],
    literal_sets: LiteralSets,
    operators: OperatorRegistry,
    *,
    max_literals: Optional[int] = None,
    filter_unsat: bool = True,
    strategy: str = "guided",
    stats: Optional[AlphabetStats] = None,
) -> list[Alphabet]:
    """The enumeration core of :func:`build_alphabets`, from collected literals.

    Split out so the cross-obligation :class:`AlphabetMemo` can compute the
    (cheap, purely syntactic) literal sets first, key its lookup on them, and
    only run the solver-driven enumeration below on a miss.  The resulting
    alphabets — and every counter this function touches — are a pure function
    of ``(hypotheses, literal_sets, operators, strategy, budget)`` and the
    solver's axiom set/backend; nothing here depends on the automata the
    literals came from.
    """
    max_literals = resolve_max_literals(max_literals, strategy, filter_unsat)
    stats = stats if stats is not None else AlphabetStats()
    if len(literal_sets.context_literals) > max_literals:
        raise AlphabetError(
            f"{len(literal_sets.context_literals)} context literals exceed the "
            f"enumeration budget of {max_literals}"
        )
    for name, lits in literal_sets.event_literals.items():
        if len(lits) > max_literals:
            raise AlphabetError(
                f"operator {name} has {len(lits)} event literals, exceeding the "
                f"enumeration budget of {max_literals}"
            )

    hypothesis_formula = smt.and_(*hypotheses)
    alphabets: list[Alphabet] = []

    if not filter_unsat:
        context_cases: Iterable[tuple[tuple[Term, bool], ...]] = _signed_combinations(
            literal_sets.context_literals
        )
    elif strategy == "guided":
        context_cases = solver.enumerate_models(
            literal_sets.context_literals, base=hypothesis_formula
        )
    else:
        context_cases = _satisfiable_combinations(
            solver,
            hypothesis_formula,
            literal_sets.context_literals,
            stats,
            count_candidates=False,
        )

    for context_case in context_cases:
        context_formula = smt.and_(
            hypothesis_formula,
            *(lit if value else smt.not_(lit) for lit, value in context_case),
        )
        stats.context_cases += 1

        characters: list[Character] = []
        for signature in operators:
            literals = literal_sets.event_literals.get(signature.name, ())
            if not filter_unsat:
                assignments: Iterable[tuple[tuple[Term, bool], ...]] = _signed_combinations(
                    literals
                )
            elif strategy == "guided":
                assignments = solver.enumerate_models(literals, base=context_formula)
                stats.minterm_candidates += 1 << len(literals)
            else:
                assignments = _satisfiable_combinations(
                    solver, context_formula, literals, stats, count_candidates=True
                )
            for assignment in assignments:
                if not filter_unsat:
                    stats.minterm_candidates += 1
                stats.satisfiable_minterms += 1
                characters.append(Character(signature, assignment))
        alphabets.append(Alphabet(context_case=context_case, characters=tuple(characters)))

    return alphabets


# ---------------------------------------------------------------------------
# Cross-obligation partition reuse
# ---------------------------------------------------------------------------


@dataclass
class AlphabetBuild:
    """One memoised alphabet construction: the result plus its counter bill."""

    alphabets: list[Alphabet]
    alphabet_stats: AlphabetStats
    solver_stats: "smt.SolverStats"


class AlphabetMemo:
    """Content-addressed reuse of alphabet/minterm constructions.

    Obligations of one method — and often of one whole benchmark — keep
    mentioning the same qualifier literals: the representation invariant sits
    on one side of every inclusion, and consecutive program points differ
    only in the context automaton's *structure*, not its atoms.  The memo
    keys on ``(hypotheses, literal sets)`` — the exact inputs the enumeration
    is a function of — so distinct obligations that share qualifiers share
    one minterm enumeration.

    **Determinism.**  Every construction runs on a *fresh* solver (this
    memo's axiom set and backend, no warm caches, no inherited lemmas), which
    makes the construction — and every counter it produces — a pure function
    of the key.  The memo records that counter bill (:class:`AlphabetStats`
    plus the solver's :class:`~repro.smt.solver.SolverStats` delta) and
    replays it verbatim on a hit, so a memo hit and a rebuild contribute
    byte-identical numbers to the evaluation tables.  That is what keeps the
    deterministic table renderings invariant across memo on/off, scheduler
    orderings and worker counts; ``enabled=False`` only disables the *reuse*
    (every call still builds hermetically), it never changes a counter.

    The engine shares one memo across the obligations of a run: serially the
    dictionary simply grows; under a process pool the forked workers inherit
    the parent's entries through copy-on-write memory (like the ``warm_from``
    solver views) and their own additions die with them.
    """

    def __init__(
        self,
        axioms: Sequence = (),
        *,
        backend: Optional[str] = None,
        enabled: bool = True,
        max_entries: int = 2048,
    ) -> None:
        self.axioms = tuple(axioms)
        self.backend = backend
        self.enabled = enabled
        self.max_entries = max_entries
        self.builds = 0
        self.hits = 0
        self.evictions = 0
        self._entries: dict[tuple, AlphabetBuild] = {}
        #: every key this memo *built* (not replayed), in build order — the
        #: engine slices it around a discharge to learn which constructions a
        #: forked worker ran, since the worker's memo entries themselves die
        #: with the fork (copy-on-write)
        self.session_built_keys: list[tuple] = []

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: tuple) -> bool:
        return key in self._entries

    def key_for(
        self,
        hypotheses: Sequence[Term],
        formulas: Sequence[Sfa],
        operators: OperatorRegistry,
        *,
        extra_context_literals: Iterable[Term] = (),
        max_literals: Optional[int] = None,
        filter_unsat: bool = True,
        strategy: str = "guided",
    ) -> tuple:
        """The content key :meth:`alphabets_for` would file this query under.

        Exposed so the batch discharger can group obligations that share one
        alphabet construction without building anything: the key is a pure
        function of the (cheap, syntactic) literal sets plus the enumeration
        budget, and it is a plain tuple of ints/strings — picklable, so
        forked workers can report the keys they built back to the parent.
        """
        literal_sets = collect_literals(formulas, operators, extra_context_literals)
        return self._key(
            hypotheses,
            literal_sets,
            max_literals=max_literals,
            filter_unsat=filter_unsat,
            strategy=strategy,
        )

    def _key(
        self,
        hypotheses: Sequence[Term],
        literal_sets: LiteralSets,
        *,
        max_literals: Optional[int],
        filter_unsat: bool,
        strategy: str,
    ) -> tuple:
        return (
            tuple(sorted(h.term_id for h in hypotheses)),
            literal_sets.fingerprint(),
            resolve_max_literals(max_literals, strategy, filter_unsat),
            filter_unsat,
            strategy,
        )

    def alphabets_for(
        self,
        hypotheses: Sequence[Term],
        formulas: Sequence[Sfa],
        operators: OperatorRegistry,
        *,
        extra_context_literals: Iterable[Term] = (),
        max_literals: Optional[int] = None,
        filter_unsat: bool = True,
        strategy: str = "guided",
        stats: Optional[AlphabetStats] = None,
        solver_stats: Optional["smt.SolverStats"] = None,
    ) -> tuple[list[Alphabet], bool]:
        """The alphabets for this literal-set key; builds hermetically on a miss.

        Returns ``(alphabets, built)`` where ``built`` says whether this call
        ran the enumeration (as opposed to replaying a recorded one).  The
        recorded counter bill is merged into ``stats``/``solver_stats``
        either way, and is identical either way.
        """
        if strategy not in STRATEGIES:
            raise ValueError(
                f"unknown enumeration strategy {strategy!r}; expected one of {STRATEGIES}"
            )
        literal_sets = collect_literals(formulas, operators, extra_context_literals)
        key = self._key(
            hypotheses,
            literal_sets,
            max_literals=max_literals,
            filter_unsat=filter_unsat,
            strategy=strategy,
        )
        entry = self._entries.get(key)
        built = entry is None
        if entry is None:
            solver = smt.Solver(axioms=list(self.axioms), backend=self.backend)
            build_stats = AlphabetStats()
            # only the hermetic construction is spanned — a memo hit replays
            # the recorded bill in microseconds and stays out of the trace
            with trace.span("alphabet.build", cat="alphabet", strategy=strategy):
                alphabets = enumerate_alphabets(
                    solver,
                    hypotheses,
                    literal_sets,
                    operators,
                    max_literals=max_literals,
                    filter_unsat=filter_unsat,
                    strategy=strategy,
                    stats=build_stats,
                )
            entry = AlphabetBuild(
                alphabets=alphabets,
                alphabet_stats=build_stats,
                solver_stats=solver.stats,
            )
            self.builds += 1
            self.session_built_keys.append(key)
            if self.enabled:
                if len(self._entries) >= self.max_entries:
                    self._entries.clear()
                    self.evictions += 1
                self._entries[key] = entry
        else:
            self.hits += 1
        if stats is not None:
            stats.merge(entry.alphabet_stats)
        if solver_stats is not None:
            solver_stats.merge(entry.solver_stats)
        return entry.alphabets, built
