"""The persistent key-value store library (Sec. 2 / Example 3.1 / Example 4.2).

Operators::

    put    : Key -> Value -> unit
    exists : Key -> bool
    get    : Key -> Value

The HAT signatures mirror Example 4.2: ``put`` runs in any context and
appends exactly one ``put`` event; ``exists`` is an intersection type whose
two cases discriminate on whether the key has been put before; ``get``
requires the key to exist.  When the ADT's invariant depends on *what kind*
of value is currently stored (the FileSystem benchmark), ``get`` can be
declared as an intersection over a partition of the value sort described by
method predicates (``isDir`` / ``isFile`` / ``isDel``), which corresponds to
a library signature specialised by the library developer as discussed in
Sec. 4.1.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from .. import smt
from ..smt.sorts import BOOL, UNIT, Sort
from ..lang.interp import StuckError
from ..sfa import symbolic
from ..sfa.signatures import EventSignature, OperatorRegistry
from ..sfa.symbolic import Sfa
from ..types.context import BuiltinContext, PureOpContext
from ..types.rtypes import FunType, HatType, Intersection, RefinementType, base, nu
from .base import Library

#: A "kind" case for ``get``: a name plus a qualifier builder over the value term.
KindCase = tuple[str, Callable[[smt.Term], smt.Term]]


def exists_predicate(operators: OperatorRegistry, key: smt.Term) -> Sfa:
    """P_exists(key) ≐ ♦⟨put ∼key _⟩."""
    put = operators["put"]
    return symbolic.eventually(symbolic.event_pinned(put, {"key": key}))


def last_put_predicate(
    operators: OperatorRegistry, key: smt.Term, value_qualifier: Callable[[smt.Term], smt.Term]
) -> Sfa:
    """♦(⟨put ∼key v | φ(v)⟩ ∧ ◯ □ ¬⟨put ∼key _⟩) — the *last* put to key satisfies φ."""
    put = operators["put"]
    value_var = put.arg_vars[1]
    key_var = put.arg_vars[0]
    matching = symbolic.event(
        put, smt.and_(smt.eq(key_var, key), value_qualifier(value_var))
    )
    any_later_put = symbolic.event(put, smt.eq(key_var, key))
    return symbolic.eventually(
        symbolic.and_(matching, symbolic.next_(symbolic.globally(symbolic.not_(any_later_put))))
    )


def stored_kind_predicate(
    operators: OperatorRegistry,
    key: smt.Term,
    positive: Callable[[smt.Term], smt.Term],
    negative: Callable[[smt.Term], smt.Term],
) -> Sfa:
    """♦(⟨put ∼key v | pos(v)⟩ ∧ ◯ □ ¬⟨put ∼key v | neg(v)⟩).

    The paper's ``P_isDir`` / ``P_isFile`` shapes: the key has been stored with
    a value satisfying ``pos`` and never re-stored afterwards with a value
    satisfying ``neg``.
    """
    put = operators["put"]
    key_var, value_var = put.arg_vars
    established = symbolic.event(put, smt.and_(smt.eq(key_var, key), positive(value_var)))
    violated = symbolic.event(put, smt.and_(smt.eq(key_var, key), negative(value_var)))
    return symbolic.eventually(
        symbolic.and_(established, symbolic.next_(symbolic.globally(symbolic.not_(violated))))
    )


def _single_event(precondition: Sfa, event: Sfa) -> Sfa:
    """``precondition ; (event ∧ LAST)`` — the common postcondition shape."""
    return symbolic.concat(precondition, symbolic.and_(event, symbolic.last()))


def make_kvstore(
    key_sort: Sort,
    value_sort: Sort,
    *,
    name: str = "KVStore",
    get_kinds: Sequence[KindCase] | None = None,
) -> Library:
    """Build the KVStore library over the given key and value sorts."""
    operators = OperatorRegistry()
    put = operators.declare("put", [("key", key_sort), ("value", value_sort)], UNIT)
    exists = operators.declare("exists", [("key", key_sort)], BOOL)
    get = operators.declare("get", [("key", key_sort)], value_sort)

    key_param = smt.var("key", key_sort)
    value_param = smt.var("value", value_sort)
    delta = BuiltinContext()

    # put : key -> value -> [⊤*] unit [⊤* ; ⟨put ∼key ∼value⟩ ∧ LAST]
    put_event = symbolic.event_pinned(put, {"key": key_param, "value": value_param})
    delta.add(
        "put",
        FunType(
            "key",
            base(key_sort),
            FunType(
                "value",
                base(value_sort),
                HatType(
                    precondition=symbolic.any_trace(),
                    result=base(UNIT),
                    postcondition=_single_event(symbolic.any_trace(), put_event),
                ),
            ),
        ),
    )

    # exists : key -> ([P_exists] {ν=true} [...]) ⊓ ([¬P_exists] {ν=false} [...])
    p_exists = exists_predicate(operators, key_param)
    exists_true = symbolic.event_pinned(exists, {"key": key_param}, result=smt.TRUE)
    exists_false = symbolic.event_pinned(exists, {"key": key_param}, result=smt.FALSE)
    delta.add(
        "exists",
        FunType(
            "key",
            base(key_sort),
            Intersection(
                (
                    HatType(
                        precondition=p_exists,
                        result=RefinementType(BOOL, smt.eq(nu(BOOL), smt.TRUE)),
                        postcondition=_single_event(p_exists, exists_true),
                    ),
                    HatType(
                        precondition=symbolic.not_(p_exists),
                        result=RefinementType(BOOL, smt.eq(nu(BOOL), smt.FALSE)),
                        postcondition=_single_event(symbolic.not_(p_exists), exists_false),
                    ),
                )
            ),
        ),
    )

    # get : key -> ...
    if get_kinds:
        cases = []
        for _, qualifier in get_kinds:
            others = [q for n, q in get_kinds if q is not qualifier]
            negative = lambda v, others=others: smt.or_(*(o(v) for o in others))
            precondition = stored_kind_predicate(operators, key_param, qualifier, negative)
            result = RefinementType(value_sort, qualifier(nu(value_sort)))
            get_event = symbolic.event(
                get,
                smt.and_(
                    smt.eq(get.arg_vars[0], key_param), qualifier(get.result_var)
                ),
            )
            cases.append(
                HatType(
                    precondition=precondition,
                    result=result,
                    postcondition=_single_event(precondition, get_event),
                )
            )
        get_type: object = Intersection(tuple(cases))
    else:
        get_event = symbolic.event_pinned(get, {"key": key_param})
        get_type = HatType(
            precondition=p_exists,
            result=base(value_sort),
            postcondition=_single_event(p_exists, get_event),
        )
    delta.add("get", FunType("key", base(key_sort), get_type))

    # -- concrete trace semantics (Example 3.1) -----------------------------------------
    def put_rule(trace, args):
        return ()

    def exists_rule(trace, args):
        key = args[0]
        return trace.any_event("put", lambda e: e.args[0] == key)

    def get_rule(trace, args):
        key = args[0]
        event = trace.last_event("put", lambda e: e.args[0] == key)
        if event is None:
            raise StuckError(f"get on a key that was never put: {key!r}")
        return event.args[1]

    return Library(
        name=name,
        operators=operators,
        delta=delta,
        pure_ops=PureOpContext(),
        model_rules={"put": put_rule, "exists": exists_rule, "get": get_rule},
    )
