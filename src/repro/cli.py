"""pymarple — the command-line interface of the reproduction.

Usage::

    pymarple list                       # list the benchmark corpus
    pymarple check Set/KVStore          # verify one ADT/library row
    pymarple verify Set/KVStore         # alias of check
    pymarple check Set/KVStore --method insert
    pymarple evaluate [--fast]          # run the whole evaluation (Table 1 data)
    pymarple evaluate --shards 4        # shard the corpus's obligations
    pymarple table 1|2|3|4 [--fast]     # print a specific paper table

Checker knobs (``--workers``, ``--discharge``, ``--strategy``, ``--backend``)
mirror the ``REPRO_*`` environment variables.  Incremental verification is enabled with
``--incremental`` (or by naming a store explicitly with ``--store PATH``):
discharged obligations are persisted to an on-disk store and answered from it
on later runs; ``--explain`` prints the per-method hit/miss/invalidated
counts, and ``--json`` emits a machine-readable report for CI trend tracking.
The store's persistence backend follows the path (``store.db`` or
``sqlite:PATH`` → a WAL-mode SQLite file, ``http://host:port`` → a remote
``pymarple store serve`` instance, anything else → the locked JSONL
directory) or is forced with ``--store-backend``/``REPRO_STORE_BACKEND``;
``pymarple store migrate SRC DST`` converts between the local backends
losslessly, and ``pymarple store serve`` exposes a local store to a fleet of
remote clients over JSON-HTTP.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Optional, Sequence

from .engine.dispatch import DispatchError
from .engine.scheduler import SCHEDULE_MODES
from .evaluation import render_all, report_json, run_evaluation, table1, table2, table3, table4
from .obs import trace as obs_trace
from .obs.logs import configure_logging
from .smt.backends import known_backends, resolve_backend
from .store.backends import KNOWN_STORE_BACKENDS, migrate_store, resolve_store_backend
from .store.obligation_store import ObligationStore
from .store.remote import RemoteStoreError
from .suite.registry import all_benchmarks, benchmark_by_key
from .typecheck.checker import CheckerConfig

#: Where ``--incremental`` keeps its store when ``--store`` is not given.
DEFAULT_STORE_PATH = ".pymarple-store"


# ---------------------------------------------------------------------------
# Shared flag groups
# ---------------------------------------------------------------------------


def _add_checker_flags(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("checker knobs")
    group.add_argument(
        "--workers",
        type=int,
        metavar="N",
        help="process-pool width for obligation discharge (default: REPRO_WORKERS or 1)",
    )
    group.add_argument(
        "--discharge",
        choices=("lazy", "compiled", "batch"),
        help=(
            "how leaf inclusions are decided: lazy (per-obligation product "
            "walk), compiled (reference oracle), batch (group cold "
            "obligations by alphabet and discharge each group set-at-a-time; "
            "verdicts/tables identical to lazy) "
            "(default: REPRO_DISCHARGE or lazy)"
        ),
    )
    group.add_argument(
        "--strategy",
        choices=("guided", "exhaustive"),
        help="minterm enumeration strategy (default: guided)",
    )
    group.add_argument(
        "--backend",
        choices=known_backends(),
        help="SAT core behind the lazy SMT loop (default: REPRO_BACKEND or dpll)",
    )
    group.add_argument(
        "--schedule",
        choices=SCHEDULE_MODES,
        help=(
            "discharge-order policy: auto = historical store cost (LPT under "
            "a pool, cheapest-first serially), falling back to the syntactic "
            "estimate (default: REPRO_SCHEDULE or auto)"
        ),
    )
    group.add_argument(
        "--no-memo",
        action="store_true",
        help=(
            "disable cross-obligation alphabet/derivative reuse (ablation; "
            "counters and tables are identical either way, only time moves)"
        ),
    )


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("observability")
    group.add_argument(
        "--trace",
        metavar="PATH",
        help=(
            "write a structured span trace of the run to PATH: .jsonl → the "
            "native JSONL schema, anything else → Chrome trace-event JSON "
            "loadable in Perfetto (default: REPRO_TRACE)"
        ),
    )
    group.add_argument(
        "--log-level",
        metavar="LEVEL",
        help=(
            "emit repro.* logger breadcrumbs at LEVEL (debug, info, warning, "
            "...) on stderr, tagged with the innermost open trace span "
            "(default: REPRO_LOG_LEVEL, or silent)"
        ),
    )


def _add_store_flags(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("incremental verification")
    group.add_argument(
        "--incremental",
        action="store_true",
        help=f"answer obligations from a persistent store (default path: {DEFAULT_STORE_PATH})",
    )
    group.add_argument(
        "--store",
        metavar="PATH",
        help=(
            "store path (implies --incremental): a directory, a .db file, or "
            "the http://host:port URL of a `store serve` instance"
        ),
    )
    group.add_argument(
        "--explain",
        action="store_true",
        help="print per-method store hit/miss/invalidated counts",
    )
    group.add_argument(
        "--store-backend",
        choices=("auto",) + KNOWN_STORE_BACKENDS,
        help=(
            "store persistence backend: auto infers from the path (.db/sqlite: "
            "means sqlite, a directory means jsonl) "
            "(default: REPRO_STORE_BACKEND or auto)"
        ),
    )


def _config_from_args(args: argparse.Namespace) -> CheckerConfig:
    kwargs: dict[str, object] = {}
    if getattr(args, "workers", None) is not None:
        kwargs["workers"] = args.workers
    if getattr(args, "discharge", None) is not None:
        kwargs["discharge"] = args.discharge
    if getattr(args, "strategy", None) is not None:
        kwargs["enumeration_strategy"] = args.strategy
    if getattr(args, "backend", None) is not None:
        kwargs["backend"] = args.backend
    if getattr(args, "schedule", None) is not None:
        kwargs["schedule"] = args.schedule
    if getattr(args, "no_memo", False):
        kwargs["cross_obligation_memo"] = False
    if getattr(args, "store_backend", None) is not None:
        kwargs["store_backend"] = args.store_backend
    config = CheckerConfig(**kwargs)
    # Validate the *resolved* backend and schedule, wherever they came from:
    # argparse already rejects unknown flag values, but REPRO_BACKEND /
    # REPRO_SCHEDULE arrive unchecked and must fail with the same clean
    # exit-2 diagnostics, not a traceback.
    try:
        resolve_backend(config.backend)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        raise SystemExit(2) from None
    if config.schedule not in SCHEDULE_MODES:
        print(
            f"error: unknown schedule mode {config.schedule!r}; "
            f"expected one of {SCHEDULE_MODES}",
            file=sys.stderr,
        )
        raise SystemExit(2)
    if config.store_backend not in ("auto",) + KNOWN_STORE_BACKENDS:
        print(
            f"error: unknown store backend {config.store_backend!r}; "
            f"expected one of {('auto',) + KNOWN_STORE_BACKENDS}",
            file=sys.stderr,
        )
        raise SystemExit(2)
    return config


def _open_store(
    args: argparse.Namespace, config: Optional[CheckerConfig] = None
) -> Optional[ObligationStore]:
    wants_store = (
        getattr(args, "store", None)
        or getattr(args, "incremental", False)
        or getattr(args, "shards", 1) > 1
    )
    if not wants_store:
        return None
    backend = config.store_backend if config is not None else None
    try:
        return ObligationStore(
            getattr(args, "store", None) or DEFAULT_STORE_PATH, backend=backend
        )
    except ValueError as exc:
        # e.g. contradictory path/backend directives: diagnose, don't traceback
        print(f"error: {exc}", file=sys.stderr)
        raise SystemExit(2) from None


def _finish_store(store: Optional[ObligationStore]) -> None:
    """Close the session: flush pending entries and log the run's references.

    The run log is what ``store gc --keep-last N`` keeps entries alive by —
    every CLI invocation that touched the store counts as one run.
    """
    if store is not None:
        store.flush()
        store.commit_run()


def _note_trace_counters(caches: dict, store: Optional[ObligationStore] = None) -> None:
    """Stash run-level cache totals on the active tracer, if any.

    They land in the trace file's trailing ``counters`` record, which is
    what ``repro trace report`` prints its cache-rate block from.  A remote
    store session also contributes the server's ``/stats`` snapshot (per-op
    counts, lookup hit rate, queue counters) under the ``store`` key.
    """
    tracer = obs_trace.active()
    if tracer is None:
        return
    counters: dict = {"caches": caches}
    if store is not None and store.is_remote:
        try:
            counters["store"] = store.backend.stats()
        except RemoteStoreError:
            pass  # metrics are best-effort; never fail the run over them
    tracer.counters = counters


def _print_store_report(store: ObligationStore, explain: bool) -> None:
    summary = store.summary()
    skipped = (
        f", {summary['skipped']} corrupt records skipped" if summary["skipped"] else ""
    )
    print(
        f"\nstore: {summary['entries']} entries, {summary['hits']} hits, "
        f"{summary['misses']} misses, {summary['invalidated']} invalidated{skipped}"
    )
    if explain:
        for row in store.explain():
            print(
                f"  {row['scope']}.{row['method']}: hits={row['hits']} "
                f"misses={row['misses']} invalidated={row['invalidated']}"
            )


# ---------------------------------------------------------------------------
# Subcommands
# ---------------------------------------------------------------------------


def _cmd_list(_: argparse.Namespace) -> int:
    for benchmark in all_benchmarks():
        marker = " (slow)" if benchmark.slow else ""
        print(f"{benchmark.key:>28}  —  {benchmark.invariant_description}{marker}")
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    try:
        benchmark = benchmark_by_key(args.benchmark)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    config = _config_from_args(args)
    store = _open_store(args, config)
    checker = benchmark.make_checker(config, store=store)
    if args.method:
        if args.method not in benchmark.specs:
            known = ", ".join(benchmark.specs)
            print(
                f"error: {benchmark.key} has no method {args.method!r}; known: {known}",
                file=sys.stderr,
            )
            return 2
        result = benchmark.verify_method(args.method, checker)
        status = "VERIFIED" if result.verified else f"REJECTED: {result.error}"
        print(f"{benchmark.key}.{args.method}: {status}")
        print(f"  {result.stats.as_row()}")
        _note_trace_counters(checker.run_diagnostics()["caches"], store)
        _finish_store(store)
        if store is not None:
            _print_store_report(store, args.explain)
        return 0 if result.verified else 1
    stats = benchmark.verify_all(checker)
    for result in stats.method_results:
        status = "ok" if result.verified else f"FAILED ({result.error})"
        print(f"  {result.method:>20}: {status}")
    print(f"{benchmark.key}: all verified = {stats.all_verified}")
    _note_trace_counters(checker.run_diagnostics()["caches"], store)
    _finish_store(store)
    if store is not None:
        _print_store_report(store, args.explain)
    return 0 if stats.all_verified else 1


def _cmd_evaluate(args: argparse.Namespace) -> int:
    config = _config_from_args(args)
    distributed = getattr(args, "distributed", False) or args.command == "dispatch"
    if distributed and not getattr(args, "store", None):
        print(
            "error: distributed evaluation needs --store http://host:port "
            "(a `repro store serve` instance)",
            file=sys.stderr,
        )
        return 2
    store = _open_store(args, config)
    if distributed:
        from .engine.dispatch import run_distributed_evaluation

        try:
            report = run_distributed_evaluation(
                store,
                include_slow=not args.fast,
                config=config,
                local_workers=getattr(args, "local_workers", 0),
                ttl=getattr(args, "lease_ttl", 30.0),
                drain_timeout=getattr(args, "drain_timeout", 600.0),
            )
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    elif args.shards > 1:
        from .store.shard import run_sharded_evaluation

        report = run_sharded_evaluation(
            args.shards, store, include_slow=not args.fast, config=config
        )
    else:
        report = run_evaluation(include_slow=not args.fast, config=config, store=store)
    _note_trace_counters(report.cache_totals(), store)
    _finish_store(store)
    ok = report.all_verified and report.all_negatives_rejected
    if args.json:
        print(json.dumps(report_json(report, store=store), indent=2, sort_keys=True))
        return 0 if ok else 1
    print(render_all(report))
    print(f"\ntotal wall-clock time: {report.total_time_seconds:.1f} s")
    print(f"all positive benchmarks verified: {report.all_verified}")
    print(f"all negative variants rejected:  {report.all_negatives_rejected}")
    if store is not None:
        _print_store_report(store, args.explain)
    return 0 if ok else 1


def _cmd_table(args: argparse.Namespace) -> int:
    if args.number == 2:
        if args.json:
            from .evaluation.tables import table2_rows

            print(json.dumps(table2_rows(), indent=2, sort_keys=True))
        else:
            print(table2())
        return 0
    config = _config_from_args(args)
    store = _open_store(args, config)
    report = run_evaluation(include_slow=not args.fast, config=config, store=store)
    _note_trace_counters(report.cache_totals(), store)
    _finish_store(store)
    if args.json:
        from .evaluation.tables import TABLE3_ADTS, TABLE4_ADTS

        payload = report_json(report, store=store)
        if args.number == 1:
            rows = payload["adts"]
        else:
            adts = TABLE3_ADTS if args.number == 3 else TABLE4_ADTS
            rows = [row for row in payload["per_method"] if row["Datatype"] in adts]
        print(json.dumps(rows, indent=2, sort_keys=True))
        return 0
    renderer = {1: table1, 3: table3, 4: table4}[args.number]
    print(renderer(report))
    if store is not None:
        _print_store_report(store, args.explain)
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .perf.bench import compare_payloads, load_payload, run_bench, summarize

    config = _config_from_args(args)
    try:
        payload = run_bench(
            include_slow=args.full,
            runs=1 if args.quick else args.runs,
            config=config,
            ab=args.ab,
            dispatch_ab=args.dispatch_ab,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.output:
        from pathlib import Path

        Path(args.output).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
    print(summarize(payload))
    if args.baseline:
        try:
            baseline = load_payload(args.baseline)
        except (OSError, ValueError) as exc:
            print(f"error: cannot read baseline {args.baseline!r}: {exc}", file=sys.stderr)
            return 2
        try:
            ok, messages = compare_payloads(payload, baseline, tolerance=args.tolerance)
        except (ValueError, KeyError, TypeError) as exc:
            # a malformed baseline must diagnose the offending field, not
            # traceback (known-optional fields — e.g. a missing warm phase —
            # are reported as messages inside compare_payloads instead)
            print(f"error: cannot read baseline {args.baseline!r}: {exc}", file=sys.stderr)
            return 2
        for message in messages:
            print(message)
        return 0 if ok else 1
    return 0


def _cmd_trace_report(args: argparse.Namespace) -> int:
    from .obs.report import analyze_trace, render_report
    from .obs.trace import read_trace

    try:
        data = read_trace(args.path)
    except (OSError, ValueError) as exc:
        print(f"error: cannot read trace {args.path!r}: {exc}", file=sys.stderr)
        return 2
    print(render_report(data, top=args.top))
    if args.min_coverage is not None:
        coverage = analyze_trace(data)["coverage"]
        if coverage < args.min_coverage:
            print(
                f"error: attributed coverage {coverage:.1%} is below the "
                f"required {args.min_coverage:.1%}",
                file=sys.stderr,
            )
            return 1
    return 0


def _cmd_trace_validate(args: argparse.Namespace) -> int:
    from .obs.schema import validate_trace_file

    errors = validate_trace_file(args.path)
    if errors:
        for error in errors:
            print(f"error: {error}", file=sys.stderr)
        return 1
    print(f"{args.path}: valid trace (schema {obs_trace.TRACE_SCHEMA})")
    return 0


def _cmd_trace_overhead(args: argparse.Namespace) -> int:
    """Measure tracer overhead: traced vs untraced cold fast-corpus evaluate.

    Best-of-N on each side (same damping the bench harness uses) so scheduler
    noise doesn't read as tracer cost; exit 1 when the relative overhead
    exceeds the tolerance — the CI trace-smoke gate.
    """
    config = _config_from_args(args)
    # one unmeasured warmup so import/JIT-ish first-run costs hit neither side
    run_evaluation(include_slow=False, config=config)
    best: dict[str, float] = {}
    for label, traced in (("untraced", False), ("traced", True)):
        walls = []
        for _ in range(args.runs):
            if traced:
                obs_trace.install(obs_trace.Tracer())
            try:
                started = time.perf_counter()
                run_evaluation(include_slow=False, config=config)
                walls.append(time.perf_counter() - started)
            finally:
                if traced:
                    obs_trace.uninstall()
        best[label] = min(walls)
    overhead = best["traced"] / best["untraced"] - 1.0
    print(f"untraced cold evaluate (best of {args.runs}): {best['untraced']:.3f}s")
    print(f"traced   cold evaluate (best of {args.runs}): {best['traced']:.3f}s")
    print(f"tracer overhead: {overhead:+.1%} (tolerance {args.tolerance:.0%})")
    return 0 if overhead <= args.tolerance else 1


def _cmd_store_gc(args: argparse.Namespace) -> int:
    try:
        store = ObligationStore(
            args.store or DEFAULT_STORE_PATH, backend=args.store_backend
        )
        dropped = store.gc(args.keep_last)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(
        f"store gc: dropped {dropped} entr{'y' if dropped == 1 else 'ies'}, "
        f"{len(store)} kept (referenced by the last {args.keep_last} runs)"
    )
    return 0


def _cmd_store_serve(args: argparse.Namespace) -> int:
    """Run the long-lived shared-cache service in the foreground.

    Binds, optionally writes the bound URL to ``--ready-file`` (the robust
    "server is up" signal for scripts — with ``--port 0`` the kernel picks
    the port), then serves until SIGINT/SIGTERM and shuts down cleanly.
    """
    import signal
    import threading
    from pathlib import Path

    from .store.server import StoreHTTPServer, StoreService

    try:
        service = StoreService(
            args.store or DEFAULT_STORE_PATH, backend=args.store_backend
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        server = StoreHTTPServer((args.host, args.port), service)
    except OSError as exc:
        service.close()
        print(f"error: cannot bind {args.host}:{args.port}: {exc}", file=sys.stderr)
        return 2
    identity = service.op_handshake({})
    if args.ready_file:
        Path(args.ready_file).write_text(server.url + "\n")
    print(
        f"serving {identity['backend']} store {identity['path']} at "
        f"{server.url} ({identity['entries']} entries)",
        flush=True,
    )
    if identity["skipped"]:
        print(
            f"warning: skipped {identity['skipped']} corrupt record(s) at load",
            file=sys.stderr,
        )
    stop = threading.Event()
    for signum in (signal.SIGINT, signal.SIGTERM):
        signal.signal(signum, lambda *_: stop.set())
    loop = threading.Thread(target=server.serve_forever, daemon=True)
    loop.start()
    try:
        stop.wait()
    except KeyboardInterrupt:
        pass
    server.shutdown()
    loop.join()
    server.server_close()
    service.close()
    print("store server stopped", flush=True)
    return 0


def _cmd_store_stats(args: argparse.Namespace) -> int:
    """Print a store server's ``/stats`` snapshot (metrics-layer slice)."""
    from .store.remote import RemoteStoreBackend

    try:
        backend = RemoteStoreBackend(args.url)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        backend.handshake()
        stats = backend.stats()
    except RemoteStoreError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        backend.close()
    if args.json:
        print(json.dumps(stats, indent=2, sort_keys=True))
        return 0
    lookup = stats.get("lookup", {})
    requested = lookup.get("requested", 0)
    found = lookup.get("found", 0)
    rate = f"{found / requested:.1%}" if requested else "n/a"
    print(f"store server {args.url}")
    print(
        f"  uptime {stats.get('uptime_seconds', 0):.0f}s, "
        f"{stats.get('entries', 0)} entries, {stats.get('runs', 0)} runs, "
        f"{stats.get('idempotency_clients', 0)} known clients"
    )
    print(f"  lookup hit rate: {rate} ({found}/{requested})")
    queue = stats.get("queue", {})
    print(
        f"  queue: {queue.get('pending', 0)} pending, {queue.get('leased', 0)} "
        f"leased, {queue.get('leases', 0)} active leases"
    )
    for counter, value in sorted(queue.get("counters", {}).items()):
        print(f"    {counter}: {value}")
    ops = stats.get("ops", {})
    if ops:
        print("  per-op (count / replays / seconds):")
        for op, record in sorted(ops.items()):
            print(
                f"    {op:>14}: {record.get('count', 0):>6} / "
                f"{record.get('replays', 0):>4} / {record.get('seconds', 0.0):.3f}s"
            )
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    """Run one pull-based discharge worker against a store server."""
    from .engine.worker import run_worker

    config = _config_from_args(args)
    try:
        stats = run_worker(
            args.store,
            config=config,
            batch=args.batch,
            ttl=args.ttl,
            poll=args.poll,
            idle_exit=args.idle_exit,
            max_batches=args.max_batches,
            worker_id=args.worker_id,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(
        f"worker done: {stats.leases} leases, {stats.items} items, "
        f"{stats.completed} completed, {stats.benchmarks_run} benchmark walks"
        + (f", {stats.abandoned} abandoned" if stats.abandoned else "")
        + (f", {stats.unknown_benchmarks} unknown" if stats.unknown_benchmarks else "")
    )
    return 0


def _cmd_store_migrate(args: argparse.Namespace) -> int:
    try:
        source_name, _ = resolve_store_backend(args.source, args.from_backend)
        destination_name, _ = resolve_store_backend(args.destination, args.to_backend)
        if source_name == destination_name and args.to_backend in (None, "auto"):
            # the common "convert this store" case: flip the backend when the
            # destination path doesn't already say which one it wants
            destination_name = "sqlite" if source_name == "jsonl" else "jsonl"
        copied = migrate_store(
            args.source,
            args.destination,
            source_backend=source_name,
            destination_backend=destination_name,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(
        f"store migrate: {copied['entries']} entries and {copied['runs']} run "
        f"records copied {source_name} → {destination_name} ({args.destination})"
    )
    return 0


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="pymarple",
        description="Verify representation invariants with Hoare Automata Types",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the benchmark corpus").set_defaults(func=_cmd_list)

    for name, help_text in (
        ("check", "verify one ADT/library benchmark"),
        ("verify", "alias of check"),
    ):
        check = sub.add_parser(name, help=help_text)
        check.add_argument("benchmark", help="benchmark key, e.g. Set/KVStore")
        check.add_argument("--method", help="verify a single method only")
        _add_checker_flags(check)
        _add_store_flags(check)
        _add_obs_flags(check)
        check.set_defaults(func=_cmd_check)

    def _add_dispatch_flags(parser: argparse.ArgumentParser) -> None:
        group = parser.add_argument_group("distributed discharge")
        group.add_argument(
            "--local-workers",
            type=int,
            default=0,
            metavar="N",
            help="also fork N pull-based workers locally (0 = external fleet only)",
        )
        group.add_argument(
            "--lease-ttl",
            type=float,
            default=30.0,
            metavar="SEC",
            help="lease deadline workers run under; expired leases are re-issued (default: 30)",
        )
        group.add_argument(
            "--drain-timeout",
            type=float,
            default=600.0,
            metavar="SEC",
            help="give up (exit 2) if the queue hasn't drained in SEC; work done stays durable",
        )

    evaluate = sub.add_parser("evaluate", help="run the full evaluation")
    evaluate.add_argument("--fast", action="store_true", help="skip the slow benchmarks")
    evaluate.add_argument(
        "--shards",
        type=int,
        default=1,
        metavar="N",
        help="partition the corpus's obligations across N processes (implies a store)",
    )
    evaluate.add_argument(
        "--distributed",
        action="store_true",
        help=(
            "enqueue cold obligations on the store server's work queue for a "
            "pull-based worker fleet, then assemble the (byte-identical) "
            "report from the store (requires --store http://host:port)"
        ),
    )
    evaluate.add_argument("--json", action="store_true", help="emit a machine-readable report")
    _add_dispatch_flags(evaluate)
    _add_checker_flags(evaluate)
    _add_store_flags(evaluate)
    _add_obs_flags(evaluate)
    evaluate.set_defaults(func=_cmd_evaluate)

    dispatch = sub.add_parser(
        "dispatch",
        help="distributed evaluation: enqueue obligations for `repro worker` pullers",
    )
    dispatch.add_argument("--fast", action="store_true", help="skip the slow benchmarks")
    dispatch.add_argument("--json", action="store_true", help="emit a machine-readable report")
    _add_dispatch_flags(dispatch)
    _add_checker_flags(dispatch)
    _add_store_flags(dispatch)
    _add_obs_flags(dispatch)
    dispatch.set_defaults(func=_cmd_evaluate, shards=1, distributed=True)

    worker = sub.add_parser(
        "worker",
        help="pull-based discharge worker: lease, discharge, complete until drained",
    )
    worker.add_argument(
        "--store",
        required=True,
        metavar="URL",
        help="http://host:port of the `store serve` instance owning the queue",
    )
    worker.add_argument(
        "--batch", type=int, default=8, metavar="N",
        help="items per lease (default: 8)",
    )
    worker.add_argument(
        "--ttl", type=float, default=30.0, metavar="SEC",
        help="lease deadline; extended between benchmarks (default: 30)",
    )
    worker.add_argument(
        "--poll", type=float, default=0.5, metavar="SEC",
        help="sleep between empty leases (default: 0.5)",
    )
    worker.add_argument(
        "--idle-exit", type=int, default=3, metavar="N",
        help="exit after N consecutive empty leases (default: 3)",
    )
    worker.add_argument(
        "--max-batches", type=int, default=None, metavar="N",
        help="stop after N leases (default: run until drained)",
    )
    worker.add_argument(
        "--worker-id", metavar="ID",
        help="stable identity reported in leases/spans (default: host:pid:rand)",
    )
    _add_checker_flags(worker)
    _add_obs_flags(worker)
    worker.set_defaults(func=_cmd_worker)

    bench = sub.add_parser(
        "bench",
        help="run the tracked benchmark harness (cold + warm fast corpus)",
    )
    bench.add_argument(
        "--quick", action="store_true", help="one timing run per phase (CI smoke mode)"
    )
    bench.add_argument(
        "--runs",
        type=int,
        default=3,
        metavar="N",
        help="timing runs per phase; the best run is reported (default: 3)",
    )
    bench.add_argument(
        "--full", action="store_true", help="benchmark the full corpus, slow rows included"
    )
    bench.add_argument(
        "--output", metavar="PATH", help="write the JSON report to PATH (e.g. BENCH_PR5.json)"
    )
    bench.add_argument(
        "--baseline",
        metavar="PATH",
        help="compare against a recorded report; exit 1 on cold wall-time regression",
    )
    bench.add_argument(
        "--tolerance",
        type=float,
        default=0.2,
        metavar="F",
        help="allowed relative cold wall-time regression vs the baseline (default: 0.2)",
    )
    bench.add_argument(
        "--ab",
        action="store_true",
        help=(
            "also time cold runs in the other discharge mode (batch vs lazy) "
            "and record the comparison — including a byte-identity check of "
            "the deterministic tables — in the payload"
        ),
    )
    bench.add_argument(
        "--dispatch-ab",
        action="store_true",
        help=(
            "also run the straggler-skew dispatch microbench (static hash "
            "shards vs work-stealing queue over an in-process store server) "
            "and record the makespan comparison in the payload"
        ),
    )
    _add_checker_flags(bench)
    bench.set_defaults(func=_cmd_bench)

    store = sub.add_parser("store", help="manage a persistent obligation store")
    store_sub = store.add_subparsers(dest="store_command", required=True)
    gc = store_sub.add_parser(
        "gc", help="expire entries unreferenced by the last N runs"
    )
    gc.add_argument(
        "--keep-last",
        type=int,
        required=True,
        metavar="N",
        help="runs whose referenced entries survive the sweep",
    )
    gc.add_argument(
        "--store",
        metavar="PATH",
        help=f"store directory (default: {DEFAULT_STORE_PATH})",
    )
    gc.add_argument(
        "--store-backend",
        choices=("auto",) + KNOWN_STORE_BACKENDS,
        default=None,
        help="force the store's persistence backend (default: infer from the path)",
    )
    gc.set_defaults(func=_cmd_store_gc)
    serve = store_sub.add_parser(
        "serve",
        help="serve a local store over HTTP for --store http://host:port clients",
    )
    serve.add_argument(
        "--store",
        metavar="PATH",
        help=f"local store to serve: a directory or .db file (default: {DEFAULT_STORE_PATH})",
    )
    serve.add_argument(
        "--store-backend",
        choices=("auto",) + KNOWN_STORE_BACKENDS,
        default=None,
        help="force the served store's persistence backend (default: infer from the path)",
    )
    serve.add_argument(
        "--host",
        default="127.0.0.1",
        help="interface to bind (default: 127.0.0.1; use 0.0.0.0 for a fleet)",
    )
    serve.add_argument(
        "--port",
        type=int,
        default=8642,
        help="port to bind; 0 lets the kernel pick one (default: 8642)",
    )
    serve.add_argument(
        "--ready-file",
        metavar="PATH",
        help="write the bound URL here once serving — the up-signal for scripts",
    )
    serve.set_defaults(func=_cmd_store_serve)
    stats = store_sub.add_parser(
        "stats",
        help="print a store server's per-op counts, lookup hit rate and queue state",
    )
    stats.add_argument("url", help="http://host:port of the `store serve` instance")
    stats.add_argument("--json", action="store_true", help="emit the raw stats JSON")
    stats.set_defaults(func=_cmd_store_stats)
    migrate = store_sub.add_parser(
        "migrate",
        help="copy a store losslessly between the jsonl and sqlite backends",
    )
    migrate.add_argument("source", help="existing store (directory or .db file)")
    migrate.add_argument(
        "destination",
        help=(
            "destination store path; with no explicit backend, an unsuffixed "
            "fresh path converts to the other backend"
        ),
    )
    migrate.add_argument(
        "--from-backend",
        choices=("auto",) + KNOWN_STORE_BACKENDS,
        default=None,
        help="force how the source is read (default: infer from the path)",
    )
    migrate.add_argument(
        "--to-backend",
        choices=("auto",) + KNOWN_STORE_BACKENDS,
        default=None,
        help="force the destination backend (default: infer, else the other backend)",
    )
    migrate.set_defaults(func=_cmd_store_migrate)

    table = sub.add_parser("table", help="print one of the paper's tables")
    table.add_argument("number", type=int, choices=(1, 2, 3, 4))
    table.add_argument("--fast", action="store_true", help="skip the slow benchmarks")
    table.add_argument("--json", action="store_true", help="emit the rows as JSON")
    _add_checker_flags(table)
    _add_store_flags(table)
    _add_obs_flags(table)
    table.set_defaults(func=_cmd_table)

    tracecmd = sub.add_parser("trace", help="inspect, validate and gate trace files")
    trace_sub = tracecmd.add_subparsers(dest="trace_command", required=True)
    trace_report = trace_sub.add_parser(
        "report",
        help="phase breakdown, slowest obligations and cache rates of a trace",
    )
    trace_report.add_argument("path", help="trace file (.jsonl or Chrome trace-event JSON)")
    trace_report.add_argument(
        "--top",
        type=int,
        default=10,
        metavar="N",
        help="slowest obligations to list, keyed by store fingerprint (default: 10)",
    )
    trace_report.add_argument(
        "--min-coverage",
        type=float,
        default=None,
        metavar="F",
        help="exit 1 unless attributed spans cover at least this fraction of wall time",
    )
    trace_report.set_defaults(func=_cmd_trace_report)
    trace_validate = trace_sub.add_parser(
        "validate", help="check a trace file against the span schema"
    )
    trace_validate.add_argument("path", help="trace file (.jsonl or Chrome trace-event JSON)")
    trace_validate.set_defaults(func=_cmd_trace_validate)
    trace_overhead = trace_sub.add_parser(
        "overhead",
        help="measure tracer overhead (traced vs untraced cold fast-corpus evaluate)",
    )
    trace_overhead.add_argument(
        "--runs",
        type=int,
        default=3,
        metavar="N",
        help="timing runs per side; the best run on each side is compared (default: 3)",
    )
    trace_overhead.add_argument(
        "--tolerance",
        type=float,
        default=0.10,
        metavar="F",
        help="allowed relative traced-vs-untraced overhead (default: 0.10)",
    )
    _add_checker_flags(trace_overhead)
    trace_overhead.set_defaults(func=_cmd_trace_overhead)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        configure_logging(getattr(args, "log_level", None))
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    trace_path = getattr(args, "trace", None) or os.environ.get(obs_trace.ENV_TRACE)
    try:
        if trace_path:
            with obs_trace.session(trace_path, meta={"command": args.command}):
                status = args.func(args)
            print(f"trace written to {trace_path}", file=sys.stderr)
            return status
        return args.func(args)
    except (RemoteStoreError, DispatchError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
