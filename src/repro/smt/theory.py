"""Theory combination for the lazy SMT loop.

A candidate boolean model from the SAT core induces a conjunction of theory
literals.  This module checks that conjunction against the combination of
EUF (congruence closure) and linear integer arithmetic, with a light-weight
Nelson–Oppen style propagation of EUF-implied equalities between Int-sorted
terms into the arithmetic solver.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from . import arith, euf, terms
from .terms import Term


@dataclass
class TheoryResult:
    consistent: bool
    #: literals explaining the conflict (a subset of those passed in);
    #: empty when consistent.
    conflict: list[tuple[Term, bool]]


def _is_arith_atom(atom: Term) -> bool:
    if atom.kind in (terms.LT, terms.LE):
        return True
    if atom.kind == terms.EQ and atom.children[0].sort.is_int:
        return True
    return False


def _is_euf_atom(atom: Term) -> bool:
    if atom.kind == terms.EQ:
        return True
    if atom.kind == terms.APP and atom.sort.is_bool:
        return True
    if atom.kind == terms.VAR and atom.sort.is_bool:
        return True
    return False


def check_theory(literals: Iterable[tuple[Term, bool]]) -> TheoryResult:
    """Check a conjunction of literals for EUF + LIA consistency."""
    literal_list = list(literals)

    euf_literals = [(a, v) for a, v in literal_list if _is_euf_atom(a)]
    arith_literals = [(a, v) for a, v in literal_list if _is_arith_atom(a)]

    euf_result = euf.check_euf(euf_literals)
    if not euf_result.consistent:
        return TheoryResult(consistent=False, conflict=euf_result.conflict)

    if arith_literals:
        shared_terms = [
            node
            for atom, _ in arith_literals
            for node in atom.walk()
            if node.sort.is_int and node.kind in (terms.APP, terms.VAR)
        ]
        shared = euf.implied_int_equalities(euf_literals, extra_terms=shared_terms)
        if not arith.check_arith(arith_literals, extra_equalities=shared):
            # conflict explanation: the arithmetic literals plus the equalities
            # that fed them (we conservatively include the EUF equalities).
            conflict = arith_literals + [
                (a, v) for a, v in euf_literals if a.kind == terms.EQ and v
            ]
            return TheoryResult(consistent=False, conflict=conflict)

    return TheoryResult(consistent=True, conflict=[])
