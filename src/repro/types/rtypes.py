"""Refinement types and Hoare Automata Types (Fig. 4 of the paper).

The type grammar reproduced here:

* pure refinement types ``{ν : b | φ}``,
* dependent function types ``x:t → τ``,
* ghost-variable arrows ``x:b ⤳ τ``,
* Hoare Automata Types ``[A] t [B]`` qualifying a pure type with a
  precondition and a postcondition symbolic automaton,
* intersections of HATs ``τ ⊓ τ``.

Types are plain immutable dataclasses; substitution of program variables maps
through both the logical qualifiers and the automata.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence, Union

from .. import smt
from ..smt.sorts import Sort
from ..sfa import symbolic
from ..sfa.symbolic import Sfa

#: The canonical refinement binder ν, one per sort.
def nu(sort: Sort) -> smt.Term:
    return smt.var(f"nu:{sort.name}", sort)


@dataclass(frozen=True)
class RefinementType:
    """``{ν : b | φ}`` — a base sort refined by a qualifier over ν."""

    sort: Sort
    qualifier: smt.Term = smt.TRUE

    @property
    def binder(self) -> smt.Term:
        return nu(self.sort)

    def instantiate(self, value: smt.Term) -> smt.Term:
        """The qualifier with ν replaced by ``value``."""
        return smt.substitute(self.qualifier, {self.binder: value})

    def substitute(self, mapping: Mapping[smt.Term, smt.Term]) -> "RefinementType":
        return RefinementType(self.sort, smt.substitute(self.qualifier, dict(mapping)))

    def __repr__(self) -> str:
        if self.qualifier.is_true:
            return self.sort.name
        return f"{{ν:{self.sort.name} | {self.qualifier!r}}}"


def base(sort: Sort) -> RefinementType:
    """``{ν : b | ⊤}`` (the paper's abbreviation ``b``)."""
    return RefinementType(sort)


def singleton(sort: Sort, value: smt.Term) -> RefinementType:
    """``{ν : b | ν = value}``."""
    return RefinementType(sort, smt.eq(nu(sort), value))


@dataclass(frozen=True)
class HatType:
    """``[A] {ν:b|φ} [B]`` — a Hoare Automata Type."""

    precondition: Sfa
    result: RefinementType
    postcondition: Sfa

    def substitute(self, mapping: Mapping[smt.Term, smt.Term]) -> "HatType":
        mapping = dict(mapping)
        return HatType(
            precondition=symbolic.substitute(self.precondition, mapping),
            result=self.result.substitute(mapping),
            postcondition=symbolic.substitute(self.postcondition, mapping),
        )

    def __repr__(self) -> str:
        return f"[{self.precondition!r}] {self.result!r} [{self.postcondition!r}]"


@dataclass(frozen=True)
class Intersection:
    """An intersection of HATs, used for operators with several behaviours."""

    cases: tuple[HatType, ...]

    def __post_init__(self) -> None:
        if not self.cases:
            raise ValueError("an intersection needs at least one case")
        sorts = {case.result.sort for case in self.cases}
        if len(sorts) > 1:
            raise ValueError("intersected HATs must share a base type (WFInter)")

    def substitute(self, mapping: Mapping[smt.Term, smt.Term]) -> "Intersection":
        return Intersection(tuple(case.substitute(mapping) for case in self.cases))

    def __repr__(self) -> str:
        return " ⊓ ".join(repr(case) for case in self.cases)


EffectType = Union[HatType, Intersection]


def cases_of(effect: EffectType) -> tuple[HatType, ...]:
    """The HAT cases of a possibly-intersected effect type."""
    if isinstance(effect, HatType):
        return (effect,)
    return effect.cases


@dataclass(frozen=True)
class FunType:
    """``x : t → τ`` — dependent function type."""

    param_name: str
    param_type: Union[RefinementType, "FunType"]
    result: Union["FunType", RefinementType, HatType, Intersection, "GhostArrow"]

    def substitute(self, mapping: Mapping[smt.Term, smt.Term]) -> "FunType":
        return FunType(
            self.param_name,
            self.param_type.substitute(mapping),
            self.result.substitute(mapping),
        )

    def __repr__(self) -> str:
        return f"{self.param_name}:{self.param_type!r} → {self.result!r}"


@dataclass(frozen=True)
class GhostArrow:
    """``x : b ⤳ τ`` — a ghost (purely logical) variable binder."""

    name: str
    sort: Sort
    body: Union[FunType, RefinementType, HatType, Intersection, "GhostArrow"]

    @property
    def variable(self) -> smt.Term:
        return smt.var(self.name, self.sort)

    def substitute(self, mapping: Mapping[smt.Term, smt.Term]) -> "GhostArrow":
        mapping = {k: v for k, v in mapping.items() if k is not self.variable}
        return GhostArrow(self.name, self.sort, self.body.substitute(mapping))

    def __repr__(self) -> str:
        return f"{self.name}:{self.sort.name} ⤳ {self.body!r}"


Type = Union[RefinementType, FunType, GhostArrow, HatType, Intersection]


# ---------------------------------------------------------------------------
# Type erasure (Fig. 5): the shape of a type with all qualifiers removed
# ---------------------------------------------------------------------------


def erase(ty: Type) -> str:
    """A string rendering of the erased (basic) type — used for diagnostics."""
    if isinstance(ty, RefinementType):
        return ty.sort.name
    if isinstance(ty, HatType):
        return erase(ty.result)
    if isinstance(ty, Intersection):
        return erase(ty.cases[0])
    if isinstance(ty, FunType):
        return f"{erase(ty.param_type)} -> {erase(ty.result)}"
    if isinstance(ty, GhostArrow):
        return erase(ty.body)
    raise TypeError(f"unexpected type {ty!r}")


def strip_ghosts(ty: Type) -> tuple[list[tuple[str, Sort]], Type]:
    """Split the leading ghost binders off a type."""
    ghosts: list[tuple[str, Sort]] = []
    while isinstance(ty, GhostArrow):
        ghosts.append((ty.name, ty.sort))
        ty = ty.body
    return ghosts, ty


def function_signature(ty: Type) -> tuple[list[tuple[str, Sort]], list[tuple[str, RefinementType]], EffectType | RefinementType]:
    """Decompose ``ghosts ⤳ params → effect`` into its three parts."""
    ghosts, rest = strip_ghosts(ty)
    params: list[tuple[str, RefinementType]] = []
    while isinstance(rest, FunType):
        if not isinstance(rest.param_type, RefinementType):
            raise TypeError("higher-order parameters must be decomposed by the caller")
        params.append((rest.param_name, rest.param_type))
        rest = rest.result
    if not isinstance(rest, (HatType, Intersection, RefinementType)):
        raise TypeError(f"unexpected result type {rest!r}")
    return ghosts, params, rest
