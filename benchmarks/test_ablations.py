"""Ablation benchmarks for the design choices called out in DESIGN.md.

* minterm satisfiability filtering (Algorithm 1's pruning) on/off,
* DFA minimisation inside the inclusion check on/off,
* derivative-product inclusion vs complement-intersect-emptiness,
* infeasible-branch pruning in the checker on/off.
"""

import pytest

from repro import smt
from repro.smt.sorts import ELEM
from repro.sfa import symbolic as S
from repro.sfa.inclusion import InclusionChecker
from repro.suite.set_kvstore import set_kvstore
from repro.typecheck.checker import CheckerConfig


def _insert_obligation(bench):
    """The key inclusion obligation of Set/KVStore's insert method."""
    library = bench.library
    put = library.operators["put"]
    exists = library.operators["exists"]
    el = smt.var("el", ELEM)
    x = smt.var("x", ELEM)
    invariant = bench.invariant
    not_exists = S.not_(S.eventually(S.event_pinned(put, {"key": x})))
    exists_false = S.and_(S.event_pinned(exists, {"key": x}, result=smt.FALSE), S.last())
    context = S.concat(S.and_(invariant, not_exists), exists_false)
    put_event = S.and_(S.event_pinned(put, {"key": x, "value": x}), S.last())
    lhs = S.concat(context, put_event)
    return [smt.TRUE], lhs, invariant


@pytest.mark.parametrize("filter_unsat", [True, False], ids=["filtered", "unfiltered"])
def test_ablation_minterm_filtering(benchmark, filter_unsat):
    """Algorithm 1's satisfiability filter is needed for *completeness*, not just speed.

    Without it, unsatisfiable characters stay in the alphabet, the abstract
    language of the context grows, and the (valid) insert obligation is no
    longer provable — which is exactly what this ablation demonstrates.
    """
    bench = set_kvstore()
    hyps, lhs, rhs = _insert_obligation(bench)

    def run():
        checker = InclusionChecker(
            smt.Solver(), bench.library.operators, filter_unsat_minterms=filter_unsat
        )
        included = checker.check(hyps, lhs, rhs)
        return checker.stats, included

    stats, included = benchmark(run)
    assert included == filter_unsat  # provable only with the minterm filter
    benchmark.extra_info["obligation proved"] = included
    benchmark.extra_info["characters kept"] = stats.satisfiable_minterms
    benchmark.extra_info["avg sFA"] = round(stats.average_transitions, 1)


@pytest.mark.parametrize("strategy", ["guided", "exhaustive"])
def test_ablation_enumeration_strategy(benchmark, strategy):
    """Solver-guided AllSAT enumeration vs the per-candidate minterm walk.

    Both must prove the same obligation; the extra info records the #SAT
    saving that motivates the guided default.
    """
    bench = set_kvstore()
    hyps, lhs, rhs = _insert_obligation(bench)

    def run():
        checker = InclusionChecker(smt.Solver(), bench.library.operators, strategy=strategy)
        included = checker.check(hyps, lhs, rhs)
        return checker, included

    checker, included = benchmark(run)
    assert included
    benchmark.extra_info["#SAT"] = checker.solver.stats.queries
    benchmark.extra_info["cache hits"] = checker.solver.stats.cache_hits
    benchmark.extra_info["models enumerated"] = checker.solver.stats.models_enumerated


@pytest.mark.parametrize("minimize", [False, True], ids=["raw", "minimized"])
def test_ablation_dfa_minimization(benchmark, minimize):
    bench = set_kvstore()
    hyps, lhs, rhs = _insert_obligation(bench)

    def run():
        # minimisation only applies when DFAs are actually materialised
        checker = InclusionChecker(
            smt.Solver(), bench.library.operators, minimize=minimize, discharge="compiled"
        )
        assert checker.check(hyps, lhs, rhs)
        return checker.stats

    stats = benchmark(run)
    benchmark.extra_info["avg sFA"] = round(stats.average_transitions, 1)


@pytest.mark.parametrize("discharge", ["lazy", "compiled"])
def test_ablation_discharge_mode(benchmark, discharge):
    """Lazy on-the-fly product walk vs compiling both DFAs (Algorithm 1)."""
    bench = set_kvstore()
    hyps, lhs, rhs = _insert_obligation(bench)

    def run():
        checker = InclusionChecker(smt.Solver(), bench.library.operators, discharge=discharge)
        assert checker.check(hyps, lhs, rhs)
        return checker.stats

    stats = benchmark(run)
    benchmark.extra_info["#prod-states"] = stats.prod_states
    benchmark.extra_info["DFA states built"] = stats.states_built


@pytest.mark.parametrize("strategy", ["product-walk", "complement-intersect"])
def test_ablation_inclusion_strategy(benchmark, strategy):
    """Compare the on-the-fly product inclusion with complement+intersect emptiness."""
    from repro.sfa.alphabet import build_alphabets
    from repro.sfa.derivatives import compile_dfa

    bench = set_kvstore()
    hyps, lhs, rhs = _insert_obligation(bench)
    solver = smt.Solver()
    alphabets = build_alphabets(solver, hyps, [lhs, rhs], bench.library.operators)

    def run():
        for alphabet in alphabets:
            lhs_dfa = compile_dfa(lhs, alphabet)
            rhs_dfa = compile_dfa(rhs, alphabet)
            if strategy == "product-walk":
                assert lhs_dfa.is_subset_of(rhs_dfa)
            else:
                assert lhs_dfa.intersect(rhs_dfa.complement()).is_empty()
        return len(alphabets)

    benchmark(run)


@pytest.mark.parametrize("prune", [True, False], ids=["prune-infeasible", "check-all-paths"])
def test_ablation_branch_pruning(benchmark, prune):
    bench = set_kvstore()
    config = CheckerConfig(prune_infeasible_branches=prune)

    def run():
        checker = bench.make_checker(config)
        result = bench.verify_method("insert", checker)
        assert result.verified, result.error
        return result

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["#SAT"] = result.stats.smt_queries
    benchmark.extra_info["#FA⊆"] = result.stats.fa_inclusion_checks
