"""The top-level SMT solver facade.

Implements the classic *lazy SMT* architecture: the input formula (plus
ground instances of the method-predicate axioms) is Tseitin-encoded and
handed to a pluggable SAT core (:mod:`repro.smt.backends` — DPLL, CDCL or an
external z3, selected by ``Solver(backend=...)`` / ``REPRO_BACKEND``); every
propositional model is checked against the EUF + linear-arithmetic theory
combination; theory conflicts are turned into blocking clauses until either
a theory-consistent model is found (SAT) or the propositional abstraction
becomes unsatisfiable (UNSAT).

The :class:`Solver` also exposes the two derived queries the type checker
needs — validity and implication — and records statistics (#SAT queries and
cumulative time) which feed the evaluation tables.

Two throughput features sit on top of the basic lazy loop:

* a **content-addressed query cache**: terms are hash-consed, so a goal's
  ``term_id`` is a canonical content address, and repeated satisfiability
  queries (ubiquitous in the alphabet transformation, which re-discharges the
  same context/minterm conjunctions across inclusion checks) are answered
  from a dictionary.  Hits and misses are counted in :class:`SolverStats`.
* **solver-guided model enumeration** (:meth:`Solver.enumerate_models`): an
  AllSAT-style loop that Tseitin-encodes the base formula *once* and then
  pushes blocking clauses into the incremental SAT core to walk the
  satisfiable assignments of a literal set directly, instead of re-encoding
  and re-solving one candidate conjunction at a time.  This is what lets the
  alphabet transformation skip entire unsatisfiable subtrees for free.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional, Sequence

from . import terms
from ..obs import trace
from ..statsutil import MergeableStats
from .axioms import Axiom, instantiate
from .backends import SatBackend, make_sat_backend, resolve_backend
from .cnf import CnfBuilder
from .terms import Term
from .theory import check_theory


@dataclass
class SolverStats(MergeableStats):
    """Counters mirroring the #SAT / t_SAT columns of the paper's tables.

    ``merge``/``snapshot``/``as_dict`` come from :class:`MergeableStats`, so
    every field added here automatically participates in worker-result merges.

    The ``sat_*`` fields are the SAT core's own counters (decisions,
    propagations, conflicts, restarts), accumulated across every encoded
    query.  Together with ``queries``/``theory_conflicts`` they are the
    *backend-sensitive* counters: which model a backend returns steers the
    enumeration's branching, so DPLL/CDCL/z3 legitimately report different
    values while agreeing on every verdict (and on every obligation-derived
    counter downstream).
    """

    queries: int = 0
    sat_results: int = 0
    unsat_results: int = 0
    theory_conflicts: int = 0
    #: answered from the content-addressed query / enumeration caches
    cache_hits: int = 0
    cache_misses: int = 0
    #: times a size cap wiped one of the solver's caches (bulk clear-all)
    cache_evictions: int = 0
    #: satisfiable assignments produced by :meth:`Solver.enumerate_models`
    models_enumerated: int = 0
    #: SAT-core internals (per-backend columns in the tables)
    sat_decisions: int = 0
    sat_propagations: int = 0
    sat_conflicts: int = 0
    sat_restarts: int = 0
    time_seconds: float = 0.0


class SolverError(RuntimeError):
    """Raised when the lazy loop exceeds its iteration budget."""


class Solver:
    """A reusable solver configured with a fixed set of background axioms."""

    def __init__(
        self,
        axioms: Sequence[Axiom] = (),
        *,
        instantiation_rounds: int = 2,
        max_lazy_iterations: int = 20000,
        max_cache_entries: int = 100_000,
        warm_from: Optional["Solver"] = None,
        backend: Optional[str] = None,
    ) -> None:
        self.axioms = tuple(axioms)
        #: which SAT core answers the encoded queries (dpll / cdcl / z3);
        #: ``None`` defers to REPRO_BACKEND, then "dpll"
        self.backend = resolve_backend(backend)
        self.instantiation_rounds = instantiation_rounds
        self.max_lazy_iterations = max_lazy_iterations
        self.max_cache_entries = max_cache_entries
        self.stats = SolverStats()
        # Terms are interned, so a term_id is a canonical content address for
        # the whole goal; both caches are sound because the axiom set of a
        # Solver instance is fixed at construction time.  Keys carry the
        # backend id: verdicts are backend-independent, but the per-backend
        # counters (#SAT, #Confl) are only pure in (backend, obligation) if a
        # warm view from another backend can never answer this one's queries.
        self._sat_cache: dict[tuple[str, int], bool] = {}
        self._enum_cache: dict[tuple, tuple] = {}
        # Theory conflicts are valid lemmas (the negation of an inconsistent
        # conjunction); remembering them across queries lets every later
        # encoding that mentions the same atoms prune those assignments
        # without re-deriving the conflict through the theory solver.
        self._theory_lemmas: dict[tuple, list[tuple[Term, bool]]] = {}
        # ``warm_from`` seeds this solver with a *read-only* view of another
        # solver's caches and lemmas (same axiom set required): lookups fall
        # back to the base dicts, writes stay local.  The obligation engine
        # uses this to let hermetic per-obligation solvers reuse the work of
        # the checker's inline phase without ever mutating shared state —
        # forked workers read the same base through copy-on-write memory.
        # The base must be a fixed snapshot for as long as this solver lives;
        # anything execution-order-dependent (e.g. a pool mutated by sibling
        # discharges) would leak scheduling into lemma installation, which
        # can steer the model-guided enumeration and with it the reported
        # query counts.
        if warm_from is not None and warm_from.axioms != self.axioms:
            raise ValueError("warm_from requires an identical axiom set")
        self._base_sat_cache: Mapping[tuple[str, int], bool] = (
            warm_from._sat_cache if warm_from is not None else {}
        )
        self._base_enum_cache: Mapping[tuple, tuple] = (
            warm_from._enum_cache if warm_from is not None else {}
        )
        # Lemmas are sound for any backend (they are theory facts), but the
        # set remembered depends on which models the base backend happened to
        # walk; installing another backend's lemma history would couple this
        # backend's #SAT counters to it.  Cross-backend warm views therefore
        # share nothing (the cache keys above diverge on the backend id too).
        self._base_theory_lemmas: Mapping[tuple, list[tuple[Term, bool]]] = (
            warm_from._theory_lemmas
            if warm_from is not None and warm_from.backend == self.backend
            else {}
        )

    def clear_caches(self) -> None:
        self._sat_cache.clear()
        self._enum_cache.clear()
        self._theory_lemmas.clear()

    # -- cross-query theory-lemma reuse -------------------------------------------------
    def _remember_lemma(self, conflict: list[tuple[Term, bool]]) -> None:
        if len(self._theory_lemmas) >= self.max_cache_entries:
            self._theory_lemmas.clear()
            self.stats.cache_evictions += 1
        key = tuple(sorted((atom.term_id, value) for atom, value in conflict))
        if key in self._base_theory_lemmas:
            return
        self._theory_lemmas.setdefault(key, conflict)

    def _install_lemmas(self, builder: CnfBuilder) -> None:
        """Assert every remembered lemma whose atoms this encoding mentions."""
        var_of_atom = builder.var_of_atom
        for key, lemma in self._base_theory_lemmas.items():
            if key in self._theory_lemmas:
                continue  # shadowed; the local copy is installed below
            if all(atom in var_of_atom for atom, _ in lemma):
                builder.block_assignment(lemma)
        for lemma in self._theory_lemmas.values():
            if all(atom in var_of_atom for atom, _ in lemma):
                builder.block_assignment(lemma)

    # -- primitive queries ----------------------------------------------------------
    def is_satisfiable(self, formula: Term, *, extra: Iterable[Term] = ()) -> bool:
        """Is ``formula`` (conjoined with ``extra``) satisfiable modulo the axioms?

        Results are memoised per canonical goal term; ``stats.queries`` counts
        only the queries that actually reach the lazy SMT loop, while cache
        hits are tallied in ``stats.cache_hits``.
        """
        goal = terms.and_(formula, *extra)
        key = (self.backend, goal.term_id)
        cached = self._sat_cache.get(key)
        if cached is None:
            cached = self._base_sat_cache.get(key)
        if cached is not None:
            self.stats.cache_hits += 1
            return cached
        start = time.perf_counter()
        self.stats.queries += 1
        self.stats.cache_misses += 1
        # only cache *misses* are spanned: hits are nanosecond dictionary
        # reads and would dominate the trace without carrying any time
        with trace.span("solver.check", cat="solver", backend=self.backend):
            result = self._check(goal)
        self.stats.time_seconds += time.perf_counter() - start
        if result:
            self.stats.sat_results += 1
        else:
            self.stats.unsat_results += 1
        if len(self._sat_cache) >= self.max_cache_entries:
            self._sat_cache.clear()
            self.stats.cache_evictions += 1
        self._sat_cache[key] = result
        return result

    def is_valid(self, formula: Term, *, hypotheses: Iterable[Term] = ()) -> bool:
        """Is ``hypotheses ==> formula`` valid modulo the axioms?"""
        negated = terms.and_(*hypotheses, terms.not_(formula))
        return not self.is_satisfiable(negated)

    def implies(self, hypotheses: Iterable[Term], conclusion: Term) -> bool:
        return self.is_valid(conclusion, hypotheses=hypotheses)

    # -- solver-guided model enumeration ------------------------------------------------
    def enumerate_models(
        self,
        literals: Sequence[Term],
        *,
        base: Optional[Term] = None,
        extra: Iterable[Term] = (),
    ) -> list[tuple[tuple[Term, bool], ...]]:
        """All assignments to ``literals`` consistent with ``base`` (AllSAT).

        Returns every signed assignment ``((lit, bool), ...)`` of the atoms in
        ``literals`` that extends to a theory-consistent model of ``base``
        modulo the axioms.  The base formula is Tseitin-encoded once; each
        found assignment (and each theory conflict) becomes a blocking clause
        pushed into the same incremental SAT core, so unsatisfiable subtrees
        of the 2^n candidate space are never visited.

        The result is returned in the canonical order of the exhaustive
        depth-first walk (``True`` branch before ``False``, literals in the
        given order), which keeps downstream alphabets — and therefore
        automata, character indices and counterexamples — byte-identical
        between the guided and exhaustive strategies.

        Results are memoised per ``(base, literals)`` content address.
        ``literals`` must be atoms (as produced by :func:`repro.smt.atoms`).
        """
        lits = tuple(literals)
        goal = terms.and_(base if base is not None else terms.TRUE, *extra)
        key = (self.backend, goal.term_id, tuple(lit.term_id for lit in lits))
        cached = self._enum_cache.get(key)
        if cached is None:
            cached = self._base_enum_cache.get(key)
        if cached is not None:
            self.stats.cache_hits += 1
            return list(cached)
        self.stats.cache_misses += 1
        start = time.perf_counter()
        try:
            with trace.span(
                "solver.enumerate", cat="solver", backend=self.backend, literals=len(lits)
            ):
                models = self._enumerate(goal, lits)
        finally:
            self.stats.time_seconds += time.perf_counter() - start
        models.sort(key=lambda assignment: tuple(not value for _, value in assignment))
        self.stats.models_enumerated += len(models)
        if len(self._enum_cache) >= self.max_cache_entries:
            self._enum_cache.clear()
            self.stats.cache_evictions += 1
        self._enum_cache[key] = tuple(models)
        return models

    def _enumerate(
        self, goal: Term, lits: tuple[Term, ...]
    ) -> list[tuple[tuple[Term, bool], ...]]:
        """Model-guided Shannon expansion over one shared incremental encoding.

        The goal (plus axiom instances) is Tseitin-encoded once.  A DFS over
        the literal order maintains a stack of assumption prefixes; each SAT
        call under a prefix either proves the whole subtree unsatisfiable (one
        query kills 2^k candidates) or returns a theory-consistent model whose
        projection IS a complete satisfiable minterm (one query per minterm,
        where the per-candidate walk pays one query per tree edge).  Theory
        conflicts are learned as clauses in the shared core, so a lemma
        refuted once prunes every later subtree for free.
        """
        if goal.is_false:
            return []
        builder, sat, lit_vars = self._encode(goal, lits)
        # Force the search to decide every tracked literal so a model always
        # projects onto a complete minterm (an unassigned tracked atom could
        # not soundly be given a default value: only the asserted literals
        # were theory-checked).
        sat.priority_vars = tuple(lit_vars)

        def solve_modulo_theory(assumptions: tuple[int, ...]):
            # One *query* (the analog of a single is_satisfiable call); the
            # inner lazy iterations are accounted as theory conflicts, exactly
            # as in _check.
            self.stats.queries += 1
            model = self._solve_encoded(builder, sat, assumptions)
            if model is None:
                self.stats.unsat_results += 1
            else:
                self.stats.sat_results += 1
            return model

        found: list[tuple[tuple[Term, bool], ...]] = []
        #: (assumption literals fixing lits[0:index], index, parent model hint)
        stack: list[tuple[tuple[int, ...], int, Optional[dict[int, bool]]]] = [((), 0, None)]
        while stack:
            assumptions, index, hint = stack.pop()
            sat.phase_hint = hint or {}
            model = solve_modulo_theory(assumptions)
            if model is None:
                continue  # the whole subtree under this prefix is unsatisfiable
            values = [model[var] for var in lit_vars]
            found.append(tuple(zip(lits, values)))
            # The remaining minterms of this subtree each agree with the model
            # up to some first literal d >= index and differ at d: recurse into
            # those (disjoint, covering) branches, seeding each with this
            # model as the preferred completion.
            for d in range(index, len(lits)):
                flipped = assumptions + tuple(
                    (var if values[i] else -var)
                    for i, var in enumerate(lit_vars[index:d], start=index)
                )
                flipped += ((-lit_vars[d]) if values[d] else lit_vars[d],)
                stack.append((flipped, d + 1, model))
        sat.phase_hint = {}
        return found

    # -- the lazy SMT loop ------------------------------------------------------------
    def _encode(self, goal: Term, lits: tuple[Term, ...] = ()) -> tuple[CnfBuilder, SatBackend, list[int]]:
        """Tseitin-encode ``goal`` (plus axiom instances and known lemmas)."""
        instances = instantiate(
            self.axioms, [goal, *lits], rounds=self.instantiation_rounds
        )
        builder = CnfBuilder()
        builder.assert_formula(goal)
        for instance in instances:
            builder.assert_formula(instance)
        lit_vars = [builder.var_for_atom(lit) for lit in lits]
        self._install_lemmas(builder)
        sat = make_sat_backend(self.backend)
        sat.ensure_vars(builder.num_vars)
        return builder, sat, lit_vars

    def _solve_encoded(
        self,
        builder: CnfBuilder,
        sat: SatBackend,
        assumptions: tuple[int, ...] = (),
    ) -> Optional[dict[int, bool]]:
        """One lazy-SMT query on an encoded problem: a partial model or None.

        Clauses the builder holds beyond what the SAT core has seen (initial
        encoding, lemmas, conflicts from previous calls) are synced first, so
        callers may interleave clause additions and solves freely.  A partial
        model satisfying every clause suffices: atoms the search never
        assigned impose no theory constraint, and skipping them avoids
        refuting arbitrary default values one blocking clause at a time.
        """
        before = (
            sat.stats_decisions,
            sat.stats_propagations,
            sat.stats_conflicts,
            sat.stats_restarts,
        )
        try:
            for _ in range(self.max_lazy_iterations):
                for clause in builder.clauses[sat.num_clauses:]:
                    sat.add_clause(clause)
                model = sat.solve_partial(assumptions)
                if model is None:
                    return None
                literals = [
                    (atom, model[var])
                    for var, atom in builder.atom_of_var.items()
                    if var in model
                ]
                theory = check_theory(literals)
                if theory.consistent:
                    return model
                self.stats.theory_conflicts += 1
                self._remember_lemma(theory.conflict)
                builder.block_assignment(theory.conflict)
            raise SolverError("lazy SMT loop exceeded its iteration budget")
        finally:
            self.stats.sat_decisions += sat.stats_decisions - before[0]
            self.stats.sat_propagations += sat.stats_propagations - before[1]
            self.stats.sat_conflicts += sat.stats_conflicts - before[2]
            self.stats.sat_restarts += sat.stats_restarts - before[3]

    def _check(self, goal: Term) -> bool:
        if goal.is_false:
            return False
        builder, sat, _ = self._encode(goal)
        return self._solve_encoded(builder, sat) is not None


_DEFAULT_SOLVERS: dict[str, Solver] = {}


def default_solver() -> Solver:
    """A process-wide solver with no background axioms (useful in tests).

    One instance per backend, so flipping ``REPRO_BACKEND`` mid-process (as
    the differential suite does) never hands out a solver whose caches were
    warmed under another core.
    """
    backend = resolve_backend(None)
    solver = _DEFAULT_SOLVERS.get(backend)
    if solver is None:
        solver = _DEFAULT_SOLVERS[backend] = Solver(backend=backend)
    return solver


def is_satisfiable(formula: Term) -> bool:
    return default_solver().is_satisfiable(formula)


def is_valid(formula: Term) -> bool:
    return default_solver().is_valid(formula)
