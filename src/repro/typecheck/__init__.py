"""repro.typecheck — the bidirectional HAT type checking algorithm."""

from .abduction import abduce_ghosts
from .checker import CheckFailure, Checker, CheckerConfig
from .spec import MethodSpec, invariant_method
from .stats import AdtStats, MethodResult, MethodStats

__all__ = [
    "abduce_ghosts",
    "CheckFailure",
    "Checker",
    "CheckerConfig",
    "MethodSpec",
    "invariant_method",
    "AdtStats",
    "MethodResult",
    "MethodStats",
]
