"""DFA and ConnectedGraph on top of the stateful Graph library (Example 4.5).

* **DFA/Graph** — determinism of transitions (the paper's I_DFA): a node may
  have at most one live outgoing transition per character; adding a new one
  requires any previous one to have been disconnected first.
* **ConnectedGraph/Graph** — the connectivity policy is reproduced as the
  checkable core used by the paper's implementation: edges may only be added
  between nodes that are already part of the graph and self-loops are
  forbidden (see EXPERIMENTS.md for the discussion of this substitution).
"""

from __future__ import annotations

from .. import smt
from ..smt.sorts import BOOL, CHAR, NODE, UNIT
from ..libraries.graphlib import make_graph, node_predicate
from ..sfa import symbolic
from ..types.rtypes import base
from ..typecheck.spec import invariant_method
from .benchmark import AdtBenchmark


def _dfa_invariant(library) -> symbolic.Sfa:
    """I_DFA(n, c) ≐ □ ¬(⟨connect ∼n ∼c _⟩ ∧ ◯(¬⟨disconnect ∼n ∼c _⟩ U ⟨connect ∼n ∼c _⟩))."""
    connect = library.operators["connect"]
    disconnect = library.operators["disconnect"]
    n = smt.var("n", NODE)
    c = smt.var("c", CHAR)
    connect_nc = symbolic.event(
        connect, smt.and_(smt.eq(connect.arg_vars[0], n), smt.eq(connect.arg_vars[1], c))
    )
    disconnect_nc = symbolic.event(
        disconnect, smt.and_(smt.eq(disconnect.arg_vars[0], n), smt.eq(disconnect.arg_vars[1], c))
    )
    reconnect_without_removal = symbolic.and_(
        connect_nc,
        symbolic.next_(symbolic.until(symbolic.not_(disconnect_nc), connect_nc)),
    )
    return symbolic.globally(symbolic.not_(reconnect_without_removal))


DFA_SOURCE = """
let add_transition (n_start : Node.t) (ch : Char.t) (n_end : Node.t) : bool =
  if connected n_start ch then false
  else begin connect n_start ch n_end; true end

let del_transition (n_start : Node.t) (ch : Char.t) (n_end : Node.t) : bool =
  disconnect n_start ch n_end; true

let is_transition (n_start : Node.t) (ch : Char.t) : bool =
  connected n_start ch

let add_state (nd : Node.t) : unit =
  add_node nd

let is_state (nd : Node.t) : bool =
  is_node nd
"""

DFA_ADD_BAD = """
let add_transition_bad (n_start : Node.t) (ch : Char.t) (n_end : Node.t) : bool =
  connect n_start ch n_end; true
"""


def dfa_graph() -> AdtBenchmark:
    library = make_graph(NODE, CHAR, name="Graph")
    invariant = _dfa_invariant(library)
    ghosts = (("n", NODE), ("c", CHAR))

    specs = {
        "add_transition": invariant_method(
            "add_transition",
            ghosts,
            [("n_start", base(NODE)), ("c_arg", base(CHAR)), ("n_end", base(NODE))],
            invariant,
            base(BOOL),
        ),
        "del_transition": invariant_method(
            "del_transition",
            ghosts,
            [("n_start", base(NODE)), ("c_arg", base(CHAR)), ("n_end", base(NODE))],
            invariant,
            base(BOOL),
        ),
        "is_transition": invariant_method(
            "is_transition",
            ghosts,
            [("n_start", base(NODE)), ("c_arg", base(CHAR))],
            invariant,
            base(BOOL),
        ),
        "add_state": invariant_method(
            "add_state", ghosts, [("n_arg", base(NODE))], invariant, base(UNIT)
        ),
        "is_state": invariant_method(
            "is_state", ghosts, [("n_arg", base(NODE))], invariant, base(BOOL)
        ),
    }

    return AdtBenchmark(
        adt="DFA",
        library_name="Graph",
        library=library,
        source=DFA_SOURCE,
        invariant_description="Two nodes can have at most one live edge per character (determinism)",
        invariant=invariant,
        ghosts=ghosts,
        specs=specs,
        negative_variants={"add_transition_bad": (DFA_ADD_BAD, "add_transition")},
    )


def _connected_graph_invariant(library) -> symbolic.Sfa:
    """Nodes are added before they are connected, and there are no self-loops."""
    connect = library.operators["connect"]
    add_node = library.operators["add_node"]
    n = smt.var("n", NODE)
    src_var, _, dst_var = connect.arg_vars
    touches_n = symbolic.event(connect, smt.or_(smt.eq(src_var, n), smt.eq(dst_var, n)))
    added_n = symbolic.event_pinned(add_node, {"n": n})
    connected_before_added = symbolic.until(symbolic.not_(added_n), touches_n)
    no_self_loop = symbolic.globally(
        symbolic.not_(symbolic.event(connect, smt.eq(src_var, dst_var)))
    )
    return symbolic.and_(symbolic.not_(connected_before_added), no_self_loop)


CONNECTED_GRAPH_SOURCE = """
let add_state (nd : Node.t) : unit =
  add_node nd

let add_edge (f : Node.t) (ch : Char.t) (t : Node.t) : bool =
  if f == t then false
  else
    if is_node f then
      begin
        if is_node t then begin connect f ch t; true end
        else false
      end
    else false

let has_state (nd : Node.t) : bool =
  is_node nd

let singleton (nd : Node.t) : unit =
  add_node nd
"""

CONNECTED_ADD_EDGE_BAD = """
let add_edge_bad (f : Node.t) (c : Char.t) (t : Node.t) : bool =
  connect f c t; true
"""


def connected_graph_graph() -> AdtBenchmark:
    library = make_graph(NODE, CHAR, name="Graph")
    invariant = _connected_graph_invariant(library)
    ghosts = (("n", NODE),)

    specs = {
        "add_state": invariant_method(
            "add_state", ghosts, [("n_arg", base(NODE))], invariant, base(UNIT)
        ),
        "add_edge": invariant_method(
            "add_edge",
            ghosts,
            [("f", base(NODE)), ("c_arg", base(CHAR)), ("t", base(NODE))],
            invariant,
            base(BOOL),
        ),
        "has_state": invariant_method(
            "has_state", ghosts, [("n_arg", base(NODE))], invariant, base(BOOL)
        ),
        "singleton": invariant_method(
            "singleton", ghosts, [("n_arg", base(NODE))], invariant, base(UNIT)
        ),
    }

    return AdtBenchmark(
        adt="ConnectedGraph",
        library_name="Graph",
        library=library,
        source=CONNECTED_GRAPH_SOURCE,
        invariant_description="Edges only connect nodes already in the graph; no self-loops",
        invariant=invariant,
        ghosts=ghosts,
        specs=specs,
        negative_variants={"add_edge_bad": (CONNECTED_ADD_EDGE_BAD, "add_edge")},
    )
