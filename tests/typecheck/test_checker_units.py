"""Unit tests for checker building blocks (value encoding, pure op typing, matches)."""

import pytest

from repro import smt
from repro.smt.sorts import BOOL, ELEM, INT, UNIT
from repro.lang import ast
from repro.lang.desugar import desugar_program
from repro.libraries import make_set
from repro.sfa import symbolic as S
from repro.typecheck import Checker, MethodSpec, invariant_method
from repro.types import TypingContext, TypingError, base, singleton


def make_checker():
    library = make_set(ELEM)
    return library, Checker(
        operators=library.operators,
        delta=library.delta,
        pure_ops=library.pure_ops,
        axioms=library.axioms,
        constants={"seed": smt.data_const("seed", ELEM)},
    )


def test_value_term_encodings():
    _, checker = make_checker()
    gamma = TypingContext().bind("x", base(ELEM)).bind("n", base(INT))
    assert checker.value_term(gamma, ast.Var("x")) is smt.var("x", ELEM)
    assert checker.value_term(gamma, ast.Const(3)).value == 3
    assert checker.value_term(gamma, ast.TRUE) is smt.TRUE
    assert checker.value_term(gamma, ast.Const(())).sort is UNIT
    assert checker.value_term(gamma, ast.Const("seed")) is smt.data_const("seed", ELEM)
    assert checker.value_term(gamma, ast.Const("other"), ELEM).sort is ELEM
    with pytest.raises(TypingError):
        checker.value_term(gamma, ast.Const("mystery"))
    with pytest.raises(TypingError):
        checker.value_term(gamma, ast.Var("unbound"))


def test_pure_result_types():
    _, checker = make_checker()
    gamma = TypingContext().bind("a", base(INT)).bind("b", base(INT)).bind("p", base(BOOL))
    eq_type = checker.pure_result_type(gamma, "==", [ast.Var("a"), ast.Var("b")])
    assert eq_type.sort is BOOL
    lt_type = checker.pure_result_type(gamma, "<", [ast.Var("a"), ast.Const(3)])
    assert lt_type.sort is BOOL
    add_type = checker.pure_result_type(gamma, "+", [ast.Var("a"), ast.Const(1)])
    assert add_type.sort is INT
    not_type = checker.pure_result_type(gamma, "not", [ast.Var("p")])
    assert not_type.sort is BOOL
    and_type = checker.pure_result_type(gamma, "&&", [ast.Var("p"), ast.TRUE])
    assert and_type.sort is BOOL
    with pytest.raises(TypingError):
        checker.pure_result_type(gamma, "unknown_pure", [ast.Var("a")])


def test_infeasible_branches_are_pruned():
    library, checker = make_checker()
    el = smt.var("el", ELEM)
    insert_el = S.event_pinned(library.operators["insert"], {"x": el})
    invariant = S.globally(
        S.implies(insert_el, S.next_(S.not_(S.eventually(insert_el))))
    )
    # This implementation would be wrong if the `true` branch were reachable,
    # but the guard `x <> x` makes it dead; the checker must prune it.
    source = """
    let weird (x : Elem.t) : unit =
      if x <> x then insert x else ()
    """
    program = desugar_program(source, effectful_ops=library.effectful_op_names())
    spec = invariant_method("weird", (("el", ELEM),), [("x", base(ELEM))], invariant, base(UNIT))
    result = checker.check_method(program["weird"], spec)
    assert result.verified, result.error


def test_resource_errors_during_walk_are_reported_not_raised(monkeypatch):
    """Deferred discharge keeps walking past failing obligations, so inline
    queries may hit resource limits on contexts the inline design never
    reached; they must surface as a failed result, not an exception."""
    from repro.sfa.alphabet import AlphabetError
    from repro.types.subtyping import SubtypingEngine

    library, checker = make_checker()

    def blow_up(self, *args, **kwargs):
        raise AlphabetError("literal budget exceeded")

    monkeypatch.setattr(SubtypingEngine, "value_has_type", blow_up)
    source = "let touch (x : Elem.t) : unit = insert x"
    program = desugar_program(source, effectful_ops=library.effectful_op_names())
    spec = invariant_method("touch", (), [("x", base(ELEM))], S.any_trace(), base(UNIT))
    result = checker.check_method(program["touch"], spec)
    assert not result.verified
    assert "resource limit" in (result.error or "")


def test_missing_operator_signature_is_reported():
    library, checker = make_checker()
    source = "let poke (x : Elem.t) : unit = unknown_effect x"
    program = desugar_program(source, effectful_ops={"unknown_effect"})
    spec = invariant_method("poke", (), [("x", base(ELEM))], S.any_trace(), base(UNIT))
    result = checker.check_method(program["poke"], spec)
    assert not result.verified
    assert "unknown_effect" in (result.error or "")


def test_arity_mismatch_is_reported():
    library, checker = make_checker()
    source = "let oops (x : Elem.t) : unit = insert x x"
    program = desugar_program(source, effectful_ops=library.effectful_op_names())
    spec = invariant_method("oops", (), [("x", base(ELEM))], S.any_trace(), base(UNIT))
    result = checker.check_method(program["oops"], spec)
    assert not result.verified
    assert "argument" in (result.error or "") or "expects" in (result.error or "")


def test_result_refinement_violation_is_reported():
    library, checker = make_checker()
    from repro.types.rtypes import RefinementType, nu

    source = "let yes (u : unit) : bool = false"
    program = desugar_program(source, effectful_ops=library.effectful_op_names())
    must_be_true = RefinementType(BOOL, smt.eq(nu(BOOL), smt.TRUE))
    spec = MethodSpec(
        name="yes",
        ghosts=(),
        params=(("u", base(UNIT)),),
        precondition=S.any_trace(),
        result=must_be_true,
        postcondition=S.any_trace(),
    )
    result = checker.check_method(program["yes"], spec)
    assert not result.verified
    assert "result type" in (result.error or "")


def test_stats_are_collected_per_method():
    library, checker = make_checker()
    el = smt.var("el", ELEM)
    insert_el = S.event_pinned(library.operators["insert"], {"x": el})
    invariant = S.globally(S.implies(insert_el, S.next_(S.not_(S.eventually(insert_el)))))
    source = """
    let guarded_insert (x : Elem.t) : unit =
      if mem x then () else insert x
    """
    program = desugar_program(source, effectful_ops=library.effectful_op_names())
    spec = invariant_method(
        "guarded_insert", (("el", ELEM),), [("x", base(ELEM))], invariant, base(UNIT)
    )
    from repro.typecheck.checker import CheckerConfig

    def check_with(discharge):
        worker = Checker(
            operators=library.operators,
            delta=library.delta,
            pure_ops=library.pure_ops,
            axioms=library.axioms,
            config=CheckerConfig(discharge=discharge),
        )
        return worker.check_method(program["guarded_insert"], spec)

    result = check_with("lazy")
    assert result.verified
    row = result.stats.as_row()
    assert row["#Branch"] == 2
    assert row["#App"] >= 2
    assert row["#Obl"] > 0
    assert row["#SAT"] > 0
    assert row["#Inc"] > 0
    # lazy discharge reports explored product states instead of DFA sizes
    assert row["#Prod"] > 0
    assert result.stats.average_fa_size == 0

    compiled = check_with("compiled")
    assert compiled.verified
    assert compiled.stats.average_fa_size > 0
    assert compiled.stats.states_built > 0
