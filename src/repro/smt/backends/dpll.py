"""A small iterative DPLL SAT solver with two-watched-literal propagation.

The propositional problems produced by the HAT type checker used to be tiny,
but solver-guided minterm enumeration (``repro.smt.solver``) issues thousands
of incremental queries against clause sets that grow with learned theory
lemmas, so unit propagation must not rescan the whole clause database per
pass.  The engine is therefore the classic iterative scheme:

* **two watched literals** per clause — assigning a variable only touches the
  clauses watching the falsified literal;
* a **trail** with chronological backtracking (plain DPLL, no clause
  learning — theory lemmas arrive from outside via ``add_clause``);
* **branch priorities** (``priority_vars``) so minterm enumeration can force
  the tracked literals to be decided first, and **phase hints**
  (``phase_hint``) so enumeration can steer the search toward a known-good
  completion from a neighbouring subtree;
* **partial models**: ``solve_partial`` stops as soon as every clause is
  satisfied and returns only the assigned variables, which keeps downstream
  lazy theory checking focused on literals the search actually asserted.

The interface is incremental — clauses may be added between ``solve`` calls —
which is what the lazy SMT loop relies on to add theory blocking clauses.

This is the ``backend="dpll"`` implementation of the
:class:`repro.smt.backends.SatBackend` protocol — the original core every
other backend is differentially tested against (``tests/smt/test_backend_diff``,
``tests/smt/test_backend_fuzz``).
"""

from __future__ import annotations

from typing import Iterable, Optional

Clause = tuple[int, ...]


class SatSolver:
    """Incremental DPLL solver over integer literals (DIMACS convention)."""

    def __init__(self) -> None:
        self._clauses: list[Clause] = []
        self._num_vars = 0
        self._has_empty_clause = False
        #: literals of unit clauses, asserted at the start of every solve
        self._units: list[int] = []
        #: clause index -> the two currently watched literals of that clause
        self._watched: list[list[int]] = []
        #: literal -> indices of clauses currently watching it
        self._watches: dict[int, list[int]] = {}
        #: variables branched on first (in order) before the generic heuristic;
        #: used by minterm enumeration so every tracked literal is decided even
        #: once all clauses are satisfied.
        self.priority_vars: tuple[int, ...] = ()
        #: preferred branch values (phase saving); model enumeration seeds this
        #: with the parent subtree's theory-consistent model so neighbouring
        #: minterms reuse a known-good completion instead of rediscovering one
        #: theory conflict at a time.
        self.phase_hint: dict[int, bool] = {}
        self.stats_decisions = 0
        self.stats_propagations = 0
        self.stats_conflicts = 0
        #: always 0 — plain DPLL never restarts; present so every backend
        #: exposes the same counter surface
        self.stats_restarts = 0

    # -- problem construction ---------------------------------------------------
    def add_clause(self, clause: Iterable[int]) -> None:
        clause = tuple(clause)
        for lit in clause:
            if lit == 0:
                raise ValueError("0 is not a valid literal")
            self._num_vars = max(self._num_vars, abs(lit))
        index = len(self._clauses)
        self._clauses.append(clause)
        if not clause:
            self._has_empty_clause = True
            self._watched.append([])
        elif len(clause) == 1:
            self._units.append(clause[0])
            self._watched.append([])
        else:
            pair = [clause[0], clause[1]]
            self._watched.append(pair)
            self._watches.setdefault(pair[0], []).append(index)
            self._watches.setdefault(pair[1], []).append(index)

    def add_clauses(self, clauses: Iterable[Iterable[int]]) -> None:
        for clause in clauses:
            self.add_clause(clause)

    def ensure_vars(self, num_vars: int) -> None:
        self._num_vars = max(self._num_vars, num_vars)

    @property
    def num_vars(self) -> int:
        return self._num_vars

    @property
    def num_clauses(self) -> int:
        return len(self._clauses)

    # -- solving ------------------------------------------------------------------
    def solve(self, assumptions: Iterable[int] = ()) -> Optional[dict[int, bool]]:
        """Return a satisfying assignment ``{var: bool}`` or ``None`` if UNSAT.

        ``assumptions`` are literals that must hold in the returned model.
        The returned model assigns every variable seen by the solver (variables
        not constrained by any clause default to ``False``).
        """
        result = self.solve_partial(assumptions)
        if result is None:
            return None
        return {v: result.get(v, False) for v in range(1, self._num_vars + 1)}

    def is_satisfiable(self, assumptions: Iterable[int] = ()) -> bool:
        return self.solve_partial(assumptions) is not None

    def solve_partial(self, assumptions: Iterable[int] = ()) -> Optional[dict[int, bool]]:
        """Like :meth:`solve` but leaves irrelevant variables unassigned.

        The returned partial assignment satisfies every clause; variables the
        search never had to touch are simply absent.  Callers doing lazy
        theory checking should prefer this: an unassigned atom imposes no
        theory constraint, whereas defaulting it manufactures literals the
        theory solver then has to refute one blocking clause at a time.
        """
        if self._has_empty_clause:
            return None
        assign: dict[int, bool] = {}
        trail: list[int] = []
        qhead = 0

        def enqueue(lit: int) -> bool:
            var = abs(lit)
            value = lit > 0
            current = assign.get(var)
            if current is not None:
                return current == value
            assign[var] = value
            trail.append(lit)
            return True

        def propagate() -> bool:
            nonlocal qhead
            while qhead < len(trail):
                if not self._propagate_literal(trail[qhead], assign, enqueue):
                    return False
                qhead += 1
            return True

        for lit in self._units:
            if not enqueue(lit):
                return None
        for lit in assumptions:
            if lit == 0:
                raise ValueError("0 is not a valid literal")
            self._num_vars = max(self._num_vars, abs(lit))
            if not enqueue(lit):
                return None
        if not propagate():
            return None

        # Variables assigned before the first decision keep their values for
        # the whole search, so any clause they satisfy stays satisfied; the
        # branch picker uses this to skip a growing prefix of the clause DB.
        level0_vars = frozenset(assign)
        scan_state = [0]

        #: decision stack: (trail length before the decision, var, value, flipped)
        decisions: list[tuple[int, int, bool, bool]] = []
        while True:
            var = self._pick_branch_var(assign, level0_vars, scan_state)
            if var is None:
                return dict(assign)
            value = self.phase_hint.get(var, True)
            self.stats_decisions += 1
            decisions.append((len(trail), var, value, False))
            enqueue(var if value else -var)
            while not propagate():
                self.stats_conflicts += 1
                while decisions:
                    mark, dvar, dvalue, flipped = decisions.pop()
                    for lit in trail[mark:]:
                        del assign[abs(lit)]
                    del trail[mark:]
                    qhead = mark
                    if not flipped:
                        decisions.append((mark, dvar, not dvalue, True))
                        enqueue(dvar if not dvalue else -dvar)
                        break
                else:
                    return None

    # -- internals ----------------------------------------------------------------
    def _propagate_literal(self, lit: int, assign: dict[int, bool], enqueue) -> bool:
        """Visit the clauses watching ``-lit``; ``False`` on conflict."""
        falsified = -lit
        watchers = self._watches.get(falsified)
        if not watchers:
            return True
        keep: list[int] = []
        for position, index in enumerate(watchers):
            watched = self._watched[index]
            if watched[0] == falsified:
                watched[0], watched[1] = watched[1], watched[0]
            other = watched[0]
            other_value = assign.get(abs(other))
            if other_value is not None and other_value == (other > 0):
                keep.append(index)
                continue
            replacement = 0
            for candidate in self._clauses[index]:
                if candidate == other or candidate == falsified:
                    continue
                candidate_value = assign.get(abs(candidate))
                if candidate_value is None or candidate_value == (candidate > 0):
                    replacement = candidate
                    break
            if replacement:
                watched[1] = replacement
                self._watches.setdefault(replacement, []).append(index)
                continue
            keep.append(index)
            if other_value is None:
                self.stats_propagations += 1
                enqueue(other)
            else:
                # every literal of the clause is false: conflict
                keep.extend(watchers[position + 1:])
                self._watches[falsified] = keep
                return False
        self._watches[falsified] = keep
        return True

    def _pick_branch_var(
        self,
        assign: dict[int, bool],
        level0_vars: frozenset[int] = frozenset(),
        scan_state: Optional[list[int]] = None,
    ) -> Optional[int]:
        """Priority variables first, then a literal from the first unsatisfied clause.

        ``scan_state`` holds the index below which every clause is known to be
        satisfied by a level-0 variable (immutable for this solve); the prefix
        is skipped and extended greedily, so repeated decisions do not rescan
        the clauses unit propagation of the root assignment already satisfied.
        """
        for var in self.priority_vars:
            if var not in assign:
                return var
        start = scan_state[0] if scan_state is not None else 0
        for index in range(start, len(self._clauses)):
            clause = self._clauses[index]
            unassigned = 0
            satisfied_by = 0
            for lit in clause:
                value = assign.get(abs(lit))
                if value is None:
                    if unassigned == 0:
                        unassigned = abs(lit)
                elif value == (lit > 0):
                    satisfied_by = abs(lit)
                    break
            if satisfied_by:
                if scan_state is not None and index == scan_state[0] and satisfied_by in level0_vars:
                    scan_state[0] += 1
                continue
            if unassigned:
                return unassigned
        return None
