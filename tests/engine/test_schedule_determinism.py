"""Scheduling-order and memo on/off determinism.

The contract this suite locks in: discharge order is *advisory*.  Cost-model
order, LPT order and the syntactic cheapest-first order must all produce
byte-identical ``table1/3/4(deterministic=True)`` renderings on the fast
corpus — for ``workers=1`` and ``workers=4``, under both SAT backends — and
the cross-obligation memo must be equally invisible: alphabets are always
built hermetically with their counter bill recorded and replayed, so turning
the reuse off changes wall-clock time only.

Cost hints come from a store warmed under the *other* backend: verdicts never
cross environment fingerprints (every obligation discharges cold), but the
recorded costs are advisory and environment-free — which is exactly the
situation the cost model exists for.
"""

import shutil

import pytest

from repro.evaluation.runner import run_evaluation
from repro.evaluation.tables import table1, table3, table4
from repro.store.obligation_store import ObligationStore
from repro.typecheck.checker import CheckerConfig

#: dpll runs order themselves by costs a cdcl-warmed store recorded, and vice
#: versa — proving the hints are used while every verdict stays cold.
_WARMING_BACKEND = {"dpll": "cdcl", "cdcl": "dpll"}


def _render(report):
    return "\n".join(
        render(report, deterministic=True) for render in (table1, table3, table4)
    )


@pytest.fixture(scope="module")
def cost_warmed_store(tmp_path_factory):
    """One store per warming backend, with every fast-corpus cost recorded."""
    paths = {}
    for backend in sorted(set(_WARMING_BACKEND.values())):
        path = tmp_path_factory.mktemp(f"cost-store-{backend}")
        store = ObligationStore(path)
        report = run_evaluation(
            include_slow=False, config=CheckerConfig(backend=backend), store=store
        )
        assert report.all_verified and report.all_negatives_rejected
        store.flush()
        paths[backend] = path
    return paths


@pytest.fixture(scope="module")
def reference_tables():
    """The serial, syntactic-order, store-less rendering per backend."""
    tables = {}
    for backend in ("dpll", "cdcl"):
        report = run_evaluation(
            include_slow=False,
            config=CheckerConfig(backend=backend, schedule="syntactic"),
        )
        assert report.all_verified and report.all_negatives_rejected
        tables[backend] = _render(report)
    return tables


@pytest.mark.parametrize("backend", ("dpll", "cdcl"))
@pytest.mark.parametrize("workers", (1, 4))
@pytest.mark.parametrize("schedule", ("syntactic", "cost", "lpt"))
def test_every_ordering_matches_the_reference_tables(
    schedule, workers, backend, cost_warmed_store, reference_tables, tmp_path
):
    store = None
    if schedule in ("cost", "lpt"):
        # a fresh copy per run: cost-ordered runs write entries of their own
        source = cost_warmed_store[_WARMING_BACKEND[backend]]
        path = tmp_path / "store"
        shutil.copytree(source, path)
        store = ObligationStore(path)
    report = run_evaluation(
        include_slow=False,
        config=CheckerConfig(backend=backend, workers=workers, schedule=schedule),
        store=store,
    )
    assert report.all_verified and report.all_negatives_rejected
    assert _render(report) == reference_tables[backend], (
        f"schedule={schedule} workers={workers} backend={backend} "
        "changed an obligation-derived counter"
    )


def test_cost_hints_are_actually_consulted(cost_warmed_store, tmp_path):
    """The cost-ordered leg must order by recorded history, not fall back."""
    from repro.suite.registry import all_benchmarks

    path = tmp_path / "store"
    shutil.copytree(cost_warmed_store["cdcl"], path)
    store = ObligationStore(path)
    bench = all_benchmarks(include_slow=False)[0]
    checker = bench.make_checker(
        CheckerConfig(backend="dpll", schedule="cost"), store=store
    )
    stats = bench.verify_all(checker)
    assert stats.all_verified
    engine = checker.obligation_engine
    assert engine.stats.cost_hints_used > 0, "no recorded cost was consulted"
    assert engine.stats.store_hits == 0, "verdicts must never cross backends"


def test_memo_off_matches_memo_on_byte_identical(reference_tables):
    """Reuse on/off may move wall-clock time only, never a counter."""
    report = run_evaluation(
        include_slow=False,
        config=CheckerConfig(schedule="syntactic", cross_obligation_memo=False),
    )
    assert report.all_verified and report.all_negatives_rejected
    assert _render(report) == reference_tables["dpll"]


def test_memo_off_under_pool_matches_too():
    on = run_evaluation(include_slow=False, config=CheckerConfig(workers=4))
    off = run_evaluation(
        include_slow=False,
        config=CheckerConfig(workers=4, cross_obligation_memo=False),
    )
    assert _render(on) == _render(off)
