"""Per-module ``logging`` setup with trace-correlated breadcrumbs.

Every pipeline module grabs its logger via ``get_logger("engine")`` →
``logging.getLogger("repro.engine")``; nothing is emitted until
:func:`configure_logging` attaches a handler to the ``repro`` root
(driven by ``--log-level`` / ``REPRO_LOG_LEVEL``).  The handler's
formatter includes the innermost open span of the active tracer, so log
lines correlate with the trace timeline without any per-call plumbing.
"""

from __future__ import annotations

import logging
import os
from typing import Optional

from . import trace

ENV_LOG_LEVEL = "REPRO_LOG_LEVEL"
_ROOT = "repro"
_FORMAT = "%(asctime)s %(levelname)-7s %(name)s [%(trace_span)s] %(message)s"


def get_logger(name: str) -> logging.Logger:
    """Logger for one pipeline module: ``get_logger("store")`` → ``repro.store``."""
    if name == _ROOT or name.startswith(_ROOT + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT}.{name}")


class TraceContextFilter(logging.Filter):
    """Stamp each record with the innermost open span, e.g. ``discharge#42``."""

    def filter(self, record: logging.LogRecord) -> bool:
        current = trace.current_span()
        if current is None:
            record.trace_span = "-"
        else:
            record.trace_span = f"{current.get('name')}#{current.get('id')}"
        return True


def resolve_level(level: Optional[str] = None) -> Optional[int]:
    """Map a ``--log-level`` / env value to a logging level, None if unset."""
    raw = level if level is not None else os.environ.get(ENV_LOG_LEVEL)
    if raw is None or raw == "":
        return None
    numeric = logging.getLevelName(str(raw).upper())
    if not isinstance(numeric, int):
        raise ValueError(f"unknown log level {raw!r}")
    return numeric


def configure_logging(level: Optional[str] = None, stream=None) -> Optional[logging.Handler]:
    """Attach one stderr handler to the ``repro`` logger at ``level``.

    With no explicit level and no ``REPRO_LOG_LEVEL``, does nothing and
    returns None — module loggers stay silent (the library default).
    Re-invoking replaces the previously installed handler rather than
    stacking duplicates.
    """
    numeric = resolve_level(level)
    root = logging.getLogger(_ROOT)
    for handler in list(root.handlers):
        if getattr(handler, "_repro_obs", False):
            root.removeHandler(handler)
    if numeric is None:
        return None
    handler = logging.StreamHandler(stream)
    handler._repro_obs = True  # type: ignore[attr-defined]
    handler.setFormatter(logging.Formatter(_FORMAT))
    handler.addFilter(TraceContextFilter())
    root.addHandler(handler)
    root.setLevel(numeric)
    root.propagate = False
    return handler
