"""Tests for the SAT cores, including a brute-force equivalence property.

Every test runs against both built-in backends (DPLL and CDCL) through the
:func:`repro.smt.backends.make_sat_backend` factory — the protocol surface,
not a concrete class — so a new backend is covered by adding its id here.
"""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.smt.backends import available_backends, make_sat_backend
from repro.smt.backends.cdcl import CdclSolver, luby
from repro.smt.sat import SatSolver

#: a registered backend is covered here the moment it is importable
BACKENDS = available_backends()

#: backends that promise to *honor* phase hints (the protocol lets a backend
#: ignore them — z3 picks its own phases)
HINT_HONORING_BACKENDS = tuple(b for b in BACKENDS if b in ("dpll", "cdcl"))


@pytest.fixture(params=BACKENDS)
def backend(request):
    return request.param


def brute_force_satisfiable(clauses, num_vars):
    for bits in itertools.product([False, True], repeat=num_vars):
        assignment = {i + 1: bits[i] for i in range(num_vars)}
        if all(any(assignment[abs(l)] == (l > 0) for l in clause) for clause in clauses):
            return True
    return False


def check_model(clauses, model):
    return all(any(model[abs(l)] == (l > 0) for l in clause) for clause in clauses)


def test_sat_module_still_exports_the_dpll_core():
    assert make_sat_backend("dpll").__class__ is SatSolver


def test_empty_problem_is_sat(backend):
    solver = make_sat_backend(backend)
    assert solver.solve() == {}


def test_single_unit_clause(backend):
    solver = make_sat_backend(backend)
    solver.add_clause([1])
    model = solver.solve()
    assert model == {1: True}


def test_simple_unsat(backend):
    solver = make_sat_backend(backend)
    solver.add_clause([1])
    solver.add_clause([-1])
    assert solver.solve() is None


def test_requires_propagation_chain(backend):
    solver = make_sat_backend(backend)
    solver.add_clauses([[1], [-1, 2], [-2, 3], [-3, -4], [4, 5]])
    model = solver.solve()
    assert model is not None
    assert model[1] and model[2] and model[3] and not model[4] and model[5]


def test_unsat_pigeonhole_2_into_1(backend):
    # two pigeons, one hole: p1 in hole, p2 in hole, not both
    solver = make_sat_backend(backend)
    solver.add_clauses([[1], [2], [-1, -2]])
    assert solver.solve() is None


def test_assumptions(backend):
    solver = make_sat_backend(backend)
    solver.add_clause([1, 2])
    assert solver.solve(assumptions=[-1]) == {1: False, 2: True}
    assert solver.solve(assumptions=[-1, -2]) is None
    # assumptions do not persist
    assert solver.solve() is not None


def test_zero_literal_rejected(backend):
    solver = make_sat_backend(backend)
    with pytest.raises(ValueError):
        solver.add_clause([0])


def test_priority_vars_are_always_assigned(backend):
    solver = make_sat_backend(backend)
    solver.add_clause([1, 2])
    solver.ensure_vars(6)
    solver.priority_vars = (4, 5, 6)
    model = solver.solve_partial()
    assert model is not None
    assert all(var in model for var in (4, 5, 6))


@pytest.fixture(params=HINT_HONORING_BACKENDS)
def hinting_backend(request):
    return request.param


def test_phase_hints_steer_free_variables(hinting_backend):
    solver = make_sat_backend(hinting_backend)
    solver.add_clause([1, 2])
    solver.ensure_vars(4)
    solver.priority_vars = (3, 4)
    solver.phase_hint = {3: False, 4: True}
    model = solver.solve_partial()
    assert model is not None
    assert model[3] is False and model[4] is True


clause_strategy = st.lists(
    st.integers(min_value=1, max_value=6).flatmap(
        lambda v: st.sampled_from([v, -v])
    ),
    min_size=1,
    max_size=4,
)


@settings(max_examples=120, deadline=None)
@given(st.lists(clause_strategy, min_size=0, max_size=14))
def test_matches_brute_force(clauses):
    expected = brute_force_satisfiable(clauses, 6)
    for backend in BACKENDS:
        solver = make_sat_backend(backend)
        solver.add_clauses(clauses)
        solver.ensure_vars(6)
        model = solver.solve()
        if expected:
            assert model is not None, backend
            assert check_model(clauses, model), backend
        else:
            assert model is None, backend


# ---------------------------------------------------------------------------
# CDCL-specific contracts
# ---------------------------------------------------------------------------


def _pigeonhole(pigeons, holes):
    solver = CdclSolver()
    def var(p, h):
        return p * holes + h + 1
    for p in range(pigeons):
        solver.add_clause([var(p, h) for h in range(holes)])
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                solver.add_clause([-var(p1, h), -var(p2, h)])
    return solver


def test_cdcl_learns_and_restarts_on_hard_unsat():
    solver = _pigeonhole(6, 5)
    external = solver.num_clauses
    assert solver.solve_partial() is None
    assert solver.stats_conflicts > 0
    assert solver.stats_learned_clauses > 0
    assert solver.stats_restarts > 0, "php(6,5) must cross the Luby budget"
    # learned clauses are internal: the external count is the lazy loop's
    # clause-sync cursor and must not move
    assert solver.num_clauses == external


def test_cdcl_learned_clauses_persist_across_solves():
    solver = _pigeonhole(5, 4)
    assert solver.solve_partial() is None
    learned = solver.stats_learned_clauses
    assert solver.solve_partial() is None
    # the re-solve rides on the learned clauses instead of re-deriving them
    assert solver.stats_learned_clauses - learned <= learned


def test_cdcl_incremental_blocking_clauses():
    solver = CdclSolver()
    solver.add_clauses([[1, 2], [2, 3]])
    solver.ensure_vars(3)
    solver.priority_vars = (1, 2, 3)
    seen = set()
    while True:
        model = solver.solve_partial()
        if model is None:
            break
        assignment = tuple(sorted(model.items()))
        assert assignment not in seen, "blocking must never repeat a model"
        seen.add(assignment)
        solver.add_clause([-v if value else v for v, value in model.items()])
    # all satisfying total assignments of (1|2) & (2|3) over 3 vars: 5
    assert len(seen) == 5


def test_luby_sequence_prefix():
    assert [luby(i) for i in range(1, 16)] == [
        1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8,
    ]
