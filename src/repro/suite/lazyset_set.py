"""LazySet on top of the stateful Set library (Example 4.4).

The representation invariant is the paper's I_LSet: an element is never
inserted twice into the backing set.  Insertions are delayed behind thunks of
type ``unit → [I_LSet(el)] unit [I_LSet(el)]``, exercising the function-typed
parameters and results of HATs.
"""

from __future__ import annotations

from .. import smt
from ..smt.sorts import BOOL, ELEM, UNIT
from ..libraries.setlib import make_set, member_predicate
from ..sfa import symbolic
from ..types.rtypes import FunType, HatType, base
from ..typecheck.spec import MethodSpec, invariant_method
from .benchmark import AdtBenchmark


def _insert_once_invariant(library) -> symbolic.Sfa:
    """I_LSet(el) ≐ □(⟨insert ∼el⟩ ⟹ ◯ ¬ ♦ ⟨insert ∼el⟩)."""
    el = smt.var("el", ELEM)
    insert_el = symbolic.event_pinned(library.operators["insert"], {"x": el})
    return symbolic.globally(
        symbolic.implies(insert_el, symbolic.next_(symbolic.not_(symbolic.eventually(insert_el))))
    )


LAZYSET_SET_SOURCE = """
let new_thunk (u : unit) : thunk =
  fun (w : unit) -> ()

let force (thunk : thunk) : unit =
  thunk ()

let lazy_insert (x : Elem.t) (thunk : thunk) : thunk =
  fun (w : unit) ->
    let r = thunk () in
    if mem x then () else insert x

let lazy_mem (x : Elem.t) (thunk : thunk) : bool =
  let r = thunk () in
  mem x
"""

LAZY_INSERT_BAD = """
let lazy_insert_bad (x : Elem.t) (thunk : thunk) : thunk =
  fun (w : unit) ->
    let r = thunk () in
    insert x
"""


def lazyset_set() -> AdtBenchmark:
    library = make_set(ELEM, name="Set")
    invariant = _insert_once_invariant(library)
    ghosts = (("el", ELEM),)

    thunk_type = FunType("w", base(UNIT), HatType(invariant, base(UNIT), invariant))

    specs = {
        "new_thunk": invariant_method(
            "new_thunk", ghosts, [("u", base(UNIT))], invariant, thunk_type
        ),
        "force": invariant_method(
            "force", ghosts, [("thunk", thunk_type)], invariant, base(UNIT)
        ),
        "lazy_insert": invariant_method(
            "lazy_insert", ghosts, [("x", base(ELEM)), ("thunk", thunk_type)], invariant, thunk_type
        ),
        "lazy_mem": invariant_method(
            "lazy_mem", ghosts, [("x", base(ELEM)), ("thunk", thunk_type)], invariant, base(BOOL)
        ),
    }

    return AdtBenchmark(
        adt="LazySet",
        library_name="Set",
        library=library,
        source=LAZYSET_SET_SOURCE,
        invariant_description="An element has never been inserted twice",
        invariant=invariant,
        ghosts=ghosts,
        specs=specs,
        negative_variants={"lazy_insert_bad": (LAZY_INSERT_BAD, "lazy_insert")},
    )
