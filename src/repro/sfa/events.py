"""Concrete effect events and traces.

The operational semantics of λᴱ (Fig. 3 of the paper) is defined over traces:
finite lists of events ``op v̄ = v`` recording each effectful call together
with its result.  This module provides the runtime representation of those
traces, used by the interpreter, by the dynamic invariant checker and by the
property-based tests that validate the Fundamental Theorem empirically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Optional, Sequence


@dataclass(frozen=True)
class Event:
    """A single effect event ``op args = result``."""

    op: str
    args: tuple[Any, ...]
    result: Any

    def __str__(self) -> str:
        rendered_args = " ".join(repr(a) for a in self.args)
        return f"{self.op} {rendered_args} = {self.result!r}".replace("  ", " ")


class Trace:
    """An immutable sequence of events with the paper's list operations."""

    __slots__ = ("_events",)

    def __init__(self, events: Iterable[Event] = ()) -> None:
        self._events = tuple(events)

    # -- construction -------------------------------------------------------------
    @staticmethod
    def empty() -> "Trace":
        return Trace()

    def append(self, event: Event) -> "Trace":
        return Trace(self._events + (event,))

    def extend(self, other: "Trace") -> "Trace":
        return Trace(self._events + other._events)

    def cons(self, event: Event) -> "Trace":
        return Trace((event,) + self._events)

    # -- observation --------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def __getitem__(self, index) -> Event:
        return self._events[index]

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Trace) and self._events == other._events

    def __hash__(self) -> int:
        return hash(self._events)

    def __repr__(self) -> str:
        inner = "; ".join(str(e) for e in self._events)
        return f"[{inner}]"

    @property
    def events(self) -> tuple[Event, ...]:
        return self._events

    def suffix(self, start: int) -> "Trace":
        return Trace(self._events[start:])

    # -- queries used by the concrete library models -------------------------------
    def last_event(self, op: str, predicate=None) -> Optional[Event]:
        """The most recent event of operator ``op`` satisfying ``predicate``."""
        for event in reversed(self._events):
            if event.op == op and (predicate is None or predicate(event)):
                return event
        return None

    def any_event(self, op: str, predicate=None) -> bool:
        return self.last_event(op, predicate) is not None

    def filter(self, op: str) -> list[Event]:
        return [e for e in self._events if e.op == op]


def event(op: str, *args: Any, result: Any = ()) -> Event:
    """Convenience constructor: ``event("put", key, value, result=())``."""
    return Event(op, tuple(args), result)
