"""Unit and property tests for the explicit DFA algebra."""

import itertools
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.sfa.automata import Dfa, empty_dfa, universal_dfa, word_dfa


def language(dfa: Dfa, max_length: int = 4) -> set[tuple[int, ...]]:
    return set(dfa.enumerate_words(max_length))


def all_words(num_chars: int, max_length: int):
    for length in range(max_length + 1):
        yield from itertools.product(range(num_chars), repeat=length)


def test_empty_and_universal():
    assert empty_dfa(2).is_empty()
    assert not universal_dfa(2).is_empty()
    assert universal_dfa(2).accepts_word([0, 1, 1])
    assert not empty_dfa(2).accepts_word([0])
    assert empty_dfa(2).is_subset_of(universal_dfa(2))
    assert not universal_dfa(2).is_subset_of(empty_dfa(2))


def test_word_dfa_accepts_only_its_word():
    dfa = word_dfa([0, 1, 0], 2)
    assert dfa.accepts_word([0, 1, 0])
    assert not dfa.accepts_word([0, 1])
    assert not dfa.accepts_word([0, 1, 0, 0])
    assert not dfa.accepts_word([1, 1, 0])
    assert language(dfa) == {(0, 1, 0)}


def test_complement_and_intersection():
    dfa = word_dfa([1], 2)
    comp = dfa.complement()
    assert comp.accepts_word([])
    assert not comp.accepts_word([1])
    assert comp.accepts_word([0])
    assert dfa.intersect(comp).is_empty()
    assert dfa.union(comp).complement().is_empty()


def test_difference():
    a = universal_dfa(2)
    b = word_dfa([0], 2)
    diff = a.difference(b)
    assert not diff.accepts_word([0])
    assert diff.accepts_word([1])
    assert diff.accepts_word([])


def test_subset_and_counterexample():
    a = word_dfa([0, 1], 2)
    b = universal_dfa(2)
    assert a.is_subset_of(b)
    assert a.counterexample(b) is None
    assert not b.is_subset_of(a)
    witness = b.counterexample(a)
    assert witness is not None
    assert b.accepts_word(witness) and not a.accepts_word(witness)


def test_minimize_collapses_equivalent_states():
    # A DFA for "even number of 1s" written with redundant states.
    transitions = [
        [0, 1],
        [1, 0],
        [2, 3],  # unreachable copy
        [3, 2],
    ]
    dfa = Dfa(2, transitions, frozenset({0, 2}), 0)
    minimized = dfa.minimize()
    assert minimized.num_states == 2
    assert minimized.equivalent(dfa)


def test_invalid_construction_rejected():
    try:
        Dfa(2, [[0]], frozenset(), 0)
    except ValueError:
        pass
    else:  # pragma: no cover
        raise AssertionError("expected ValueError for ragged transition table")


# -- property tests -------------------------------------------------------------------


@st.composite
def random_dfa(draw, num_chars=2, max_states=4):
    n = draw(st.integers(min_value=1, max_value=max_states))
    transitions = [
        [draw(st.integers(min_value=0, max_value=n - 1)) for _ in range(num_chars)]
        for _ in range(n)
    ]
    accepting = frozenset(
        i for i in range(n) if draw(st.booleans())
    )
    start = draw(st.integers(min_value=0, max_value=n - 1))
    return Dfa(num_chars, transitions, accepting, start)


@settings(max_examples=80, deadline=None)
@given(random_dfa())
def test_minimization_preserves_language(dfa):
    minimized = dfa.minimize()
    assert minimized.num_states <= dfa.num_states
    for word in all_words(2, 4):
        assert dfa.accepts_word(word) == minimized.accepts_word(word)


@settings(max_examples=80, deadline=None)
@given(random_dfa(), random_dfa())
def test_subset_agrees_with_word_enumeration(a, b):
    subset = a.is_subset_of(b)
    brute = all(
        (not a.accepts_word(word)) or b.accepts_word(word) for word in all_words(2, 5)
    )
    if subset:
        assert brute
    else:
        witness = a.counterexample(b)
        assert witness is not None
        assert a.accepts_word(witness) and not b.accepts_word(witness)


@settings(max_examples=60, deadline=None)
@given(random_dfa(), random_dfa())
def test_product_constructions_match_semantics(a, b):
    inter = a.intersect(b)
    uni = a.union(b)
    for word in all_words(2, 4):
        assert inter.accepts_word(word) == (a.accepts_word(word) and b.accepts_word(word))
        assert uni.accepts_word(word) == (a.accepts_word(word) or b.accepts_word(word))


@settings(max_examples=60, deadline=None)
@given(random_dfa())
def test_complement_is_involutive_on_language(a):
    comp = a.complement()
    for word in all_words(2, 4):
        assert comp.accepts_word(word) == (not a.accepts_word(word))


# ---------------------------------------------------------------------------
# Seeded-random property tests over larger automata
#
# The hypothesis strategies above stay tiny so the brute-force language
# comparisons are exhaustive; these complementary tests use plain seeded
# `random` to cover bigger state/alphabet counts with sampled words.
# ---------------------------------------------------------------------------


def _seeded_dfa(rng, max_states=12, max_chars=4, num_chars=None):
    n = rng.randint(1, max_states)
    k = num_chars if num_chars is not None else rng.randint(1, max_chars)
    transitions = [[rng.randrange(n) for _ in range(k)] for _ in range(n)]
    accepting = frozenset(s for s in range(n) if rng.random() < 0.4)
    return Dfa(k, transitions, accepting, start=rng.randrange(n))


def _sample_words(rng, dfa, count=60, max_length=10):
    for _ in range(count):
        length = rng.randrange(max_length + 1)
        yield [rng.randrange(dfa.num_chars) for _ in range(length)]


@pytest.mark.parametrize("seed", range(40))
def test_minimize_preserves_language_on_random_samples(seed):
    rng = random.Random(42_000 + seed)
    dfa = _seeded_dfa(rng)
    minimized = dfa.minimize()
    assert minimized.num_states <= max(1, len(dfa.reachable_states()))
    for word in _sample_words(rng, dfa):
        assert dfa.accepts_word(word) == minimized.accepts_word(word), word
    # minimisation is idempotent up to size
    assert minimized.minimize().num_states == minimized.num_states
    # and the minimal automaton recognises the same language as the original
    assert minimized.equivalent(dfa)


@pytest.mark.parametrize("seed", range(40))
def test_counterexample_is_sound_on_random_pairs(seed):
    rng = random.Random(777_000 + seed)
    k = rng.randint(1, 4)
    lhs = _seeded_dfa(rng, num_chars=k)
    rhs = _seeded_dfa(rng, num_chars=k)
    witness = lhs.counterexample(rhs)
    if witness is None:
        assert lhs.is_subset_of(rhs)
        # spot-check with sampled words
        for word in _sample_words(rng, lhs, count=40):
            assert (not lhs.accepts_word(word)) or rhs.accepts_word(word)
    else:
        # every returned counterexample is accepted by lhs and rejected by rhs
        assert lhs.accepts_word(witness)
        assert not rhs.accepts_word(witness)
        assert not lhs.is_subset_of(rhs)
