"""Tests for the MNF lowering."""

import pytest

from repro.lang import ast
from repro.lang.desugar import DesugarError, desugar_expression, desugar_program


EFF = {"put", "exists", "get"}
PURE = {"Path.parent", "File.isDir", "File.addChild"}


def desugar(source):
    return desugar_expression(source, effectful_ops=EFF, pure_ops=PURE)


def collect(expr, cls):
    return [node for node in expr.walk() if isinstance(node, cls)]


def test_constant_and_variable():
    assert desugar("42") == ast.Ret(ast.Const(42))
    assert desugar("true") == ast.Ret(ast.TRUE)
    assert desugar("()") == ast.Ret(ast.UNIT)
    assert desugar("x") == ast.Ret(ast.Var("x"))
    assert desugar('"/"') == ast.Ret(ast.Const("/"))


def test_effectful_application_becomes_letop():
    lowered = desugar("exists path")
    assert isinstance(lowered, ast.LetOp)
    assert lowered.op == "exists"
    assert lowered.args == (ast.Var("path"),)
    assert isinstance(lowered.body, ast.Ret)
    assert lowered.body.value == ast.Var(lowered.name)


def test_pure_application_becomes_letpure():
    lowered = desugar("Path.parent path")
    assert isinstance(lowered, ast.LetPure)
    assert lowered.op == "Path.parent"


def test_unknown_head_becomes_letapp():
    lowered = desugar("deleteChildren path")
    assert isinstance(lowered, ast.LetApp)
    assert lowered.func == ast.Var("deleteChildren")


def test_nested_arguments_are_named():
    lowered = desugar("put parent_path (File.addChild bytes path)")
    # the inner pure call must be bound before the effectful call
    assert isinstance(lowered, ast.LetPure)
    assert lowered.op == "File.addChild"
    puts = collect(lowered, ast.LetOp)
    assert len(puts) == 1 and puts[0].op == "put"
    # the second argument of put refers (possibly through an alias binding)
    # to the result of the pure call
    assert isinstance(puts[0].args[1], ast.Var)


def test_if_becomes_match_on_bool():
    lowered = desugar("if exists path then false else true")
    assert isinstance(lowered, ast.LetOp)
    matches = collect(lowered, ast.Match)
    assert len(matches) == 1
    match = matches[0]
    assert [b.constructor for b in match.branches] == ["true", "false"]
    assert match.branches[0].body == ast.Ret(ast.FALSE)
    assert match.branches[1].body == ast.Ret(ast.TRUE)


def test_let_in_flattening():
    lowered = desugar("let b = exists path in not b")
    assert isinstance(lowered, ast.LetOp)
    aliased = lowered.body
    assert isinstance(aliased, ast.LetIn)
    assert aliased.name == "b"
    assert isinstance(aliased.bound, ast.Ret)
    assert isinstance(aliased.body, ast.LetPure)
    assert aliased.body.op == "not"


def test_sequencing_distributes_over_match():
    lowered = desugar("(if b then put k v else ()); exists k")
    # both branches of the match must end with the exists call
    matches = collect(lowered, ast.Match)
    assert len(matches) == 1
    for branch in matches[0].branches:
        ops = [n.op for n in branch.body.walk() if isinstance(n, ast.LetOp)]
        assert ops[-1] == "exists"


def test_lambda_lowering():
    lowered = desugar("fun (x : int) -> x + 1")
    assert isinstance(lowered, ast.Ret)
    assert isinstance(lowered.value, ast.Lambda)
    assert lowered.value.param == "x"
    assert isinstance(lowered.value.body, ast.LetPure)


def test_program_lowering_and_function_value():
    program = desugar_program(
        """
        let add (path : Path.t) (bytes : Bytes.t) : bool =
          if exists path then false else true
        let rec loop (n : int) : int = loop (n - 1)
        """,
        effectful_ops=EFF,
        pure_ops=PURE,
    )
    assert program.names() == ["add", "loop"]
    add = program["add"]
    assert add.params == (("path", "Path.t"), ("bytes", "Bytes.t"))
    assert not add.recursive
    value = add.as_value()
    assert isinstance(value, ast.Lambda)
    assert program["loop"].recursive
    assert isinstance(program["loop"].as_value(), ast.Fix)
    assert "add" in program and "missing" not in program
    with pytest.raises(KeyError):
        program["missing"]


def test_metrics_on_lowered_code():
    lowered = desugar(
        """
        if exists path then false
        else
          let parent_path = Path.parent path in
          if exists parent_path then true else false
        """
    )
    assert ast.count_branches(lowered) == 3
    assert ast.count_operator_applications(lowered) >= 3
    assert "path" in ast.free_variables(lowered)


def test_shadowing_across_sequencing_is_rejected():
    # The continuation references the *outer* y, so pushing it under the inner
    # binding named y would capture it; the desugarer refuses such programs.
    with pytest.raises(DesugarError):
        desugar("let y = 1 in let x = (let y = exists p in y) in y == x")


def test_inner_rebinding_without_capture_is_fine():
    lowered = desugar("let x = (let y = exists p in y) in let y = 1 in y == y")
    assert isinstance(lowered, ast.LetOp)
    assert lowered.op == "exists"
