"""repro.libraries — backing stateful libraries: specifications and models."""

from .base import Library, merge_libraries
from .kvstore import exists_predicate, last_put_predicate, make_kvstore, stored_kind_predicate
from .setlib import make_set, member_predicate
from .graphlib import live_edge_predicate, make_graph, node_predicate
from .memcell import ever_written_predicate, make_memcell, written_predicate
from .filelib import (
    ROOT_PATH,
    add_child_fn,
    del_child_fn,
    file_axioms,
    file_pure_impls,
    file_pure_ops,
    init_bytes_fn,
    is_del,
    is_dir,
    is_file,
    is_root,
    make_file_helpers,
    parent_fn,
    set_deleted_fn,
)

__all__ = [
    "Library",
    "merge_libraries",
    "exists_predicate",
    "last_put_predicate",
    "make_kvstore",
    "stored_kind_predicate",
    "make_set",
    "member_predicate",
    "live_edge_predicate",
    "make_graph",
    "node_predicate",
    "ever_written_predicate",
    "make_memcell",
    "written_predicate",
    "ROOT_PATH",
    "add_child_fn",
    "del_child_fn",
    "file_axioms",
    "file_pure_impls",
    "file_pure_ops",
    "init_bytes_fn",
    "is_del",
    "is_dir",
    "is_file",
    "is_root",
    "make_file_helpers",
    "parent_fn",
    "set_deleted_fn",
]
