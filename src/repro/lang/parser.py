"""Parser for the Mini-ML surface syntax.

The parser produces a small *surface* AST (defined here) which
:mod:`repro.lang.desugar` lowers into the MNF core calculus of
:mod:`repro.lang.ast`.  The grammar covers what the benchmark ADTs need:
top-level (possibly recursive) function definitions, ``let``/``in``,
``if``/``then``/``else``, ``match`` on data constructors, anonymous
functions, application, sequencing with ``;`` and the usual infix operators.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from .lexer import LexError, Token, TokenStream, tokenize

# ---------------------------------------------------------------------------
# Surface AST
# ---------------------------------------------------------------------------


class Surface:
    """Base class of surface expressions."""


@dataclass(frozen=True)
class SUnit(Surface):
    pass


@dataclass(frozen=True)
class SBool(Surface):
    value: bool


@dataclass(frozen=True)
class SInt(Surface):
    value: int


@dataclass(frozen=True)
class SString(Surface):
    value: str


@dataclass(frozen=True)
class SVar(Surface):
    name: str


@dataclass(frozen=True)
class SApp(Surface):
    func: Surface
    args: tuple[Surface, ...]


@dataclass(frozen=True)
class SIf(Surface):
    condition: Surface
    then_branch: Surface
    else_branch: Surface


@dataclass(frozen=True)
class SLet(Surface):
    name: str
    bound: Surface
    body: Surface


@dataclass(frozen=True)
class SSeq(Surface):
    first: Surface
    second: Surface


@dataclass(frozen=True)
class SFun(Surface):
    param: str
    param_type: Optional[str]
    body: Surface


@dataclass(frozen=True)
class SMatchArm:
    constructor: str
    binders: tuple[str, ...]
    body: Surface


@dataclass(frozen=True)
class SMatch(Surface):
    scrutinee: Surface
    arms: tuple[SMatchArm, ...]


@dataclass(frozen=True)
class SDefinition:
    name: str
    params: tuple[tuple[str, Optional[str]], ...]
    return_type: Optional[str]
    body: Surface
    recursive: bool


@dataclass(frozen=True)
class SProgram:
    definitions: tuple[SDefinition, ...]


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------

_COMPARISON_OPS = {"==": "==", "=": "==", "<>": "<>", "<": "<", "<=": "<=", ">": ">", ">=": ">="}


class Parser:
    def __init__(self, source: str) -> None:
        self.stream = TokenStream(tokenize(source))

    # -- programs -----------------------------------------------------------------
    def parse_program(self) -> SProgram:
        definitions: list[SDefinition] = []
        while not self.stream.exhausted:
            definitions.append(self.parse_definition())
        return SProgram(tuple(definitions))

    def parse_definition(self) -> SDefinition:
        self.stream.expect("keyword", "let")
        recursive = self.stream.accept("keyword", "rec") is not None
        name = self.stream.expect("ident").text
        params: list[tuple[str, Optional[str]]] = []
        while not self.stream.at("symbol", "=") and not self.stream.at("symbol", ":"):
            params.append(self._parse_param())
        return_type: Optional[str] = None
        if self.stream.accept("symbol", ":"):
            return_type = self._parse_type_name()
        self.stream.expect("symbol", "=")
        body = self.parse_expr()
        return SDefinition(name, tuple(params), return_type, body, recursive)

    def _parse_param(self) -> tuple[str, Optional[str]]:
        if self.stream.accept("symbol", "("):
            if self.stream.accept("symbol", ")"):
                return ("_unit", "unit")
            name = self.stream.expect("ident").text
            annotation: Optional[str] = None
            if self.stream.accept("symbol", ":"):
                annotation = self._parse_type_name()
            self.stream.expect("symbol", ")")
            return (name, annotation)
        return (self.stream.expect("ident").text, None)

    def _parse_type_name(self) -> str:
        token = self.stream.peek()
        if token.kind == "ident":
            return self.stream.next().text
        if token.kind == "keyword" and token.text in ("true", "false"):
            raise LexError("expected a type name", token.line, token.column)
        # allow `unit`, `bool`, `int` which lex as identifiers already
        raise LexError(f"expected a type name, found {token.text!r}", token.line, token.column)

    # -- expressions ---------------------------------------------------------------
    def parse_expr(self) -> Surface:
        if self.stream.at("keyword", "let"):
            return self._parse_let()
        if self.stream.at("keyword", "if"):
            return self._parse_if()
        if self.stream.at("keyword", "fun"):
            return self._parse_fun()
        if self.stream.at("keyword", "match"):
            return self._parse_match()
        return self._parse_seq()

    def _parse_let(self) -> Surface:
        self.stream.expect("keyword", "let")
        name = self.stream.expect("ident").text
        self.stream.expect("symbol", "=")
        bound = self.parse_expr()
        self.stream.expect("keyword", "in")
        body = self.parse_expr()
        return SLet(name, bound, body)

    def _parse_if(self) -> Surface:
        self.stream.expect("keyword", "if")
        condition = self.parse_expr()
        self.stream.expect("keyword", "then")
        then_branch = self.parse_expr()
        self.stream.expect("keyword", "else")
        else_branch = self.parse_expr()
        return SIf(condition, then_branch, else_branch)

    def _parse_fun(self) -> Surface:
        self.stream.expect("keyword", "fun")
        param, annotation = self._parse_param()
        self.stream.expect("symbol", "->")
        body = self.parse_expr()
        return SFun(param, annotation, body)

    def _parse_match(self) -> Surface:
        self.stream.expect("keyword", "match")
        scrutinee = self.parse_expr()
        self.stream.expect("keyword", "with")
        arms: list[SMatchArm] = []
        while self.stream.accept("symbol", "|"):
            arms.append(self._parse_arm())
        if not arms:
            token = self.stream.peek()
            raise LexError("match expression needs at least one arm", token.line, token.column)
        return SMatch(scrutinee, tuple(arms))

    def _parse_arm(self) -> SMatchArm:
        token = self.stream.peek()
        if token.kind == "keyword" and token.text in ("true", "false"):
            self.stream.next()
            constructor = token.text
            binders: tuple[str, ...] = ()
        elif token.kind == "symbol" and token.text == "(":
            self.stream.next()
            self.stream.expect("symbol", ")")
            constructor = "unit"
            binders = ()
        else:
            constructor = self.stream.expect("ident").text
            names: list[str] = []
            while self.stream.at("ident") and not self.stream.at("symbol", "->"):
                names.append(self.stream.next().text)
            binders = tuple(names)
        self.stream.expect("symbol", "->")
        body = self.parse_expr()
        return SMatchArm(constructor, binders, body)

    def _parse_seq(self) -> Surface:
        first = self._parse_or()
        if self.stream.accept("symbol", ";"):
            second = self.parse_expr()
            return SSeq(first, second)
        return first

    def _parse_or(self) -> Surface:
        left = self._parse_and()
        while self.stream.at("symbol", "||") or self.stream.at("keyword", "or"):
            self.stream.next()
            right = self._parse_and()
            left = SApp(SVar("||"), (left, right))
        return left

    def _parse_and(self) -> Surface:
        left = self._parse_comparison()
        while self.stream.at("symbol", "&&") or self.stream.at("keyword", "and"):
            self.stream.next()
            right = self._parse_comparison()
            left = SApp(SVar("&&"), (left, right))
        return left

    def _parse_comparison(self) -> Surface:
        left = self._parse_additive()
        token = self.stream.peek()
        if token.kind == "symbol" and token.text in _COMPARISON_OPS:
            self.stream.next()
            right = self._parse_additive()
            return SApp(SVar(_COMPARISON_OPS[token.text]), (left, right))
        return left

    def _parse_additive(self) -> Surface:
        left = self._parse_application()
        while self.stream.at("symbol", "+") or self.stream.at("symbol", "-"):
            op = self.stream.next().text
            right = self._parse_application()
            left = SApp(SVar(op), (left, right))
        return left

    def _parse_application(self) -> Surface:
        if self.stream.at("keyword", "not"):
            self.stream.next()
            operand = self._parse_application()
            return SApp(SVar("not"), (operand,))
        head = self._parse_atom()
        args: list[Surface] = []
        while self._at_atom_start():
            args.append(self._parse_atom())
        if args:
            return SApp(head, tuple(args))
        return head

    def _at_atom_start(self) -> bool:
        token = self.stream.peek()
        if token.kind in ("ident", "int", "string"):
            return True
        if token.kind == "keyword" and token.text in ("true", "false", "begin", "not"):
            return token.text != "not"
        if token.kind == "symbol" and token.text == "(":
            return True
        return False

    def _parse_atom(self) -> Surface:
        token = self.stream.peek()
        if token.kind == "int":
            self.stream.next()
            return SInt(int(token.text))
        if token.kind == "string":
            self.stream.next()
            return SString(token.text)
        if token.kind == "keyword" and token.text in ("true", "false"):
            self.stream.next()
            return SBool(token.text == "true")
        if token.kind == "keyword" and token.text == "begin":
            self.stream.next()
            inner = self.parse_expr()
            self.stream.expect("keyword", "end")
            return inner
        if token.kind == "ident":
            self.stream.next()
            return SVar(token.text)
        if token.kind == "symbol" and token.text == "(":
            self.stream.next()
            if self.stream.accept("symbol", ")"):
                return SUnit()
            inner = self.parse_expr()
            self.stream.expect("symbol", ")")
            return inner
        raise LexError(f"unexpected token {token.text!r}", token.line, token.column)


def parse_program(source: str) -> SProgram:
    return Parser(source).parse_program()


def parse_expression(source: str) -> Surface:
    parser = Parser(source)
    expr = parser.parse_expr()
    if not parser.stream.exhausted:
        token = parser.stream.peek()
        raise LexError(f"unexpected trailing input {token.text!r}", token.line, token.column)
    return expr
