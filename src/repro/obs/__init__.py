"""Run-wide observability: structured tracing, logging, post-mortems.

The subpackage is deliberately dependency-free (stdlib only) and safe to
import from every layer of the pipeline.  The tracer defaults to a
zero-overhead no-op: until :func:`repro.obs.trace.install` is called,
``trace.span(...)`` returns a shared null context manager and records
nothing.  Spans are strictly volatile — they never feed fingerprints,
cache keys, or the deterministic tables.
"""

from . import trace
from .logs import configure_logging, get_logger
from .postmortem import dump_postmortem

__all__ = ["trace", "configure_logging", "get_logger", "dump_postmortem"]
