"""Ghost-variable instantiation (the paper's ``Abduce``, Algorithm 3).

Effectful operators may declare *ghost variables* — purely logical values
such as the current content ``a`` of a key in ``get``'s signature.  When the
checker encounters such an operator it must find a qualifier for the ghost
that is strong enough for the operator's precondition to cover the current
effect context.

The implementation follows the structure of Algorithm 3 with the CEGIS loop
replaced by bounded enumeration, which is exact for the literal budgets that
arise in the benchmark suite: the hypothesis space is the set of boolean
combinations of the literals that mention the ghost variable, and the
inferred qualifier is the (weakest) disjunction of all combinations under
which the required automata inclusion holds.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Mapping, Sequence

from .. import smt
from ..smt.sorts import Sort
from ..sfa import symbolic
from ..types.context import TypingContext
from ..types.rtypes import EffectType, RefinementType, base, cases_of, nu

if TYPE_CHECKING:  # pragma: no cover
    from .checker import Checker

_counter = itertools.count()


def _fresh_ghost_variable(name: str, sort: Sort) -> smt.Term:
    return smt.var(f"{name}!{next(_counter)}", sort)


def abduce_ghosts(
    checker: "Checker",
    gamma: TypingContext,
    context_automaton: symbolic.Sfa,
    ghosts: Sequence[tuple[str, Sort]],
    effect: EffectType,
    substitution: Mapping[smt.Term, smt.Term],
    *,
    max_literals: int = 6,
) -> tuple[TypingContext, dict[smt.Term, smt.Term]]:
    """Instantiate the operator's ghost variables.

    Returns the extended context and the substitution mapping each declared
    ghost variable to the fresh context variable that now stands for it.
    """
    ghost_substitution: dict[smt.Term, smt.Term] = {}
    if not ghosts:
        return gamma, ghost_substitution

    for ghost_name, ghost_sort in ghosts:
        declared = smt.var(ghost_name, ghost_sort)
        fresh = _fresh_ghost_variable(ghost_name, ghost_sort)
        ghost_substitution[declared] = fresh

    # Substitute parameters and ghosts into the precondition cases, then ask
    # whether the ghost needs strengthening at all.
    full_substitution = dict(substitution)
    full_substitution.update(ghost_substitution)
    preconditions = [
        symbolic.substitute(case.precondition, full_substitution) for case in cases_of(effect)
    ]
    precondition_union = symbolic.or_(*preconditions)

    gamma_with_ghosts = gamma
    for fresh in ghost_substitution.values():
        gamma_with_ghosts = gamma_with_ghosts.bind(fresh.payload[0], base(fresh.sort))

    if checker.engine.automata_included(
        gamma_with_ghosts, context_automaton, precondition_union
    ):
        return gamma_with_ghosts, ghost_substitution

    # Strengthen each ghost in turn with the weakest boolean combination of
    # the ghost-mentioning literals that validates the coverage obligation.
    strengthened = gamma
    for (ghost_name, ghost_sort), fresh in zip(ghosts, ghost_substitution.values()):
        literals = _candidate_literals(
            [context_automaton, precondition_union], fresh, max_literals
        )
        qualifier = _weakest_qualifier(
            checker, strengthened, context_automaton, precondition_union, fresh, literals,
            [other for other in ghost_substitution.values() if other is not fresh],
        )
        strengthened = strengthened.bind(
            fresh.payload[0], RefinementType(ghost_sort, smt.substitute(qualifier, {fresh: nu(ghost_sort)}))
        )
    return strengthened, ghost_substitution


def _candidate_literals(
    automata: Sequence[symbolic.Sfa], ghost: smt.Term, max_literals: int
) -> list[smt.Term]:
    """Literals mentioning the ghost variable, drawn from the automata qualifiers."""
    found: dict[smt.Term, None] = {}
    for automaton in automata:
        for node in automaton.walk():
            if node.kind in (symbolic.K_EVENT, symbolic.K_GUARD):
                for atom in smt.atoms(node.qualifier):
                    if ghost in atom.free_vars():
                        found.setdefault(atom, None)
    literals = list(found)
    return literals[:max_literals]


def _weakest_qualifier(
    checker: "Checker",
    gamma: TypingContext,
    context_automaton: symbolic.Sfa,
    target: symbolic.Sfa,
    ghost: smt.Term,
    literals: Sequence[smt.Term],
    other_ghosts: Sequence[smt.Term],
) -> smt.Term:
    """The disjunction of all literal combinations that validate the inclusion."""
    if not literals:
        return smt.TRUE

    base_gamma = gamma
    for other in other_ghosts:
        base_gamma = base_gamma.bind(other.payload[0], base(other.sort))

    accepted: list[smt.Term] = []
    for bits in itertools.product((True, False), repeat=len(literals)):
        combination = smt.and_(
            *(lit if bit else smt.not_(lit) for lit, bit in zip(literals, bits))
        )
        if not checker.solver.is_satisfiable(smt.and_(*base_gamma.hypotheses(), combination)):
            continue
        candidate_gamma = base_gamma.bind(
            ghost.payload[0],
            RefinementType(ghost.sort, smt.substitute(combination, {ghost: nu(ghost.sort)})),
        )
        if checker.engine.automata_included(candidate_gamma, context_automaton, target):
            accepted.append(combination)
    if not accepted:
        return smt.TRUE
    return smt.or_(*accepted)
