"""Span-based structured tracing with a zero-overhead no-op default.

A :class:`Tracer` records *spans*: named, categorised intervals measured
against a single ``time.perf_counter()`` epoch captured when the tracer
is created.  ``perf_counter`` is ``CLOCK_MONOTONIC`` on Linux, so the
epoch survives ``fork()`` and spans recorded in pool workers land on the
same timeline as the parent's.  Workers drain the spans they produced
into their (picklable) result dicts — mirroring how ``SolverStats``
travel back today — and the parent re-ingests them, so one trace file
covers every process of a run.

Until :func:`install` is called the module-level :func:`span` helper
returns a shared null context manager and records nothing; the traced
code needs no conditionals.

Two file formats are supported by :func:`write_trace` / :func:`read_trace`:

* ``*.jsonl`` — the native format: a ``meta`` record, one ``span``
  record per line, and an optional trailing ``counters`` record.
* anything else (conventionally ``*.json``) — Chrome trace-event format
  (``{"traceEvents": [...]}`` with ``ph: "X"`` complete events,
  microsecond ``ts``/``dur``), loadable directly in Perfetto or
  ``chrome://tracing``.

Spans are strictly volatile: nothing in this module feeds fingerprints,
cache keys, or deterministic tables.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from typing import Any, Iterator, Optional, Sequence

TRACE_SCHEMA = 1

#: Environment fallback for the CLI's ``--trace PATH`` flag.
ENV_TRACE = "REPRO_TRACE"

#: Categories the report groups into the phase breakdown, in pipeline order.
PHASE_CATEGORIES = ("emit", "schedule", "alphabet", "discharge", "store", "solver")

#: Structural categories that frame the run rather than doing leaf work.
STRUCTURAL_CATEGORIES = ("run", "benchmark", "method")


class _NullSpan:
    """Shared do-nothing context manager returned while tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def set(self, **args: Any) -> None:
        """Ignore late-attached attributes."""


_NULL_SPAN = _NullSpan()


class _Span:
    """Live context manager for one span of an installed tracer."""

    __slots__ = ("_tracer", "record")

    def __init__(self, tracer: "Tracer", record: dict) -> None:
        self._tracer = tracer
        self.record = record

    def __enter__(self) -> "_Span":
        tracer = self._tracer
        record = self.record
        stack = tracer._stack
        if stack:
            record["parent"] = stack[-1]["id"]
        record["ts"] = time.perf_counter() - tracer.epoch
        stack.append(record)
        return self

    def set(self, **args: Any) -> None:
        """Attach attributes discovered after the span opened."""
        existing = self.record.get("args")
        if existing is None:
            existing = self.record["args"] = {}
        existing.update(args)

    def __exit__(self, *exc: object) -> bool:
        tracer = self._tracer
        record = self.record
        record["dur"] = time.perf_counter() - tracer.epoch - record["ts"]
        stack = tracer._stack
        if stack and stack[-1] is record:
            stack.pop()
        else:  # unbalanced exit — drop our frame without corrupting others
            try:
                stack.remove(record)
            except ValueError:
                pass
        tracer.spans.append(record)
        return False


class Tracer:
    """Collects spans against one monotonic epoch; fork-inheritable."""

    def __init__(self, meta: Optional[dict] = None) -> None:
        self.epoch = time.perf_counter()
        self.pid = os.getpid()
        self.created = time.time()
        self.meta: dict = dict(meta or {})
        self.spans: list[dict] = []
        #: Optional run-level counter payload (e.g. ``cache_totals()``),
        #: written as the trailing ``counters`` record of the trace file.
        self.counters: Optional[dict] = None
        self._stack: list[dict] = []
        self._next_id = 0

    # -- recording ---------------------------------------------------------------

    def span(self, name: str, cat: Optional[str] = None, args: Optional[dict] = None) -> _Span:
        self._next_id += 1
        record: dict = {
            "id": self._next_id,
            "pid": os.getpid(),
            "name": name,
            "cat": cat or name,
        }
        if args:
            record["args"] = args
        return _Span(self, record)

    # -- worker buffering --------------------------------------------------------

    def mark(self) -> int:
        """Index into the completed-span buffer; pair with :meth:`drain`."""
        return len(self.spans)

    def drain(self, mark: int) -> list[dict]:
        """Pop and return every span completed since ``mark``.

        Workers call this right before returning so their spans travel
        home inside the result dict instead of dying with the fork.
        """
        popped = self.spans[mark:]
        del self.spans[mark:]
        return popped

    def ingest(self, spans: Sequence[dict]) -> None:
        """Merge spans drained in another process (identified by their pid)."""
        self.spans.extend(spans)

    # -- introspection -----------------------------------------------------------

    def current_span(self) -> Optional[dict]:
        return self._stack[-1] if self._stack else None

    def open_spans(self) -> list[dict]:
        """Snapshot of the open-span stack, outermost first."""
        return [dict(record) for record in self._stack]

    def meta_record(self) -> dict:
        return {
            "type": "meta",
            "schema": TRACE_SCHEMA,
            "clock": "perf_counter",
            "pid": self.pid,
            "created": self.created,
            **self.meta,
        }


# -- module-level active tracer --------------------------------------------------

_ACTIVE: Optional[Tracer] = None


def active() -> Optional[Tracer]:
    return _ACTIVE


def enabled() -> bool:
    return _ACTIVE is not None


def install(tracer: Tracer) -> Tracer:
    global _ACTIVE
    _ACTIVE = tracer
    return tracer


def uninstall() -> Optional[Tracer]:
    global _ACTIVE
    tracer, _ACTIVE = _ACTIVE, None
    return tracer


def span(name: str, cat: Optional[str] = None, **args: Any):
    """Open a span on the active tracer, or a shared no-op when disabled."""
    tracer = _ACTIVE
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, cat, args or None)


def mark() -> int:
    tracer = _ACTIVE
    return tracer.mark() if tracer is not None else 0


def drain(marked: int) -> list[dict]:
    tracer = _ACTIVE
    return tracer.drain(marked) if tracer is not None else []


def ingest(spans: Optional[Sequence[dict]]) -> None:
    tracer = _ACTIVE
    if tracer is not None and spans:
        tracer.ingest(spans)


def current_span() -> Optional[dict]:
    tracer = _ACTIVE
    return tracer.current_span() if tracer is not None else None


def open_spans() -> list[dict]:
    tracer = _ACTIVE
    return tracer.open_spans() if tracer is not None else []


@contextmanager
def session(path: Optional[str] = None, meta: Optional[dict] = None) -> Iterator[Tracer]:
    """Install a fresh tracer for the duration, writing ``path`` on exit."""
    tracer = install(Tracer(meta=meta))
    try:
        yield tracer
    finally:
        uninstall()
        if path:
            write_trace(tracer, path)


# -- export ----------------------------------------------------------------------


def write_trace(tracer: Tracer, path: str) -> str:
    """Write the tracer's spans to ``path``; format chosen by suffix."""
    path = os.fspath(path)
    if path.endswith(".jsonl"):
        _write_jsonl(tracer, path)
    else:
        _write_chrome(tracer, path)
    return path


def _write_jsonl(tracer: Tracer, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(tracer.meta_record(), sort_keys=True) + "\n")
        for record in tracer.spans:
            handle.write(json.dumps({"type": "span", **record}, sort_keys=True) + "\n")
        if tracer.counters is not None:
            handle.write(
                json.dumps({"type": "counters", **tracer.counters}, sort_keys=True) + "\n"
            )


def _write_chrome(tracer: Tracer, path: str) -> None:
    events: list[dict] = []
    pids = sorted({record["pid"] for record in tracer.spans} | {tracer.pid})
    for pid in pids:
        label = "pymarple" if pid == tracer.pid else f"pymarple worker {pid}"
        events.append(
            {"ph": "M", "pid": pid, "tid": pid, "name": "process_name", "args": {"name": label}}
        )
    for record in tracer.spans:
        args = dict(record.get("args") or {})
        args["id"] = record["id"]
        if "parent" in record:
            args["parent"] = record["parent"]
        events.append(
            {
                "ph": "X",
                "pid": record["pid"],
                "tid": record["pid"],
                "name": record["name"],
                "cat": record["cat"],
                "ts": round(record["ts"] * 1e6, 3),
                "dur": round(record.get("dur", 0.0) * 1e6, 3),
                "args": args,
            }
        )
    payload = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"meta": tracer.meta_record(), "counters": tracer.counters},
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, sort_keys=True)
        handle.write("\n")


# -- import ----------------------------------------------------------------------


def read_trace(path: str) -> dict:
    """Load either trace format back into ``{"meta", "spans", "counters"}``."""
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    stripped = text.lstrip()
    if stripped.startswith("{") and '"traceEvents"' in stripped.split("\n", 1)[0]:
        return _read_chrome(stripped)
    return _read_jsonl(text)


def _read_jsonl(text: str) -> dict:
    meta: dict = {}
    counters: Optional[dict] = None
    spans: list[dict] = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        kind = record.pop("type", "span")
        if kind == "meta":
            meta = record
        elif kind == "counters":
            counters = record
        else:
            spans.append(record)
    return {"meta": meta, "spans": spans, "counters": counters}


def _read_chrome(text: str) -> dict:
    payload = json.loads(text)
    other = payload.get("otherData") or {}
    meta = dict(other.get("meta") or {})
    meta.pop("type", None)
    spans: list[dict] = []
    for event in payload.get("traceEvents", ()):
        if event.get("ph") != "X":
            continue
        args = dict(event.get("args") or {})
        record = {
            "id": args.pop("id", None),
            "pid": event.get("pid"),
            "name": event.get("name"),
            "cat": event.get("cat"),
            "ts": float(event.get("ts", 0.0)) / 1e6,
            "dur": float(event.get("dur", 0.0)) / 1e6,
        }
        parent = args.pop("parent", None)
        if parent is not None:
            record["parent"] = parent
        if args:
            record["args"] = args
        spans.append(record)
    return {"meta": meta, "spans": spans, "counters": other.get("counters")}
