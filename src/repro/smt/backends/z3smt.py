"""An optional external-solver backend bridging the SAT seam to z3.

The reproduction's lazy SMT loop stays in charge — Tseitin encoding, EUF +
arithmetic theory checking and blocking clauses all run through the existing
:mod:`repro.smt` term layer — but the propositional queries are answered by
z3's SAT engine instead of the built-in DPLL/CDCL cores.  Integer DIMACS
variables map to z3 ``Bool`` constants, clauses are asserted into one
incremental ``z3.Solver``, and assumptions ride on ``Solver.check(*lits)``.

z3 is deliberately a soft dependency: :func:`z3_available` gates the backend,
and everything that mentions it (CLI choices, the differential suite's z3
leg) auto-skips when the module is missing.  ``phase_hint`` is accepted but
ignored — z3 picks its own phases — which is allowed by the backend contract:
hints affect only which model is returned, never whether one exists.  Models
are completed over every known variable, so ``priority_vars`` are trivially
assigned and minterm projection keeps working.
"""

from __future__ import annotations

from typing import Iterable, Optional

Clause = tuple[int, ...]

try:  # pragma: no cover - exercised only where z3 is installed
    import z3 as _z3
except ImportError:  # pragma: no cover
    _z3 = None


def z3_available() -> bool:
    """Is the optional z3 dependency importable in this environment?"""
    return _z3 is not None


class Z3Backend:
    """SatBackend adapter over one incremental ``z3.Solver``."""

    def __init__(self) -> None:
        if _z3 is None:  # pragma: no cover - construction is gated
            raise RuntimeError(
                "the z3 backend requires the 'z3-solver' package; "
                "install it or pick backend='dpll'/'cdcl'"
            )
        self._solver = _z3.Solver()
        # pin the seeds so repeated runs return the same models
        self._solver.set("random_seed", 0)
        self._bools: list = []  # index v-1 -> the z3 Bool of DIMACS variable v
        self._num_clauses = 0
        self._has_empty_clause = False
        self.priority_vars: tuple[int, ...] = ()
        self.phase_hint: dict[int, bool] = {}
        self.stats_decisions = 0
        self.stats_propagations = 0
        self.stats_conflicts = 0
        self.stats_restarts = 0
        #: last harvested cumulative totals per z3 statistics key, so the
        #: stats_* counters accumulate deltas across check() calls
        self._statistics_seen: dict[str, float] = {}
        #: the statistics key latched per stats_* attribute on its first
        #: successful harvest — re-selecting every call could flap between
        #: overlapping keys ("conflicts" vs "sat conflicts") and double-count
        self._statistics_key: dict[str, str] = {}

    # -- problem construction ---------------------------------------------------
    def _bool(self, variable: int):
        while len(self._bools) < variable:
            self._bools.append(_z3.Bool(f"v{len(self._bools) + 1}"))
        return self._bools[variable - 1]

    def _literal(self, lit: int):
        atom = self._bool(abs(lit))
        return atom if lit > 0 else _z3.Not(atom)

    def add_clause(self, clause: Iterable[int]) -> None:
        clause = tuple(clause)
        for lit in clause:
            if lit == 0:
                raise ValueError("0 is not a valid literal")
        self._num_clauses += 1
        if not clause:
            self._has_empty_clause = True
            self._solver.add(_z3.BoolVal(False))
            return
        self._solver.add(_z3.Or(*[self._literal(lit) for lit in clause]))

    def add_clauses(self, clauses: Iterable[Iterable[int]]) -> None:
        for clause in clauses:
            self.add_clause(clause)

    def ensure_vars(self, num_vars: int) -> None:
        self._bool(num_vars) if num_vars > 0 else None

    @property
    def num_vars(self) -> int:
        return len(self._bools)

    @property
    def num_clauses(self) -> int:
        return self._num_clauses

    # -- solving ------------------------------------------------------------------
    def solve(self, assumptions: Iterable[int] = ()) -> Optional[dict[int, bool]]:
        return self.solve_partial(assumptions)

    def is_satisfiable(self, assumptions: Iterable[int] = ()) -> bool:
        return self.solve_partial(assumptions) is not None

    def solve_partial(self, assumptions: Iterable[int] = ()) -> Optional[dict[int, bool]]:
        """A (total) model ``{var: bool}`` or ``None`` if UNSAT.

        z3 models are completed over every declared variable; totality is a
        legal instance of the partial-model contract (a total model satisfies
        every clause), it merely gives the theory checker more literals.
        """
        if self._has_empty_clause:
            return None
        literals = []
        for lit in assumptions:
            if lit == 0:
                raise ValueError("0 is not a valid literal")
            literals.append(self._literal(lit))
        outcome = self._solver.check(*literals)
        self._harvest_statistics()
        if outcome == _z3.unsat:
            return None
        if outcome != _z3.sat:  # pragma: no cover - pure SAT never times out
            raise RuntimeError(f"z3 returned {outcome!r} on a propositional query")
        model = self._solver.model()
        return {
            variable: bool(model.eval(self._bools[variable - 1], model_completion=True))
            for variable in range(1, len(self._bools) + 1)
        }

    def _harvest_statistics(self) -> None:
        """Mirror z3's own search counters into the ``stats_*`` surface.

        Best-effort: key names vary by z3 version and tactic ("conflicts" vs
        "sat conflicts", …), and z3 reports them cumulatively per solver —
        deltas against the last harvest are what gets accumulated, so the
        #Confl column reflects real effort instead of a hard-coded zero.
        """
        try:
            statistics = self._solver.statistics()
            totals = {key: statistics.get_key_value(key) for key in statistics.keys()}
        except _z3.Z3Exception:  # pragma: no cover - defensive
            return
        for attribute, suffix in (
            ("stats_conflicts", "conflicts"),
            ("stats_decisions", "decisions"),
            ("stats_propagations", "propagations"),
            ("stats_restarts", "restarts"),
        ):
            # z3 may report both "conflicts" and "sat conflicts" for one
            # search; harvest exactly one preferred key — latched on first
            # sight — so nothing is ever double-counted
            key = self._statistics_key.get(attribute)
            if key is None:
                candidates = [f"sat {suffix}", suffix] + sorted(
                    name for name in totals if name.endswith(suffix)
                )
                key = next(
                    (
                        name
                        for name in candidates
                        if isinstance(totals.get(name), (int, float))
                    ),
                    None,
                )
                if key is None:
                    continue
                self._statistics_key[attribute] = key
            total = totals.get(key)
            if not isinstance(total, (int, float)):
                continue
            delta = total - self._statistics_seen.get(key, 0)
            self._statistics_seen[key] = total
            if delta > 0:
                setattr(self, attribute, getattr(self, attribute) + int(delta))
