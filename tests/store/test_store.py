"""Unit tests for the on-disk obligation store: layout, reload, invalidation.

Backend-agnostic tests take the ``store_path`` fixture (conftest) and run
once per persistence backend; tests that poke one backend's on-disk layout
pin ``backend=`` explicitly.
"""

import json

from repro.engine import scheduler
from repro.engine.obligations import ObligationSet
from repro.engine.scheduler import ObligationEngine
from repro.sfa import symbolic
from repro.store.fingerprint import obligation_digest
from repro.store.obligation_store import (
    SCHEMA_VERSION,
    ObligationStore,
    StoreContext,
    StoreEntry,
)
from repro.suite.registry import benchmark_by_key


def _entry(fp: str, *, scope="Set/KVStore", method="insert", spec="s1", lib="l1", included=True):
    return StoreEntry(
        env="env1",
        fp=fp,
        included=included,
        counterexample=None if included else ["put(a)", "put(a)"],
        error=None,
        solver_stats={"queries": 3, "cache_hits": 1},
        inclusion_stats={"fa_inclusion_checks": 1},
        scope=scope,
        method=method,
        spec=spec,
        library=lib,
        kind="postcondition",
        provenance=f"{method}: postcondition",
    )


def test_record_flush_reload_roundtrip(store_path):
    store = ObligationStore(store_path)
    store.record(_entry("fp1"))
    store.record(_entry("fp2", included=False))
    assert store.lookup("env1", "fp1") is not None
    store.flush()

    reloaded = ObligationStore(store_path)
    assert len(reloaded) == 2
    entry = reloaded.lookup("env1", "fp2")
    assert entry is not None and not entry.included
    assert entry.counterexample == ["put(a)", "put(a)"]
    assert entry.solver_stats == {"queries": 3, "cache_hits": 1}
    assert entry.scope == "Set/KVStore" and entry.kind == "postcondition"
    assert reloaded.lookup("env2", "fp1") is None, "environment key must isolate"


def test_last_write_wins(store_path):
    store = ObligationStore(store_path)
    store.record(_entry("fp1", spec="old"))
    store.flush()
    store.record(_entry("fp1", spec="new"))
    store.flush()

    reloaded = ObligationStore(store_path)
    assert len(reloaded) == 1
    assert reloaded.lookup("env1", "fp1").spec == "new"


def test_corrupt_lines_are_tolerated_and_counted(tmp_path):
    # jsonl layout: a killed writer can leave torn/garbage lines behind
    store = ObligationStore(tmp_path / "store", backend="jsonl")
    store.record(_entry("fp1"))
    store.flush()
    entries_file = tmp_path / "store" / "entries.jsonl"
    with entries_file.open("ab") as handle:
        handle.write(b"{not json at all\n")
        handle.write(b'{"json": "but not an entry"}\n')
        handle.write(b'["not", "even", "a", "dict"]\n')
        handle.write(b"\xff\xfe invalid utf-8\n")
        handle.write(b'{"env": "env1", "fp": "torn", "inc": tr')  # torn final write

    reloaded = ObligationStore(tmp_path / "store", backend="jsonl")
    assert len(reloaded) == 1
    assert reloaded.lookup("env1", "fp1").spec == "s1"
    assert reloaded.summary()["skipped"] == 5, "corrupt lines are counted, not fatal"


def test_schema_mismatch_discards_old_entries(store_path, store_backend, tamper_schema):
    store = ObligationStore(store_path)
    store.record(_entry("fp1"))
    store.flush()
    tamper_schema(store_path)

    reloaded = ObligationStore(store_path)
    assert len(reloaded) == 0
    if store_backend == "jsonl":
        meta = json.loads((store_path / "meta.json").read_text())
        assert meta["schema"] == SCHEMA_VERSION
    # the wipe restamps the schema: the store is immediately usable again
    reloaded.record(_entry("fp2"))
    reloaded.flush()
    assert len(ObligationStore(store_path)) == 1


def test_schema_mismatch_also_purges_leftover_shard_files(store_path, tamper_schema):
    store = ObligationStore(store_path)
    store.record(_entry("fp1"))
    store.flush()
    # an interrupted sharded run leaves shard files behind
    shard = ObligationStore(store_path, shard_output=0)
    shard.record(_entry("orphan"))
    shard.flush()
    tamper_schema(store_path)

    reloaded = ObligationStore(store_path)
    assert len(reloaded) == 0
    assert reloaded.shard_files() == [], "old-schema shard files must not survive"
    assert reloaded.absorb_shards() == 0


def test_resource_limit_errors_are_never_persisted(store_path, monkeypatch):
    """Error outcomes depend on the warm-solver snapshot (run shape), so they
    must be re-discharged every run instead of being replayed from the store."""
    library = benchmark_by_key("Set/KVStore").library
    store = ObligationStore(store_path)
    context = StoreContext(
        scope="Set/KVStore", method="insert", spec_digest="s", library_digest="l"
    )

    def exploding_discharge(obligation, params):
        return {
            "included": False,
            "counterexample": None,
            "error": "minterm budget exceeded",
            "inclusion": {},
            "solver": {},
        }

    monkeypatch.setattr(scheduler, "discharge_obligation", exploding_discharge)
    engine = ObligationEngine(library.operators, store=store)
    obligations = ObligationSet(method="insert")
    obligations.emit("postcondition", [], symbolic.any_trace(), symbolic.TOP)
    outcomes = engine.discharge_all(obligations, store_context=context)
    assert outcomes[0].error == "minterm budget exceeded"
    assert len(store) == 0, "a budget failure must not become a permanent verdict"
    assert engine.stats.store_misses == 1

    # and a pre-existing error entry (older store) is treated as a miss
    digest = obligation_digest(obligations.obligations[0])
    store.record(
        StoreEntry(
            env=engine._env_fp,
            fp=digest,
            included=False,
            error="stale budget failure",
            scope="Set/KVStore",
            method="insert",
            spec="s",
            library="l",
        )
    )
    fresh_engine = ObligationEngine(library.operators, store=store)
    fresh_outcomes = fresh_engine.discharge_all(obligations, store_context=context)
    assert fresh_engine.stats.store_hits == 0
    assert fresh_outcomes[0].error == "minterm budget exceeded"  # re-discharged


def test_invalidation_is_dependency_scoped(store_path):
    store = ObligationStore(store_path)
    store.record(_entry("set-insert", scope="Set/KVStore", method="insert", spec="s1"))
    store.record(_entry("set-mem", scope="Set/KVStore", method="mem", spec="m1"))
    store.record(_entry("stack-push", scope="Stack/KVStore", method="push", spec="p1"))
    store.flush()

    # unchanged spec/library: nothing dropped
    assert store.invalidate_stale("Set/KVStore", "insert", "s1", "l1") == 0

    # an edit of Set's insert spec drops exactly that method's entries
    assert store.invalidate_stale("Set/KVStore", "insert", "s1-edited", "l1") == 1
    assert store.lookup("env1", "set-insert") is None
    assert store.lookup("env1", "set-mem") is not None
    assert store.lookup("env1", "stack-push") is not None

    # a library change drops the whole scope, other scopes stay
    assert store.invalidate_stale("Set/KVStore", "mem", "m1", "l2") == 1
    assert store.lookup("env1", "set-mem") is None
    assert store.lookup("env1", "stack-push") is not None

    # invalidation rewrites the log: a reload agrees
    reloaded = ObligationStore(store_path)
    assert {entry.fp for entry in reloaded} == {"stack-push"}


def test_shard_output_mode_and_absorb(store_path):
    main = ObligationStore(store_path)
    main.record(_entry("shared"))
    main.flush()

    shard0 = ObligationStore(store_path, shard_output=0)
    assert shard0.lookup("env1", "shared") is not None, "children read the main log"
    shard0.record(_entry("only-0"))
    shard0.flush()
    shard1 = ObligationStore(store_path, shard_output=1)
    shard1.record(_entry("only-1"))
    # children never rewrite the shared log, even when invalidating
    shard1.invalidate_stale("Set/KVStore", "insert", "other-spec", "l1")
    shard1.flush()
    assert ObligationStore(store_path).lookup("env1", "shared") is not None

    merged = ObligationStore(store_path)
    assert merged.absorb_shards() == 2
    assert merged.shard_files() == [], "shard files are consumed by the merge"
    reloaded = ObligationStore(store_path)
    assert {entry.fp for entry in reloaded} == {"shared", "only-0", "only-1"}


def test_absorb_shards_tolerates_torn_lines(store_path):
    main = ObligationStore(store_path)
    shard0 = ObligationStore(store_path, shard_output=0)
    shard0.record(_entry("good-0"))
    shard0.flush()
    # simulate a shard worker killed mid-write: good line, then a torn tail
    shard_file = main.shard_files()[0]
    with shard_file.open("ab") as handle:
        handle.write(b"\xff partial utf-8\n")
        handle.write(b'{"env": "env1", "fp": "torn", "inc": tr')

    assert main.absorb_shards() == 1, "the intact line still merges"
    assert main.summary()["skipped"] == 2, "torn lines are counted, not fatal"
    reloaded = ObligationStore(store_path)
    assert {entry.fp for entry in reloaded} == {"good-0"}


def test_session_bookkeeping_backs_explain(tmp_path):
    store = ObligationStore(tmp_path / "store")
    store.note_method("Set/KVStore", "insert", hits=2, misses=1, invalidated=3)
    store.note_method("Set/KVStore", "insert", hits=1)
    store.note_method("Set/KVStore", "mem", misses=4)
    assert store.summary() == {
        "entries": 0,
        "hits": 3,
        "misses": 5,
        "invalidated": 3,
        "skipped": 0,
    }
    assert store.explain() == [
        {"scope": "Set/KVStore", "method": "insert", "hits": 3, "misses": 1, "invalidated": 3},
        {"scope": "Set/KVStore", "method": "mem", "hits": 0, "misses": 4, "invalidated": 0},
    ]
