"""Identity-memoised spec/library digests (one checker run digests once)."""

from repro.store import fingerprint as fp
from repro.suite.registry import all_benchmarks


def _bench():
    return all_benchmarks(include_slow=False)[0]


def test_spec_digest_is_memoised_per_object():
    bench = _bench()
    spec = next(iter(bench.specs.values()))
    first = fp.spec_digest(spec)
    assert fp._SPEC_DIGEST_MEMO[id(spec)][1] == first
    # poison the cached value: a second call must come from the memo
    fp._SPEC_DIGEST_MEMO[id(spec)] = (spec, "sentinel")
    try:
        assert fp.spec_digest(spec) == "sentinel"
    finally:
        del fp._SPEC_DIGEST_MEMO[id(spec)]
    assert fp.spec_digest(spec) == first


def test_spec_digest_distinguishes_distinct_objects():
    bench = _bench()
    digests = {fp.spec_digest(spec) for spec in bench.specs.values()}
    assert len(digests) == len(bench.specs)


def test_library_digest_is_memoised_per_identity():
    bench = _bench()
    operators, axioms = bench.library.operators, bench.library.axioms
    first = fp.library_digest(operators, axioms, bench.library.constants)
    key = (id(operators), id(axioms))
    assert fp._LIBRARY_DIGEST_MEMO[key][3] == first
    fp._LIBRARY_DIGEST_MEMO[key] = (
        operators,
        axioms,
        fp._LIBRARY_DIGEST_MEMO[key][2],
        "sentinel",
    )
    try:
        assert fp.library_digest(operators, axioms, bench.library.constants) == "sentinel"
    finally:
        del fp._LIBRARY_DIGEST_MEMO[key]
    assert fp.library_digest(operators, axioms, bench.library.constants) == first


def test_library_digest_notices_constant_changes_despite_identity():
    """The identity memo must not mask a *content* change in the constants."""
    from repro import smt
    from repro.smt.sorts import ELEM

    bench = _bench()
    operators, axioms = bench.library.operators, bench.library.axioms
    base = fp.library_digest(operators, axioms, {})
    changed = fp.library_digest(
        operators, axioms, {"c0": smt.var("digest_memo_c0", ELEM)}
    )
    assert base != changed
    assert fp.library_digest(operators, axioms, {}) == base


def test_checker_env_fingerprint_matches_direct_engine_construction(tmp_path):
    """The checker and a bare engine must key the same store namespace.

    Regression guard: the checker's dependency-index digest includes the
    constant table, the environment fingerprint never has — wiring the
    former into the latter would silently cold-start every existing store
    for constant-bearing libraries and split the namespace between the two
    construction paths.
    """
    from repro.engine import ObligationEngine
    from repro.store.obligation_store import ObligationStore
    from repro.typecheck.checker import CheckerConfig

    bench = next(b for b in all_benchmarks() if b.library.constants)
    store = ObligationStore(tmp_path)
    checker = bench.make_checker(CheckerConfig(), store=store)
    direct = ObligationEngine(
        bench.library.operators,
        bench.library.axioms,
        max_literals=checker.config.max_literals,
        store=store,
    )
    assert checker.obligation_engine._env_fp == direct._env_fp


def test_environment_fingerprint_accepts_precomputed_library_digest():
    bench = _bench()
    operators, axioms = bench.library.operators, bench.library.axioms
    direct = fp.environment_fingerprint(operators, axioms)
    precomputed = fp.environment_fingerprint(
        operators, axioms, library=fp.library_digest(operators, axioms)
    )
    assert direct == precomputed
    other = fp.environment_fingerprint(operators, axioms, library="different")
    assert other != direct
