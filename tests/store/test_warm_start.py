"""Cold-vs-warm determinism: the acceptance contract of the obligation store.

A warm run must (a) answer at least half of the emitted obligations straight
from the store — in fact it discharges *nothing* — and (b) produce
byte-identical deterministic Tables 1/3/4 to the cold run, because store
entries carry the exact per-obligation counters the original discharge
produced.  Editing one benchmark's spec must invalidate only that
benchmark's entries, observable through the ``--explain`` session counts.
"""

import dataclasses

import pytest

from repro.evaluation.runner import run_evaluation
from repro.evaluation.tables import table1, table3, table4
from repro.sfa import symbolic
from repro.store.obligation_store import ObligationStore
from repro.suite.registry import benchmark_by_key
from repro.typecheck.checker import CheckerConfig


def _verdicts(report):
    return [
        (stats.adt, result.method, result.verified, result.error)
        for stats in report.adt_stats
        for result in stats.method_results
    ] + [
        (negative.benchmark, negative.variant, negative.rejected, negative.error)
        for negative in report.negative_results
    ]


@pytest.fixture(scope="module", params=("jsonl", "sqlite"))
def cold_and_warm(tmp_path_factory, request):
    """One cold and one warm run of the fast corpus against the same store.

    Parametrised over both persistence backends: the cold/warm acceptance
    contract is backend-independent.  (Module-scoped, so the env is pinned
    with a manual MonkeyPatch context rather than the function fixture.)
    """
    path = tmp_path_factory.mktemp("obligation-store") / "store"
    with pytest.MonkeyPatch.context() as mp:
        mp.setenv("REPRO_STORE_BACKEND", request.param)
        cold_store = ObligationStore(path)
        cold = run_evaluation(include_slow=False, store=cold_store)
        warm_store = ObligationStore(path)
        warm = run_evaluation(include_slow=False, store=warm_store)
        yield cold, cold_store, warm, warm_store


def test_warm_run_answers_from_store(cold_and_warm):
    cold, cold_store, warm, warm_store = cold_and_warm
    cold_summary = cold_store.summary()
    assert cold_summary["misses"] > 0
    # benchmarks sharing a library (Set and LazySet on KVStore) emit identical
    # obligations, so even a cold corpus run hits entries written moments
    # earlier by a sibling benchmark — cross-benchmark reuse for free

    summary = warm_store.summary()
    assert summary["misses"] == 0, "a warm run of the same workload discharges nothing"
    assert summary["invalidated"] == 0
    assert summary["hits"] == cold_summary["hits"] + cold_summary["misses"], (
        "every obligation the cold run resolved is answered from the store"
    )

    # the acceptance bar: at least half of the *emitted* obligations are
    # answered by the store itself (the rest by batch dedupe / the memo)
    emitted = sum(r.stats.obligations for s in warm.adt_stats for r in s.method_results)
    store_answered = sum(
        r.stats.store_hits for s in warm.adt_stats for r in s.method_results
    )
    assert emitted > 0
    assert store_answered * 2 >= emitted, f"{store_answered}/{emitted} < 50%"


def test_warm_tables_are_byte_identical(cold_and_warm):
    cold, _, warm, _ = cold_and_warm
    assert _verdicts(warm) == _verdicts(cold)
    for render in (table1, table3, table4):
        assert render(warm, deterministic=True) == render(cold, deterministic=True)
    # #Store itself is the one counter that legitimately differs: the warm
    # run answers strictly more obligations from the store (the cold run
    # already scores cross-benchmark hits for shared-library obligations)
    def store_answered(report):
        return sum(r.stats.store_hits for s in report.adt_stats for r in s.method_results)

    assert store_answered(warm) > store_answered(cold)
    first_cold_method = cold.adt_stats[0].method_results[0]
    assert first_cold_method.stats.store_hits == 0, (
        "nothing can precede the very first method of a cold run"
    )


def test_store_entries_carry_witness_traces(cold_and_warm):
    _, cold_store, _, _ = cold_and_warm
    rejected = [entry for entry in cold_store if not entry.included]
    assert rejected, "the negative variants must leave REJECTED entries behind"
    assert any(entry.counterexample for entry in rejected)
    assert all(entry.scope and entry.method and entry.spec for entry in cold_store)


def test_spec_edit_invalidates_only_that_benchmark(store_path):
    store = ObligationStore(store_path)
    set_bench = benchmark_by_key("Set/KVStore")
    stack_bench = benchmark_by_key("Stack/KVStore")
    set_bench.verify_all(set_bench.make_checker(store=store))
    stack_bench.verify_all(stack_bench.make_checker(store=store))
    stack_entries = {entry.fp for entry in store.entries_for_scope("Stack/KVStore")}
    assert store.entries_for_scope("Set/KVStore") and stack_entries

    # edit insert's spec: strengthen the postcondition with a structurally
    # new (if semantically redundant) conjunct — a genuinely different HAT
    edited_specs = dict(set_bench.specs)
    original = edited_specs["insert"]
    edited_specs["insert"] = dataclasses.replace(
        original,
        postcondition=symbolic.and_(original.postcondition, symbolic.any_trace()),
    )
    edited_bench = dataclasses.replace(set_bench, specs=edited_specs)

    session = ObligationStore(store_path)
    edited_bench.verify_all(edited_bench.make_checker(store=session))
    explain = {(row["scope"], row["method"]): row for row in session.explain()}

    assert explain[("Set/KVStore", "insert")]["invalidated"] > 0
    assert explain[("Set/KVStore", "mem")]["invalidated"] == 0
    assert explain[("Set/KVStore", "empty")]["invalidated"] == 0
    # unchanged methods still warm-start; the edited one re-discharges
    assert explain[("Set/KVStore", "mem")]["hits"] > 0
    assert explain[("Set/KVStore", "insert")]["misses"] > 0

    # the other benchmark's entries were never touched
    assert {
        entry.fp for entry in session.entries_for_scope("Stack/KVStore")
    } == stack_entries
    warm_stack = ObligationStore(store_path)
    stack_bench.verify_all(stack_bench.make_checker(store=warm_stack))
    assert warm_stack.summary()["misses"] == 0
    assert warm_stack.summary()["invalidated"] == 0


def test_store_respects_environment_fingerprint(store_path):
    """Entries recorded under one checker configuration never leak to another."""
    store = ObligationStore(store_path)
    bench = benchmark_by_key("Set/KVStore")
    bench.verify_all(bench.make_checker(CheckerConfig(discharge="lazy"), store=store))

    other = ObligationStore(store_path)
    bench.verify_all(bench.make_checker(CheckerConfig(discharge="compiled"), store=other))
    assert other.summary()["hits"] == 0, "a different discharge mode is a different world"
    assert other.summary()["misses"] > 0

    # while the original configuration still warm-starts
    again = ObligationStore(store_path)
    bench.verify_all(bench.make_checker(CheckerConfig(discharge="lazy"), store=again))
    assert again.summary()["misses"] == 0
