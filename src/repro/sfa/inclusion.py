"""SFA inclusion checking (Algorithm 1 of the paper).

``InclusionChecker.check(Γ, A, B)`` decides ``Γ ⊢ A ⊆ B``: under every
instantiation of the typing context, every trace accepted by ``A`` is accepted
by ``B``.  The pipeline is the paper's:

1. enumerate satisfiable boolean combinations of the context literals,
2. within each, enumerate satisfiable minterms per operator (the alphabet
   transformation), asking the SMT solver for each candidate,
3. compile both symbolic automata to finite automata over that alphabet and
   run a plain FA inclusion check.

The checker records the statistics reported in the paper's evaluation: the
number of FA inclusion checks (``#FA⊆``), the sizes of the constructed
automata (``avg. s_FA``) and the time spent in FA inclusion (``t_FA⊆``); SMT
counts and times are tracked by the shared solver.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from .. import smt
from ..smt.terms import Term
from .alphabet import (
    Alphabet,
    AlphabetError,
    AlphabetStats,
    build_alphabets,
    resolve_max_literals,
)
from .automata import Dfa
from .derivatives import DfaCache, compile_dfa
from .signatures import OperatorRegistry
from .symbolic import Sfa


@dataclass
class InclusionStats:
    """Counters mirroring #FA⊆ / avg s_FA / t_FA⊆ of Tables 1, 3 and 4."""

    fa_inclusion_checks: int = 0
    automata_built: int = 0
    total_transitions: int = 0
    context_cases: int = 0
    minterm_candidates: int = 0
    satisfiable_minterms: int = 0
    #: DFA-compilation memo behaviour (per (sfa_id, alphabet fingerprint))
    dfa_cache_hits: int = 0
    dfa_cache_misses: int = 0
    fa_time_seconds: float = 0.0

    @property
    def average_transitions(self) -> float:
        if self.automata_built == 0:
            return 0.0
        return self.total_transitions / self.automata_built

    def merge(self, other: "InclusionStats") -> None:
        self.fa_inclusion_checks += other.fa_inclusion_checks
        self.automata_built += other.automata_built
        self.total_transitions += other.total_transitions
        self.context_cases += other.context_cases
        self.minterm_candidates += other.minterm_candidates
        self.satisfiable_minterms += other.satisfiable_minterms
        self.dfa_cache_hits += other.dfa_cache_hits
        self.dfa_cache_misses += other.dfa_cache_misses
        self.fa_time_seconds += other.fa_time_seconds

    def snapshot(self) -> "InclusionStats":
        return InclusionStats(
            fa_inclusion_checks=self.fa_inclusion_checks,
            automata_built=self.automata_built,
            total_transitions=self.total_transitions,
            context_cases=self.context_cases,
            minterm_candidates=self.minterm_candidates,
            satisfiable_minterms=self.satisfiable_minterms,
            dfa_cache_hits=self.dfa_cache_hits,
            dfa_cache_misses=self.dfa_cache_misses,
            fa_time_seconds=self.fa_time_seconds,
        )


@dataclass
class InclusionResult:
    included: bool
    #: one witness (as a list of characters rendered to strings) when not included
    counterexample: Optional[list[str]] = None


class InclusionChecker:
    """Decides language inclusion between symbolic automata under a context."""

    def __init__(
        self,
        solver: smt.Solver,
        operators: OperatorRegistry,
        *,
        minimize: bool = False,
        filter_unsat_minterms: bool = True,
        max_literals: Optional[int] = None,
        strategy: str = "guided",
    ) -> None:
        self.solver = solver
        self.operators = operators
        self.minimize = minimize
        self.filter_unsat_minterms = filter_unsat_minterms
        self.max_literals = resolve_max_literals(max_literals, strategy, filter_unsat_minterms)
        self.strategy = strategy
        self.stats = InclusionStats()
        self.cache_hits = 0
        self._cache: dict[tuple, InclusionResult] = {}
        self._dfa_cache = DfaCache()

    # -- the main entry point ----------------------------------------------------------
    def check(
        self,
        hypotheses: Sequence[Term],
        lhs: Sfa,
        rhs: Sfa,
        *,
        extra_context_literals: Iterable[Term] = (),
    ) -> bool:
        return self.check_detailed(
            hypotheses, lhs, rhs, extra_context_literals=extra_context_literals
        ).included

    def check_detailed(
        self,
        hypotheses: Sequence[Term],
        lhs: Sfa,
        rhs: Sfa,
        *,
        extra_context_literals: Iterable[Term] = (),
    ) -> InclusionResult:
        cache_key = (
            tuple(sorted(h.term_id for h in hypotheses)),
            lhs.sfa_id,
            rhs.sfa_id,
            tuple(sorted(l.term_id for l in extra_context_literals)),
        )
        cached = self._cache.get(cache_key)
        if cached is not None:
            self.cache_hits += 1
            return cached
        alphabet_stats = AlphabetStats()
        alphabets = build_alphabets(
            self.solver,
            list(hypotheses),
            [lhs, rhs],
            self.operators,
            extra_context_literals=extra_context_literals,
            max_literals=self.max_literals,
            filter_unsat=self.filter_unsat_minterms,
            strategy=self.strategy,
            stats=alphabet_stats,
        )
        self.stats.context_cases += alphabet_stats.context_cases
        self.stats.minterm_candidates += alphabet_stats.minterm_candidates
        self.stats.satisfiable_minterms += alphabet_stats.satisfiable_minterms

        outcome = InclusionResult(included=True)
        for alphabet in alphabets:
            result = self._check_under_alphabet(lhs, rhs, alphabet)
            if not result.included:
                outcome = result
                break
        self._cache[cache_key] = outcome
        return outcome

    # -- per-context-case check ---------------------------------------------------------
    def _check_under_alphabet(self, lhs: Sfa, rhs: Sfa, alphabet: Alphabet) -> InclusionResult:
        start = time.perf_counter()
        hits_before = self._dfa_cache.hits
        misses_before = self._dfa_cache.misses
        lhs_dfa = compile_dfa(lhs, alphabet, cache=self._dfa_cache)
        rhs_dfa = compile_dfa(rhs, alphabet, cache=self._dfa_cache)
        self.stats.dfa_cache_hits += self._dfa_cache.hits - hits_before
        self.stats.dfa_cache_misses += self._dfa_cache.misses - misses_before
        if self.minimize:
            lhs_dfa = lhs_dfa.minimize()
            rhs_dfa = rhs_dfa.minimize()
        self.stats.automata_built += 2
        self.stats.total_transitions += lhs_dfa.num_transitions + rhs_dfa.num_transitions
        self.stats.fa_inclusion_checks += 1
        witness = lhs_dfa.counterexample(rhs_dfa)
        self.stats.fa_time_seconds += time.perf_counter() - start
        if witness is None:
            return InclusionResult(included=True)
        rendered = [repr(alphabet.characters[index]) for index in witness]
        return InclusionResult(included=False, counterexample=rendered)

    # -- auxiliary queries used by the type checker --------------------------------------
    def is_empty(self, hypotheses: Sequence[Term], formula: Sfa) -> bool:
        """Is L(formula) empty under every instantiation of the context?"""
        from . import symbolic

        return self.check(hypotheses, formula, symbolic.BOT)

    def equivalent(self, hypotheses: Sequence[Term], lhs: Sfa, rhs: Sfa) -> bool:
        return self.check(hypotheses, lhs, rhs) and self.check(hypotheses, rhs, lhs)
