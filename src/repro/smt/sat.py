"""Compatibility shim: the DPLL core now lives in :mod:`repro.smt.backends.dpll`.

The SAT engine grew a pluggable seam (:mod:`repro.smt.backends`) so the lazy
SMT loop can run on DPLL, CDCL or an external solver interchangeably; the
historical import path ``repro.smt.sat.SatSolver`` keeps addressing the DPLL
implementation.
"""

from __future__ import annotations

from .backends.dpll import Clause, SatSolver

__all__ = ["Clause", "SatSolver"]
