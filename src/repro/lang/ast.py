"""Abstract syntax of λᴱ, the core calculus of the paper (Fig. 2).

Programs are kept in *monadic normal form* (MNF): every intermediate
computation is named by a ``let``, the branches of a ``match`` are
computations, and operator/function arguments are values.  The surface
Mini-ML syntax accepted by :mod:`repro.lang.parser` is lowered into this form
by :mod:`repro.lang.desugar`.

Two syntactic classes exist, mirroring the paper:

* **values** — constants, variables, lambdas and fixpoints,
* **computations** — value returns, let-bound pure/effectful operator
  applications, function applications, sequenced computations and pattern
  matches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence

# ---------------------------------------------------------------------------
# Values
# ---------------------------------------------------------------------------


class Value:
    """Base class of value forms."""

    def walk(self) -> Iterator["Node"]:
        yield self


class Expr:
    """Base class of computation forms."""

    def walk(self) -> Iterator["Node"]:
        yield self


Node = Value | Expr


@dataclass(frozen=True)
class Const(Value):
    """A literal constant: ``()``, booleans, integers, or a named datum.

    Named data (e.g. the root path ``"/"``) carry the surface string; their
    logical sort is resolved against the library declarations during
    verification.
    """

    value: object

    def __repr__(self) -> str:
        if self.value == ():
            return "()"
        if isinstance(self.value, bool):
            return "true" if self.value else "false"
        return repr(self.value)


UNIT = Const(())
TRUE = Const(True)
FALSE = Const(False)


@dataclass(frozen=True)
class Var(Value):
    """A program variable."""

    name: str

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Lambda(Value):
    """``fun (x : ty) -> body``; the annotation is a surface type name."""

    param: str
    param_type: Optional[str]
    body: "Expr"

    def __repr__(self) -> str:
        annotation = f" : {self.param_type}" if self.param_type else ""
        return f"(fun ({self.param}{annotation}) -> {self.body!r})"

    def walk(self) -> Iterator[Node]:
        yield self
        yield from self.body.walk()


@dataclass(frozen=True)
class Fix(Value):
    """``fix f. fun x -> e`` — a recursive function value."""

    name: str
    body: Lambda

    def __repr__(self) -> str:
        return f"(fix {self.name}. {self.body!r})"

    def walk(self) -> Iterator[Node]:
        yield self
        yield from self.body.walk()


# ---------------------------------------------------------------------------
# Computations
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Ret(Expr):
    """A value used as a (pure, effect-free) computation."""

    value: Value

    def __repr__(self) -> str:
        return repr(self.value)

    def walk(self) -> Iterator[Node]:
        yield self
        yield from self.value.walk()


@dataclass(frozen=True)
class LetOp(Expr):
    """``let x = op v̄ in e`` — an effectful library operator application."""

    name: str
    op: str
    args: tuple[Value, ...]
    body: Expr

    def __repr__(self) -> str:
        rendered = " ".join(repr(a) for a in self.args)
        return f"let {self.name} = {self.op} {rendered} in\n{self.body!r}"

    def walk(self) -> Iterator[Node]:
        yield self
        for arg in self.args:
            yield from arg.walk()
        yield from self.body.walk()


@dataclass(frozen=True)
class LetPure(Expr):
    """``let x = opₚ v̄ in e`` — a pure primitive operator application."""

    name: str
    op: str
    args: tuple[Value, ...]
    body: Expr

    def __repr__(self) -> str:
        rendered = " ".join(repr(a) for a in self.args)
        return f"let {self.name} = {self.op} {rendered} in\n{self.body!r}"

    def walk(self) -> Iterator[Node]:
        yield self
        for arg in self.args:
            yield from arg.walk()
        yield from self.body.walk()


@dataclass(frozen=True)
class LetApp(Expr):
    """``let x = v v̄ in e`` — application of a function value."""

    name: str
    func: Value
    args: tuple[Value, ...]
    body: Expr

    def __repr__(self) -> str:
        rendered = " ".join(repr(a) for a in self.args)
        return f"let {self.name} = {self.func!r} {rendered} in\n{self.body!r}"

    def walk(self) -> Iterator[Node]:
        yield self
        yield from self.func.walk()
        for arg in self.args:
            yield from arg.walk()
        yield from self.body.walk()


@dataclass(frozen=True)
class LetIn(Expr):
    """``let x = e₁ in e₂`` with a computation on the right-hand side."""

    name: str
    bound: Expr
    body: Expr

    def __repr__(self) -> str:
        return f"let {self.name} = {self.bound!r} in\n{self.body!r}"

    def walk(self) -> Iterator[Node]:
        yield self
        yield from self.bound.walk()
        yield from self.body.walk()


@dataclass(frozen=True)
class Branch:
    """One arm of a ``match``: constructor name, binders and body."""

    constructor: str
    binders: tuple[str, ...]
    body: Expr

    def walk(self) -> Iterator[Node]:
        yield from self.body.walk()


@dataclass(frozen=True)
class Match(Expr):
    """``match v with | d ȳ -> e ...``."""

    scrutinee: Value
    branches: tuple[Branch, ...]

    def __repr__(self) -> str:
        arms = " ".join(
            f"| {b.constructor} {' '.join(b.binders)} -> {b.body!r}" for b in self.branches
        )
        return f"match {self.scrutinee!r} with {arms}"

    def walk(self) -> Iterator[Node]:
        yield self
        yield from self.scrutinee.walk()
        for branch in self.branches:
            yield from branch.walk()


# ---------------------------------------------------------------------------
# Top-level programs
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FunctionDef:
    """A top-level binding ``let [rec] f (x : t) ... : t = body``."""

    name: str
    params: tuple[tuple[str, Optional[str]], ...]
    return_type: Optional[str]
    body: Expr
    recursive: bool = False

    def as_value(self) -> Value:
        """The function as a λᴱ value (nested lambdas, wrapped in fix if recursive)."""
        params = list(self.params)
        if not params:
            params = [("_unit", "unit")]
        inner: Value = Lambda(params[-1][0], params[-1][1], self.body)
        for param, annotation in reversed(params[:-1]):
            inner = Lambda(param, annotation, Ret(inner))
        if self.recursive:
            if not isinstance(inner, Lambda):  # pragma: no cover - defensive
                raise TypeError("recursive definitions must be functions")
            return Fix(self.name, inner)
        return inner


@dataclass(frozen=True)
class Program:
    """A module: an ordered list of top-level function definitions."""

    definitions: tuple[FunctionDef, ...]

    def __getitem__(self, name: str) -> FunctionDef:
        for definition in self.definitions:
            if definition.name == name:
                return definition
        raise KeyError(name)

    def __contains__(self, name: str) -> bool:
        return any(d.name == name for d in self.definitions)

    def names(self) -> list[str]:
        return [d.name for d in self.definitions]


# ---------------------------------------------------------------------------
# Metrics used by the evaluation tables
# ---------------------------------------------------------------------------


def count_branches(expr: Expr) -> int:
    """Number of control-flow paths through a method body (#Branch)."""
    if isinstance(expr, Match):
        return sum(count_branches(branch.body) for branch in expr.branches)
    if isinstance(expr, (LetOp, LetPure, LetApp)):
        return count_branches(expr.body)
    if isinstance(expr, LetIn):
        return max(1, count_branches(expr.bound)) * count_branches(expr.body)
    return 1


def count_operator_applications(expr: Expr) -> int:
    """Number of built-in operator/function applications (#App)."""
    total = 0
    for node in expr.walk():
        if isinstance(node, (LetOp, LetPure, LetApp)):
            total += 1
    return total


def free_variables(node: Node, bound: frozenset[str] = frozenset()) -> set[str]:
    """Free program variables of a value or computation."""
    if isinstance(node, Const):
        return set()
    if isinstance(node, Var):
        return set() if node.name in bound else {node.name}
    if isinstance(node, Lambda):
        return free_variables(node.body, bound | {node.param})
    if isinstance(node, Fix):
        return free_variables(node.body, bound | {node.name})
    if isinstance(node, Ret):
        return free_variables(node.value, bound)
    if isinstance(node, (LetOp, LetPure)):
        out = set()
        for arg in node.args:
            out |= free_variables(arg, bound)
        return out | free_variables(node.body, bound | {node.name})
    if isinstance(node, LetApp):
        out = free_variables(node.func, bound)
        for arg in node.args:
            out |= free_variables(arg, bound)
        return out | free_variables(node.body, bound | {node.name})
    if isinstance(node, LetIn):
        return free_variables(node.bound, bound) | free_variables(
            node.body, bound | {node.name}
        )
    if isinstance(node, Match):
        out = free_variables(node.scrutinee, bound)
        for branch in node.branches:
            out |= free_variables(branch.body, bound | set(branch.binders))
        return out
    raise TypeError(f"unexpected node {node!r}")
