"""The experiment runner: verify the corpus and collect the paper's statistics."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from ..obs import trace
from ..suite.benchmark import AdtBenchmark
from ..suite.registry import all_benchmarks
from ..typecheck.checker import CheckerConfig
from ..typecheck.stats import AdtStats, MethodResult


@dataclass
class NegativeResult:
    """Outcome of checking a known-incorrect variant (must *not* verify)."""

    benchmark: str
    variant: str
    rejected: bool
    error: Optional[str]


@dataclass
class EvaluationReport:
    """Everything needed to regenerate Tables 1–4."""

    adt_stats: list[AdtStats] = field(default_factory=list)
    negative_results: list[NegativeResult] = field(default_factory=list)
    total_time_seconds: float = 0.0
    #: per-benchmark run diagnostics (:meth:`Checker.run_diagnostics`):
    #: cache hit/eviction rates and the batch grouper's per-group records
    diagnostics: list[dict] = field(default_factory=list)
    #: set by the distributed coordinator: dispatch id, enqueue counts,
    #: drain timing and the server's queue counters (None for local runs)
    dispatch: Optional[dict] = None

    @property
    def all_verified(self) -> bool:
        return all(stats.all_verified for stats in self.adt_stats)

    @property
    def all_negatives_rejected(self) -> bool:
        return all(result.rejected for result in self.negative_results)

    def cache_totals(self) -> dict[str, int]:
        """Summed cache counters across the corpus (the bench caches block)."""
        totals: dict[str, int] = {}
        for diagnostic in self.diagnostics:
            for key, value in diagnostic.get("caches", {}).items():
                totals[key] = totals.get(key, 0) + value
        return totals

    def batch_group_records(self) -> list[dict]:
        """Every batch group discharged, in corpus order (empty in lazy mode)."""
        records: list[dict] = []
        for diagnostic in self.diagnostics:
            records.extend(diagnostic.get("batch_groups", ()))
        return records

    def batch_group_summary(self) -> Optional[dict]:
        """The query-coalescing record of a batch-mode run (None in lazy mode).

        ``queries_billed`` is what the deterministic tables charge (the
        recorded construction bill replayed per member — what fully-parallel
        lazy executes); ``queries_executed`` is what the grouped run actually
        ran.  Every multi-member group must execute strictly fewer than it
        bills.  Surfaced by ``repro bench`` and ``evaluate --json``.
        """
        records = self.batch_group_records()
        if not records:
            return None
        multi = [record for record in records if record["members"] > 1]
        return {
            "groups": len(records),
            "grouped_obligations": sum(record["members"] for record in records),
            "multi_member_groups": len(multi),
            "queries_executed": sum(record["queries_executed"] for record in records),
            "queries_billed": sum(record["queries_billed"] for record in records),
            "multi_groups_strictly_fewer": all(
                record["queries_executed"] < record["queries_billed"] for record in multi
            ),
        }

    def per_method_rows(self) -> list[dict[str, object]]:
        rows: list[dict[str, object]] = []
        for stats in self.adt_stats:
            for result in stats.method_results:
                row = {
                    "Datatype": stats.adt,
                    "Library": stats.library,
                    "#Ghost": stats.num_ghosts,
                    "sI": stats.invariant_size,
                    "verified": result.verified,
                }
                row.update(result.stats.as_row())
                rows.append(row)
        return rows


def run_benchmark(
    benchmark: AdtBenchmark,
    *,
    config: Optional[CheckerConfig] = None,
    check_negative_variants: bool = True,
    store=None,
    diagnostics_sink: Optional[list] = None,
) -> tuple[AdtStats, list[NegativeResult]]:
    """Verify one ADT/library row plus its known-bad variants.

    ``store`` is an optional :class:`repro.store.ObligationStore`: discharged
    obligations are written back to it and later runs answer from it.
    ``diagnostics_sink``, when given, receives the checker's run diagnostics
    (cache rates, batch group records) once the benchmark is done.
    """
    with trace.span("benchmark", cat="benchmark", benchmark=benchmark.key):
        checker = benchmark.make_checker(config, store=store)
        stats = benchmark.verify_all(checker)
        negatives: list[NegativeResult] = []
        if check_negative_variants:
            for variant in benchmark.negative_variants:
                result = benchmark.verify_negative_variant(variant, checker)
                negatives.append(
                    NegativeResult(
                        benchmark=benchmark.key,
                        variant=variant,
                        rejected=not result.verified,
                        error=result.error,
                    )
                )
    if diagnostics_sink is not None:
        diagnostics_sink.append({"benchmark": benchmark.key, **checker.run_diagnostics()})
    return stats, negatives


def run_evaluation(
    benchmarks: Optional[Sequence[AdtBenchmark]] = None,
    *,
    include_slow: bool = True,
    config: Optional[CheckerConfig] = None,
    check_negative_variants: bool = True,
    store=None,
) -> EvaluationReport:
    """Verify the whole corpus, mirroring the experiments behind Table 1."""
    if benchmarks is None:
        benchmarks = all_benchmarks(include_slow=include_slow)
    benchmarks = list(benchmarks)
    report = EvaluationReport()
    start = time.perf_counter()
    with trace.span("evaluate", cat="run", benchmarks=len(benchmarks)):
        for benchmark in benchmarks:
            stats, negatives = run_benchmark(
                benchmark,
                config=config,
                check_negative_variants=check_negative_variants,
                store=store,
                diagnostics_sink=report.diagnostics,
            )
            report.adt_stats.append(stats)
            report.negative_results.extend(negatives)
    report.total_time_seconds = time.perf_counter() - start
    return report
