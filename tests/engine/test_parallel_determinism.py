"""Determinism of parallel discharge: ``workers=N`` must not change results.

Every obligation is discharged hermetically (fresh solver + checker), so all
statistics counters are pure functions of the obligation set.  The tables
produced with a 4-way process pool must therefore be byte-identical to the
serial ones — wall-clock columns aside, which vary run to run even serially.
"""

import pytest

from repro.suite.registry import all_benchmarks
from repro.suite.set_kvstore import set_kvstore
from repro.typecheck.checker import CheckerConfig


def _counter_tables(bench, workers: int, backend: str = "dpll"):
    checker = bench.make_checker(CheckerConfig(workers=workers, backend=backend))
    stats = bench.verify_all(checker)
    rows = [result.stats.counter_row() for result in stats.method_results]
    verdicts = [
        (result.method, result.verified, result.error)
        for result in stats.method_results
    ]
    return rows, verdicts, checker


def test_workers4_matches_workers1_byte_identical():
    bench = set_kvstore()
    serial_rows, serial_verdicts, _ = _counter_tables(bench, workers=1)
    parallel_rows, parallel_verdicts, checker = _counter_tables(bench, workers=4)
    assert checker.obligation_engine.stats.parallel_batches > 0, (
        "the pool must actually have been exercised"
    )
    assert parallel_rows == serial_rows
    assert parallel_verdicts == serial_verdicts


def test_workers4_matches_workers1_under_cdcl():
    """Hermetic discharge keeps counters worker-independent per backend —
    including the backend-sensitive ones (#SAT/#Confl), which are pure in
    (backend, warm snapshot, obligation)."""
    bench = set_kvstore()
    serial_rows, serial_verdicts, _ = _counter_tables(bench, workers=1, backend="cdcl")
    parallel_rows, parallel_verdicts, checker = _counter_tables(
        bench, workers=4, backend="cdcl"
    )
    assert checker.obligation_engine.stats.parallel_batches > 0
    assert parallel_rows == serial_rows
    assert parallel_verdicts == serial_verdicts


@pytest.mark.parametrize(
    "key", [bench.key for bench in all_benchmarks(include_slow=False)]
)
def test_workers2_matches_workers1_across_fast_corpus(key):
    bench = next(b for b in all_benchmarks(include_slow=False) if b.key == key)
    serial_rows, serial_verdicts, _ = _counter_tables(bench, workers=1)
    parallel_rows, parallel_verdicts, _ = _counter_tables(bench, workers=2)
    assert parallel_rows == serial_rows
    assert parallel_verdicts == serial_verdicts


def test_negative_variant_errors_are_worker_independent():
    bench = set_kvstore()
    errors = {}
    for workers in (1, 4):
        checker = bench.make_checker(CheckerConfig(workers=workers))
        result = bench.verify_negative_variant("insert_bad", checker)
        assert not result.verified
        errors[workers] = result.error
    assert errors[1] == errors[4]
    assert "counterexample trace:" in errors[1]


def test_pool_falls_back_to_serial_without_fork(monkeypatch):
    from repro.engine import scheduler

    monkeypatch.setattr(scheduler, "_fork_available", lambda: False)
    bench = set_kvstore()
    rows, verdicts, checker = _counter_tables(bench, workers=4)
    assert checker.obligation_engine.stats.parallel_batches == 0
    serial_rows, serial_verdicts, _ = _counter_tables(bench, workers=1)
    assert rows == serial_rows and verdicts == serial_verdicts
