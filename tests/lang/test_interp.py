"""Tests for the trace-based interpreter, using a small in-line KVStore model."""

import pytest

from repro.lang import ast
from repro.lang.desugar import desugar_expression, desugar_program
from repro.lang.interp import (
    DataValue,
    Interpreter,
    StuckError,
    module_environment,
)
from repro.sfa.events import Event, Trace


class KvModel:
    """The put/exists/get semantics of Example 3.1, derived from the trace."""

    def apply(self, op, trace, args):
        if op == "put":
            return ()
        if op == "exists":
            key = args[0]
            return trace.any_event("put", lambda e: e.args[0] == key)
        if op == "get":
            key = args[0]
            event = trace.last_event("put", lambda e: e.args[0] == key)
            if event is None:
                raise StuckError(f"get on absent key {key!r}")
            return event.args[1]
        raise StuckError(f"unknown operator {op}")


EFF = {"put", "exists", "get"}
PURE = {"Path.parent": lambda p: p.rsplit("/", 1)[0] or "/"}


def run(source, env=None, trace=None):
    expr = desugar_expression(source, effectful_ops=EFF, pure_ops=PURE)
    interp = Interpreter(KvModel(), PURE)
    return interp.run(expr, env or {}, trace or Trace())


def test_pure_arithmetic_and_booleans():
    assert run("1 + 2 - 4").value == -1
    assert run("not (1 == 2)").value is True
    assert run("(1 < 2) && (3 <= 3)").value is True
    assert run("(1 > 2) || (3 >= 4)").value is False
    assert run('"a" <> "b"').value is True


def test_let_if_and_sequencing():
    result = run('let x = 3 in if x == 3 then x + 1 else 0')
    assert result.value == 4
    result = run('put "/" "root"; exists "/"')
    assert result.value is True
    assert [e.op for e in result.trace] == ["put", "exists"]


def test_effect_context_is_consulted():
    context = Trace([Event("put", ("/a", "dir"), ())])
    result = run('exists "/a"', trace=context)
    assert result.value is True
    assert len(result.emitted) == 1
    assert result.emitted[0] == Event("exists", ("/a",), True)

    missing = run('exists "/a"')
    assert missing.value is False


def test_get_returns_last_put_value_and_sticks_otherwise():
    context = Trace([Event("put", ("/a", "v1"), ()), Event("put", ("/a", "v2"), ())])
    assert run('get "/a"', trace=context).value == "v2"
    with pytest.raises(StuckError):
        run('get "/missing"')


def test_pure_library_function():
    assert run('Path.parent "/a/b.txt"').value == "/a"
    assert run('Path.parent "/a"').value == "/"


def test_lambda_application_and_closures():
    result = run("let add = fun (x : int) -> fun (y : int) -> x + y in add 2 3")
    assert result.value == 5


def test_match_on_data_values():
    expr = desugar_expression(
        "match xs with | Nil -> 0 | Cons x rest -> x",
        effectful_ops=EFF,
    )
    interp = Interpreter(KvModel())
    assert interp.run(expr, {"xs": DataValue("Nil")}).value == 0
    assert interp.run(expr, {"xs": DataValue("Cons", (7, DataValue("Nil")))}).value == 7
    with pytest.raises(StuckError):
        interp.run(expr, {"xs": DataValue("Other")})


def test_unbound_variable_and_non_function_application():
    with pytest.raises(StuckError):
        run("nonexistent_variable")
    with pytest.raises(StuckError):
        run("let f = 3 in f 4")


def test_module_environment_and_recursion():
    program = desugar_program(
        """
        let rec countdown (n : int) : int =
          if n == 0 then 0 else countdown (n - 1)
        let start (u : unit) : int = countdown 5
        """,
        effectful_ops=EFF,
    )
    interp = Interpreter(KvModel())
    env = module_environment(program, interp)
    result = interp.call(env["start"], [()])
    assert result.value == 0


def test_step_budget_catches_divergence():
    program = desugar_program(
        "let rec loop (n : int) : int = loop n",
        effectful_ops=EFF,
    )
    interp = Interpreter(KvModel(), max_steps=2000)
    env = module_environment(program, interp)
    with pytest.raises(StuckError):
        interp.call(env["loop"], [1])


def test_filesystem_add_example_from_the_paper():
    """Runs the motivating `add` and checks the emitted traces of §2/Example 2.1."""
    program = desugar_program(
        """
        let add (path : Path.t) (bytes : Bytes.t) : bool =
          if exists path then false
          else
            let parent_path = Path.parent path in
            if not (exists parent_path) then false
            else
              let b = get parent_path in
              begin put path bytes; true end

        let addbad (path : Path.t) (bytes : Bytes.t) : bool =
          put path bytes; true
        """,
        effectful_ops=EFF,
        pure_ops=PURE,
    )
    interp = Interpreter(KvModel(), PURE)
    env = module_environment(program, interp)
    alpha0 = Trace([Event("put", ("/", "bytesDir"), ())])

    good = interp.call(env["add"], ["/a/b.txt", "bytesFile"], alpha0)
    assert good.value is False  # parent "/a" does not exist yet
    assert [e.op for e in good.emitted] == ["exists", "exists"]
    assert [e.result for e in good.emitted] == [False, False]

    bad = interp.call(env["addbad"], ["/a/b.txt", "bytesFile"], alpha0)
    assert bad.value is True
    assert [e.op for e in bad.emitted] == ["put"]
