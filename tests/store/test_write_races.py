"""Deterministic regressions for the concurrent-writer races.

Each test interleaves two *store handles* on one path inside a single
process: the handle that rewrites holds a stale open-time snapshot — exactly
the state a concurrent writer process would see.  Before the fix, the
rewriting handle silently dropped entries appended after its load (the lost
rewrite), or reused a run sequence number and overwrote the other session's
run record.  All of it runs against both backends via ``store_path``.
"""

from repro.store.obligation_store import ObligationStore, StoreEntry


def _entry(fp, *, env="env1", spec="s1", method="insert"):
    return StoreEntry(
        env=env,
        fp=fp,
        included=True,
        solver_stats={"queries": 1},
        scope="Set/KVStore",
        method=method,
        spec=spec,
        library="l1",
    )


def test_interleaved_flushes_lose_no_batches(store_path):
    a = ObligationStore(store_path)
    b = ObligationStore(store_path)
    a.record(_entry("a1"))
    b.record(_entry("b1"))
    a.flush()
    b.flush()
    a.record(_entry("a2"))
    b.record(_entry("b2"))
    b.flush()
    a.flush()
    assert {e.fp for e in ObligationStore(store_path)} == {"a1", "b1", "a2", "b2"}


def test_compact_preserves_entries_appended_after_load(store_path):
    appender = ObligationStore(store_path)
    compactor = ObligationStore(store_path)  # open-time snapshot: empty
    appender.record(_entry("appended-later"))
    appender.flush()
    compactor.record(_entry("compactor-own"))
    compactor.compact()  # must re-read under the lock, not trust its snapshot

    reloaded = ObligationStore(store_path)
    assert {e.fp for e in reloaded} == {"appended-later", "compactor-own"}


def test_invalidation_preserves_entries_appended_after_load(store_path):
    invalidator = ObligationStore(store_path)
    invalidator.record(_entry("stale", spec="old-spec"))
    invalidator.flush()
    other = ObligationStore(store_path)
    other.record(_entry("fresh-foreign", method="mem", spec="m1"))
    other.flush()  # appended after the invalidator's load

    dropped = invalidator.invalidate_stale("Set/KVStore", "insert", "new-spec", "l1")
    assert dropped == 1
    assert {e.fp for e in ObligationStore(store_path)} == {"fresh-foreign"}


def test_concurrent_commits_get_distinct_run_sequences(store_path):
    a = ObligationStore(store_path)
    b = ObligationStore(store_path)  # both open on an empty run log
    a.record(_entry("a-entry"))
    a.commit_run()
    b.record(_entry("b-entry"))
    b.commit_run()  # must not reuse sequence 1 or overwrite a's record

    runs = ObligationStore(store_path)._runs
    assert [record["run"] for record in runs] == [1, 2]
    assert any(key.endswith(":a-entry") for key in runs[0]["touched"])
    assert any(key.endswith(":b-entry") for key in runs[1]["touched"])


def test_gc_spares_entries_a_concurrent_run_just_committed(store_path):
    first = ObligationStore(store_path)
    first.record(_entry("old"))
    first.commit_run()  # run 1 references "old"
    sweeper = ObligationStore(store_path)  # snapshot: run 1 is the latest
    late = ObligationStore(store_path)
    late.record(_entry("brand-new"))
    late.commit_run()  # run 2, committed after the sweeper's load

    dropped = sweeper.gc(keep_last=1)
    # the sweep recomputes the reference set from the re-read run log: run 2
    # is now the last run, so "brand-new" survives and "old" is the victim
    assert dropped == 1
    assert {e.fp for e in ObligationStore(store_path)} == {"brand-new"}
