"""Pluggable persistence backends for the obligation store.

The store's transport layer is a :class:`StoreBackend`: a thin module that
owns the bytes (or rows) on disk and nothing else — entry semantics,
invalidation, GC and session bookkeeping all live in
:class:`~repro.store.obligation_store.ObligationStore`, which talks to its
backend through three operations:

``load(wipe_mismatch)``
    Read everything (entries, run log, count of skipped corrupt records),
    discarding wholesale on a schema-tag mismatch.
``append_entries(entries)``
    Durably append a batch.  Atomic with respect to concurrent appenders and
    rewriters: a reader can never observe a torn entry.
``update(fn, entries=, runs=)``
    The read-modify-rewrite primitive behind ``compact()``/``commit_run()``/
    ``gc()``/``invalidate_stale()``.  The backend takes an *exclusive* lock
    (or write transaction), re-reads the **current** on-disk state — not the
    caller's possibly stale open-time snapshot — applies ``fn`` to it, and
    persists the result atomically.  This is what makes two concurrent
    processes unable to silently drop each other's entries: any state another
    writer appended between our ``load()`` and the rewrite is re-read under
    the lock and flows through ``fn``.

Two backends implement the protocol:

* :class:`JsonlStoreBackend` — the original directory-of-JSON-lines layout,
  now safe under concurrent writers: every append holds an advisory
  ``flock`` on ``<dir>/.lock`` and lands as a *single* ``write()`` of the
  pre-joined batch (no interleaved partial lines), and every rewrite goes
  through tmp-file + ``fsync`` + ``os.replace`` (+ directory fsync), so a
  crash mid-compact can never truncate the store.
* :class:`SqliteStoreBackend` — one SQLite file in WAL mode with a busy
  timeout and short retry loop, entries UPSERTed on the
  ``(environment_fp, obligation_fp)`` primary key, with ``deps``/``costs``/
  ``runs`` tables mirroring the JSONL layout's dependency records, cost
  records and ``runs.jsonl``.  WAL makes readers never block writers, and
  ``BEGIN IMMEDIATE`` transactions serialise the multi-writer case the
  JSONL lock file serialises.

Backend selection (:func:`resolve_store_backend`): an explicit choice wins;
otherwise ``sqlite:`` URLs and ``.db``/``.sqlite``/``.sqlite3`` suffixes (or
an existing plain file) mean sqlite, an existing directory means jsonl, and
for a fresh unsuffixed path the ``REPRO_STORE_BACKEND`` environment variable
decides, defaulting to jsonl.  :func:`migrate_store` converts a store either
direction losslessly (entries with all counters/witnesses/cost records, plus
the run log verbatim).
"""

from __future__ import annotations

import json
import os
import sqlite3
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterator, Optional, Sequence

try:  # pragma: no cover - always present on POSIX, the supported platform
    import fcntl
except ImportError:  # pragma: no cover
    fcntl = None  # type: ignore[assignment]

from ..obs import trace
from ..obs.logs import get_logger

logger = get_logger("store")

#: Store layout version; entries under another tag are discarded on open.
SCHEMA_VERSION = "pymarple-store-v1"

#: The names a backend can be requested by; ``auto`` defers to the path.
KNOWN_STORE_BACKENDS = ("jsonl", "sqlite")

_ENTRIES = "entries.jsonl"
_META = "meta.json"
_RUNS = "runs.jsonl"
_SHARD_DIR = "shards"
_LOCK = ".lock"
_SQLITE_SUFFIXES = {".db", ".sqlite", ".sqlite3"}


@dataclass
class StoreEntry:
    """One discharged obligation: verdict, witness trace and counter dicts."""

    env: str
    fp: str
    included: bool
    counterexample: Optional[list[str]] = None
    error: Optional[str] = None
    solver_stats: dict = field(default_factory=dict)
    inclusion_stats: dict = field(default_factory=dict)
    scope: str = ""
    method: str = ""
    spec: str = ""
    library: str = ""
    kind: str = ""
    provenance: str = ""
    #: the discharge cost record (``{"wall": seconds, ...}``) behind the
    #: cost-model scheduler.  Deliberately *outside* the content address and
    #: the deterministic tables: it is a measurement, not a semantic fact —
    #: advisory across environments (a dpll-warmed store still orders a cdcl
    #: run sensibly) and free to vary run to run.
    cost: dict = field(default_factory=dict)

    @property
    def key(self) -> tuple[str, str]:
        return (self.env, self.fp)

    @property
    def wall_cost(self) -> Optional[float]:
        """The recorded wall-clock discharge cost in seconds, if any."""
        wall = self.cost.get("wall")
        return float(wall) if isinstance(wall, (int, float)) else None

    def to_record(self) -> dict:
        """The JSON-able record shape shared by the log lines and the wire."""
        return {
            "env": self.env,
            "fp": self.fp,
            "inc": self.included,
            "cex": self.counterexample,
            "err": self.error,
            "sol": self.solver_stats,
            "fa": self.inclusion_stats,
            "scope": self.scope,
            "method": self.method,
            "spec": self.spec,
            "lib": self.library,
            "kind": self.kind,
            "prov": self.provenance,
            "cost": self.cost,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_record(), sort_keys=True)

    @classmethod
    def from_json(cls, line: str) -> "StoreEntry":
        return cls.from_record(json.loads(line))

    @classmethod
    def from_record(cls, obj: object) -> "StoreEntry":
        if not isinstance(obj, dict):
            raise ValueError(f"store entry must be a JSON object, got {type(obj).__name__}")
        return cls(
            env=obj["env"],
            fp=obj["fp"],
            included=bool(obj["inc"]),
            counterexample=obj.get("cex"),
            error=obj.get("err"),
            solver_stats=obj.get("sol") or {},
            inclusion_stats=obj.get("fa") or {},
            scope=obj.get("scope", ""),
            method=obj.get("method", ""),
            spec=obj.get("spec", ""),
            library=obj.get("lib", ""),
            kind=obj.get("kind", ""),
            provenance=obj.get("prov", ""),
            cost=obj.get("cost") or {},
        )


#: Exceptions a corrupt persisted record may raise while being decoded; the
#: skip-and-count tolerance paths catch exactly these (a torn multi-byte
#: UTF-8 sequence raises UnicodeDecodeError, a ValueError subclass; a JSON
#: value of the wrong shape raises KeyError or TypeError).
ENTRY_DECODE_ERRORS = (ValueError, KeyError, TypeError)


@dataclass
class LoadedState:
    """What a backend read: live entries, the run log, skipped corrupt lines."""

    entries: dict[tuple[str, str], StoreEntry]
    runs: list[dict]
    skipped: int = 0


def _decode_entry_lines(raw: bytes) -> tuple[dict[tuple[str, str], StoreEntry], int]:
    """Parse a JSON-lines blob; last line per key wins, corrupt lines skipped.

    Decoding happens per line (bytes → UTF-8 → JSON) so one torn line — a
    killed writer's partial append, or a truncated shard file — costs exactly
    that line, never the whole file.
    """
    entries: dict[tuple[str, str], StoreEntry] = {}
    skipped = 0
    for line in raw.splitlines():
        if not line.strip():
            continue
        try:
            entry = StoreEntry.from_json(line.decode("utf-8"))
        except ENTRY_DECODE_ERRORS:
            skipped += 1
            continue
        entries[entry.key] = entry
    return entries, skipped


def _decode_run_lines(raw: bytes) -> list[dict]:
    runs: list[dict] = []
    for line in raw.splitlines():
        if not line.strip():
            continue
        try:
            record = json.loads(line.decode("utf-8"))
        except ValueError:
            continue
        if (
            isinstance(record, dict)
            and isinstance(record.get("touched"), list)
            and isinstance(record.get("run"), int)
        ):
            runs.append(record)
    return runs


@contextmanager
def _flocked(lock_path: Path) -> Iterator[None]:
    """Hold an exclusive advisory lock on ``lock_path``.

    Best-effort no-op where ``fcntl`` is unavailable (non-POSIX) — there the
    store degrades to its historical single-writer guarantees.
    """
    if fcntl is None:  # pragma: no cover
        yield
        return
    fd = os.open(lock_path, os.O_RDWR | os.O_CREAT, 0o644)
    try:
        # spanned separately from the critical section: under writer
        # contention this is pure queueing time, the number the trace needs
        # to distinguish "store is slow" from "store is fought over"
        with trace.span("store.lock_wait", cat="store"):
            fcntl.flock(fd, fcntl.LOCK_EX)
        yield
    finally:
        fcntl.flock(fd, fcntl.LOCK_UN)
        os.close(fd)


def _fsync_dir(path: Path) -> None:
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - e.g. platforms without dir fds
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover
        pass
    finally:
        os.close(fd)


def _atomic_write(path: Path, data: bytes) -> None:
    """Write ``data`` to ``path`` so a crash leaves either old or new bytes.

    The tmp file is fsynced *before* ``os.replace`` — without it a crash
    between the (atomic) rename and the data reaching disk can surface the
    new inode empty, truncating the store.
    """
    tmp = path.with_name(path.name + ".tmp")
    fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
    try:
        os.write(fd, data)
        os.fsync(fd)
    finally:
        os.close(fd)
    os.replace(tmp, path)
    _fsync_dir(path.parent)


def append_jsonl_batch(path: Path, lines: Sequence[str]) -> None:
    """Durably append pre-serialised lines as one ``write()``.

    A single ``O_APPEND`` write of the joined batch is what keeps concurrent
    appenders from interleaving partial lines; callers that share the file
    additionally serialise through the store lock.
    """
    if not lines:
        return
    data = "".join(line + "\n" for line in lines).encode("utf-8")
    fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
    try:
        os.write(fd, data)
        os.fsync(fd)
    finally:
        os.close(fd)


def _purge_shard_files(shard_dir: Path) -> None:
    if not shard_dir.is_dir():
        return
    for shard_file in shard_dir.glob("shard-*.jsonl"):
        shard_file.unlink()


class JsonlStoreBackend:
    """The directory-of-JSON-lines layout, with advisory-locked writes.

    ``<dir>/meta.json`` carries the schema tag, ``<dir>/entries.jsonl`` the
    append-only entry log (last line per key wins), ``<dir>/runs.jsonl`` the
    GC reference trail, ``<dir>/shards/`` the transient shard outputs and
    ``<dir>/.lock`` the advisory lock every append and rewrite holds.
    """

    name = "jsonl"
    #: local backends execute ``update(fn)`` closures in-process; the remote
    #: backend cannot (a closure does not cross the wire) and exposes the
    #: store-level operations instead
    supports_update = True

    def __init__(self, path: os.PathLike | str) -> None:
        self.path = Path(path)
        if self.path.is_file():
            raise ValueError(
                f"store path {str(self.path)!r} is a file; the jsonl backend "
                "needs a directory (did you mean the sqlite backend?)"
            )
        self.shard_dir = self.path / _SHARD_DIR

    def _lock(self):
        self.path.mkdir(parents=True, exist_ok=True)
        return _flocked(self.path / _LOCK)

    def _read_entries(self) -> tuple[dict[tuple[str, str], StoreEntry], int]:
        entries_path = self.path / _ENTRIES
        if not entries_path.exists():
            return {}, 0
        return _decode_entry_lines(entries_path.read_bytes())

    def _read_runs(self) -> list[dict]:
        runs_path = self.path / _RUNS
        if not runs_path.exists():
            return []
        return _decode_run_lines(runs_path.read_bytes())

    def load(self, *, wipe_mismatch: bool = True) -> LoadedState:
        with self._lock():
            meta_path = self.path / _META
            schema: Optional[str] = None
            if meta_path.exists():
                try:
                    schema = json.loads(meta_path.read_text()).get("schema")
                except (OSError, ValueError):
                    schema = None
            if schema != SCHEMA_VERSION:
                # Unknown or missing schema: never reinterpret old entries —
                # and that includes leftover shard files from an interrupted
                # sharded run, which absorb_shards would otherwise merge later
                if not wipe_mismatch:
                    return LoadedState({}, [])
                for name in (_ENTRIES, _RUNS):
                    stale = self.path / name
                    if stale.exists():
                        stale.unlink()
                _purge_shard_files(self.shard_dir)
                _atomic_write(
                    meta_path, (json.dumps({"schema": SCHEMA_VERSION}) + "\n").encode()
                )
                return LoadedState({}, [])
            entries, skipped = self._read_entries()
            runs = self._read_runs()
            return LoadedState(entries, runs, skipped)

    def append_entries(self, entries: Sequence[StoreEntry]) -> None:
        if not entries:
            return
        with self._lock():
            append_jsonl_batch(self.path / _ENTRIES, [e.to_json() for e in entries])

    def update(
        self,
        fn: Callable[
            [dict[tuple[str, str], StoreEntry], list[dict]],
            tuple[dict[tuple[str, str], StoreEntry], list[dict]],
        ],
        *,
        entries: bool = True,
        runs: bool = True,
    ) -> LoadedState:
        """Exclusive read-modify-rewrite of the current on-disk state.

        ``fn`` receives the state as re-read *under the lock* — never the
        caller's open-time snapshot — so entries appended by another process
        since then survive the rewrite.  ``entries=False``/``runs=False``
        skip reading and rewriting that half (``fn`` then sees it empty).
        """
        with self._lock():
            disk_entries: dict[tuple[str, str], StoreEntry] = {}
            skipped = 0
            if entries:
                disk_entries, skipped = self._read_entries()
            disk_runs = self._read_runs() if runs else []
            new_entries, new_runs = fn(disk_entries, disk_runs)
            if entries:
                _atomic_write(
                    self.path / _ENTRIES,
                    "".join(e.to_json() + "\n" for e in new_entries.values()).encode(),
                )
            if runs:
                runs_path = self.path / _RUNS
                if new_runs:
                    _atomic_write(
                        runs_path,
                        "".join(
                            json.dumps(r, sort_keys=True) + "\n" for r in new_runs
                        ).encode(),
                    )
                elif runs_path.exists():
                    runs_path.unlink()
            return LoadedState(new_entries, new_runs, skipped)

    def close(self) -> None:
        pass


class SqliteStoreBackend:
    """One SQLite file in WAL mode; entries UPSERTed on ``(env, fp)``.

    Tables mirror the JSONL layout record for record: ``entries`` holds the
    verdict/witness/counter columns, ``deps`` the per-entry dependency record
    invalidation filters on, ``costs`` the advisory cost records behind the
    scheduler, ``runs`` the GC reference trail and ``meta`` the schema tag.
    Write transactions open with ``BEGIN IMMEDIATE`` under a busy timeout
    plus a short exponential-backoff retry loop, so N concurrent writer
    processes serialise instead of failing or corrupting; WAL keeps readers
    from ever blocking them.  Shard workers still write transient JSONL files
    (next to the database, in ``<file>.shards/``) — only the merged log is
    relational.
    """

    name = "sqlite"
    supports_update = True

    #: how long a writer waits for a competing transaction before retrying
    busy_timeout_ms = 10_000
    _begin_attempts = 8

    def __init__(self, path: os.PathLike | str) -> None:
        self.path = Path(path)
        if self.path.is_dir():
            raise ValueError(
                f"store path {str(self.path)!r} is a directory; the sqlite "
                "backend needs a file (did you mean the jsonl backend?)"
            )
        self.shard_dir = self.path.parent / (self.path.name + ".shards")
        self._conn: Optional[sqlite3.Connection] = None

    # -- connection management ----------------------------------------------------
    def _connect(self) -> sqlite3.Connection:
        if self._conn is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            # isolation_level=None: autocommit, transactions opened explicitly.
            # check_same_thread=False: the store server executes ops on HTTP
            # worker threads but serialises every one under its own lock, and
            # in-process callers never share a backend across threads anyway
            conn = sqlite3.connect(
                self.path,
                timeout=self.busy_timeout_ms / 1000.0,
                isolation_level=None,
                check_same_thread=False,
            )
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute(f"PRAGMA busy_timeout={self.busy_timeout_ms}")
            conn.execute("PRAGMA synchronous=NORMAL")
            self._conn = conn
        return self._conn

    @contextmanager
    def _txn(self) -> Iterator[sqlite3.Connection]:
        """A write transaction, retried with backoff while the db is busy."""
        conn = self._connect()
        delay = 0.005
        # the whole BEGIN loop is one span: its duration is exactly the
        # busy-retry time a contended writer spends queueing for the db
        with trace.span("store.busy_wait", cat="store") as busy_span:
            for attempt in range(self._begin_attempts):
                try:
                    conn.execute("BEGIN IMMEDIATE")
                    break
                except sqlite3.OperationalError as exc:
                    message = str(exc).lower()
                    if "locked" not in message and "busy" not in message:
                        raise
                    if attempt == self._begin_attempts - 1:
                        raise
                    logger.debug(
                        "sqlite busy (attempt %d/%d), backing off %.3fs",
                        attempt + 1,
                        self._begin_attempts,
                        delay,
                    )
                    time.sleep(delay)
                    delay = min(delay * 2, 0.25)
            busy_span.set(attempts=attempt + 1)
        try:
            yield conn
        except BaseException as original:
            # the rollback itself can fail (dropped connection, "no
            # transaction is active" after a failed BEGIN); that failure must
            # never mask the exception that aborted the transaction
            try:
                conn.execute("ROLLBACK")
            except sqlite3.Error as rollback_exc:
                logger.debug(
                    "rollback after %r itself failed: %s", original, rollback_exc
                )
            raise
        else:
            conn.execute("COMMIT")

    # -- schema -------------------------------------------------------------------
    _TABLES = ("meta", "entries", "deps", "costs", "runs")

    #: issued one by one — ``executescript`` would implicitly COMMIT the
    #: enclosing BEGIN IMMEDIATE transaction
    _DDL = (
        """CREATE TABLE IF NOT EXISTS meta(
               key TEXT PRIMARY KEY, value TEXT NOT NULL)""",
        """CREATE TABLE IF NOT EXISTS entries(
               env TEXT NOT NULL, fp TEXT NOT NULL,
               included INTEGER NOT NULL,
               counterexample TEXT,
               error TEXT,
               solver_stats TEXT NOT NULL,
               inclusion_stats TEXT NOT NULL,
               kind TEXT NOT NULL DEFAULT '',
               provenance TEXT NOT NULL DEFAULT '',
               PRIMARY KEY (env, fp))""",
        """CREATE TABLE IF NOT EXISTS deps(
               env TEXT NOT NULL, fp TEXT NOT NULL,
               scope TEXT NOT NULL DEFAULT '',
               method TEXT NOT NULL DEFAULT '',
               spec TEXT NOT NULL DEFAULT '',
               library TEXT NOT NULL DEFAULT '',
               PRIMARY KEY (env, fp))""",
        """CREATE INDEX IF NOT EXISTS deps_scope ON deps(scope)""",
        """CREATE TABLE IF NOT EXISTS costs(
               env TEXT NOT NULL, fp TEXT NOT NULL,
               cost TEXT NOT NULL,
               PRIMARY KEY (env, fp))""",
        """CREATE TABLE IF NOT EXISTS runs(
               run INTEGER PRIMARY KEY, touched TEXT NOT NULL)""",
    )

    def _create_tables(self, conn: sqlite3.Connection) -> None:
        for statement in self._DDL:
            conn.execute(statement)

    def _reset(self, conn: sqlite3.Connection) -> None:
        for table in self._TABLES:
            conn.execute(f"DROP TABLE IF EXISTS {table}")
        self._create_tables(conn)
        conn.execute(
            "INSERT INTO meta(key, value) VALUES('schema', ?)", (SCHEMA_VERSION,)
        )

    # -- row <-> entry ------------------------------------------------------------
    _SELECT_ENTRIES = """
        SELECT e.env, e.fp, e.included, e.counterexample, e.error,
               e.solver_stats, e.inclusion_stats, e.kind, e.provenance,
               d.scope, d.method, d.spec, d.library, c.cost
        FROM entries e
        LEFT JOIN deps d ON d.env = e.env AND d.fp = e.fp
        LEFT JOIN costs c ON c.env = e.env AND c.fp = e.fp
        ORDER BY e.rowid
    """

    @staticmethod
    def _entry_from_row(row: tuple) -> StoreEntry:
        (
            env, fp, included, counterexample, error,
            solver_stats, inclusion_stats, kind, provenance,
            scope, method, spec, library, cost,
        ) = row
        return StoreEntry(
            env=env,
            fp=fp,
            included=bool(included),
            counterexample=json.loads(counterexample) if counterexample else None,
            error=error,
            solver_stats=json.loads(solver_stats) if solver_stats else {},
            inclusion_stats=json.loads(inclusion_stats) if inclusion_stats else {},
            scope=scope or "",
            method=method or "",
            spec=spec or "",
            library=library or "",
            kind=kind or "",
            provenance=provenance or "",
            cost=json.loads(cost) if cost else {},
        )

    def _read_entries(
        self, conn: sqlite3.Connection
    ) -> tuple[dict[tuple[str, str], StoreEntry], int]:
        entries: dict[tuple[str, str], StoreEntry] = {}
        skipped = 0
        for row in conn.execute(self._SELECT_ENTRIES):
            try:
                entry = self._entry_from_row(row)
            except ENTRY_DECODE_ERRORS:
                skipped += 1
                continue
            entries[entry.key] = entry
        return entries, skipped

    def _read_runs(self, conn: sqlite3.Connection) -> list[dict]:
        runs: list[dict] = []
        for run, touched in conn.execute("SELECT run, touched FROM runs ORDER BY run"):
            try:
                touched_keys = json.loads(touched)
            except ValueError:
                continue
            if isinstance(run, int) and isinstance(touched_keys, list):
                runs.append({"run": run, "touched": touched_keys})
        return runs

    def _upsert(self, conn: sqlite3.Connection, entry: StoreEntry) -> None:
        conn.execute(
            """
            INSERT INTO entries(env, fp, included, counterexample, error,
                                solver_stats, inclusion_stats, kind, provenance)
            VALUES(?, ?, ?, ?, ?, ?, ?, ?, ?)
            ON CONFLICT(env, fp) DO UPDATE SET
                included=excluded.included,
                counterexample=excluded.counterexample,
                error=excluded.error,
                solver_stats=excluded.solver_stats,
                inclusion_stats=excluded.inclusion_stats,
                kind=excluded.kind,
                provenance=excluded.provenance
            """,
            (
                entry.env,
                entry.fp,
                int(entry.included),
                json.dumps(entry.counterexample) if entry.counterexample is not None else None,
                entry.error,
                json.dumps(entry.solver_stats, sort_keys=True),
                json.dumps(entry.inclusion_stats, sort_keys=True),
                entry.kind,
                entry.provenance,
            ),
        )
        conn.execute(
            """
            INSERT INTO deps(env, fp, scope, method, spec, library)
            VALUES(?, ?, ?, ?, ?, ?)
            ON CONFLICT(env, fp) DO UPDATE SET
                scope=excluded.scope, method=excluded.method,
                spec=excluded.spec, library=excluded.library
            """,
            (entry.env, entry.fp, entry.scope, entry.method, entry.spec, entry.library),
        )
        conn.execute(
            """
            INSERT INTO costs(env, fp, cost) VALUES(?, ?, ?)
            ON CONFLICT(env, fp) DO UPDATE SET cost=excluded.cost
            """,
            (entry.env, entry.fp, json.dumps(entry.cost, sort_keys=True)),
        )

    # -- the backend protocol -----------------------------------------------------
    def load(self, *, wipe_mismatch: bool = True) -> LoadedState:
        with self._txn() as conn:
            self._create_tables(conn)
            row = conn.execute("SELECT value FROM meta WHERE key='schema'").fetchone()
            schema = row[0] if row else None
            if schema != SCHEMA_VERSION:
                if not wipe_mismatch:
                    return LoadedState({}, [])
                self._reset(conn)
                _purge_shard_files(self.shard_dir)
                return LoadedState({}, [])
            entries, skipped = self._read_entries(conn)
            runs = self._read_runs(conn)
            return LoadedState(entries, runs, skipped)

    def append_entries(self, entries: Sequence[StoreEntry]) -> None:
        if not entries:
            return
        with self._txn() as conn:
            for entry in entries:
                self._upsert(conn, entry)

    def update(
        self,
        fn: Callable[
            [dict[tuple[str, str], StoreEntry], list[dict]],
            tuple[dict[tuple[str, str], StoreEntry], list[dict]],
        ],
        *,
        entries: bool = True,
        runs: bool = True,
    ) -> LoadedState:
        with self._txn() as conn:
            disk_entries: dict[tuple[str, str], StoreEntry] = {}
            skipped = 0
            if entries:
                disk_entries, skipped = self._read_entries(conn)
            disk_runs = self._read_runs(conn) if runs else []
            new_entries, new_runs = fn(disk_entries, disk_runs)
            if entries:
                for table in ("entries", "deps", "costs"):
                    conn.execute(f"DELETE FROM {table}")
                for entry in new_entries.values():
                    self._upsert(conn, entry)
            if runs:
                conn.execute("DELETE FROM runs")
                for record in new_runs:
                    conn.execute(
                        "INSERT INTO runs(run, touched) VALUES(?, ?)",
                        (record["run"], json.dumps(record["touched"])),
                    )
            return LoadedState(new_entries, new_runs, skipped)

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None


def _validate_backend_name(backend: str, *, source: str = "") -> None:
    if backend not in KNOWN_STORE_BACKENDS:
        origin = f" (from {source})" if source else ""
        raise ValueError(
            f"unknown store backend {backend!r}{origin}; "
            f"expected one of {KNOWN_STORE_BACKENDS + ('auto',)}"
        )


def resolve_store_backend(
    path: os.PathLike | str, backend: Optional[str] = None
) -> tuple[str, "Path | str"]:
    """Pick the backend for a store path; returns ``(name, normalised path)``.

    Precedence: an ``http://``/``https://`` URL always means the remote
    client (the path stays a URL string; an explicit local ``backend`` then
    names the storage the *server* is expected to wrap, verified at
    handshake); then an explicit ``backend`` argument, then what the path
    itself says (``sqlite:`` URL prefix, a ``.db``/``.sqlite``/``.sqlite3``
    suffix or an existing plain file → sqlite; an existing directory →
    jsonl), then ``REPRO_STORE_BACKEND``, then the jsonl default.

    Contradictory directives are an error, never silently resolved: a
    ``sqlite:`` path combined with an explicit non-sqlite backend raises
    instead of stripping the prefix and opening the other backend.
    """
    raw = str(path)
    if raw.startswith(("http://", "https://")):
        if backend not in (None, "", "auto", "remote"):
            _validate_backend_name(backend)
        return "remote", raw.rstrip("/")
    if backend == "remote":
        raise ValueError(
            f"the remote store backend needs an http:// or https:// store "
            f"URL, got {raw!r}"
        )
    if raw.startswith("sqlite:"):
        raw = raw[len("sqlite:") :]
        if backend in (None, "", "auto"):
            backend = "sqlite"
        elif backend != "sqlite":
            _validate_backend_name(backend)
            raise ValueError(
                f"store path {str(path)!r} demands the sqlite backend, but "
                f"{backend!r} was requested explicitly; drop one of the two "
                "conflicting directives"
            )
    resolved = Path(raw)
    if backend not in (None, "", "auto"):
        _validate_backend_name(backend)
        return backend, resolved
    if resolved.suffix in _SQLITE_SUFFIXES or resolved.is_file():
        return "sqlite", resolved
    if resolved.is_dir():
        return "jsonl", resolved
    env = os.environ.get("REPRO_STORE_BACKEND")
    if env in KNOWN_STORE_BACKENDS:
        return env, resolved
    if env not in (None, "", "auto"):
        _validate_backend_name(env, source="REPRO_STORE_BACKEND")
    return "jsonl", resolved


def open_backend(path: os.PathLike | str, backend: Optional[str] = None):
    """Instantiate the backend :func:`resolve_store_backend` picks for ``path``."""
    name, resolved = resolve_store_backend(path, backend)
    if name == "remote":
        from .remote import RemoteStoreBackend  # avoid a module cycle

        expected = backend if backend in KNOWN_STORE_BACKENDS else None
        return RemoteStoreBackend(resolved, expect_backend=expected)
    if name == "sqlite":
        return SqliteStoreBackend(resolved)
    return JsonlStoreBackend(resolved)


def migrate_store(
    source: os.PathLike | str,
    destination: os.PathLike | str,
    *,
    source_backend: Optional[str] = None,
    destination_backend: Optional[str] = None,
) -> dict[str, int]:
    """Copy a store losslessly between backends; returns what was copied.

    Everything the source holds travels: entries with their fingerprints,
    verdicts, witness traces, recorded counter dicts, dependency records and
    cost records, plus the run log verbatim (sequence numbers included, so
    ``gc --keep-last`` means the same thing after the move).  The destination
    is overwritten wholesale.
    """
    # resolve and compare *before* instantiating anything: a same-path (or
    # remote) rejection must not leave an opened sqlite connection behind
    source_name, source_path = resolve_store_backend(source, source_backend)
    destination_name, destination_path = resolve_store_backend(
        destination, destination_backend
    )
    if "remote" in (source_name, destination_name):
        raise ValueError(
            "store migrate works on local stores; run it on the machine "
            "that owns the files (the server's store path, not its URL)"
        )
    if source_path.resolve() == destination_path.resolve():
        raise ValueError("store migrate needs distinct source and destination paths")
    src = dst = None
    try:
        src = open_backend(source_path, source_name)
        dst = open_backend(destination_path, destination_name)
        state = src.load(wipe_mismatch=True)
        dst.load(wipe_mismatch=True)  # initialise (and wipe foreign-schema leftovers)
        dst.update(lambda _entries, _runs: (state.entries, state.runs))
        return {"entries": len(state.entries), "runs": len(state.runs)}
    finally:
        # a failed load/update must leak neither backend's connection
        if src is not None:
            src.close()
        if dst is not None:
            dst.close()
