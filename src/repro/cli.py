"""pymarple — the command-line interface of the reproduction.

Usage::

    pymarple list                       # list the benchmark corpus
    pymarple check Set/KVStore          # verify one ADT/library row
    pymarple check Set/KVStore --method insert
    pymarple evaluate [--fast]          # run the whole evaluation (Table 1 data)
    pymarple table 1|2|3|4 [--fast]     # print a specific paper table
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .evaluation import render_all, run_evaluation, table1, table2, table3, table4
from .suite.registry import all_benchmarks, benchmark_by_key


def _cmd_list(_: argparse.Namespace) -> int:
    for benchmark in all_benchmarks():
        marker = " (slow)" if benchmark.slow else ""
        print(f"{benchmark.key:>28}  —  {benchmark.invariant_description}{marker}")
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    benchmark = benchmark_by_key(args.benchmark)
    if args.method:
        result = benchmark.verify_method(args.method)
        status = "VERIFIED" if result.verified else f"REJECTED: {result.error}"
        print(f"{benchmark.key}.{args.method}: {status}")
        print(f"  {result.stats.as_row()}")
        return 0 if result.verified else 1
    stats = benchmark.verify_all()
    for result in stats.method_results:
        status = "ok" if result.verified else f"FAILED ({result.error})"
        print(f"  {result.method:>20}: {status}")
    print(f"{benchmark.key}: all verified = {stats.all_verified}")
    return 0 if stats.all_verified else 1


def _cmd_evaluate(args: argparse.Namespace) -> int:
    report = run_evaluation(include_slow=not args.fast)
    print(render_all(report))
    print(f"\ntotal wall-clock time: {report.total_time_seconds:.1f} s")
    ok = report.all_verified and report.all_negatives_rejected
    print(f"all positive benchmarks verified: {report.all_verified}")
    print(f"all negative variants rejected:  {report.all_negatives_rejected}")
    return 0 if ok else 1


def _cmd_table(args: argparse.Namespace) -> int:
    if args.number == 2:
        print(table2())
        return 0
    report = run_evaluation(include_slow=not args.fast)
    renderer = {1: table1, 3: table3, 4: table4}[args.number]
    print(renderer(report))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="pymarple",
        description="Verify representation invariants with Hoare Automata Types",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the benchmark corpus").set_defaults(func=_cmd_list)

    check = sub.add_parser("check", help="verify one ADT/library benchmark")
    check.add_argument("benchmark", help="benchmark key, e.g. Set/KVStore")
    check.add_argument("--method", help="verify a single method only")
    check.set_defaults(func=_cmd_check)

    evaluate = sub.add_parser("evaluate", help="run the full evaluation")
    evaluate.add_argument("--fast", action="store_true", help="skip the slow benchmarks")
    evaluate.set_defaults(func=_cmd_evaluate)

    table = sub.add_parser("table", help="print one of the paper's tables")
    table.add_argument("number", type=int, choices=(1, 2, 3, 4))
    table.add_argument("--fast", action="store_true", help="skip the slow benchmarks")
    table.set_defaults(func=_cmd_table)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
