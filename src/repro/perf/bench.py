"""The tracked benchmark harness (``repro bench``).

Runs the evaluation corpus twice — **cold** (no store, every obligation
discharged) and **warm** (a second run answered from a store the cold run
populated) — and reports wall-clock times next to the full deterministic
counter set of Tables 1/3/4.  The JSON payload is what gets committed as
``BENCH_PR<k>.json``: the counters give every later session an exact
behavioural fingerprint to diff against, the wall times give CI a regression
tripwire (``compare_payloads`` applies the tolerance), and the ``baseline``
section carries the numbers of the previous PR so "did this PR actually get
faster?" stays answerable from the repository alone.

Wall-clock comparisons are only meaningful on comparable hardware; the
committed payload records the machine it was measured on, and the CI
tolerance exists precisely because runners drift.  The *counters*, by
contrast, must reproduce everywhere byte for byte.
"""

from __future__ import annotations

import json
import platform
import sys
import tempfile
import time
from dataclasses import replace
from pathlib import Path
from typing import Optional

from ..evaluation.runner import EvaluationReport, run_evaluation
from ..evaluation.tables import table1, table3, table4
from ..store.obligation_store import ObligationStore
from ..typecheck.checker import CheckerConfig

#: Payload layout version for BENCH_*.json files.
BENCH_SCHEMA = 1

#: The per-method counters aggregated into the payload (sums over the corpus).
_COUNTER_FIELDS = (
    "obligations",
    "smt_queries",
    "smt_cache_hits",
    "sat_conflicts",
    "fa_inclusion_checks",
    "dfa_cache_hits",
    "alphabet_builds",
    "alphabet_memo_hits",
    "prod_states",
    "states_built",
    "store_hits",
)


def _aggregate_counters(report: EvaluationReport) -> dict:
    totals = {field: 0 for field in _COUNTER_FIELDS}
    for stats in report.adt_stats:
        for result in stats.method_results:
            for field in _COUNTER_FIELDS:
                totals[field] += getattr(result.stats, field)
    # the cross-obligation reuse layers' own rates (cache/memo hit and
    # eviction counts) — reuse bookkeeping, so advisory in comparisons, but
    # they answer "is the memo actually earning its keep?" from the payload
    totals.update(report.cache_totals())
    return totals


def _phase_payload(report: EvaluationReport, wall_seconds: float, all_walls: list) -> dict:
    payload = {
        "wall_seconds": round(wall_seconds, 4),
        "wall_seconds_all_runs": [round(w, 4) for w in all_walls],
        "all_verified": report.all_verified,
        "all_negatives_rejected": report.all_negatives_rejected,
        "per_adt_wall_seconds": {
            f"{stats.adt}/{stats.library}": round(stats.total_time_seconds, 4)
            for stats in report.adt_stats
        },
        "counters": _aggregate_counters(report),
        "tables_deterministic": {
            "table1": table1(report, deterministic=True),
            "table3": table3(report, deterministic=True),
            "table4": table4(report, deterministic=True),
        },
    }
    batch_summary = report.batch_group_summary()
    if batch_summary is not None:
        payload["batch_groups"] = batch_summary
    return payload


def run_dispatch_ab(
    *,
    workers: int = 3,
    cheap: int = 24,
    cheap_ms: int = 25,
    straggler_ms: int = 300,
) -> dict:
    """The straggler-skew microbench: static hash shards vs work stealing.

    A synthetic obligation set — one straggler plus many cheap items, each
    "discharged" by sleeping its cost — is executed two ways with the same
    worker count:

    * **static**: items are partitioned by ``shard_of`` (the ``--shards``
      placement); each worker sleeps through its fixed slice.  The fp salt
      is searched deterministically so the straggler's shard also carries
      its fair share of cheap items — the placement ``--shards`` cannot
      avoid, since fingerprints hash where they hash;
    * **stealing**: the items go through a real in-process store server's
      lease queue and the workers *pull* one at a time, cost-ordered (LPT
      at dequeue) — the straggler starts immediately and the cheap items
      level across the remaining workers.

    Makespans: static ≈ straggler + its shard's cheap share; stealing ≈
    max(straggler, total/workers) + RPC overhead.  The payload's
    ``speedup`` (static/stealing) is the committed, CI-gated evidence that
    pull-based dispatch beats static placement under skew.
    """
    import hashlib
    import threading

    from ..store.fingerprint import shard_of
    from ..store.remote import RemoteStoreBackend
    from ..store.server import StoreHTTPServer, StoreService

    if workers < 2:
        raise ValueError("the dispatch A/B needs at least 2 workers")
    costs = {"straggler": straggler_ms / 1000.0}
    for index in range(cheap):
        costs[f"cheap-{index:02d}"] = cheap_ms / 1000.0

    def fingerprints(salt: int) -> dict[str, str]:
        return {
            name: hashlib.sha256(f"dispatch-ab:{salt}:{name}".encode()).hexdigest()
            for name in costs
        }

    # deterministic salt search: make the static partition representative —
    # the straggler's shard must carry at least an even share of the cheap
    # items (hashing gives it that in expectation; we pin it for stability)
    fair_share = cheap // workers
    salt_chosen, cheap_share = 0, 0
    for salt in range(1000):
        fps = fingerprints(salt)
        home = shard_of(fps["straggler"], workers)
        share = sum(
            1
            for name in costs
            if name != "straggler" and shard_of(fps[name], workers) == home
        )
        if share >= fair_share:
            salt_chosen, cheap_share = salt, share
            break
    fp_of = fingerprints(salt_chosen)

    # -- static: each worker sleeps through its hash-assigned slice ---------
    slices: dict[int, list[float]] = {index: [] for index in range(workers)}
    for name, cost in costs.items():
        slices[shard_of(fp_of[name], workers)].append(cost)

    def sleep_through(slice_costs: list) -> None:
        for cost in slice_costs:
            time.sleep(cost)

    started = time.perf_counter()
    threads = [
        threading.Thread(target=sleep_through, args=(slice_costs,))
        for slice_costs in slices.values()
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    static_seconds = time.perf_counter() - started

    # -- stealing: the same items pulled through a real lease queue ---------
    cost_by_key = {f"bench:{fp_of[name]}": cost for name, cost in costs.items()}
    with tempfile.TemporaryDirectory(prefix="pymarple-dispatch-ab-") as tmp:
        service = StoreService(str(Path(tmp) / "store"))
        server = StoreHTTPServer(("127.0.0.1", 0), service)
        loop = threading.Thread(target=server.serve_forever, daemon=True)
        loop.start()
        try:
            coordinator = RemoteStoreBackend(server.url)
            coordinator.handshake()
            coordinator.enqueue(
                [
                    {
                        "env": "bench",
                        "fp": fp_of[name],
                        "bench": name,
                        "cost": cost,
                        "measured": True,
                    }
                    for name, cost in costs.items()
                ],
                "dispatch-ab",
            )

            def pull() -> None:
                backend = RemoteStoreBackend(server.url)
                while True:
                    grant = backend.lease(1, 30.0, worker="dispatch-ab")
                    if not grant.get("lease"):
                        break
                    keys = []
                    for item in grant["items"]:
                        key = f"{item['env']}:{item['fp']}"
                        time.sleep(cost_by_key[key])
                        keys.append(key)
                    backend.complete(grant["lease"], keys)
                backend.close()

            started = time.perf_counter()
            threads = [threading.Thread(target=pull) for _ in range(workers)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            stealing_seconds = time.perf_counter() - started
            coordinator.close()
        finally:
            server.shutdown()
            loop.join()
            server.server_close()
            service.close()

    return {
        "workers": workers,
        "items": len(costs),
        "cheap": cheap,
        "cheap_ms": cheap_ms,
        "straggler_ms": straggler_ms,
        "salt": salt_chosen,
        "straggler_shard_cheap_items": cheap_share,
        "static_seconds": round(static_seconds, 4),
        "stealing_seconds": round(stealing_seconds, 4),
        "speedup": round(static_seconds / stealing_seconds, 3),
        "stealing_beats_static": stealing_seconds < static_seconds,
    }


def run_bench(
    *,
    include_slow: bool = False,
    runs: int = 3,
    config: Optional[CheckerConfig] = None,
    store_path: Optional[str] = None,
    ab: bool = False,
    dispatch_ab: bool = False,
) -> dict:
    """Run the corpus cold and warm; return the BENCH payload.

    ``runs`` cold runs are timed and the best (minimum) wall time reported —
    the usual benchmarking convention, since noise only ever adds time.  The
    warm phase reuses a store populated by one extra cold pass (kept out of
    the timings) so its wall time measures pure store-replay speed.

    ``ab=True`` additionally times cold runs in the *other* discharge mode
    (batch when the config says lazy and vice versa) and records the
    comparison — wall times plus a byte-identity check over the
    deterministic tables — under the payload's ``"ab"`` key.
    """
    if runs < 1:
        raise ValueError("bench requires runs >= 1")
    config = config or CheckerConfig()

    cold_walls: list[float] = []
    cold_report: Optional[EvaluationReport] = None
    for _ in range(runs):
        start = time.perf_counter()
        report = run_evaluation(include_slow=include_slow, config=config)
        wall = time.perf_counter() - start
        cold_walls.append(wall)
        if cold_report is None or wall <= min(cold_walls):
            cold_report = report

    with tempfile.TemporaryDirectory(prefix="pymarple-bench-") as tmp:
        store_dir = store_path or str(Path(tmp) / "store")
        store = ObligationStore(store_dir, backend=config.store_backend)
        run_evaluation(include_slow=include_slow, config=config, store=store)
        store.flush()
        store.commit_run()

        warm_walls: list[float] = []
        warm_report: Optional[EvaluationReport] = None
        for _ in range(runs):
            warm_store = ObligationStore(store_dir, backend=config.store_backend)
            start = time.perf_counter()
            report = run_evaluation(
                include_slow=include_slow, config=config, store=warm_store
            )
            wall = time.perf_counter() - start
            warm_walls.append(wall)
            if warm_report is None or wall <= min(warm_walls):
                warm_report = report
            warm_store.flush()
            warm_store.commit_run()

    assert cold_report is not None and warm_report is not None
    payload = {
        "schema": BENCH_SCHEMA,
        "corpus": "full" if include_slow else "fast",
        "runs": runs,
        "machine": {
            "python": sys.version.split()[0],
            "platform": platform.platform(),
            "machine": platform.machine(),
        },
        "config": {
            "backend": config.backend,
            "discharge": config.discharge,
            "strategy": config.enumeration_strategy,
            "workers": config.workers,
            "schedule": config.schedule,
            "memo": config.cross_obligation_memo,
        },
        "cold": _phase_payload(cold_report, min(cold_walls), cold_walls),
        "warm": _phase_payload(warm_report, min(warm_walls), warm_walls),
    }
    if ab:
        other = "batch" if config.discharge != "batch" else "lazy"
        ab_config = replace(config, discharge=other)
        ab_walls: list[float] = []
        ab_report: Optional[EvaluationReport] = None
        for _ in range(runs):
            start = time.perf_counter()
            report = run_evaluation(include_slow=include_slow, config=ab_config)
            wall = time.perf_counter() - start
            ab_walls.append(wall)
            if ab_report is None or wall <= min(ab_walls):
                ab_report = report
        assert ab_report is not None
        ab_phase = _phase_payload(ab_report, min(ab_walls), ab_walls)
        payload["ab"] = {
            "discharge": other,
            "cold": ab_phase,
            # the batch≡lazy contract, checked on the spot: both modes must
            # render byte-identical deterministic tables over this corpus
            "tables_identical": (
                ab_phase["tables_deterministic"]
                == payload["cold"]["tables_deterministic"]
            ),
        }
    if dispatch_ab:
        payload["dispatch_ab"] = run_dispatch_ab()
    return payload


def load_payload(path) -> dict:
    """Read a BENCH payload; raises ValueError on a malformed file."""
    payload = json.loads(Path(path).read_text())
    if not isinstance(payload, dict) or "cold" not in payload:
        raise ValueError("not a BENCH payload (missing the 'cold' phase)")
    return payload


def compare_payloads(
    current: dict, baseline: dict, *, tolerance: float = 0.2
) -> tuple[bool, list[str]]:
    """Diff a fresh payload against a committed baseline.

    The gate is the **cold** wall time: a regression beyond ``tolerance``
    (relative) fails.  Warm-time drift and counter changes are reported but
    advisory — counters legitimately move when the pipeline changes, and the
    committed payload is refreshed in the same commit that moves them.
    """
    messages: list[str] = []
    ok = True
    base_cold_phase = baseline.get("cold")
    if not isinstance(base_cold_phase, dict) or "wall_seconds" not in base_cold_phase:
        raise ValueError(
            "baseline payload records no cold wall time "
            "(missing 'cold.wall_seconds'); re-record it with `repro bench --output`"
        )
    base_cold = float(base_cold_phase["wall_seconds"])
    cur_cold = float(current["cold"]["wall_seconds"])
    budget = base_cold * (1.0 + tolerance)
    delta = (cur_cold - base_cold) / base_cold if base_cold > 0 else 0.0
    verdict = "ok" if cur_cold <= budget else "REGRESSION"
    messages.append(
        f"cold wall: {cur_cold:.3f}s vs baseline {base_cold:.3f}s "
        f"({delta:+.1%}, tolerance {tolerance:.0%}) — {verdict}"
    )
    if cur_cold > budget:
        ok = False
    base_warm_phase = baseline.get("warm")
    base_warm = (
        base_warm_phase.get("wall_seconds")
        if isinstance(base_warm_phase, dict)
        else None
    )
    cur_warm = current.get("warm", {}).get("wall_seconds")
    if base_warm is None:
        # a degraded but legal baseline (e.g. hand-trimmed, or from a tool
        # version without a warm phase): say so instead of KeyError-ing
        messages.append(
            "baseline records no warm wall time (no 'warm.wall_seconds' field); "
            "warm drift not compared"
        )
    elif cur_warm is not None:
        messages.append(
            f"warm wall: {float(cur_warm):.3f}s vs baseline {float(base_warm):.3f}s (advisory)"
        )
    base_counters = baseline["cold"].get("counters", {})
    cur_counters = current["cold"].get("counters", {})
    moved = {
        key: (base_counters[key], cur_counters[key])
        for key in sorted(set(base_counters) & set(cur_counters))
        if base_counters[key] != cur_counters[key]
    }
    if moved:
        rendered = ", ".join(f"{k}: {a} -> {b}" for k, (a, b) in moved.items())
        messages.append(f"counters moved (advisory): {rendered}")
    else:
        messages.append("counters: identical to baseline")
    cur_dispatch = current.get("dispatch_ab")
    if isinstance(cur_dispatch, dict):
        # the work-stealing claim is a hard gate: on the same machine, in the
        # same payload, pulling must beat static placement under skew
        speedup = float(cur_dispatch.get("speedup", 0.0))
        verdict = "ok" if speedup > 1.0 else "REGRESSION"
        messages.append(
            f"dispatch A/B: stealing {cur_dispatch.get('stealing_seconds')}s vs "
            f"static {cur_dispatch.get('static_seconds')}s "
            f"(speedup {speedup:.2f}x) — {verdict}"
        )
        if speedup <= 1.0:
            ok = False
        base_dispatch = baseline.get("dispatch_ab")
        if isinstance(base_dispatch, dict) and base_dispatch.get("stealing_seconds"):
            base_steal = float(base_dispatch["stealing_seconds"])
            cur_steal = float(cur_dispatch.get("stealing_seconds", 0.0))
            steal_delta = (cur_steal - base_steal) / base_steal if base_steal > 0 else 0.0
            steal_verdict = "ok" if cur_steal <= base_steal * (1.0 + tolerance) else "REGRESSION"
            messages.append(
                f"dispatch stealing makespan: {cur_steal:.3f}s vs baseline "
                f"{base_steal:.3f}s ({steal_delta:+.1%}, tolerance {tolerance:.0%}) "
                f"— {steal_verdict}"
            )
            if cur_steal > base_steal * (1.0 + tolerance):
                ok = False
    return ok, messages


def summarize(payload: dict) -> str:
    """A short human rendering of one payload (printed by ``repro bench``)."""
    cold, warm = payload["cold"], payload["warm"]
    counters = cold["counters"]
    lines = [
        f"bench ({payload['corpus']} corpus, best of {payload['runs']}):",
        f"  cold: {cold['wall_seconds']:.3f}s  "
        f"(verified={cold['all_verified']}, negatives rejected={cold['all_negatives_rejected']})",
        f"  warm: {warm['wall_seconds']:.3f}s  (store hits={warm['counters']['store_hits']})",
        f"  obligations={counters['obligations']}  #SAT={counters['smt_queries']}  "
        f"alphabet builds={counters['alphabet_builds']}  "
        f"memo hits={counters['alphabet_memo_hits']}  prod states={counters['prod_states']}",
    ]
    if "derivative_cache_hits" in counters:
        lines.append(
            f"  caches: derivative {counters['derivative_cache_hits']} hits / "
            f"{counters.get('derivative_cache_misses', 0)} misses "
            f"({counters.get('derivative_cache_evictions', 0)} evictions)  "
            f"alphabet memo {counters.get('alphabet_memo_replays', 0)} replays / "
            f"{counters.get('alphabet_memo_builds', 0)} builds "
            f"({counters.get('alphabet_memo_evictions', 0)} evictions)"
        )
    groups = cold.get("batch_groups")
    if groups:
        lines.append(
            f"  batch: {groups['groups']} groups over "
            f"{groups['grouped_obligations']} obligations  "
            f"queries {groups['queries_executed']} executed vs "
            f"{groups['queries_billed']} billed  "
            f"(multi-member strictly fewer: {groups['multi_groups_strictly_fewer']})"
        )
    ab = payload.get("ab")
    if ab:
        lines.append(
            f"  A/B {ab['discharge']}: cold {ab['cold']['wall_seconds']:.3f}s  "
            f"deterministic tables identical={ab['tables_identical']}"
        )
    dispatch = payload.get("dispatch_ab")
    if dispatch:
        lines.append(
            f"  dispatch A/B ({dispatch['workers']} workers, "
            f"{dispatch['items']} items): static {dispatch['static_seconds']:.3f}s "
            f"vs stealing {dispatch['stealing_seconds']:.3f}s  "
            f"(speedup {dispatch['speedup']:.2f}x)"
        )
    return "\n".join(lines)
