"""Compiling symbolic automata to finite automata by formula differentiation.

Once the alphabet transformation has produced a finite set of characters
(minterms), the language of a symbolic LTLf/regex formula becomes regular
over that alphabet.  We build the corresponding DFA directly with
Brzozowski-style derivatives (also known as formula *progression*):

* the states of the DFA are (hash-consed, ACI-normalised) formulas,
* the transition on a character is the derivative of the state formula with
  respect to that character,
* a state is accepting iff its formula is *nullable* (accepts the empty
  trace).

This matches the role of ``AlphaTrans`` + FA construction in the paper's
Algorithm 1/2 while avoiding an explicit NFA intermediate form; the explicit
:class:`repro.sfa.automata.Dfa` produced here is what the inclusion check and
the size statistics operate on.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Mapping, Optional

from .. import smt
from ..smt.terms import Term
from . import symbolic
from .alphabet import Alphabet, Character
from .automata import Dfa
from .symbolic import Sfa


class CompilationError(RuntimeError):
    """Raised when the derivative construction does not converge."""


@dataclass
class DfaCache:
    """Memoises :func:`compile_dfa` per ``(sfa_id, alphabet fingerprint)``.

    The inclusion pipeline recompiles the same symbolic automaton over the
    same alphabet constantly — the two directions of an equivalence check, the
    repeated obligations of one method body, the invariant appearing on both
    sides of consecutive checks — so a content-addressed memo removes whole
    derivative constructions.  Compiled DFAs are immutable once built, so
    sharing them is safe.
    """

    hits: int = 0
    misses: int = 0
    #: times the size cap wiped the memo (bulk clear-all eviction)
    evictions: int = 0
    max_entries: int = 4096
    _store: dict[tuple, "Dfa"] = field(default_factory=dict, repr=False)

    def __len__(self) -> int:
        return len(self._store)

    def clear(self) -> None:
        self._store.clear()

    def get(self, key: tuple) -> Optional["Dfa"]:
        dfa = self._store.get(key)
        if dfa is not None:
            self.hits += 1
        else:
            self.misses += 1
        return dfa

    def put(self, key: tuple, dfa: "Dfa") -> None:
        if len(self._store) >= self.max_entries:
            self._store.clear()
            self.evictions += 1
        self._store[key] = dfa


def nullable(formula: Sfa) -> bool:
    """Does the formula accept the empty trace?"""
    kind = formula.kind
    if kind == symbolic.K_TOP:
        return True
    if kind in (symbolic.K_BOT, symbolic.K_EVENT, symbolic.K_GUARD, symbolic.K_NEXT, symbolic.K_UNTIL):
        return False
    if kind == symbolic.K_NOT:
        return not nullable(formula.children[0])
    if kind == symbolic.K_AND:
        return all(nullable(c) for c in formula.children)
    if kind == symbolic.K_OR:
        return any(nullable(c) for c in formula.children)
    if kind == symbolic.K_CONCAT:
        return nullable(formula.children[0]) and nullable(formula.children[1])
    raise AssertionError(kind)


def _evaluate_qualifier(phi: Term, truth: Mapping[Term, bool]) -> bool:
    value = smt.evaluate(phi, dict(truth))
    if value is None:
        missing = [a for a in smt.atoms(phi) if a not in truth]
        raise CompilationError(
            f"qualifier {phi!r} is not determined by the minterm assignment; "
            f"missing literals: {missing}"
        )
    return value


def derivative(formula: Sfa, character: Character, context_truth: Mapping[Term, bool]) -> Sfa:
    """The Brzozowski derivative of ``formula`` with respect to ``character``."""
    kind = formula.kind
    if kind == symbolic.K_TOP:
        return symbolic.TOP
    if kind == symbolic.K_BOT:
        return symbolic.BOT
    if kind == symbolic.K_EVENT:
        signature, phi = formula.payload
        if signature.name != character.signature.name:
            return symbolic.BOT
        truth = dict(context_truth)
        truth.update(character.truth())
        return symbolic.TOP if _evaluate_qualifier(phi, truth) else symbolic.BOT
    if kind == symbolic.K_GUARD:
        return symbolic.TOP if _evaluate_qualifier(formula.payload, context_truth) else symbolic.BOT
    if kind == symbolic.K_NOT:
        return symbolic.not_(derivative(formula.children[0], character, context_truth))
    if kind == symbolic.K_AND:
        return symbolic.and_(*(derivative(c, character, context_truth) for c in formula.children))
    if kind == symbolic.K_OR:
        return symbolic.or_(*(derivative(c, character, context_truth) for c in formula.children))
    if kind == symbolic.K_NEXT:
        return formula.children[0]
    if kind == symbolic.K_UNTIL:
        lhs, rhs = formula.children
        return symbolic.or_(
            derivative(rhs, character, context_truth),
            symbolic.and_(derivative(lhs, character, context_truth), formula),
        )
    if kind == symbolic.K_CONCAT:
        lhs, rhs = formula.children
        left_part = symbolic.concat(derivative(lhs, character, context_truth), rhs)
        if nullable(lhs):
            return symbolic.or_(left_part, derivative(rhs, character, context_truth))
        return left_part
    raise AssertionError(kind)


def compile_dfa(
    formula: Sfa,
    alphabet: Alphabet,
    *,
    max_states: int = 20000,
    cache: Optional[DfaCache] = None,
) -> Dfa:
    """Compile a symbolic automaton into a complete DFA over ``alphabet``.

    When ``cache`` is given, compilations are memoised per
    ``(sfa_id, alphabet fingerprint)``; both ids are content addresses
    (formulas and terms are hash-consed), so a hit is exact.
    """
    key: Optional[tuple] = None
    if cache is not None:
        key = (formula.sfa_id, alphabet.fingerprint())
        cached = cache.get(key)
        if cached is not None:
            return cached
    context_truth = alphabet.context_truth()
    characters = alphabet.characters

    state_of: dict[Sfa, int] = {formula: 0}
    worklist: list[Sfa] = [formula]
    transitions: list[list[int]] = []
    order: list[Sfa] = [formula]

    while worklist:
        current = worklist.pop(0)
        row: list[int] = []
        for character in characters:
            next_formula = derivative(current, character, context_truth)
            target = state_of.get(next_formula)
            if target is None:
                target = len(state_of)
                if target >= max_states:
                    raise CompilationError(
                        f"derivative construction exceeded {max_states} states"
                    )
                state_of[next_formula] = target
                order.append(next_formula)
                worklist.append(next_formula)
            row.append(target)
        transitions.append(row)

    # rows are appended in the order states were *processed*; make sure the
    # table is indexed by state id (processing order equals creation order
    # because the worklist is FIFO and every new state is appended once).
    accepting = frozenset(i for i, f in enumerate(order) if nullable(f))
    dfa = Dfa(num_chars=len(characters), transitions=transitions, accepting=accepting, start=0)
    if cache is not None and key is not None:
        cache.put(key, dfa)
    return dfa


# ---------------------------------------------------------------------------
# Lazy on-the-fly product inclusion (the ``discharge="lazy"`` path)
# ---------------------------------------------------------------------------


class DerivativeCache:
    """A cross-obligation memo for Brzozowski derivative steps.

    SFA formulas are hash-consed, so ``sfa_id`` is a content address; a
    character and a context case are identified by their literal valuations
    (``term_id`` is global).  The cache interns each distinct context case
    and character it sees into a small integer, so the per-step key is a
    cheap ``(sfa_id, context id, character id)`` int tuple, and the memo
    survives across the many searches of one method — the invariant side of
    every obligation re-derives the same formulas over the same minterms.

    ``derivative`` is a pure function of that key, so sharing the cache
    between obligations (or handing forked workers a copy-on-write view of
    it) can never change a verdict or a counter — only wall-clock time.  The
    size cap wipes the memo wholesale, like every other cache in the
    pipeline, and counts the eviction.
    """

    def __init__(self, max_entries: int = 262_144, max_interned: int = 65_536) -> None:
        self.max_entries = max_entries
        #: cap on the interning side tables (alphabets/contexts/characters);
        #: crossing it wipes them *and* the step store together, so the
        #: whole cache stays bounded, not just the derivative entries
        self.max_interned = max_interned
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._store: dict[tuple[int, int, int], Sfa] = {}
        #: context-case fingerprint -> id
        self._context_ids: dict[tuple, int] = {}
        #: character fingerprint -> id
        self._character_ids: dict[tuple, int] = {}
        #: alphabet fingerprint -> (context id, per-character ids)
        self._alphabet_keys: dict[tuple, tuple[int, tuple[int, ...]]] = {}
        # Ids are drawn from counters that survive every wipe, never from the
        # tables' sizes: an id handed to an in-flight search must stay unique
        # forever, or entries it stores after an eviction could alias a
        # freshly interned alphabet's keys and replay the wrong derivative.
        self._next_id = 0

    def __len__(self) -> int:
        return len(self._store)

    def _fresh_id(self) -> int:
        self._next_id += 1
        return self._next_id

    def keys_for(self, alphabet: Alphabet) -> tuple[int, tuple[int, ...]]:
        """Intern an alphabet's context case and characters into step keys."""
        fingerprint = alphabet.fingerprint()
        cached = self._alphabet_keys.get(fingerprint)
        if cached is None:
            if (
                len(self._alphabet_keys) >= self.max_interned
                or len(self._character_ids) >= self.max_interned
            ):
                self._alphabet_keys.clear()
                self._context_ids.clear()
                self._character_ids.clear()
                self._store.clear()
                self.evictions += 1
            context_fp, character_fps = fingerprint
            context_id = self._context_ids.get(context_fp)
            if context_id is None:
                context_id = self._context_ids[context_fp] = self._fresh_id()
            character_ids = []
            for fp in character_fps:
                character_id = self._character_ids.get(fp)
                if character_id is None:
                    character_id = self._character_ids[fp] = self._fresh_id()
                character_ids.append(character_id)
            cached = (context_id, tuple(character_ids))
            self._alphabet_keys[fingerprint] = cached
        return cached

    def lookup(self, key: tuple[int, int, int]) -> Optional[Sfa]:
        found = self._store.get(key)
        if found is not None:
            self.hits += 1
        else:
            self.misses += 1
        return found

    def store(self, key: tuple[int, int, int], value: Sfa) -> None:
        if len(self._store) >= self.max_entries:
            self._store.clear()
            self.evictions += 1
        self._store[key] = value


def lazy_inclusion_search(
    lhs: Sfa,
    rhs: Sfa,
    alphabet: Alphabet,
    *,
    max_pairs: int = 1_000_000,
    cache: Optional[DerivativeCache] = None,
) -> tuple[Optional[tuple[int, ...]], int]:
    """Decide ``L(lhs) ⊆ L(rhs)`` over ``alphabet`` without compiling DFAs.

    Walks the product of the two derivative automata on the fly: states are
    pairs of (hash-consed) formulas, the start pair is ``(lhs, rhs)``, and the
    successor on a character is the pair of Brzozowski derivatives.  A pair
    with a nullable left side and a non-nullable right side witnesses a
    counterexample, and the breadth-first order makes the witness shortest —
    identical to the one the compiled reference path reconstructs, because
    derivative formulas *are* the compiled DFA's states.

    Two antichain-style subsumption prunes drop pairs from which no
    counterexample is reachable, so whole sub-products are never explored:

    * ``lhs`` side is ``BOT`` — the left language is empty from here on, and
      derivatives of ``BOT`` stay ``BOT``;
    * ``rhs`` side is ``TOP`` — the right side accepts every continuation.

    Returns ``(witness character indices or None, #product pairs explored)``.
    The pair count is the ``#prod-states`` statistic of the evaluation tables;
    unlike the compiled path, nothing outside the reachable (un-pruned)
    product is ever constructed, and the search exits at the first witness.
    """
    context_truth = alphabet.context_truth()
    characters = alphabet.characters

    if cache is not None:
        # cross-search memo: content-addressed step keys that survive across
        # the obligations sharing this cache (derivative is pure in the key)
        context_id, character_ids = cache.keys_for(alphabet)

        def step(formula: Sfa, index: int) -> Sfa:
            key = (formula.sfa_id, context_id, character_ids[index])
            cached = cache.lookup(key)
            if cached is None:
                cached = derivative(formula, characters[index], context_truth)
                cache.store(key, cached)
            return cached

    else:
        #: per-side derivative memo — pairs share sides constantly
        memo: dict[tuple[int, int], Sfa] = {}

        def step(formula: Sfa, index: int) -> Sfa:
            key = (formula.sfa_id, index)
            cached = memo.get(key)
            if cached is None:
                cached = derivative(formula, characters[index], context_truth)
                memo[key] = cached
            return cached

    def pruned(a: Sfa, b: Sfa) -> bool:
        return a is symbolic.BOT or b is symbolic.TOP

    start = (lhs, rhs)
    if pruned(*start):
        return None, 0
    parents: dict[tuple[Sfa, Sfa], tuple[tuple[Sfa, Sfa], int] | None] = {start: None}
    frontier: deque[tuple[Sfa, Sfa]] = deque([start])
    while frontier:
        pair = frontier.popleft()
        a, b = pair
        if nullable(a) and not nullable(b):
            word: list[int] = []
            node: tuple[Sfa, Sfa] | None = pair
            while parents[node] is not None:
                node, index = parents[node]  # type: ignore[misc]
                word.append(index)
            return tuple(reversed(word)), len(parents)
        for index in range(len(characters)):
            target = (step(a, index), step(b, index))
            if pruned(*target) or target in parents:
                continue
            if len(parents) >= max_pairs:
                raise CompilationError(
                    f"lazy product walk exceeded {max_pairs} pairs"
                )
            parents[target] = (pair, index)
            frontier.append(target)
    return None, len(parents)


def accepts_via_dfa(formula: Sfa, alphabet: Alphabet, word: list[Character]) -> bool:
    """Check word membership through the compiled DFA (testing helper)."""
    dfa = compile_dfa(formula, alphabet)
    indices = [alphabet.index_of(c) for c in word]
    return dfa.accepts_word(indices)
