"""Store garbage collection: expire entries unreferenced by the last N runs.

GC is a space reclaim, never a correctness event: content addressing already
guarantees stale entries cannot be *hit*, so the only thing to prove is that
the sweep keeps everything the last N committed runs referenced — a warm
re-run of those exact workloads must still answer entirely from the store —
while dropping what nothing recent touched.  Runs against both backends via
the ``store_path`` fixture.
"""

import json

import pytest

from repro.evaluation.runner import run_benchmark
from repro.store.obligation_store import ObligationStore, StoreEntry
from repro.suite.registry import all_benchmarks


def _fast(index):
    return all_benchmarks(include_slow=False)[index]


def _run(bench, store):
    stats, negatives = run_benchmark(bench, store=store)
    assert stats.all_verified and all(n.rejected for n in negatives)
    store.flush()
    store.commit_run()


def _store_counts(store):
    hits = sum(c.hits for c in store.session.values())
    misses = sum(c.misses for c in store.session.values())
    return hits, misses


def test_gc_keeps_everything_the_last_runs_touched(store_path):
    """After ``gc(keep_last=2)``, the last two runs still warm-hit fully."""
    store = ObligationStore(store_path)
    _run(_fast(0), store)  # run 1
    _run(_fast(1), store)  # run 2
    _run(_fast(2), store)  # run 3

    gc_store = ObligationStore(store_path)
    before = len(gc_store)
    dropped = gc_store.gc(keep_last=2)
    assert dropped > 0, "run 1's unshared entries should expire"
    assert len(gc_store) == before - dropped

    # the workloads of the two kept runs replay with zero misses
    warm = ObligationStore(store_path)
    _run(_fast(1), warm)
    _run(_fast(2), warm)
    hits, misses = _store_counts(warm)
    assert hits > 0 and misses == 0, (
        "a GC'd store must still answer everything the kept runs touched"
    )

    # the expired workload re-discharges (misses), then warm-hits again
    recold = ObligationStore(store_path)
    _run(_fast(0), recold)
    _, misses = _store_counts(recold)
    assert misses > 0


def test_gc_counts_warm_hits_as_references(store_path):
    """An entry a recent run merely *read* survives the sweep."""
    store = ObligationStore(store_path)
    _run(_fast(0), store)  # run 1: writes benchmark 0
    _run(_fast(1), store)  # run 2: writes benchmark 1

    rereader = ObligationStore(store_path)
    _run(_fast(0), rereader)  # run 3: only *hits* benchmark 0's entries

    gc_store = ObligationStore(store_path)
    gc_store.gc(keep_last=1)  # keep run 3 only — which touched benchmark 0

    warm = ObligationStore(store_path)
    _run(_fast(0), warm)
    hits, misses = _store_counts(warm)
    assert hits > 0 and misses == 0


def test_gc_drops_orphan_entries_no_run_references(store_path):
    store = ObligationStore(store_path)
    _run(_fast(0), store)
    orphan = StoreEntry(env="deadenv", fp="deadfp", included=True)
    store.record(orphan)
    store.flush()  # recorded but part of the *current* (uncommitted) session

    fresh = ObligationStore(store_path)
    assert fresh.lookup("deadenv", "deadfp") is not None
    # the orphan was never referenced by a *committed* run
    dropped = ObligationStore(store_path).gc(keep_last=1)
    assert dropped >= 1
    assert ObligationStore(store_path).lookup("deadenv", "deadfp") is None


def test_gc_of_uncommitted_session_commits_it_first(store_path):
    store = ObligationStore(store_path)
    stats, _ = run_benchmark(_fast(0), store=store)
    assert stats.all_verified
    store.flush()  # deliberately no commit_run
    dropped = store.gc(keep_last=1)
    assert dropped == 0, "the in-flight session's entries must survive its own GC"
    warm = ObligationStore(store_path)
    _run(_fast(0), warm)
    _, misses = _store_counts(warm)
    assert misses == 0


def test_run_log_is_persisted(store_path, store_backend):
    store = ObligationStore(store_path)
    _run(_fast(0), store)
    records = ObligationStore(store_path)._runs
    assert len(records) == 1 and records[0]["run"] == 1
    assert records[0]["touched"], "the run must list the entries it referenced"
    if store_backend == "jsonl":
        runs_path = store_path / "runs.jsonl"
        assert runs_path.exists()
        on_disk = [json.loads(line) for line in runs_path.read_text().splitlines()]
        assert on_disk == records

    again = ObligationStore(store_path)
    _run(_fast(0), again)
    records = ObligationStore(store_path)._runs
    assert [record["run"] for record in records] == [1, 2]


def test_empty_session_records_no_run(store_path, store_backend):
    store = ObligationStore(store_path)
    assert store.commit_run() == 0
    assert ObligationStore(store_path)._runs == []
    if store_backend == "jsonl":
        assert not (store_path / "runs.jsonl").exists()


def test_malformed_run_records_are_tolerated(tmp_path):
    """A hand-edited/torn run log must never crash later sessions (jsonl layout)."""
    store = ObligationStore(tmp_path, backend="jsonl")
    _run(_fast(0), store)
    runs_path = tmp_path / "runs.jsonl"
    runs_path.write_text(
        runs_path.read_text()
        + 'not json\n{"touched": []}\n{"run": "three", "touched": []}\n[1]\n'
    )
    reloaded = ObligationStore(tmp_path, backend="jsonl")
    assert [record["run"] for record in reloaded._runs] == [1]
    _run(_fast(0), reloaded)  # commit_run must not crash on the survivors
    records = [json.loads(line) for line in runs_path.read_text().splitlines()]
    assert [record["run"] for record in records] == [1, 2]


def test_gc_validates_keep_last(store_path):
    store = ObligationStore(store_path)
    with pytest.raises(ValueError):
        store.gc(keep_last=0)


def test_shard_stores_never_gc_or_commit(store_path):
    parent = ObligationStore(store_path)
    _run(_fast(0), parent)
    shard = ObligationStore(store_path, shard_output=0)
    assert shard.commit_run() == 0
    assert shard.gc(keep_last=1) == 0
    assert len(ObligationStore(store_path)) == len(parent)
