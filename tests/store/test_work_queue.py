"""Pure units for the lease queue: LPT order, stealing, idempotence, skew.

:class:`WorkQueue` owns no clock — every method takes ``now`` — so lease
expiry, work stealing and clock-skewed extends are all exercised here with
arithmetic instead of sleeps.  The wire layer on top lives in
``test_queue_server.py``.
"""

import pytest

from repro.store.queue import Lease, QueueItem, WorkQueue, item_key


def _item(fp, cost=0.0, measured=False, env="e", bench="Set/KVStore"):
    return QueueItem(env=env, fp=fp, bench=bench, cost=cost, measured=measured)


# -- enqueue -----------------------------------------------------------------------


def test_enqueue_deduplicates_on_env_fp():
    queue = WorkQueue()
    assert queue.enqueue([_item("f1"), _item("f2")]) == (2, 0)
    assert queue.enqueue([_item("f1")]) == (0, 1)
    assert len(queue) == 2
    assert queue.counters["enqueued"] == 2
    assert queue.counters["requeued"] == 1


def test_same_fp_under_two_envs_is_two_items():
    queue = WorkQueue()
    queue.enqueue([_item("f1", env="a"), _item("f1", env="b")])
    assert len(queue) == 2
    assert item_key("a", "f1") != item_key("b", "f1")


def test_reenqueue_adopts_a_measured_cost_but_never_degrades_one():
    queue = WorkQueue()
    queue.enqueue([_item("f1", cost=5.0, measured=False)])
    queue.enqueue([_item("f1", cost=0.25, measured=True)])
    lease, items, _ = queue.lease(1, 10.0, now=0.0)
    assert items[0].cost == 0.25 and items[0].measured
    queue.complete(lease.id, [items[0].key])

    queue.enqueue([_item("f2", cost=0.5, measured=True)])
    queue.enqueue([_item("f2", cost=99.0, measured=False)])  # estimate loses
    _, items, _ = queue.lease(1, 10.0, now=0.0)
    assert items[0].cost == 0.5 and items[0].measured


def test_reenqueue_retags_the_new_dispatch_without_disturbing_the_lease():
    queue = WorkQueue()
    queue.enqueue([_item("f1")], dispatch="d1")
    lease, _, _ = queue.lease(1, 10.0, now=0.0)
    queue.enqueue([_item("f1")], dispatch="d2")
    # the item is still leased — a re-dispatching coordinator must not yank
    # in-flight work — but the new dispatch's drain poll now counts it
    assert queue.status("d2")["remaining"] == 1
    assert queue.status("d2")["leased"] == 1
    assert queue._items[item_key("e", "f1")].leased_by == lease.id


# -- LPT at dequeue ----------------------------------------------------------------


def test_lease_issues_most_expensive_first_measured_before_estimated():
    queue = WorkQueue()
    queue.enqueue(
        [
            _item("cheap-measured", cost=0.1, measured=True),
            _item("big-estimate", cost=1000.0, measured=False),
            _item("straggler", cost=2.0, measured=True),
        ]
    )
    _, items, _ = queue.lease(3, 10.0, now=0.0)
    # measured costs are informative, estimates are guesses: the measured
    # population sorts first even when an estimate is numerically larger
    assert [item.fp for item in items] == ["straggler", "cheap-measured", "big-estimate"]


def test_equal_costs_tiebreak_on_fingerprint_for_determinism():
    queue = WorkQueue()
    queue.enqueue([_item("b"), _item("a"), _item("c")])
    _, items, _ = queue.lease(3, 10.0, now=0.0)
    assert [item.fp for item in items] == ["a", "b", "c"]


def test_lease_validates_count_and_ttl():
    queue = WorkQueue()
    with pytest.raises(ValueError, match="count"):
        queue.lease(0, 10.0, now=0.0)
    with pytest.raises(ValueError, match="ttl"):
        queue.lease(1, 0.0, now=0.0)
    with pytest.raises(ValueError, match="ttl"):
        queue.extend("L1", -1.0, now=0.0)


def test_an_empty_queue_leases_nothing():
    queue = WorkQueue()
    lease, items, reclaimed = queue.lease(4, 10.0, now=0.0)
    assert lease is None and items == [] and reclaimed == 0
    assert queue.counters["leases_issued"] == 0


# -- expiry and stealing -----------------------------------------------------------


def test_expired_leases_are_reclaimed_and_reissued():
    queue = WorkQueue()
    queue.enqueue([_item("f1"), _item("f2")])
    first, items, _ = queue.lease(2, ttl=10.0, now=0.0)
    assert len(items) == 2

    # before the deadline nothing is stealable
    lease, items, reclaimed = queue.lease(2, ttl=10.0, now=9.9)
    assert lease is None and reclaimed == 0

    # at/after the deadline the dead worker's items go back to pending and
    # are immediately re-issued — work stealing without extra machinery
    second, items, reclaimed = queue.lease(2, ttl=10.0, now=10.0)
    assert reclaimed == 2
    assert {item.fp for item in items} == {"f1", "f2"}
    assert all(item.attempts == 2 for item in items)
    assert second.id != first.id
    assert queue.counters["reclaimed"] == 2


def test_a_live_lease_shields_its_items():
    queue = WorkQueue()
    queue.enqueue([_item("f1"), _item("f2")])
    queue.lease(1, ttl=100.0, now=0.0)  # takes one item
    _, items, _ = queue.lease(2, ttl=100.0, now=50.0)
    assert len(items) == 1, "only the unleased item is available"


# -- complete ----------------------------------------------------------------------


def test_complete_is_idempotent():
    queue = WorkQueue()
    queue.enqueue([_item("f1")])
    lease, items, _ = queue.lease(1, 10.0, now=0.0)
    keys = [item.key for item in items]
    assert queue.complete(lease.id, keys) == (1, 0)
    assert queue.complete(lease.id, keys) == (0, 0), "replay removes nothing"
    assert len(queue) == 0
    assert queue.counters["completed"] == 1


def test_complete_under_a_stolen_lease_counts_stale_but_still_removes():
    queue = WorkQueue()
    queue.enqueue([_item("f1")])
    first, items, _ = queue.lease(1, ttl=1.0, now=0.0)
    key = items[0].key
    second, _, _ = queue.lease(1, ttl=10.0, now=2.0)  # steals it

    # the original worker finished late: its verdict is already durable in
    # the store (if_absent protects the thief's write), so the item leaves
    # the queue either way
    assert queue.complete(first.id, [key]) == (1, 1)
    assert len(queue) == 0
    assert queue.counters["stale_completes"] == 1
    # the thief's own complete is then a harmless no-op
    assert queue.complete(second.id, [key]) == (0, 0)


def test_completing_every_key_retires_the_lease():
    queue = WorkQueue()
    queue.enqueue([_item("f1"), _item("f2")])
    lease, items, _ = queue.lease(2, 10.0, now=0.0)
    queue.complete(lease.id, [items[0].key])
    assert queue.status()["leases"] == 1
    queue.complete(lease.id, [items[1].key])
    assert queue.status()["leases"] == 0


# -- extend (clock skew) -----------------------------------------------------------


def test_extend_is_server_relative_so_client_skew_is_inert():
    queue = WorkQueue()
    queue.enqueue([_item("f1")])
    lease, _, _ = queue.lease(1, ttl=10.0, now=0.0)
    # a worker whose own clock is hours off sends only a relative ttl; the
    # new deadline is computed purely from the server's now
    assert queue.extend(lease.id, 10.0, now=5.0)
    assert queue._leases[lease.id].deadline == 15.0
    # the renewed lease shields the item past the original deadline
    grant, _, _ = queue.lease(1, 10.0, now=12.0)
    assert grant is None


def test_extend_rejects_unknown_and_expired_leases():
    queue = WorkQueue()
    queue.enqueue([_item("f1")])
    lease, _, _ = queue.lease(1, ttl=10.0, now=0.0)
    assert not queue.extend("L999", 10.0, now=1.0)
    assert not queue.extend(lease.id, 10.0, now=10.0), (
        "a deadline in the past cannot be revived — the items are stealable"
    )
    assert queue.counters["extend_rejected"] == 2
    assert queue.counters["extended"] == 0


# -- status ------------------------------------------------------------------------


def test_status_filters_by_dispatch_tag():
    queue = WorkQueue()
    queue.enqueue([_item("f1"), _item("f2")], dispatch="mine")
    queue.enqueue([_item("f3")], dispatch="theirs")
    assert queue.status("mine")["remaining"] == 2
    assert queue.status("theirs")["remaining"] == 1
    assert queue.status()["remaining"] == 3


def test_status_with_now_reclaims_dead_workers_claims():
    queue = WorkQueue()
    queue.enqueue([_item("f1")])
    queue.lease(1, ttl=1.0, now=0.0)
    assert queue.status()["leased"] == 1  # no clock: report as-is
    status = queue.status(now=5.0)
    assert status["leased"] == 0 and status["pending"] == 1
    assert status["counters"]["reclaimed"] == 1
