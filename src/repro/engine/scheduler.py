"""Scheduling and discharging proof obligations (serially or in parallel).

This is the middle stage of the decoupled pipeline:

1. **Emit** — :mod:`repro.typecheck.checker` walks the method body and emits
   :class:`~repro.engine.obligations.Obligation` values instead of deciding
   them inline;
2. **Schedule** — :class:`ObligationEngine` dedupes structurally-isomorphic
   obligations (hash-consed fingerprints), consults a cross-method memo, and
   orders the remainder cheapest-first;
3. **Discharge** — each residual obligation is decided by an
   :class:`~repro.sfa.inclusion.InclusionChecker`, either in-process or on a
   ``fork``-based process pool (``workers=N``), and the per-worker
   ``SolverStats``/``InclusionStats`` are merged back into the caller's
   tables.

Determinism is a design invariant: every obligation is discharged
*hermetically* — a fresh solver and inclusion checker per obligation, so no
state leaks between obligations — which makes every counter a pure function
of the obligation itself.  ``workers=4`` therefore produces byte-identical
statistics tables to ``workers=1`` (wall-clock times aside), which the
determinism suite asserts.  Cross-obligation sharing instead happens at the
obligation level: the batch dedupe and the cross-method memo answer repeated
queries without re-discharge, replacing the solver-cache sharing the old
inline design relied on.

The pool uses the ``fork`` start method deliberately: terms and SFA formulas
are hash-consed with identity semantics, and forked children inherit the
parent's interned universe, so obligations cross the process boundary by
reference (a module-level snapshot taken just before the fork) while results
travel back as plain picklable dicts.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from .. import smt
from ..obs import trace
from ..obs.logs import get_logger
from ..obs.postmortem import dump_postmortem
from ..sfa.alphabet import AlphabetError, AlphabetMemo
from ..sfa.batch import discharge_group
from ..sfa.derivatives import CompilationError, DerivativeCache
from ..sfa.inclusion import InclusionChecker, InclusionStats
from ..smt.solver import SolverError
from ..sfa.signatures import OperatorRegistry
from ..smt.solver import SolverStats
from ..statsutil import MergeableStats
from ..store.fingerprint import environment_fingerprint, obligation_digest, shard_of
from ..store.obligation_store import ObligationStore, StoreContext, StoreEntry
from .obligations import DischargeOutcome, Obligation, ObligationSet

#: The supported values of ``ObligationEngine(..., schedule=...)``:
#: ``auto`` picks the cost model with LPT under a pool and cheapest-first
#: serially; the explicit modes exist for ablations and the determinism suite.
SCHEDULE_MODES = ("auto", "syntactic", "cost", "lpt")

logger = get_logger("engine")


@dataclass
class EngineStats(MergeableStats):
    """Bookkeeping for the schedule/discharge stages."""

    obligations_emitted: int = 0
    obligations_discharged: int = 0
    #: later emissions answered by an isomorphic representative in the batch
    deduped_aliases: int = 0
    #: representatives answered by the cross-method memo
    memo_hits: int = 0
    #: representatives answered by the persistent store (warm start)
    store_hits: int = 0
    #: representatives that missed the persistent store and were discharged
    store_misses: int = 0
    #: representatives assigned to another shard (not discharged here)
    shard_skipped: int = 0
    #: store misses reported to a dispatch coordinator's collect sink
    #: instead of being discharged here (``evaluate --distributed`` phase 1)
    dispatch_collected: int = 0
    #: representatives outside a worker's leased ``only`` set (not ours)
    dispatch_skipped: int = 0
    #: representatives ordered by a recorded store cost (vs. the syntactic
    #: estimate fallback) — order is advisory, so this is bookkeeping only
    cost_hints_used: int = 0
    batches: int = 0
    parallel_batches: int = 0
    #: alphabet-sharing groups discharged set-at-a-time (``discharge="batch"``)
    batch_groups: int = 0
    #: obligations those groups covered (every fresh one, in batch mode)
    batch_grouped_obligations: int = 0
    #: SMT queries the groups actually executed (one construction per group,
    #: zero on a memo hit) vs. what the deterministic tables bill (the
    #: recorded construction replayed into every member) — the coalescing win
    batch_queries_executed: int = 0
    batch_queries_billed: int = 0
    #: distinct AlphabetMemo keys forked workers reported building (their
    #: entries die with the fork; the keys come back as eager-build hints)
    worker_memo_keys: int = 0
    #: hinted constructions the parent pre-built before forking a later batch
    memo_eager_builds: int = 0


@dataclass(frozen=True)
class DischargeParams:
    """Everything a (possibly forked) worker needs to discharge obligations.

    ``warm_solver`` is the checker's shared inline solver: per-obligation
    solvers get a read-only view of its caches (``Solver(warm_from=...)``).
    Its content at discharge time is written only by the serial emit phase,
    so it is identical for every worker count — warm hits stay deterministic
    — and forked workers read it through copy-on-write memory for free.
    Never pickled: obligations and params cross the pool boundary via the
    forked heap, only plain result dicts travel back.
    """

    operators: OperatorRegistry
    axioms: tuple = ()
    minimize: bool = False
    filter_unsat_minterms: bool = True
    max_literals: Optional[int] = None
    strategy: str = "guided"
    discharge: str = "lazy"
    #: which SAT core answers the per-obligation solver's queries
    backend: str = "dpll"
    warm_solver: Optional[smt.Solver] = None
    #: shared cross-obligation alphabet memo: hermetic constructions with a
    #: recorded counter bill, replayed identically on every hit.  Serially
    #: the engine's memo grows across batches; forked workers read it through
    #: copy-on-write and their additions die with them — either way every
    #: counter stays a pure function of the obligation.  Never pickled.
    alphabet_memo: Optional[AlphabetMemo] = None
    #: shared cross-obligation memo for lazy derivative steps (pure reuse:
    #: it can change wall-clock time only, never a verdict or a counter)
    derivative_cache: Optional[DerivativeCache] = None


def discharge_obligation(obligation: Obligation, params: DischargeParams) -> dict:
    """Discharge one obligation hermetically; returns a picklable result.

    A fresh solver/checker pair per obligation (reads falling back to the
    read-only warm caches, writes local and discarded) keeps every counter a
    pure function of (warm snapshot, obligation) — the invariant behind
    worker-count-independent statistics tables.  Deliberately *nothing*
    mutable is shared between obligations, not even theory lemmas: installed
    lemmas can steer the model-guided enumeration's branching and with it
    the reported query counts, so any sibling-dependent sharing would leak
    scheduling order into the tables.
    """
    spans_mark = trace.mark()
    if trace.enabled():
        # the digest is memoised on the frozen obligation and strictly
        # volatile here: it keys the span so the report correlates with
        # `repro store` entries, never the other way around
        discharge_span = trace.span(
            "discharge",
            cat="discharge",
            obligation_fp=obligation_digest(obligation),
            kind=obligation.kind,
            mode=params.discharge,
        )
    else:
        discharge_span = trace.span("discharge")
    start = time.perf_counter()
    solver = smt.Solver(
        axioms=list(params.axioms),
        warm_from=params.warm_solver,
        backend=params.backend,
    )
    checker = InclusionChecker(
        solver,
        params.operators,
        minimize=params.minimize,
        filter_unsat_minterms=params.filter_unsat_minterms,
        max_literals=params.max_literals,
        strategy=params.strategy,
        discharge=params.discharge,
        alphabet_memo=params.alphabet_memo,
        derivative_cache=params.derivative_cache,
    )
    error: Optional[str] = None
    memo = params.alphabet_memo
    keys_before = len(memo.session_built_keys) if memo is not None else 0
    try:
        with discharge_span:
            try:
                result = checker.check_detailed(
                    list(obligation.hypotheses), obligation.lhs, obligation.rhs
                )
                included, counterexample = result.included, result.counterexample
            except (AlphabetError, CompilationError, SolverError) as exc:
                # The walk deliberately continues past failing obligations, so
                # later emissions can sit on contexts the old inline design
                # never reached; a resource limit there must become a
                # reportable failure, not an exception (which, under a pool,
                # would also discard sibling results).
                included, counterexample, error = False, None, str(exc)
    except Exception as exc:  # unexpected: capture context, then propagate
        dump_postmortem(
            exc,
            obligation_fp=obligation_digest(obligation),
            context={
                "kind": obligation.kind,
                "provenance": obligation.provenance,
                "mode": params.discharge,
            },
        )
        raise
    payload = {
        "included": included,
        "counterexample": counterexample,
        "error": error,
        "inclusion": checker.stats.as_dict(),
        "solver": solver.stats.as_dict(),
        # the measured discharge cost: the store keeps it as an advisory
        # scheduling hint, outside every fingerprint and deterministic table
        "wall": time.perf_counter() - start,
        # alphabet constructions this discharge ran: a forked worker's memo
        # entries die with it, so the parent learns the *keys* and pre-builds
        # them before the next fork (plain reuse — counters never move)
        "memo_keys": list(memo.session_built_keys[keys_before:]) if memo is not None else [],
    }
    # spans ride home in the result dict exactly like the stats do: drained
    # here (a forked worker's buffer dies with it) and re-ingested by the
    # engine under this worker's pid
    worker_spans = trace.drain(spans_mark)
    if worker_spans:
        payload["spans"] = worker_spans
    return payload


#: Snapshot handed to forked workers: (obligations, params).  Set immediately
#: before the pool forks and cleared right after; children address the
#: hash-consed obligation objects through the inherited heap.
_FORK_STATE: Optional[tuple[Sequence[Obligation], DischargeParams]] = None


def _discharge_index(index: int) -> dict:
    assert _FORK_STATE is not None, "worker invoked outside a discharge batch"
    obligations, params = _FORK_STATE
    return discharge_obligation(obligations[index], params)


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


def _discharge_group_payload(obligations: Sequence[Obligation], params: DischargeParams) -> dict:
    """Discharge one alphabet-sharing group (``discharge="batch"``).

    Runs in-process or on a forked worker; either way the return value is a
    plain picklable dict: per-member results in the same shape
    :func:`discharge_obligation` produces, the group's query-coalescing
    record, and the memo keys this group built (the worker-reuse hints).
    """
    memo = params.alphabet_memo
    assert memo is not None, "batch discharge requires a shared alphabet memo"
    keys_before = len(memo.session_built_keys)
    spans_mark = trace.mark()
    if trace.enabled():
        group_span = trace.span(
            "discharge.group",
            cat="discharge",
            members=len(obligations),
            obligation_fp=obligation_digest(obligations[0]) if obligations else None,
            mode="batch",
        )
    else:
        group_span = trace.span("discharge.group")
    try:
        with group_span:
            results, record = discharge_group(
                obligations,
                params.operators,
                memo,
                max_literals=params.max_literals,
                filter_unsat=params.filter_unsat_minterms,
                strategy=params.strategy,
                derivative_cache=params.derivative_cache,
            )
    except Exception as exc:  # unexpected: capture context, then propagate
        dump_postmortem(
            exc,
            obligation_fp=obligation_digest(obligations[0]) if obligations else None,
            context={
                "mode": "batch",
                "members": [obligation_digest(ob) for ob in obligations],
            },
        )
        raise
    payload = {
        "members": results,
        "group": record.as_dict(),
        "memo_keys": list(memo.session_built_keys[keys_before:]),
    }
    worker_spans = trace.drain(spans_mark)
    if worker_spans:
        payload["spans"] = worker_spans
    return payload


#: Snapshot handed to forked *group* workers: (group payloads, params).
_GROUP_FORK_STATE: Optional[tuple[list[list[Obligation]], DischargeParams]] = None


def _discharge_group_index(index: int) -> dict:
    assert _GROUP_FORK_STATE is not None, "worker invoked outside a group batch"
    groups, params = _GROUP_FORK_STATE
    return _discharge_group_payload(groups[index], params)


class ObligationEngine:
    """Dedupe, order and discharge the obligations of one method at a time."""

    def __init__(
        self,
        operators: OperatorRegistry,
        axioms: Sequence = (),
        *,
        minimize: bool = False,
        filter_unsat_minterms: bool = True,
        max_literals: Optional[int] = None,
        strategy: str = "guided",
        discharge: str = "lazy",
        backend: str = "dpll",
        workers: int = 1,
        warm_solver: Optional[smt.Solver] = None,
        store: Optional[ObligationStore] = None,
        shard: Optional[tuple[int, int]] = None,
        schedule: str = "auto",
        alphabet_memo: Optional[AlphabetMemo] = None,
        derivative_cache: Optional[DerivativeCache] = None,
        library: Optional[str] = None,
        only: Optional[frozenset] = None,
        collect: Optional[Callable[[Optional[str], str, Optional[float], float], None]] = None,
    ) -> None:
        if schedule not in SCHEDULE_MODES:
            raise ValueError(
                f"unknown schedule mode {schedule!r}; expected one of {SCHEDULE_MODES}"
            )
        if collect is not None and store is None:
            raise ValueError("dispatch collection requires a store to key against")
        if discharge == "batch" and alphabet_memo is None:
            # batch grouping IS the memo's content key; a standalone engine
            # gets a private memo (hermetic builds + recorded bills, exactly
            # like the checker-shared one)
            alphabet_memo = AlphabetMemo(axioms=tuple(axioms), backend=backend)
        self.params = DischargeParams(
            operators=operators,
            axioms=tuple(axioms),
            minimize=minimize,
            filter_unsat_minterms=filter_unsat_minterms,
            max_literals=max_literals,
            strategy=strategy,
            discharge=discharge,
            backend=backend,
            warm_solver=warm_solver,
            alphabet_memo=alphabet_memo,
            derivative_cache=derivative_cache,
        )
        self.workers = workers
        self.store = store
        self.schedule = schedule
        if shard is not None:
            index, count = shard
            if not (count >= 1 and 0 <= index < count):
                raise ValueError(f"invalid shard assignment {shard!r}")
        self.shard = shard
        #: dispatch-worker mode: discharge only these obligation digests and
        #: vacuously skip the rest (same contract as a shard slice, but the
        #: membership comes from a queue lease instead of a hash)
        self.only = only
        #: dispatch-coordinator mode: report each store miss to this sink —
        #: ``collect(env_fp, digest, cost_hint, estimate)`` — instead of
        #: discharging it; the report is discarded like a shard run's
        self.collect = collect
        #: the semantic-environment key store entries are read/written under;
        #: worker count, shard assignment, scheduling order and the memo
        #: layers deliberately don't participate (none changes a counter).
        #: ``batch`` keys as ``lazy``: the batch discharger produces byte-
        #: identical verdicts and counters to the lazy oracle, so its store
        #: entries are interchangeable — a store warmed by either mode
        #: answers the other (``compiled`` stays distinct: its counters are
        #: a different shape).
        self._env_fp = (
            environment_fingerprint(
                operators,
                axioms,
                minimize=minimize,
                filter_unsat_minterms=filter_unsat_minterms,
                max_literals=max_literals,
                strategy=strategy,
                discharge="lazy" if discharge == "batch" else discharge,
                backend=backend,
                library=library,
            )
            if store is not None
            else None
        )
        self.stats = EngineStats()
        #: per-group coalescing records of this engine's batch discharges:
        #: ``{members, built, queries_executed, queries_billed, ...}`` dicts
        #: in scheduling order (surfaced by ``repro bench`` for the A/B)
        self.batch_group_log: list[dict] = []
        #: AlphabetMemo keys forked workers reported building; the parent
        #: pre-builds hinted keys before forking the next batch so the
        #: construction is inherited copy-on-write instead of re-run per fork
        self._eager_memo_hints: set[tuple] = set()
        #: cross-method memo: fingerprint -> (included, counterexample, error);
        #: bounded like every other cache in the pipeline
        self.max_memo_entries = 100_000
        self._memo: dict[tuple, tuple[bool, Optional[list[str]], Optional[str]]] = {}

    # ------------------------------------------------------------------
    def _schedule(self, obligation_set: ObligationSet):
        """Order the deduped batch under the configured scheduling policy.

        ``auto`` (the default) orders by *historical* discharge cost when the
        store has seen an obligation before — longest-processing-time-first
        under a process pool (cuts the makespan), cheapest-first serially
        (keeps first-failure latency low) — and falls back to the syntactic
        ``cost_estimate()`` for obligations no store entry has ever costed.
        Order is advisory: discharge is hermetic, so no policy can change a
        verdict or a deterministic table (locked in by the scheduling-order
        determinism suite).
        """
        mode = self.schedule
        longest_first = mode == "lpt" or (mode == "auto" and self.workers > 1)
        cost_of: Optional[Callable[[Obligation], Optional[float]]] = None
        if mode != "syntactic" and self.store is not None:
            store = self.store

            def cost_of(representative: Obligation) -> Optional[float]:
                hint = store.cost_hint(obligation_digest(representative))
                if hint is not None:
                    self.stats.cost_hints_used += 1
                return hint

        return obligation_set.schedule(cost_of=cost_of, longest_first=longest_first)

    # ------------------------------------------------------------------
    def discharge_all(
        self,
        obligation_set: ObligationSet,
        *,
        solver_stats: Optional[SolverStats] = None,
        inclusion_stats: Optional[InclusionStats] = None,
        store_context: Optional[StoreContext] = None,
    ) -> dict[int, DischargeOutcome]:
        """Discharge a batch; returns one outcome per emitted obligation.

        ``solver_stats``/``inclusion_stats`` are the caller's aggregate tables
        (typically the checker's); per-obligation worker counters are merged
        into them, exactly as the inline design accumulated them.  Lookup
        order per representative is memo → persistent store → discharge: a
        store hit merges the *recorded* counters (so warm tables match cold
        ones byte for byte), a miss is discharged and written back under
        ``store_context``'s dependency record.
        """
        self.stats.batches += 1
        self.stats.obligations_emitted += len(obligation_set)
        with trace.span("schedule", cat="schedule", obligations=len(obligation_set)):
            scheduled = self._schedule(obligation_set)

        if self.store is not None:
            # one batched fetch for the whole batch: a no-op against a local
            # store, a single lookup RPC instead of per-obligation
            # round-trips against a remote one (digests are memoised on the
            # obligation, so the per-representative lookups below are free)
            self.store.prefetch(
                self._env_fp,
                [obligation_digest(representative) for representative, _ in scheduled],
            )

        #: this batch's verdicts: fingerprint -> (included, counterexample, error)
        verdicts: dict[tuple, tuple[bool, Optional[list[str]], Optional[str]]] = {}
        fresh: list[tuple[Obligation, Optional[str]]] = []
        memoed_keys: set[tuple] = set()
        stored_keys: set[tuple] = set()
        skipped_keys: set[tuple] = set()
        for representative, aliases in scheduled:
            self.stats.deduped_aliases += len(aliases)
            key = representative.fingerprint()
            cached = self._memo.get(key)
            if cached is not None:
                memoed_keys.add(key)
                verdicts[key] = cached
                continue
            digest = (
                obligation_digest(representative)
                if self.store is not None
                or self.shard is not None
                or self.only is not None
                or self.collect is not None
                else None
            )
            if self.store is not None:
                entry = self.store.lookup(self._env_fp, digest)
                # defensively treat error entries as misses (they are never
                # written by this code path, see below, but an older or
                # hand-edited store could contain them)
                if entry is not None and entry.error is None:
                    self.stats.store_hits += 1
                    stored_keys.add(key)
                    counterexample = (
                        list(entry.counterexample) if entry.counterexample else None
                    )
                    verdict = (entry.included, counterexample, entry.error)
                    verdicts[key] = verdict
                    self._memo[key] = verdict
                    # merge the counters the original discharge produced, so
                    # the tables come out identical to a cold run
                    if solver_stats is not None:
                        solver_stats.merge(SolverStats.from_dict(entry.solver_stats))
                    if inclusion_stats is not None:
                        inclusion_stats.merge(
                            InclusionStats.from_dict(entry.inclusion_stats)
                        )
                    continue
            if self.shard is not None:
                index, count = self.shard
                if shard_of(digest, count) != index:
                    # another shard owns this fingerprint: report a vacuous
                    # verdict (never memoised, never persisted) — shard runs
                    # exist to warm the store, their reports are discarded
                    self.stats.shard_skipped += 1
                    skipped_keys.add(key)
                    verdicts[key] = (True, None, None)
                    continue
            if self.collect is not None:
                # coordinator collect pass: every store miss goes to the
                # dispatch sink (with the best cost signal available) and is
                # vacuously skipped here — workers will discharge it, and
                # this run's report is discarded like a shard run's
                self.stats.dispatch_collected += 1
                skipped_keys.add(key)
                verdicts[key] = (True, None, None)
                hint = self.store.cost_hint(digest) if self.store is not None else None
                self.collect(
                    self._env_fp, digest, hint, representative.cost_estimate()
                )
                continue
            if self.only is not None and digest not in self.only:
                # dispatch-worker pass: this obligation belongs to another
                # lease — vacuous skip, exactly like a foreign shard slice
                self.stats.dispatch_skipped += 1
                skipped_keys.add(key)
                verdicts[key] = (True, None, None)
                continue
            if self.store is not None:
                self.stats.store_misses += 1
            fresh.append((representative, digest))

        logger.debug(
            "batch %d: %d emitted, %d fresh (%d memo, %d store, %d shard-skipped)",
            self.stats.batches,
            len(obligation_set),
            len(fresh),
            len(memoed_keys),
            len(stored_keys),
            len(skipped_keys),
        )
        results = self._discharge_batch([ob for ob, _ in fresh])
        if len(self._memo) + len(fresh) > self.max_memo_entries:
            self._memo.clear()
        for (representative, digest), result in zip(fresh, results):
            self.stats.obligations_discharged += 1
            if solver_stats is not None:
                solver_stats.merge(SolverStats.from_dict(result["solver"]))
            if inclusion_stats is not None:
                inclusion_stats.merge(InclusionStats.from_dict(result["inclusion"]))
            verdict = (result["included"], result["counterexample"], result["error"])
            verdicts[representative.fingerprint()] = verdict
            self._memo[representative.fingerprint()] = verdict
            # Resource-limit errors are NOT persisted: whether a budget is hit
            # depends on the warm-solver snapshot, which varies with run shape
            # — an error recorded by a small `check --method` run must not be
            # replayed as a permanent failure by a full `evaluate`.  True
            # verdicts (included, or a genuine counterexample) are pure in the
            # obligation and safe to keep forever.
            if (
                self.store is not None
                and store_context is not None
                and result["error"] is None
            ):
                self.store.record(
                    StoreEntry(
                        env=self._env_fp,
                        fp=digest,
                        included=result["included"],
                        counterexample=result["counterexample"],
                        error=result["error"],
                        solver_stats=result["solver"],
                        inclusion_stats=result["inclusion"],
                        scope=store_context.scope,
                        method=store_context.method,
                        spec=store_context.spec_digest,
                        library=store_context.library_digest,
                        kind=representative.kind,
                        provenance=representative.provenance,
                        cost={
                            "wall": round(result.get("wall", 0.0), 6),
                            "queries": result["solver"].get("queries", 0),
                            "prod_states": result["inclusion"].get("prod_states", 0),
                        },
                    )
                )

        outcomes: dict[int, DischargeOutcome] = {}
        for representative, aliases in scheduled:
            included, counterexample, error = verdicts[representative.fingerprint()]
            key = representative.fingerprint()
            from_memo = key in memoed_keys
            if from_memo:
                self.stats.memo_hits += 1
            for obligation, deduped in [(representative, False)] + [
                (alias, True) for alias in aliases
            ]:
                outcomes[obligation.index] = DischargeOutcome(
                    obligation=obligation,
                    included=included,
                    counterexample=counterexample,
                    error=error,
                    from_memo=from_memo,
                    from_store=key in stored_keys,
                    skipped=key in skipped_keys,
                    deduped=deduped,
                )
        return outcomes

    # ------------------------------------------------------------------
    def _discharge_batch(self, obligations: list[Obligation]) -> list[dict]:
        if self.params.discharge == "batch":
            return self._discharge_grouped(obligations)
        if len(obligations) > 1 and self.workers > 1 and _fork_available():
            self.stats.parallel_batches += 1
            results = self._discharge_parallel(obligations)
        else:
            results = [discharge_obligation(ob, self.params) for ob in obligations]
        for result in results:
            trace.ingest(result.get("spans"))
        return results

    def _discharge_parallel(self, obligations: list[Obligation]) -> list[dict]:
        global _FORK_STATE
        self._prebuild_hinted(
            (self._group_key(ob), ob) for ob in obligations
        )
        context = multiprocessing.get_context("fork")
        processes = min(self.workers, len(obligations))
        logger.debug("forking pool: %d workers for %d obligations", processes, len(obligations))
        _FORK_STATE = (obligations, self.params)
        try:
            with trace.span(
                "discharge.pool", cat="discharge", workers=processes, obligations=len(obligations)
            ):
                with context.Pool(processes=processes) as pool:
                    results = pool.map(_discharge_index, range(len(obligations)))
        finally:
            _FORK_STATE = None
        self._note_worker_keys(result.get("memo_keys", ()) for result in results)
        return results

    # ------------------------------------------------------------------
    # Set-at-a-time batch discharge (``discharge="batch"``)
    # ------------------------------------------------------------------
    def _group_key(self, obligation: Obligation) -> tuple:
        params = self.params
        assert params.alphabet_memo is not None
        return params.alphabet_memo.key_for(
            list(obligation.hypotheses),
            [obligation.lhs, obligation.rhs],
            params.operators,
            max_literals=params.max_literals,
            filter_unsat=params.filter_unsat_minterms,
            strategy=params.strategy,
        )

    def _prebuild_hinted(self, keyed_obligations) -> None:
        """Build worker-hinted alphabet constructions in the parent.

        Pure reuse: the memo's hermetic build + recorded bill means a member
        that would have built now replays the identical counters (only the
        volatile ``#Alph`` attribution moves), but the construction crosses
        the next fork copy-on-write instead of being re-run in every worker.
        """
        memo = self.params.alphabet_memo
        if memo is None or not memo.enabled or not self._eager_memo_hints:
            return
        for key, obligation in keyed_obligations:
            if key in self._eager_memo_hints and key not in memo:
                memo.alphabets_for(
                    list(obligation.hypotheses),
                    [obligation.lhs, obligation.rhs],
                    self.params.operators,
                    max_literals=self.params.max_literals,
                    filter_unsat=self.params.filter_unsat_minterms,
                    strategy=self.params.strategy,
                )
                self.stats.memo_eager_builds += 1

    def _note_worker_keys(self, key_lists) -> None:
        for keys in key_lists:
            for key in keys:
                if key not in self._eager_memo_hints:
                    self._eager_memo_hints.add(key)
                    self.stats.worker_memo_keys += 1
        if len(self._eager_memo_hints) > 4096:
            self._eager_memo_hints.clear()

    def _discharge_grouped(self, obligations: list[Obligation]) -> list[dict]:
        """Group fresh obligations by alphabet key; discharge set-at-a-time.

        Groups keep the scheduler's first-occurrence order, and the returned
        list is aligned with ``obligations`` — callers cannot tell this apart
        from per-obligation discharge except by wall-clock time and the
        ``batch_*`` bookkeeping (every counter is byte-identical to lazy).
        """
        if not obligations:
            return []
        groups: dict[tuple, list[int]] = {}
        for position, obligation in enumerate(obligations):
            groups.setdefault(self._group_key(obligation), []).append(position)
        ordered = list(groups.items())
        payloads = [[obligations[i] for i in members] for _, members in ordered]
        if len(payloads) > 1 and self.workers > 1 and _fork_available():
            self._prebuild_hinted(
                (key, payload[0]) for (key, _), payload in zip(ordered, payloads)
            )
            self.stats.parallel_batches += 1
            outs = self._discharge_groups_parallel(payloads)
            self._note_worker_keys(out.get("memo_keys", ()) for out in outs)
        else:
            outs = [_discharge_group_payload(payload, self.params) for payload in payloads]
        for out in outs:
            trace.ingest(out.get("spans"))
        logger.debug(
            "batch discharge: %d obligations in %d alphabet groups", len(obligations), len(outs)
        )
        results: list[Optional[dict]] = [None] * len(obligations)
        for (_, members), out in zip(ordered, outs):
            for position, member_result in zip(members, out["members"]):
                results[position] = member_result
            record = out["group"]
            self.batch_group_log.append(record)
            self.stats.batch_groups += 1
            self.stats.batch_grouped_obligations += record["members"]
            self.stats.batch_queries_executed += record["queries_executed"]
            self.stats.batch_queries_billed += record["queries_billed"]
        return results

    def _discharge_groups_parallel(self, payloads: list[list[Obligation]]) -> list[dict]:
        global _GROUP_FORK_STATE
        context = multiprocessing.get_context("fork")
        processes = min(self.workers, len(payloads))
        logger.debug("forking pool: %d workers for %d groups", processes, len(payloads))
        _GROUP_FORK_STATE = (payloads, self.params)
        try:
            with trace.span(
                "discharge.pool", cat="discharge", workers=processes, groups=len(payloads)
            ):
                with context.Pool(processes=processes) as pool:
                    return pool.map(_discharge_group_index, range(len(payloads)))
        finally:
            _GROUP_FORK_STATE = None
