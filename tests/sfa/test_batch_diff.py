"""Differential tests: batched set-at-a-time discharge vs the lazy oracle.

``discharge="batch"`` groups cold obligations by their cross-obligation
alphabet key and discharges each group against one shared transition table
(``repro.sfa.batch``).  Batching is a *sharing* transformation, never a
semantic one, so everything observable must match the lazy path exactly:

* identical verdicts, counterexample traces and error messages on every
  obligation,
* byte-identical deterministic counter tables on the full fast corpus,
  for every solver backend,
* genuine witnesses: every counterexample replays on the compiled DFAs
  (accepted by lhs, rejected by rhs),
* interchangeable store entries: a store warmed by a lazy run answers a
  batch run completely, and vice versa (the environment fingerprint keys
  ``batch`` as ``lazy``),
* and the coalescing claim: every multi-member group *executes* strictly
  fewer solver queries than the deterministic tables bill.

The corpus is the suite's fast benchmarks plus >=100 seeded-random groups
of SFA pairs built over a shared literal pool (so they genuinely share the
grouping key, like sibling obligations of one method do).
"""

import pickle
import random

import pytest

from repro import smt
from repro.sfa import symbolic as S
from repro.sfa.alphabet import AlphabetError, AlphabetMemo, build_alphabets
from repro.sfa.batch import TransitionTable, _lockstep_search, discharge_group
from repro.sfa.derivatives import CompilationError, compile_dfa, lazy_inclusion_search
from repro.sfa.inclusion import InclusionChecker
from repro.smt.solver import SolverError
from repro.evaluation.runner import run_evaluation
from repro.evaluation.tables import report_json
from repro.engine.obligations import Obligation
from repro.store.obligation_store import ObligationStore
from repro.typecheck.checker import CheckerConfig

from test_discharge_diff import _random_context_literal, _random_registry, _random_sfa

# ---------------------------------------------------------------------------
# Random group generator
# ---------------------------------------------------------------------------


def _group_members(rng: random.Random, lhs: S.Sfa, rhs: S.Sfa) -> list[tuple[S.Sfa, S.Sfa]]:
    """2-5 obligation pairs combined from one formula pool.

    Boolean/temporal combinators add no qualifier literals, so pairs drawn
    from the same pool usually share the alphabet content key — the shape
    sibling obligations of one method have (the invariant on one side,
    per-branch contexts on the other).  Callers still group by the computed
    key: ACI collapse (e.g. ``or(x, not x)``) can drop literals.
    """
    pool = [lhs, rhs, S.or_(lhs, rhs), S.and_(lhs, rhs), S.not_(lhs), S.next_(rhs)]
    count = rng.randrange(2, 6)
    return [(rng.choice(pool), rng.choice(pool)) for _ in range(count)]


def _make_obligation(hypotheses, lhs, rhs, index) -> Obligation:
    return Obligation(
        kind="test",
        hypotheses=tuple(hypotheses),
        lhs=lhs,
        rhs=rhs,
        provenance=f"random group member {index}",
        failure_message="inclusion failed",
        index=index,
    )


# ---------------------------------------------------------------------------
# Table-level differential: the lockstep walk IS the lazy walk
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", range(40))
def test_lockstep_search_matches_lazy_walk_exactly(seed):
    """Per member, the shared-table BFS must replicate ``lazy_inclusion_search``
    step for step: same witness indices, same explored count — and witnesses
    must replay genuinely on the compiled DFAs."""
    rng = random.Random(515_151 + seed)
    registry = _random_registry(rng)
    base_lhs = _random_sfa(rng, registry)
    base_rhs = _random_sfa(rng, registry)
    members = _group_members(rng, base_lhs, base_rhs)
    solver = smt.Solver()
    try:
        alphabets = build_alphabets(solver, [], [base_lhs, base_rhs], registry)
    except (AlphabetError, SolverError):
        pytest.skip("alphabet construction exceeds the default budget")
    for alphabet in alphabets:
        table = TransitionTable(alphabet)
        walks = _lockstep_search(table, members)
        for (lhs, rhs), walk in zip(members, walks):
            witness, explored = lazy_inclusion_search(lhs, rhs, alphabet)
            assert walk.witness == witness
            assert walk.explored == explored
            assert walk.error is None
            if witness is not None:
                lhs_dfa = compile_dfa(lhs, alphabet)
                rhs_dfa = compile_dfa(rhs, alphabet)
                assert lhs_dfa.accepts_word(list(witness))
                assert not rhs_dfa.accepts_word(list(witness))


def test_lockstep_budget_error_matches_lazy_message():
    """A member that trips ``max_pairs`` reports the exact lazy error."""
    for seed in range(50):
        rng = random.Random(313 + seed)
        registry = _random_registry(rng)
        lhs = _random_sfa(rng, registry, depth=4)
        rhs = _random_sfa(rng, registry, depth=4)
        solver = smt.Solver()
        try:
            alphabets = build_alphabets(solver, [], [lhs, rhs], registry)
        except (AlphabetError, SolverError):
            continue
        for alphabet in alphabets:
            _, explored = lazy_inclusion_search(lhs, rhs, alphabet)
            if explored < 2:
                continue  # the bounded walk would finish before the budget
            with pytest.raises(CompilationError) as excinfo:
                lazy_inclusion_search(lhs, rhs, alphabet, max_pairs=1)
            table = TransitionTable(alphabet)
            walk = _lockstep_search(table, [(lhs, rhs)], max_pairs=1)[0]
            assert walk.error is not None
            assert str(walk.error) == str(excinfo.value)
            assert str(walk.error) == "lazy product walk exceeded 1 pairs"
            return
    pytest.fail("no seed produced a product walk beyond one pair")


# ---------------------------------------------------------------------------
# Group-level differential: >=100 random groups vs the lazy checker
# ---------------------------------------------------------------------------


def test_discharge_group_matches_lazy_checker_on_random_groups():
    """>=100 random groups: every member's verdict, trace, error and
    deterministic counters equal an independent lazy check; every clean
    multi-member group executes strictly fewer queries than it bills."""
    total_groups = 0
    multi_member_groups = 0
    counterexamples_seen = 0
    for seed in range(110):
        rng = random.Random(626_262 + seed)
        registry = _random_registry(rng)
        base_lhs = _random_sfa(rng, registry)
        base_rhs = _random_sfa(rng, registry)
        hypotheses = []
        if rng.random() < 0.3:
            hypothesis = _random_context_literal(rng)
            if not (hypothesis.is_true or hypothesis.is_false):
                hypotheses.append(hypothesis)

        memo = AlphabetMemo()
        candidates = _group_members(rng, base_lhs, base_rhs)
        key = memo.key_for(hypotheses, list(candidates[0]), registry)
        members = [
            pair
            for pair in candidates
            if memo.key_for(hypotheses, list(pair), registry) == key
        ]
        obligations = [
            _make_obligation(hypotheses, lhs, rhs, i)
            for i, (lhs, rhs) in enumerate(members)
        ]
        results, record = discharge_group(obligations, registry, memo)
        total_groups += 1
        assert record.members == len(members)
        if record.members > 1:
            multi_member_groups += 1
            if record.error is None:
                # the coalescing claim, per group: one construction executed,
                # the recorded bill replayed into every member
                assert record.queries_executed < record.queries_billed

        for (lhs, rhs), result in zip(members, results):
            oracle = InclusionChecker(smt.Solver(), registry, discharge="lazy")
            try:
                detail = oracle.check_detailed(list(hypotheses), lhs, rhs)
                expected = (detail.included, detail.counterexample, None)
            except (AlphabetError, CompilationError, SolverError) as exc:
                expected = (False, None, str(exc))
            assert (result["included"], result["counterexample"], result["error"]) == expected
            if expected[2] is None:
                oracle_stats = oracle.stats.as_dict()
                for field in (
                    "fa_inclusion_checks",
                    "prod_states",
                    "context_cases",
                    "minterm_candidates",
                    "satisfiable_minterms",
                ):
                    assert result["inclusion"][field] == oracle_stats[field], field
            if result["counterexample"]:
                counterexamples_seen += 1

    assert total_groups >= 100
    # the generator must genuinely exercise the sharing path and failures
    assert multi_member_groups >= 30
    assert counterexamples_seen >= 10


def test_discharge_group_construction_failure_reports_every_member():
    """An alphabet budget blowup fails all members with the lazy message."""
    for seed in range(30):
        rng = random.Random(131 + seed)
        registry = _random_registry(rng)
        lhs = _random_sfa(rng, registry)
        rhs = _random_sfa(rng, registry)
        oracle = InclusionChecker(
            smt.Solver(), registry, discharge="lazy", max_literals=0, strategy="exhaustive"
        )
        try:
            oracle.check_detailed([], lhs, rhs)
            continue  # no qualifier literals: a zero budget suffices
        except (AlphabetError, SolverError) as exc:
            expected_message = str(exc)
        memo = AlphabetMemo()
        obligations = [_make_obligation([], lhs, rhs, i) for i in range(3)]
        results, record = discharge_group(
            obligations, registry, memo, max_literals=0, strategy="exhaustive"
        )
        assert record.error == expected_message
        assert record.queries_executed == 0
        for result in results:
            assert not result["included"]
            assert result["error"] == expected_message
        return
    pytest.fail("no seed produced formulas over the zero-literal budget")


# ---------------------------------------------------------------------------
# Corpus differential: full fast corpus, both solver backends, both stores
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("backend", ["dpll", "cdcl"])
def test_fast_corpus_batch_equals_lazy(backend):
    """Verdicts, negative-variant outcomes and the deterministic table
    renderings are byte-identical between batch and lazy on the fast corpus."""
    reports = {}
    for discharge in ("lazy", "batch"):
        config = CheckerConfig(discharge=discharge, backend=backend)
        reports[discharge] = run_evaluation(include_slow=False, config=config)
    lazy, batch = reports["lazy"], reports["batch"]

    def verdicts(report):
        return [
            (stats.adt, result.method, result.verified, result.error)
            for stats in report.adt_stats
            for result in stats.method_results
        ]

    def negatives(report):
        return [
            (r.benchmark, r.variant, r.rejected, r.error)
            for r in report.negative_results
        ]

    assert verdicts(batch) == verdicts(lazy)
    assert negatives(batch) == negatives(lazy)
    assert batch.all_verified and batch.all_negatives_rejected
    assert (
        report_json(batch)["tables_deterministic"]
        == report_json(lazy)["tables_deterministic"]
    )
    assert (
        report_json(batch)["tables_backend_invariant"]
        == report_json(lazy)["tables_backend_invariant"]
    )

    # batch mode genuinely grouped, and every clean multi-member group
    # coalesced: strictly fewer queries executed than billed
    records = batch.batch_group_records()
    assert records and sum(r["members"] for r in records) > 0
    for record in records:
        if record["members"] > 1 and not record["error"]:
            assert record["queries_executed"] < record["queries_billed"]
    assert not lazy.batch_group_records()


@pytest.mark.parametrize("store_backend", ["jsonl", "sqlite"])
def test_batch_and_lazy_store_entries_are_interchangeable(tmp_path, store_backend):
    """The environment fingerprint keys ``batch`` as ``lazy``: a store warmed
    by either mode answers the other completely, on both store backends."""
    configs = {
        "lazy": CheckerConfig(discharge="lazy"),
        "batch": CheckerConfig(discharge="batch"),
    }
    for cold_mode, warm_mode in (("lazy", "batch"), ("batch", "lazy")):
        path = tmp_path / f"store-{cold_mode}-{store_backend}"
        cold_store = ObligationStore(path, backend=store_backend)
        cold = run_evaluation(
            include_slow=False,
            config=configs[cold_mode],
            store=cold_store,
            check_negative_variants=False,
        )
        warm_store = ObligationStore(path, backend=store_backend)
        warm = run_evaluation(
            include_slow=False,
            config=configs[warm_mode],
            store=warm_store,
            check_negative_variants=False,
        )
        hits = sum(d["engine"]["store_hits"] for d in warm.diagnostics)
        misses = sum(d["engine"]["store_misses"] for d in warm.diagnostics)
        assert hits > 0, f"{warm_mode} run ignored the {cold_mode}-warmed store"
        assert misses == 0, f"{warm_mode} run missed a {cold_mode}-warmed store"
        # warm tables replay the recorded counters byte for byte
        assert (
            report_json(warm)["tables_deterministic"]
            == report_json(cold)["tables_deterministic"]
        )


# ---------------------------------------------------------------------------
# Memo keys crossing the pool boundary must stay plain data
# ---------------------------------------------------------------------------


def test_group_payload_memo_keys_are_picklable():
    """Worker results carry built memo keys back to the parent as hints; the
    keys must survive the pool boundary (plain ints/strings/bools only)."""
    rng = random.Random(12)
    registry = _random_registry(rng)
    lhs = _random_sfa(rng, registry)
    rhs = _random_sfa(rng, registry)
    memo = AlphabetMemo()
    before = len(memo.session_built_keys)
    discharge_group([_make_obligation([], lhs, rhs, 0)], registry, memo)
    built = memo.session_built_keys[before:]
    assert built, "a cold group must record its construction key"
    restored = pickle.loads(pickle.dumps(built))
    assert restored == built
    assert all(key in memo for key in built)
