"""The distributed-discharge coordinator (``repro dispatch`` / ``evaluate --distributed``).

Two phases, mirroring the sharded runner's warm/report split — but with the
partition decided *dynamically* by the store server's lease queue instead of
statically by fingerprint hash:

1. **Collect + enqueue** — run the full emit walk with the engine in
   ``collect_sink`` mode: every store miss is reported to the coordinator
   (with the best cost signal available — the store's measured wall cost,
   else the syntactic estimate) and vacuously skipped.  The misses are
   enqueued on the server tagged with a fresh dispatch id; pulling workers
   lease them highest-cost-first and write verdicts back through the store.
2. **Drain + warm report** — poll the queue until this dispatch's items are
   gone, then re-run the evaluation warm: every obligation answers from the
   store, and the tables come out byte-identical to a serial cold run
   (the ``--shards`` determinism argument, now across machines).

Durability is the store's: if the coordinator dies mid-drain, a re-dispatch
recomputes the remaining misses from the store — completed obligations are
warm hits, never redone — and the new enqueue wave re-tags whatever is still
pending, so the drain poll converges on exactly the outstanding work.

``local_workers=N`` forks N in-process workers for the single-box case
(``repro dispatch --local-workers 2``); a fleet on other machines just runs
``repro worker --store URL`` against the same server.
"""

from __future__ import annotations

import multiprocessing
import time
import uuid
from dataclasses import replace
from typing import Optional, Sequence

from ..evaluation.runner import EvaluationReport, run_benchmark, run_evaluation
from ..obs import trace
from ..obs.logs import get_logger
from ..store.obligation_store import ObligationStore
from ..suite.benchmark import AdtBenchmark
from ..suite.registry import all_benchmarks
from ..typecheck.checker import CheckerConfig
from .worker import run_worker

logger = get_logger("dispatch")

#: queue items per enqueue RPC
_ENQUEUE_CHUNK = 256


class DispatchError(RuntimeError):
    """The distributed run cannot make progress (drain timeout, dead fleet)."""


def _local_worker(store_url: str, config: CheckerConfig, batch: int, ttl: float,
                  check_negative_variants: bool) -> None:
    """One forked local worker (module-level so the fork target pickles)."""
    run_worker(
        store_url,
        config=config,
        batch=batch,
        ttl=ttl,
        check_negative_variants=check_negative_variants,
        # fork inherits the coordinator's collect-phase walk: the interned
        # state is already the serial prefix, no warmup replay needed
        warm_process=False,
    )


def run_distributed_evaluation(
    store: ObligationStore,
    *,
    benchmarks: Optional[Sequence[AdtBenchmark]] = None,
    include_slow: bool = True,
    config: Optional[CheckerConfig] = None,
    check_negative_variants: bool = True,
    local_workers: int = 0,
    batch: int = 8,
    ttl: float = 30.0,
    drain_timeout: float = 600.0,
    poll: float = 0.2,
) -> EvaluationReport:
    """Verify the corpus with its cold obligations pulled by a worker fleet."""
    if store is None or not store.is_remote:
        raise ValueError(
            "distributed evaluation coordinates through a store *server*; "
            "pass --store http://host:port of a `repro store serve` instance"
        )
    config = config or CheckerConfig()
    if benchmarks is None:
        benchmarks = all_benchmarks(include_slow=include_slow)
    benchmarks = list(benchmarks)
    backend = store.backend
    dispatch_id = uuid.uuid4().hex
    started = time.perf_counter()

    # -- phase 1: collect the cold obligations, enqueue them ----------------
    items: list[dict] = []
    with trace.span("dispatch.collect", cat="run", dispatch=dispatch_id, benchmarks=len(benchmarks)):
        for benchmark in benchmarks:
            pending: list[dict] = []

            def sink(env: Optional[str], digest: str, hint: Optional[float],
                     estimate: float, _bench: str = benchmark.key) -> None:
                pending.append({
                    "env": env or "",
                    "fp": digest,
                    "bench": _bench,
                    "cost": hint if hint is not None else float(estimate),
                    "measured": hint is not None,
                })
            collect_config = replace(
                config, collect_sink=sink, workers=1, shard=None, only_digests=None
            )
            run_benchmark(
                benchmark,
                config=collect_config,
                check_negative_variants=check_negative_variants,
                store=store,
            )
            items.extend(pending)
    # the collect walk writes nothing, but the session may hold prefetch
    # bookkeeping; fresh dedupe happens server-side on (env, fp)
    enqueued = requeued = 0
    for start in range(0, len(items), _ENQUEUE_CHUNK):
        response = backend.enqueue(items[start:start + _ENQUEUE_CHUNK], dispatch_id)
        enqueued += response.get("enqueued", 0)
        requeued += response.get("requeued", 0)
    logger.info(
        "dispatch %s: %d cold obligations enqueued (%d already queued)",
        dispatch_id, enqueued, requeued,
    )

    # -- phase 1b: optional local worker fleet ------------------------------
    processes: list = []
    if local_workers > 0 and items:
        store.flush()
        # neither an open sqlite handle nor a keep-alive socket may cross
        # fork(); the children (and the parent, lazily) reconnect
        backend.close()
        worker_config = replace(config, collect_sink=None, only_digests=None, workers=1)
        context = multiprocessing.get_context("fork")
        processes = [
            context.Process(
                target=_local_worker,
                args=(store.path, worker_config, batch, ttl, check_negative_variants),
            )
            for _ in range(local_workers)
        ]
        for process in processes:
            process.start()

    # -- phase 2: drain, then the warm deterministic report -----------------
    wait_started = time.perf_counter()
    status: dict = {}
    try:
        with trace.span("dispatch.drain", cat="run", dispatch=dispatch_id, items=len(items)):
            while items:
                status = backend.queue_status(dispatch_id)
                if status.get("remaining", 0) == 0:
                    break
                if time.perf_counter() - wait_started > drain_timeout:
                    raise DispatchError(
                        f"dispatch {dispatch_id} did not drain within "
                        f"{drain_timeout:.0f}s ({status.get('remaining')} of "
                        f"{len(items)} obligations outstanding); completed "
                        "work is durable — re-dispatch to resume"
                    )
                if processes and all(p.exitcode is not None for p in processes):
                    raise DispatchError(
                        f"all {len(processes)} local workers exited with "
                        f"{status.get('remaining')} obligations outstanding"
                    )
                time.sleep(poll)
    finally:
        for process in processes:
            process.join(timeout=max(ttl, 30.0))
            if process.is_alive():  # pragma: no cover - defensive cleanup
                process.terminate()
                process.join()
    drain_seconds = time.perf_counter() - wait_started

    # the collect walk cached this session's misses as known-misses; the
    # fleet has since written them — re-fetch on the warm pass
    store.forget_remote_misses()
    report = run_evaluation(
        benchmarks,
        include_slow=include_slow,
        config=replace(config, collect_sink=None, only_digests=None),
        check_negative_variants=check_negative_variants,
        store=store,
    )
    report.dispatch = {
        "dispatch": dispatch_id,
        "cold_obligations": len(items),
        "enqueued": enqueued,
        "requeued": requeued,
        "local_workers": local_workers,
        "drain_seconds": round(drain_seconds, 3),
        "total_seconds": round(time.perf_counter() - started, 3),
        "queue": status.get("counters", {}),
    }
    return report
