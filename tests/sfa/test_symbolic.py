"""Tests for the symbolic automata algebra and concrete trace acceptance."""

import pytest

from repro import smt
from repro.smt import sorts
from repro.sfa import Trace, event
from repro.sfa import symbolic as S


def insert_sig(set_ops):
    return set_ops["insert"]


def mem_sig(set_ops):
    return set_ops["mem"]


def lazyset_invariant(set_ops, el):
    """I_LSet(el) = □(⟨insert ∼el⟩ ⟹ ◯ ¬ ♦ ⟨insert ∼el⟩) — never insert twice."""
    ins = S.event_pinned(insert_sig(set_ops), [el])
    return S.globally(S.implies(ins, S.next_(S.not_(S.eventually(ins)))))


def test_smart_constructor_normalisation(set_ops):
    a = S.event(insert_sig(set_ops))
    b = S.event(mem_sig(set_ops))
    assert S.and_(a, b) is S.and_(b, a)
    assert S.and_(a, S.TOP) is a
    assert S.and_(a, S.BOT) is S.BOT
    assert S.or_(a, S.BOT) is a
    assert S.or_(a, S.TOP) is S.TOP
    assert S.not_(S.not_(a)) is a
    assert S.not_(S.TOP) is S.BOT
    assert S.concat(a, S.BOT) is S.BOT
    assert S.event(insert_sig(set_ops), smt.FALSE) is S.BOT


def test_event_pinned_builds_equality_qualifier(set_ops):
    el = smt.var("el", sorts.ELEM)
    atom = S.event_pinned(insert_sig(set_ops), [el])
    assert atom.kind == S.K_EVENT
    signature, phi = atom.payload
    assert signature.name == "insert"
    assert phi is smt.eq(signature.arg_vars[0], el)


def test_event_pinned_by_name_and_result(set_ops):
    el = smt.var("el", sorts.ELEM)
    atom = S.event_pinned(mem_sig(set_ops), {"x": el}, result=smt.TRUE)
    _, phi = atom.payload
    assert smt.eq(mem_sig(set_ops).arg_vars[0], el) in phi.children


def test_operators_and_context_vars(set_ops):
    el = smt.var("el", sorts.ELEM)
    inv = lazyset_invariant(set_ops, el)
    assert {sig.name for sig in inv.operators()} == {"insert"}
    assert inv.context_vars() == {el}


def test_substitute_context_variable(set_ops):
    el = smt.var("el", sorts.ELEM)
    other = smt.var("other", sorts.ELEM)
    inv = lazyset_invariant(set_ops, el)
    replaced = S.substitute(inv, {el: other})
    assert replaced.context_vars() == {other}
    assert S.substitute(replaced, {other: el}) is inv


def test_substitute_rejects_formal_capture(set_ops):
    sig = insert_sig(set_ops)
    atom = S.event(sig, smt.eq(sig.arg_vars[0], smt.var("el", sorts.ELEM)))
    with pytest.raises(ValueError):
        S.substitute(atom, {sig.arg_vars[0]: smt.var("z", sorts.ELEM)})


def test_size_counts_atoms_and_connectives(set_ops):
    el = smt.var("el", sorts.ELEM)
    inv = lazyset_invariant(set_ops, el)
    assert S.size(inv) > 5


# -- concrete trace acceptance ----------------------------------------------------------


def test_acceptance_of_lazyset_invariant(set_ops):
    el = smt.var("el", sorts.ELEM)
    inv = lazyset_invariant(set_ops, el)
    env = {el: "a"}

    assert S.accepts(inv, Trace(), env)
    assert S.accepts(inv, Trace([event("insert", "a", result=())]), env)
    assert S.accepts(
        inv,
        Trace([event("insert", "b", result=()), event("insert", "a", result=())]),
        env,
    )
    assert not S.accepts(
        inv,
        Trace([event("insert", "a", result=()), event("insert", "a", result=())]),
        env,
    )
    assert not S.accepts(
        inv,
        Trace(
            [
                event("insert", "a", result=()),
                event("insert", "b", result=()),
                event("insert", "a", result=()),
            ]
        ),
        env,
    )


def test_acceptance_of_eventually_and_last(set_ops):
    sig = insert_sig(set_ops)
    el = smt.var("el", sorts.ELEM)
    env = {el: "a"}
    saw_el = S.eventually(S.event_pinned(sig, [el]))
    assert not S.accepts(saw_el, Trace(), env)
    assert S.accepts(saw_el, Trace([event("insert", "a", result=())]), env)
    assert S.accepts(
        saw_el,
        Trace([event("insert", "b", result=()), event("insert", "a", result=())]),
        env,
    )
    assert not S.accepts(saw_el, Trace([event("insert", "b", result=())]), env)

    exactly_one = S.and_(S.event_pinned(sig, [el]), S.last())
    assert S.accepts(exactly_one, Trace([event("insert", "a", result=())]), env)
    assert not S.accepts(
        exactly_one,
        Trace([event("insert", "a", result=()), event("insert", "b", result=())]),
        env,
    )


def test_acceptance_of_concatenation(set_ops):
    sig = insert_sig(set_ops)
    el = smt.var("el", sorts.ELEM)
    env = {el: "a"}
    prefix_any = S.any_trace()
    formula = S.concat(prefix_any, S.and_(S.event_pinned(sig, [el]), S.last()))
    # any history followed by exactly one insert of el
    assert S.accepts(formula, Trace([event("insert", "a", result=())]), env)
    assert S.accepts(
        formula,
        Trace([event("insert", "b", result=()), event("insert", "a", result=())]),
        env,
    )
    assert not S.accepts(formula, Trace([event("insert", "b", result=())]), env)
    assert not S.accepts(formula, Trace(), env)


def test_acceptance_with_result_qualifier(set_ops):
    sig = mem_sig(set_ops)
    el = smt.var("el", sorts.ELEM)
    env = {el: "a"}
    mem_false = S.event_pinned(sig, [el], result=smt.FALSE)
    formula = S.eventually(mem_false)
    assert S.accepts(formula, Trace([event("mem", "a", result=False)]), env)
    assert not S.accepts(formula, Trace([event("mem", "a", result=True)]), env)
    assert not S.accepts(formula, Trace([event("mem", "b", result=False)]), env)


def test_acceptance_with_method_predicate_interpretation(kv_ops):
    put = kv_ops["put"]
    is_dir = smt.declare("isDirSym", [sorts.BYTES], smt.BOOL, method_predicate=True)
    key = smt.var("k_sym", sorts.PATH)
    formula = S.eventually(
        S.event(
            put,
            smt.and_(smt.eq(put.arg_vars[0], key), smt.apply(is_dir, put.arg_vars[1])),
        )
    )
    env = {key: "/a"}
    interp = {"isDirSym": lambda data: data.get("kind") == "dir"}
    dir_bytes = {"kind": "dir"}
    file_bytes = {"kind": "file"}
    assert S.accepts(formula, Trace([event("put", "/a", dir_bytes, result=())]), env, interp)
    assert not S.accepts(formula, Trace([event("put", "/a", file_bytes, result=())]), env, interp)
    assert not S.accepts(formula, Trace([event("put", "/b", dir_bytes, result=())]), env, interp)


def test_trace_helpers():
    t = Trace([event("put", "/", "root", result=())])
    t2 = t.append(event("exists", "/a", result=False))
    assert len(t) == 1 and len(t2) == 2
    assert t2.any_event("exists")
    assert t2.last_event("put").args[0] == "/"
    assert t2.filter("exists")[0].result is False
    assert t2.suffix(1).events[0].op == "exists"
    assert Trace([event("a")]) == Trace([event("a")])
    assert hash(Trace([event("a")])) == hash(Trace([event("a")]))
