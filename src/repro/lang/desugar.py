"""Lowering the Mini-ML surface syntax into the MNF core calculus.

The transformation performs the usual A-normalisation plus two
simplifications that keep the HAT type checker small:

* nested lets are flattened, so the bound computation of every ``LetIn`` is a
  plain value (``Ret``) — library calls, pure applications and function calls
  each get their own ``LetOp`` / ``LetPure`` / ``LetApp`` binding;
* a ``let x = match ... in e`` is distributed over the match arms, so control
  flow only ever branches at ``Match`` nodes whose continuations are complete
  method suffixes (this is also what makes the paper's per-path checking —
  rule ChkMatch — straightforward).

Application heads are classified against the effectful-operator registry and
the table of pure primitives supplied by the caller; anything else is a
function call (``LetApp``).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from . import ast
from . import parser as surface

#: Pure primitives that are always available, mirroring Fig. 2's `op`.
BUILTIN_PURE_OPS = (
    "==",
    "<>",
    "<",
    "<=",
    ">",
    ">=",
    "+",
    "-",
    "&&",
    "||",
    "not",
)


class DesugarError(ValueError):
    """Raised when the surface program cannot be lowered."""


@dataclass
class Resolution:
    """How application heads are classified during lowering."""

    effectful_ops: frozenset[str]
    pure_ops: frozenset[str]

    @staticmethod
    def make(
        effectful_ops: Iterable[str] = (),
        pure_ops: Iterable[str] = (),
    ) -> "Resolution":
        return Resolution(
            effectful_ops=frozenset(effectful_ops),
            pure_ops=frozenset(pure_ops) | frozenset(BUILTIN_PURE_OPS),
        )


class _FreshNames:
    def __init__(self, prefix: str = "tmp") -> None:
        self._counter = itertools.count()
        self._prefix = prefix

    def fresh(self, hint: str = "") -> str:
        suffix = f"_{hint}" if hint else ""
        return f"{self._prefix}{next(self._counter)}{suffix}"


# ---------------------------------------------------------------------------
# Renaming (capture avoidance when continuations are pushed under binders)
# ---------------------------------------------------------------------------


def rename_variable(node, old: str, new: str):
    """Rename free occurrences of ``old`` to ``new`` in a core AST node."""
    if isinstance(node, ast.Const):
        return node
    if isinstance(node, ast.Var):
        return ast.Var(new) if node.name == old else node
    if isinstance(node, ast.Lambda):
        if node.param == old:
            return node
        return ast.Lambda(node.param, node.param_type, rename_variable(node.body, old, new))
    if isinstance(node, ast.Fix):
        if node.name == old:
            return node
        return ast.Fix(node.name, rename_variable(node.body, old, new))
    if isinstance(node, ast.Ret):
        return ast.Ret(rename_variable(node.value, old, new))
    if isinstance(node, (ast.LetOp, ast.LetPure)):
        cls = type(node)
        args = tuple(rename_variable(a, old, new) for a in node.args)
        body = node.body if node.name == old else rename_variable(node.body, old, new)
        return cls(node.name, node.op, args, body)
    if isinstance(node, ast.LetApp):
        func = rename_variable(node.func, old, new)
        args = tuple(rename_variable(a, old, new) for a in node.args)
        body = node.body if node.name == old else rename_variable(node.body, old, new)
        return ast.LetApp(node.name, func, args, body)
    if isinstance(node, ast.LetIn):
        bound = rename_variable(node.bound, old, new)
        body = node.body if node.name == old else rename_variable(node.body, old, new)
        return ast.LetIn(node.name, bound, body)
    if isinstance(node, ast.Match):
        scrutinee = rename_variable(node.scrutinee, old, new)
        branches = []
        for branch in node.branches:
            if old in branch.binders:
                branches.append(branch)
            else:
                branches.append(
                    ast.Branch(branch.constructor, branch.binders, rename_variable(branch.body, old, new))
                )
        return ast.Match(scrutinee, tuple(branches))
    raise TypeError(f"unexpected node {node!r}")


class Desugarer:
    """Stateful lowering of one surface program / expression."""

    def __init__(self, resolution: Resolution) -> None:
        self.resolution = resolution
        self.names = _FreshNames()

    # -- public API --------------------------------------------------------------
    def lower_program(self, program: surface.SProgram) -> ast.Program:
        definitions = []
        for definition in program.definitions:
            definitions.append(self.lower_definition(definition))
        return ast.Program(tuple(definitions))

    def lower_definition(self, definition: surface.SDefinition) -> ast.FunctionDef:
        body = self.lower(definition.body)
        return ast.FunctionDef(
            name=definition.name,
            params=definition.params,
            return_type=definition.return_type,
            body=body,
            recursive=definition.recursive,
        )

    # -- the lowering itself -------------------------------------------------------
    def lower(self, expr: surface.Surface) -> ast.Expr:
        if isinstance(expr, surface.SUnit):
            return ast.Ret(ast.UNIT)
        if isinstance(expr, surface.SBool):
            return ast.Ret(ast.TRUE if expr.value else ast.FALSE)
        if isinstance(expr, surface.SInt):
            return ast.Ret(ast.Const(expr.value))
        if isinstance(expr, surface.SString):
            return ast.Ret(ast.Const(expr.value))
        if isinstance(expr, surface.SVar):
            return ast.Ret(ast.Var(expr.name))
        if isinstance(expr, surface.SFun):
            return ast.Ret(ast.Lambda(expr.param, expr.param_type, self.lower(expr.body)))
        if isinstance(expr, surface.SLet):
            bound = self.lower(expr.bound)
            body = self.lower(expr.body)
            return self.bind(bound, expr.name, body)
        if isinstance(expr, surface.SSeq):
            first = self.lower(expr.first)
            second = self.lower(expr.second)
            return self.bind(first, self.names.fresh("seq"), second)
        if isinstance(expr, surface.SIf):
            bindings: list[tuple[str, ast.Expr]] = []
            condition = self.lower_to_value(expr.condition, bindings)
            match_expr = ast.Match(
                condition,
                (
                    ast.Branch("true", (), self.lower(expr.then_branch)),
                    ast.Branch("false", (), self.lower(expr.else_branch)),
                ),
            )
            return self.wrap(bindings, match_expr)
        if isinstance(expr, surface.SMatch):
            bindings = []
            scrutinee = self.lower_to_value(expr.scrutinee, bindings)
            branches = tuple(
                ast.Branch(arm.constructor, arm.binders, self.lower(arm.body))
                for arm in expr.arms
            )
            return self.wrap(bindings, ast.Match(scrutinee, branches))
        if isinstance(expr, surface.SApp):
            return self.lower_application(expr)
        raise DesugarError(f"cannot lower surface expression {expr!r}")

    def lower_application(self, expr: surface.SApp) -> ast.Expr:
        bindings: list[tuple[str, ast.Expr]] = []
        args = tuple(self.lower_to_value(a, bindings) for a in expr.args)
        result_name = self.names.fresh("r")
        tail = ast.Ret(ast.Var(result_name))

        head = expr.func
        if isinstance(head, surface.SVar):
            name = head.name
            if name in self.resolution.effectful_ops:
                call: ast.Expr = ast.LetOp(result_name, name, args, tail)
                return self.wrap(bindings, call)
            if name in self.resolution.pure_ops:
                call = ast.LetPure(result_name, name, args, tail)
                return self.wrap(bindings, call)
            func_value: ast.Value = ast.Var(name)
        else:
            func_value = self.lower_to_value(head, bindings)
        call = ast.LetApp(result_name, func_value, args, tail)
        return self.wrap(bindings, call)

    def lower_to_value(
        self, expr: surface.Surface, bindings: list[tuple[str, ast.Expr]]
    ) -> ast.Value:
        if isinstance(expr, surface.SUnit):
            return ast.UNIT
        if isinstance(expr, surface.SBool):
            return ast.TRUE if expr.value else ast.FALSE
        if isinstance(expr, surface.SInt):
            return ast.Const(expr.value)
        if isinstance(expr, surface.SString):
            return ast.Const(expr.value)
        if isinstance(expr, surface.SVar) and expr.name not in self.resolution.effectful_ops:
            return ast.Var(expr.name)
        if isinstance(expr, surface.SFun):
            return ast.Lambda(expr.param, expr.param_type, self.lower(expr.body))
        computation = self.lower(expr)
        if isinstance(computation, ast.Ret):
            return computation.value
        name = self.names.fresh("v")
        bindings.append((name, computation))
        return ast.Var(name)

    # -- plumbing --------------------------------------------------------------------
    def wrap(self, bindings: list[tuple[str, ast.Expr]], tail: ast.Expr) -> ast.Expr:
        result = tail
        for name, computation in reversed(bindings):
            result = self.bind(computation, name, result)
        return result

    def bind(self, computation: ast.Expr, name: str, continuation: ast.Expr) -> ast.Expr:
        """Sequence ``computation`` before ``continuation``, binding its result to ``name``.

        Keeps the program in the flattened MNF shape: ``LetIn`` only ever binds
        values, and match distributes over subsequent code.
        """
        if isinstance(computation, ast.Ret):
            return ast.LetIn(name, computation, continuation)
        if isinstance(computation, (ast.LetOp, ast.LetPure, ast.LetApp, ast.LetIn)):
            binder = computation.name
            continuation = self._avoid_capture(binder, continuation, computation)
            rebound = self.bind(computation.body, name, continuation)
            if isinstance(computation, ast.LetOp):
                return ast.LetOp(computation.name, computation.op, computation.args, rebound)
            if isinstance(computation, ast.LetPure):
                return ast.LetPure(computation.name, computation.op, computation.args, rebound)
            if isinstance(computation, ast.LetApp):
                return ast.LetApp(computation.name, computation.func, computation.args, rebound)
            return ast.LetIn(computation.name, computation.bound, rebound)
        if isinstance(computation, ast.Match):
            branches = tuple(
                ast.Branch(
                    branch.constructor,
                    branch.binders,
                    self.bind(branch.body, name, continuation),
                )
                for branch in computation.branches
            )
            return ast.Match(computation.scrutinee, branches)
        raise DesugarError(f"cannot sequence computation {computation!r}")

    def _avoid_capture(
        self, binder: str, continuation: ast.Expr, computation: ast.Expr
    ) -> ast.Expr:
        """``continuation`` will be placed under ``binder``; rename if it clashes."""
        if binder not in ast.free_variables(continuation):
            return continuation
        # The continuation references an *outer* variable with the same name as
        # this intermediate binder, so rename the binder instead — but since
        # the binder occurs inside `computation`, it is simpler (and safe) to
        # rename the continuation's free variable away only when the binder was
        # introduced by us.  Intermediate binders are always fresh, so a clash
        # can only involve user-written lets; rename the inner binder.
        fresh = self.names.fresh(binder)
        raise DesugarError(
            f"shadowing of {binder!r} across a sequenced computation is not supported; "
            f"rename one of the bindings (suggested fresh name: {fresh})"
        )


# ---------------------------------------------------------------------------
# Convenience entry points
# ---------------------------------------------------------------------------


def desugar_program(
    source: str,
    *,
    effectful_ops: Iterable[str] = (),
    pure_ops: Iterable[str] = (),
) -> ast.Program:
    resolution = Resolution.make(effectful_ops, pure_ops)
    parsed = surface.parse_program(source)
    return Desugarer(resolution).lower_program(parsed)


def desugar_expression(
    source: str,
    *,
    effectful_ops: Iterable[str] = (),
    pure_ops: Iterable[str] = (),
) -> ast.Expr:
    resolution = Resolution.make(effectful_ops, pure_ops)
    parsed = surface.parse_expression(source)
    return Desugarer(resolution).lower(parsed)
