"""``repro store serve`` — a shared obligation-cache service over HTTP.

A :class:`StoreService` wraps any *local* backend (jsonl directory or sqlite
file) and executes the store-level operations a
:class:`~repro.store.remote.RemoteStoreBackend` client sends — batched
lookup, batched append, ``compact``, ``commit_run``, ``gc``,
``invalidate`` — each under the wrapped backend's existing lock/transaction,
so a CI fleet (or many watch sessions) on different machines hit one warm
cache with exactly the local store's concurrency guarantees.

Design notes:

* The service keeps the store state in memory (loaded once at startup,
  maintained through its own writes) so lookups cost no disk I/O; mutating
  operations go to the backend *first* — durably, fsynced/transactional —
  and only then update the cache, so a crash at any point loses nothing
  that was acknowledged.  Read-modify-rewrite operations re-adopt the state
  the backend re-read under its exclusive lock, which also self-heals the
  cache if a local process wrote to the files behind the server's back.
* Writes carry client idempotency keys; the service remembers recent keys
  (with their responses) and replays the response instead of re-applying the
  write, so a client retrying a request whose *response* was lost cannot
  double-apply.  The key cache is in-memory: after a server restart a
  replayed append merely re-UPSERTs identical content (entries are keyed),
  and a replayed ``commit_run`` appends a fresh run record — both harmless.
* All operations serialise on one lock.  HTTP handling itself is threaded
  (:class:`ThreadingHTTPServer`), so slow clients never block the accept
  loop, only the store critical section is serial.

``REPRO_STORE_SERVE_CRASH`` is a fault-injection hook for the crash-recovery
suite: set to ``"<op>:before"`` or ``"<op>:after"`` it hard-kills the server
process (``os._exit``) immediately before or after that operation persists,
exercising the client's retry/idempotency path deterministically.
"""

from __future__ import annotations

import json
import os
import threading
from collections import OrderedDict
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from ..obs.logs import get_logger
from .backends import SCHEMA_VERSION, LoadedState, StoreEntry, open_backend
from .obligation_store import append_run_record, stale_entry_keys, sweep_unreferenced

logger = get_logger("store")

SERVER_NAME = "pymarple-store-serve/1"

#: how many recent idempotency keys (and their responses) the service holds
_MAX_IDEMPOTENCY_KEYS = 4096

#: fault-injection hook for the crash-recovery tests (see module docstring)
ENV_SERVE_CRASH = "REPRO_STORE_SERVE_CRASH"


class UnknownOperation(Exception):
    """The request path names no protocol operation."""


class StoreService:
    """Owns the wrapped backend, the in-memory state and the op lock."""

    def __init__(self, path, backend: Optional[str] = None) -> None:
        self.backend = open_backend(path, backend)
        if not getattr(self.backend, "supports_update", True):
            raise ValueError(
                f"cannot serve {str(path)!r}: it is itself a remote store "
                "URL; serve the local store the server should wrap"
            )
        self._lock = threading.Lock()
        state = self.backend.load(wipe_mismatch=True)
        self._entries = state.entries
        self._runs = state.runs
        self.skipped = state.skipped
        self._seen: OrderedDict[str, dict] = OrderedDict()
        self._crash = os.environ.get(ENV_SERVE_CRASH, "")

    # -- plumbing -----------------------------------------------------------------
    def _maybe_crash(self, op: str, when: str) -> None:
        if self._crash == f"{op}:{when}":  # pragma: no cover - exits the process
            logger.warning("fault injection: crashing %s %s", when, op)
            os._exit(3)

    def _adopt(self, state: LoadedState) -> None:
        self._entries = state.entries
        self._runs = state.runs

    def execute(self, op: str, payload: dict) -> dict:
        handler = getattr(self, f"op_{op}", None)
        if handler is None:
            raise UnknownOperation(f"unknown store operation {op!r}")
        with self._lock:
            key = payload.get("key")
            if isinstance(key, str) and key in self._seen:
                self._seen.move_to_end(key)
                logger.debug("replaying idempotent %s (key %s)", op, key)
                return self._seen[key]
            self._maybe_crash(op, "before")
            result = handler(payload)
            self._maybe_crash(op, "after")
            if isinstance(key, str) and key:
                self._seen[key] = result
                while len(self._seen) > _MAX_IDEMPOTENCY_KEYS:
                    self._seen.popitem(last=False)
            return result

    def close(self) -> None:
        self.backend.close()

    # -- protocol operations ------------------------------------------------------
    def op_handshake(self, _payload: dict) -> dict:
        return {
            "server": SERVER_NAME,
            "schema": SCHEMA_VERSION,
            "backend": self.backend.name,
            "path": str(self.backend.path),
            "entries": len(self._entries),
            "runs": len(self._runs),
            "skipped": self.skipped,
        }

    def op_lookup(self, payload: dict) -> dict:
        env = payload["env"]
        fps = payload["fps"]
        if not isinstance(env, str) or not isinstance(fps, list):
            raise ValueError("lookup needs an 'env' string and an 'fps' list")
        found = []
        for fp in fps:
            entry = self._entries.get((env, fp))
            if entry is not None:
                found.append(entry.to_record())
        return {"found": found, "entries": len(self._entries)}

    def op_cost_hints(self, _payload: dict) -> dict:
        costs: dict[str, float] = {}
        for entry in self._entries.values():
            wall = entry.wall_cost
            if wall is not None:
                costs[entry.fp] = wall
        return {"costs": costs, "entries": len(self._entries)}

    def op_append(self, payload: dict) -> dict:
        records = payload["entries"]
        if not isinstance(records, list):
            raise ValueError("append needs an 'entries' list")
        batch = [StoreEntry.from_record(record) for record in records]
        self.backend.append_entries(batch)
        for entry in batch:
            self._entries[entry.key] = entry
        logger.debug("appended %d entries for a remote client", len(batch))
        return {"appended": len(batch), "entries": len(self._entries)}

    def op_compact(self, _payload: dict) -> dict:
        state = self.backend.update(lambda entries, runs: (entries, runs), runs=False)
        self._entries = state.entries
        return {"entries": len(self._entries)}

    def op_invalidate(self, payload: dict) -> dict:
        scope = payload["scope"]
        method = payload["method"]
        spec_digest = payload["spec"]
        library_digest = payload["library"]
        dropped = 0

        def drop_stale(entries, runs):
            nonlocal dropped
            stale = stale_entry_keys(entries, scope, method, spec_digest, library_digest)
            dropped = len(stale)
            for stale_key in stale:
                del entries[stale_key]
            return entries, runs

        state = self.backend.update(drop_stale, runs=False)
        self._entries = state.entries
        return {"dropped": dropped, "entries": len(self._entries)}

    def op_commit_run(self, payload: dict) -> dict:
        touched = payload["touched"]
        if not isinstance(touched, list) or not all(
            isinstance(item, str) for item in touched
        ):
            raise ValueError("commit_run needs a 'touched' list of strings")
        if not touched:
            return {"run": 0, "entries": len(self._entries)}
        sequence = 0

        def append_run(entries, runs):
            nonlocal sequence
            runs, sequence = append_run_record(runs, touched)
            return entries, runs

        state = self.backend.update(append_run, entries=False)
        self._runs = state.runs
        return {"run": sequence, "entries": len(self._entries)}

    def op_gc(self, payload: dict) -> dict:
        keep_last = payload["keep_last"]
        if not isinstance(keep_last, int) or keep_last < 1:
            raise ValueError("gc requires keep_last >= 1")
        dropped = 0

        def sweep(entries, runs):
            nonlocal dropped
            entries, kept_runs, stale = sweep_unreferenced(entries, runs, keep_last)
            dropped = len(stale)
            return entries, kept_runs

        self._adopt(self.backend.update(sweep))
        return {"dropped": dropped, "entries": len(self._entries)}


class _StoreRequestHandler(BaseHTTPRequestHandler):
    server_version = SERVER_NAME

    def _reply(self, status: int, payload: dict) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _dispatch(self, op: str, payload: dict) -> None:
        try:
            result = self.server.service.execute(op, payload)
        except UnknownOperation as exc:
            self._reply(404, {"error": str(exc)})
        except (ValueError, KeyError, TypeError) as exc:
            # malformed requests and validation failures are the client's
            # fault and must not be retried
            detail = str(exc) or type(exc).__name__
            self._reply(400, {"error": detail})
        except Exception as exc:  # pragma: no cover - defensive 5xx surface
            logger.warning("store op %s failed: %s", op, exc)
            self._reply(500, {"error": f"{type(exc).__name__}: {exc}"})
        else:
            self._reply(200, result)

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        op = self.path.strip("/")
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            length = 0
        raw = self.rfile.read(length) if length else b""
        try:
            payload = json.loads(raw.decode("utf-8")) if raw else {}
        except (ValueError, UnicodeDecodeError):
            self._reply(400, {"error": "request body is not JSON"})
            return
        if not isinstance(payload, dict):
            self._reply(400, {"error": "request body must be a JSON object"})
            return
        self._dispatch(op, payload)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        # the one curl-able endpoint: identity without a POST body
        if self.path.strip("/") == "handshake":
            self._dispatch("handshake", {})
        else:
            self._reply(404, {"error": "POST JSON to /<operation>"})

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        logger.debug("http %s", format % args)


class StoreHTTPServer(ThreadingHTTPServer):
    """The serving loop: threaded HTTP in front of one :class:`StoreService`."""

    daemon_threads = True

    def __init__(self, address: tuple[str, int], service: StoreService) -> None:
        super().__init__(address, _StoreRequestHandler)
        self.service = service

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        if host in ("0.0.0.0", "::", ""):
            host = "127.0.0.1"
        return f"http://{host}:{port}"
